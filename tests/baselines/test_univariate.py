"""Tests for the univariate per-SNP GWAS baseline."""

import numpy as np
import pytest

from repro.baselines.univariate import UnivariateGWAS


@pytest.fixture
def causal_setup(rng):
    n, ns = 600, 30
    g = rng.integers(0, 3, size=(n, ns)).astype(np.float64)
    causal = [3, 17]
    y = 1.0 * g[:, 3] - 0.8 * g[:, 17] + rng.normal(size=n)
    return g, y, causal


class TestScan:
    def test_detects_causal_snps(self, causal_setup):
        g, y, causal = causal_setup
        result = UnivariateGWAS(alpha=0.05).scan(g, y)
        top = set(result.top_hits(2))
        assert set(causal) == top
        assert result.significant[3] and result.significant[17]

    def test_null_snps_rarely_significant(self, rng):
        n, ns = 500, 40
        g = rng.integers(0, 3, size=(n, ns)).astype(np.float64)
        y = rng.normal(size=n)
        result = UnivariateGWAS(alpha=0.05).scan(g, y)
        # Bonferroni keeps family-wise error ~5%
        assert result.n_significant <= 2

    def test_p_values_in_unit_interval(self, causal_setup):
        g, y, _ = causal_setup
        result = UnivariateGWAS().scan(g, y)
        assert np.all(result.p_values >= 0) and np.all(result.p_values <= 1)
        assert result.threshold == pytest.approx(0.05 / g.shape[1])

    def test_effect_sign_recovered(self, causal_setup):
        g, y, _ = causal_setup
        result = UnivariateGWAS().scan(g, y)
        assert result.betas[3] > 0
        assert result.betas[17] < 0

    def test_covariate_adjustment_removes_confounded_hit(self, rng):
        n = 600
        confounder = rng.normal(size=n)
        # SNP correlated with the confounder; phenotype driven by confounder only
        g = np.clip(np.rint(1.0 + 0.8 * confounder + 0.3 * rng.normal(size=n)),
                    0, 2)[:, None]
        y = 2.0 * confounder + rng.normal(size=n)
        unadjusted = UnivariateGWAS().scan(g, y)
        adjusted = UnivariateGWAS().scan(g, y, covariates=confounder[:, None])
        assert adjusted.p_values[0] > unadjusted.p_values[0]

    def test_monomorphic_snp_handled(self, rng):
        g = np.hstack([np.full((100, 1), 2.0), rng.integers(0, 3, size=(100, 3))])
        y = rng.normal(size=100)
        result = UnivariateGWAS().scan(g, y)
        assert result.p_values[0] == 1.0
        assert result.betas[0] == 0.0

    def test_multivariate_wrapper(self, causal_setup):
        g, y, _ = causal_setup
        results = UnivariateGWAS().scan_multivariate(g, np.column_stack([y, -y]))
        assert len(results) == 2
        np.testing.assert_allclose(results[0].betas, -results[1].betas, atol=1e-10)

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            UnivariateGWAS(alpha=0.0)
        with pytest.raises(ValueError):
            UnivariateGWAS().scan(rng.normal(size=(10, 3)), rng.normal(size=8))
        with pytest.raises(ValueError):
            UnivariateGWAS().scan(rng.normal(size=(3, 2)), rng.normal(size=3))
