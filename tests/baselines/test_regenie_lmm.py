"""Tests for the REGENIE-like stacked ridge and the GRM-based LMM baselines."""

import numpy as np
import pytest

from repro.baselines.lmm import GRMLinearMixedModel, genetic_relationship_matrix
from repro.baselines.regenie import RegenieConfig, RegenieLikeRegression
from repro.data.genotypes import simulate_genotypes
from repro.data.phenotypes import PhenotypeModel
from repro.gwas.metrics import pearson_correlation


@pytest.fixture(scope="module")
def additive_cohort():
    g = simulate_genotypes(500, 60, seed=21, maf_low=0.2)
    model = PhenotypeModel(n_causal=20, n_epistatic_pairs=0,
                           heritability_additive=0.6,
                           heritability_epistatic=0.0, seed=22)
    y = model.simulate(g)
    return g, y


class TestRegenie:
    def test_predicts_additive_signal(self, additive_cohort):
        g, y = additive_cohort
        model = RegenieLikeRegression(RegenieConfig(block_size=16, n_folds=3))
        pred = model.fit_predict(g[:400], y[:400], g[400:])
        assert pearson_correlation(y[400:], pred) > 0.4

    def test_beats_mean_predictor(self, additive_cohort):
        g, y = additive_cohort
        model = RegenieLikeRegression(RegenieConfig(block_size=16, n_folds=3))
        pred = model.fit_predict(g[:400], y[:400], g[400:])
        mse_model = np.mean((y[400:] - pred) ** 2)
        mse_mean = np.mean((y[400:] - y[:400].mean()) ** 2)
        assert mse_model < mse_mean

    def test_level1_lambda_selected_from_grid(self, additive_cohort):
        g, y = additive_cohort
        cfg = RegenieConfig(block_size=16, n_folds=3,
                            level1_ridge_values=(0.1, 10.0))
        model = RegenieLikeRegression(cfg)
        model.fit(g[:300], y[:300])
        assert model._level1_lambda in cfg.level1_ridge_values

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegenieLikeRegression().predict(np.zeros((3, 8)))

    def test_multivariate_fit(self, additive_cohort):
        g, y = additive_cohort
        models = RegenieLikeRegression(RegenieConfig(block_size=16, n_folds=2)) \
            .fit_multivariate(g[:200], np.column_stack([y[:200], y[:200]]))
        assert len(models) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RegenieConfig(block_size=0)
        with pytest.raises(ValueError):
            RegenieConfig(n_folds=1)
        with pytest.raises(ValueError):
            RegenieConfig(level0_ridge_values=())

    def test_flop_count_linear_in_both_dimensions(self):
        base = RegenieLikeRegression.flop_count(10_000, 100_000)
        assert RegenieLikeRegression.flop_count(20_000, 100_000) == pytest.approx(
            2 * base, rel=0.2)
        assert RegenieLikeRegression.flop_count(10_000, 200_000) == pytest.approx(
            2 * base, rel=0.2)

    def test_keyword_overrides(self):
        model = RegenieLikeRegression(block_size=8)
        assert model.config.block_size == 8


class TestGRM:
    def test_grm_diagonal_near_one(self, additive_cohort):
        g, _ = additive_cohort
        grm = genetic_relationship_matrix(g[:100])
        assert np.mean(np.diag(grm)) == pytest.approx(1.0, abs=0.15)
        np.testing.assert_allclose(grm, grm.T)

    def test_cross_grm_shape(self, additive_cohort):
        g, _ = additive_cohort
        cross = genetic_relationship_matrix(g[:30], reference=g[30:80])
        assert cross.shape == (30, 50)

    def test_snp_mismatch_raises(self, additive_cohort):
        g, _ = additive_cohort
        with pytest.raises(ValueError):
            genetic_relationship_matrix(g[:10, :20], reference=g[:10, :30])


class TestLMM:
    def test_heritability_estimated_high_for_heritable_trait(self, additive_cohort):
        g, y = additive_cohort
        model = GRMLinearMixedModel().fit(g[:300], y[:300])
        assert model.heritability_ > 0.3

    def test_heritability_low_for_noise(self, additive_cohort, rng):
        g, _ = additive_cohort
        noise = rng.normal(size=300)
        model = GRMLinearMixedModel().fit(g[:300], noise)
        assert model.heritability_ < 0.4

    def test_blup_prediction_correlates(self, additive_cohort):
        g, y = additive_cohort
        pred = GRMLinearMixedModel().fit_predict(g[:400], y[:400], g[400:])
        assert pred.shape == (100,)
        assert pearson_correlation(y[400:], pred) > 0.2

    def test_predict_before_fit_raises(self, additive_cohort):
        g, _ = additive_cohort
        with pytest.raises(RuntimeError):
            GRMLinearMixedModel().predict(g[:5])

    def test_covariate_shape_mismatch(self, additive_cohort, rng):
        g, y = additive_cohort
        model = GRMLinearMixedModel().fit(g[:200], y[:200],
                                          covariates=rng.normal(size=(200, 2)))
        with pytest.raises(ValueError):
            model.predict(g[200:250])  # covariates missing
