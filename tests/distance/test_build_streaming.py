"""Tests for the streaming, thread-parallel Build pipeline.

The rebuilt Build phase must (1) produce kernels bitwise identical to
the historical dense-staging path at every storage precision, (2) never
materialize the full dense FP64 kernel for the symmetric training case,
and (3) give identical results whether the tile loop runs sequentially
or on a thread pool.
"""

import numpy as np
import pytest

from repro.distance.build import BuildStats, KernelBuilder
from repro.distance.euclidean import squared_euclidean_gemm
from repro.distance.kernels import gaussian_kernel
from repro.precision.formats import Precision
from repro.tiles.adaptive import AdaptivePrecisionRule, candidates_for_gpu
from repro.tiles.matrix import TileMatrix


@pytest.fixture
def genotypes(small_genotypes):
    return small_genotypes[:72]


def _seed_path_training(genotypes, gamma, tile_size, storage_precision,
                        adaptive_rule=None):
    """The historical Build: dense FP64 staging + ``from_dense`` re-tiling."""
    dense = gaussian_kernel(squared_euclidean_gemm(genotypes), gamma)
    np.fill_diagonal(dense, 1.0)
    if adaptive_rule is not None:
        from repro.tiles.adaptive import decide_tile_precisions

        tiled = TileMatrix.from_dense(dense, tile_size, Precision.FP64,
                                      symmetric=True)
        pmap = decide_tile_precisions(tiled, adaptive_rule)
        tiled.apply_precision_map(pmap)
        return tiled
    return TileMatrix.from_dense(dense, tile_size, storage_precision,
                                 symmetric=True)


class TestSeedPathRegression:
    @pytest.mark.parametrize("storage", [
        Precision.FP64, Precision.FP32, Precision.FP16, Precision.FP8_E4M3,
    ])
    def test_training_bitwise_identical_to_seed_path(self, genotypes, storage):
        builder = KernelBuilder(gamma=0.03, tile_size=16,
                                storage_precision=storage, workers=1)
        streamed = builder.build_training(genotypes).to_dense()
        reference = _seed_path_training(genotypes, 0.03, 16, storage).to_dense()
        np.testing.assert_array_equal(streamed, reference)

    def test_training_adaptive_matches_seed_path(self, genotypes):
        rule = AdaptivePrecisionRule(candidates=candidates_for_gpu("A100"))
        builder = KernelBuilder(gamma=0.2, tile_size=16, adaptive_rule=rule,
                                workers=1)
        result = builder.build_training(genotypes)
        reference = _seed_path_training(genotypes, 0.2, 16, Precision.FP32,
                                        adaptive_rule=rule)
        np.testing.assert_array_equal(result.to_dense(), reference.to_dense())
        # same mosaic, tile for tile
        for (i, j), p in result.precision_map.items():
            assert reference.tile_precision(i, j) is p

    def test_cross_bitwise_identical_to_reference(self, genotypes):
        builder = KernelBuilder(gamma=0.03, tile_size=16, workers=1)
        test, train = genotypes[:24], genotypes[24:]
        streamed = builder.build_cross(test, train).to_dense()
        reference = gaussian_kernel(squared_euclidean_gemm(test, train), 0.03)
        np.testing.assert_array_equal(streamed, reference)


class TestNoDenseMaterialization:
    def test_training_never_calls_from_dense(self, genotypes, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("streamed Build must not stage a dense matrix")

        monkeypatch.setattr(TileMatrix, "from_dense", classmethod(boom))
        builder = KernelBuilder(gamma=0.03, tile_size=16, workers=1)
        result = builder.build_training(genotypes)
        assert isinstance(result.kernel, TileMatrix)

    def test_adaptive_training_never_calls_from_dense(self, genotypes,
                                                      monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("streamed Build must not stage a dense matrix")

        monkeypatch.setattr(TileMatrix, "from_dense", classmethod(boom))
        rule = AdaptivePrecisionRule(candidates=candidates_for_gpu("A100"))
        builder = KernelBuilder(gamma=0.2, tile_size=16, adaptive_rule=rule,
                                workers=1)
        result = builder.build_training(genotypes)
        assert result.precision_map is not None

    def test_allocation_accounting_peak_at_most_one_tile_row(self, genotypes):
        n = genotypes.shape[0]
        tile_size = 16
        builder = KernelBuilder(gamma=0.03, tile_size=tile_size, workers=1)
        result = builder.build_training(genotypes)
        stats = result.stats
        assert isinstance(stats, BuildStats)
        assert stats.tile_tasks > 0
        # acceptance bound: peak dense temporary <= one tile row of K
        assert stats.max_dense_temp_elements <= tile_size * n
        # no dense staging array for the training kernel
        assert stats.dense_staging_elements == 0

    def test_cross_build_staging_is_the_output(self, genotypes):
        builder = KernelBuilder(gamma=0.03, tile_size=16, workers=1)
        result = builder.build_cross(genotypes[:24], genotypes[24:])
        assert result.stats.dense_staging_elements == 24 * (genotypes.shape[0] - 24)


class TestThreadParallelBuild:
    def test_threaded_training_identical_to_sequential(self, genotypes):
        sequential = KernelBuilder(gamma=0.03, tile_size=8, workers=1)
        threaded = KernelBuilder(gamma=0.03, tile_size=8, workers=4)
        k1 = sequential.build_training(genotypes)
        k4 = threaded.build_training(genotypes)
        np.testing.assert_array_equal(k1.to_dense(), k4.to_dense())
        assert k4.stats.workers == 4
        assert k1.flops == k4.flops
        assert k1.flops_by_precision == k4.flops_by_precision

    def test_threaded_adaptive_identical_to_sequential(self, genotypes):
        rule = AdaptivePrecisionRule(candidates=candidates_for_gpu("GH200"))
        sequential = KernelBuilder(gamma=0.2, tile_size=8, adaptive_rule=rule,
                                   workers=1)
        threaded = KernelBuilder(gamma=0.2, tile_size=8, adaptive_rule=rule,
                                 workers=4)
        r1 = sequential.build_training(genotypes)
        r4 = threaded.build_training(genotypes)
        np.testing.assert_array_equal(r1.to_dense(), r4.to_dense())
        assert r1.precision_map == r4.precision_map

    def test_threaded_cross_identical_to_sequential(self, genotypes):
        test, train = genotypes[:24], genotypes[24:]
        k1 = KernelBuilder(gamma=0.03, tile_size=8, workers=1).build_cross(
            test, train)
        k4 = KernelBuilder(gamma=0.03, tile_size=8, workers=4).build_cross(
            test, train)
        np.testing.assert_array_equal(k1.to_dense(), k4.to_dense())

    def test_threaded_with_confounders(self, genotypes, rng):
        confounders = rng.normal(size=(genotypes.shape[0], 3))
        k1 = KernelBuilder(gamma=0.03, tile_size=8, workers=1).build_training(
            genotypes, confounders)
        k4 = KernelBuilder(gamma=0.03, tile_size=8, workers=4).build_training(
            genotypes, confounders)
        np.testing.assert_array_equal(k1.to_dense(), k4.to_dense())

    def test_default_worker_resolution(self, genotypes):
        builder = KernelBuilder(gamma=0.03, tile_size=16)
        result = builder.build_training(genotypes)
        assert result.stats.workers >= 1


class TestStreamingContainer:
    def test_empty_plus_set_tile_roundtrip(self, rng):
        dense = rng.normal(size=(40, 40))
        sym = dense + dense.T
        tm = TileMatrix.empty(40, 40, 16, Precision.FP64, symmetric=True)
        layout = tm.layout
        for i, j in layout.iter_lower_tiles():
            rs, cs = layout.tile_slice(i, j)
            tm.set_tile(i, j, sym[rs, cs])
        np.testing.assert_array_equal(tm.to_dense(), sym)

    def test_fro_norm_without_dense(self, rng):
        dense = rng.normal(size=(30, 20))
        tm = TileMatrix.from_dense(dense, 8)
        assert tm.norm("fro") == pytest.approx(np.linalg.norm(dense))

    def test_symmetric_fro_norm_counts_mirrored_tiles(self, rng):
        a = rng.normal(size=(32, 32))
        sym = a + a.T
        tm = TileMatrix.from_dense(sym, 8, symmetric=True)
        assert tm.norm("fro") == pytest.approx(np.linalg.norm(sym))

    def test_empty_norm_is_zero(self):
        tm = TileMatrix.empty(16, 16, 8)
        assert tm.norm("fro") == 0.0


class TestBoundedInFlightRows:
    def test_row_payloads_released_after_consume(self, genotypes):
        """Consumed row blocks must not survive on their handles — the
        streamed Build's peak stays bounded, not O(n^2)."""
        from repro.runtime.runtime import Runtime
        from repro.runtime.task import AccessMode

        rt = Runtime(execution="threaded", workers=2)
        builder = KernelBuilder(gamma=0.03, tile_size=8, runtime=rt)
        builder.build_training(genotypes)
        # handles were released with the namespace...
        assert not [n for n in rt.handles if n.startswith("build")]
        # ...and the consume bodies dropped each row payload eagerly
        for task in rt.last_graph.tasks:
            if task.name == "build_row":
                for handle, mode in task.accesses:
                    if mode is AccessMode.WRITE:
                        assert handle.payload is None

    def test_row_tasks_throttled_by_consume_window(self, genotypes):
        """Late row tasks depend on earlier consume tasks, so at most
        ~4*workers row blocks can ever be in flight."""
        from repro.runtime.runtime import Runtime

        rt = Runtime(execution="threaded", workers=1)  # window = 4
        builder = KernelBuilder(gamma=0.03, tile_size=8, runtime=rt)
        builder.build_training(genotypes)  # 9 tile rows at n=72
        graph = rt.last_graph
        consumes = {t.tag: t for t in graph.tasks if t.name == "consume_row"}
        rows = {t.tag: t for t in graph.tasks if t.name == "build_row"}
        for bi, row_task in rows.items():
            if bi >= 4:
                assert consumes[bi - 4] in graph.predecessors(row_task)


class TestTrainOperandCache:
    """Shared train-side operand state of the serving micro-batches."""

    def test_cached_cross_rows_bitwise_identical(self, small_genotypes):
        train = small_genotypes[:80]
        tests = [small_genotypes[80:91], small_genotypes[91:120]]
        builder = KernelBuilder(gamma=0.05, tile_size=32)
        cache = builder.train_operands(train)
        for cohort in tests:
            fresh = [b.kernel for b in builder.iter_cross_rows(
                cohort, train, batch_rows=32)]
            cached = [b.kernel for b in builder.iter_cross_rows(
                cohort, train, batch_rows=32, train_cache=cache)]
            assert len(fresh) == len(cached)
            for a, b in zip(fresh, cached):
                assert np.array_equal(a, b)

    def test_cached_confounders_bitwise_identical(self, small_genotypes):
        rng = np.random.default_rng(3)
        train, test = small_genotypes[:80], small_genotypes[80:]
        c_train = rng.standard_normal((80, 3))
        c_test = rng.standard_normal((test.shape[0], 3))
        builder = KernelBuilder(gamma=0.05, tile_size=32)
        cache = builder.train_operands(train, c_train)
        fresh = next(builder.iter_cross_rows(test, train, c_test, c_train))
        cached = next(builder.iter_cross_rows(test, train, c_test, c_train,
                                              train_cache=cache))
        assert np.array_equal(fresh.kernel, cached.kernel)

    def test_foreign_panel_rejected(self, small_genotypes):
        train, other = small_genotypes[:60], small_genotypes[:60].copy()
        builder = KernelBuilder(gamma=0.05, tile_size=32)
        cache = builder.train_operands(train)
        with pytest.raises(ValueError, match="different training"):
            next(builder.iter_cross_rows(small_genotypes[60:], other,
                                         train_cache=cache))

    def test_foreign_precision_rejected(self, small_genotypes):
        train = small_genotypes[:60]
        cache = KernelBuilder(gamma=0.05, tile_size=32,
                              snp_precision="fp32").train_operands(train)
        builder = KernelBuilder(gamma=0.05, tile_size=32,
                                snp_precision="int8")
        with pytest.raises(ValueError, match="input\\s+precisions"):
            next(builder.iter_cross_rows(small_genotypes[60:], train,
                                         train_cache=cache))

    def test_symmetric_build_rejects_cache(self, small_genotypes):
        train = small_genotypes[:60]
        builder = KernelBuilder(gamma=0.05, tile_size=32)
        cache = builder.train_operands(train)
        with pytest.raises(ValueError, match="cross kernels"):
            builder._prepare_operands(train, train, None, None,
                                      symmetric=True, train_cache=cache)
