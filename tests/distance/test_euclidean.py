"""Tests for the GEMM-form squared Euclidean distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.euclidean import (
    distance_flop_count,
    squared_euclidean_direct,
    squared_euclidean_gemm,
    squared_norms,
)
from repro.precision.formats import Precision


class TestSquaredNorms:
    def test_integer_norms_exact(self):
        g = np.array([[0, 1, 2], [2, 2, 2]], dtype=np.int8)
        np.testing.assert_array_equal(squared_norms(g), [5, 12])

    def test_float_norms(self):
        x = np.array([[3.0, 4.0]])
        assert squared_norms(x, integer=False)[0] == pytest.approx(25.0)


class TestGemmTrick:
    def test_matches_direct_for_genotypes(self, small_genotypes):
        g = small_genotypes[:40]
        gemm_form = squared_euclidean_gemm(g, precision=Precision.INT8)
        direct = squared_euclidean_direct(g)
        np.testing.assert_array_equal(gemm_form, direct)

    def test_paper_three_patient_example(self):
        # the worked example of Sec. V-B1: three patients, two markers
        g = np.array([[1, 0], [2, 1], [0, 2]], dtype=np.int8)
        d = squared_euclidean_gemm(g)
        expected = np.array([
            [0, 2, 5],
            [2, 0, 5],
            [5, 5, 0],
        ], dtype=np.float64)
        np.testing.assert_array_equal(d, expected)

    def test_symmetry_and_zero_diagonal(self, small_genotypes):
        d = squared_euclidean_gemm(small_genotypes[:30])
        np.testing.assert_array_equal(d, d.T)
        np.testing.assert_array_equal(np.diag(d), 0.0)

    def test_cross_distances(self, small_genotypes):
        g1 = small_genotypes[:20]
        g2 = small_genotypes[20:35]
        d = squared_euclidean_gemm(g1, g2)
        np.testing.assert_array_equal(d, squared_euclidean_direct(g1, g2))
        assert d.shape == (20, 15)

    def test_snp_blocking_equivalent(self, small_genotypes):
        g = small_genotypes[:25]
        d1 = squared_euclidean_gemm(g, snp_block=7)
        d2 = squared_euclidean_gemm(g, snp_block=4096)
        np.testing.assert_array_equal(d1, d2)

    def test_fp32_path_for_real_data(self, rng):
        x = rng.normal(size=(20, 10))
        d = squared_euclidean_gemm(x, precision=Precision.FP32)
        np.testing.assert_allclose(d, squared_euclidean_direct(x), rtol=1e-4,
                                   atol=1e-4)

    def test_distances_non_negative(self, rng):
        x = rng.normal(size=(30, 8))
        d = squared_euclidean_gemm(x, precision=Precision.FP16)
        assert np.all(d >= 0)

    def test_mismatched_snp_dimension_raises(self, small_genotypes):
        with pytest.raises(ValueError):
            squared_euclidean_gemm(small_genotypes[:5, :10], small_genotypes[:5, :20])


class TestFlopCount:
    def test_symmetric_cheaper_than_general(self):
        sym = distance_flop_count(100, 100, 50, symmetric=True)
        gen = distance_flop_count(100, 100, 50, symmetric=False)
        assert sym < gen

    def test_scales_with_snps(self):
        assert distance_flop_count(10, 10, 200) > distance_flop_count(10, 10, 100)


class TestDistanceProperties:
    @given(st.integers(2, 25), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_gemm_equals_direct_for_any_genotype_matrix(self, n, ns):
        rng = np.random.default_rng(n * 100 + ns)
        g = rng.integers(0, 3, size=(n, ns)).astype(np.int8)
        np.testing.assert_array_equal(squared_euclidean_gemm(g),
                                      squared_euclidean_direct(g))

    @given(st.integers(2, 15), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_on_roots(self, n, ns):
        rng = np.random.default_rng(n * 31 + ns)
        g = rng.integers(0, 3, size=(n, ns)).astype(np.int8)
        d = np.sqrt(squared_euclidean_gemm(g))
        for i in range(min(n, 5)):
            for j in range(min(n, 5)):
                for k in range(min(n, 5)):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9
