"""Tests for the fused tile-wise Build phase."""

import numpy as np
import pytest

from repro.distance.build import BuildResult, KernelBuilder, build_kernel_matrix
from repro.distance.euclidean import squared_euclidean_gemm
from repro.distance.kernels import gaussian_kernel, ibs_kernel
from repro.precision.formats import Precision
from repro.tiles.adaptive import AdaptivePrecisionRule, candidates_for_gpu
from repro.tiles.matrix import TileMatrix


@pytest.fixture
def genotypes(small_genotypes):
    return small_genotypes[:60]


@pytest.fixture
def confounders(rng, genotypes):
    return rng.normal(size=(genotypes.shape[0], 3))


class TestTrainingBuild:
    def test_matches_reference_kernel(self, genotypes):
        builder = KernelBuilder(gamma=0.03, tile_size=16)
        result = builder.build_training(genotypes)
        expected = gaussian_kernel(squared_euclidean_gemm(genotypes), 0.03)
        np.testing.assert_allclose(result.to_dense(), expected, rtol=1e-6, atol=1e-6)

    def test_returns_symmetric_tile_matrix(self, genotypes):
        result = build_kernel_matrix(genotypes, gamma=0.02, tile_size=16)
        assert isinstance(result.kernel, TileMatrix)
        assert result.kernel.symmetric
        k = result.to_dense()
        np.testing.assert_allclose(k, k.T)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_confounders_included_in_distance(self, genotypes, confounders):
        builder = KernelBuilder(gamma=0.03, tile_size=16)
        with_conf = builder.build_training(genotypes, confounders).to_dense()
        without = builder.build_training(genotypes).to_dense()
        assert not np.allclose(with_conf, without)
        # confounder distances only decrease the kernel values off-diagonal
        off = ~np.eye(genotypes.shape[0], dtype=bool)
        assert np.all(with_conf[off] <= without[off] + 1e-12)

    def test_confounder_reference(self, genotypes, confounders):
        builder = KernelBuilder(gamma=0.03, tile_size=16)
        result = builder.build_training(genotypes, confounders)
        full = np.hstack([genotypes.astype(np.float64), confounders])
        expected = gaussian_kernel(squared_euclidean_gemm(full, precision="fp64"), 0.03)
        np.testing.assert_allclose(result.to_dense(), expected, rtol=1e-4, atol=1e-4)

    def test_adaptive_rule_sets_precision_map(self, genotypes):
        rule = AdaptivePrecisionRule(candidates=candidates_for_gpu("A100"))
        builder = KernelBuilder(gamma=0.2, tile_size=16, adaptive_rule=rule)
        result = builder.build_training(genotypes)
        assert result.precision_map is not None
        precisions = set(result.precision_map.values())
        assert Precision.FP32 in precisions  # diagonal tiles

    def test_flop_accounting(self, genotypes):
        result = build_kernel_matrix(genotypes, gamma=0.02, tile_size=16)
        n, ns = genotypes.shape
        assert result.flops == pytest.approx(2.0 * n * n * ns, rel=0.6)
        assert Precision.INT8 in result.flops_by_precision

    def test_ibs_kernel_type(self, genotypes):
        builder = KernelBuilder(kernel_type="ibs", tile_size=16)
        result = builder.build_training(genotypes)
        np.testing.assert_allclose(result.to_dense(), ibs_kernel(genotypes),
                                   atol=1e-12)

    def test_invalid_kernel_type(self):
        with pytest.raises(ValueError):
            KernelBuilder(kernel_type="polynomial")

    def test_invalid_tile_size(self):
        with pytest.raises(ValueError):
            KernelBuilder(tile_size=0)


class TestCrossBuild:
    def test_cross_kernel_matches_reference(self, genotypes):
        builder = KernelBuilder(gamma=0.03, tile_size=16)
        test = genotypes[:20]
        train = genotypes[20:]
        result = builder.build_cross(test, train)
        expected = gaussian_kernel(squared_euclidean_gemm(test, train), 0.03)
        np.testing.assert_allclose(result.to_dense(), expected, rtol=1e-6, atol=1e-6)
        assert result.to_dense().shape == (20, 40)

    def test_cross_with_confounders_requires_both(self, genotypes, confounders):
        builder = KernelBuilder(gamma=0.03, tile_size=16)
        with pytest.raises(ValueError):
            builder.build_cross(genotypes[:10], genotypes[10:],
                                confounders[:10], None)

    def test_mismatched_snps_raise(self, genotypes):
        builder = KernelBuilder(tile_size=16)
        with pytest.raises(ValueError):
            builder.build_cross(genotypes[:10, :20], genotypes[10:, :30])

    def test_result_dataclass(self, genotypes):
        builder = KernelBuilder(tile_size=16)
        result = builder.build_cross(genotypes[:10], genotypes[10:])
        assert isinstance(result, BuildResult)
        assert result.precision_map is None
