"""Tests for the Gaussian and IBS kernel functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.euclidean import squared_euclidean_gemm
from repro.distance.kernels import (
    gaussian_kernel,
    gaussian_kernel_pairwise,
    ibs_kernel,
    ibs_kernel_gemm,
    kernel_from_distance,
)


class TestGaussian:
    def test_unit_diagonal(self, small_genotypes):
        d = squared_euclidean_gemm(small_genotypes[:20])
        k = gaussian_kernel(d, gamma=0.05)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_values_in_unit_interval(self, small_genotypes):
        d = squared_euclidean_gemm(small_genotypes[:20])
        k = gaussian_kernel(d, gamma=0.05)
        assert np.all(k > 0) and np.all(k <= 1)

    def test_gamma_zero_gives_all_ones(self):
        k = gaussian_kernel(np.array([[0.0, 5.0], [5.0, 0.0]]), gamma=0.0)
        np.testing.assert_array_equal(k, 1.0)

    def test_larger_gamma_smaller_offdiagonal(self, small_genotypes):
        d = squared_euclidean_gemm(small_genotypes[:20])
        k1 = gaussian_kernel(d, gamma=0.01)
        k2 = gaussian_kernel(d, gamma=0.1)
        off = ~np.eye(20, dtype=bool)
        assert np.all(k2[off] <= k1[off])

    def test_negative_gamma_raises(self):
        with pytest.raises(ValueError):
            gaussian_kernel(np.zeros((2, 2)), gamma=-1.0)

    def test_pairwise_end_to_end(self, small_genotypes):
        g = small_genotypes[:15]
        k = gaussian_kernel_pairwise(g, None, gamma=0.02)
        expected = np.exp(-0.02 * squared_euclidean_gemm(g))
        np.testing.assert_allclose(k, expected)

    def test_positive_semidefinite(self, small_genotypes):
        g = small_genotypes[:30]
        k = gaussian_kernel_pairwise(g, None, gamma=0.03)
        eigenvalues = np.linalg.eigvalsh(k)
        assert eigenvalues.min() > -1e-8

    def test_kernel_from_distance_dispatch(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_allclose(kernel_from_distance(d, "gaussian", 1.0),
                                   np.exp(-d))
        with pytest.raises(ValueError):
            kernel_from_distance(d, "ibs")


class TestIBS:
    def test_diagonal_is_one(self, small_genotypes):
        k = ibs_kernel(small_genotypes[:15])
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_range(self, small_genotypes):
        k = ibs_kernel(small_genotypes[:15])
        assert np.all(k >= 0) and np.all(k <= 1)

    def test_hand_computed_example(self):
        g1 = np.array([[0, 1, 2]])
        g2 = np.array([[2, 1, 2]])
        # shared alleles per SNP: 0, 2, 2 -> 4 of 6
        k = ibs_kernel(g1, g2)
        assert k[0, 0] == pytest.approx(4.0 / 6.0)

    def test_identical_individuals(self):
        g = np.array([[0, 1, 2, 1]])
        assert ibs_kernel(g, g)[0, 0] == 1.0

    def test_opposite_homozygotes(self):
        g1 = np.array([[0, 0]])
        g2 = np.array([[2, 2]])
        assert ibs_kernel(g1, g2)[0, 0] == 0.0

    def test_gemm_form_matches_direct(self, small_genotypes):
        g = small_genotypes[:25]
        np.testing.assert_allclose(ibs_kernel_gemm(g), ibs_kernel(g), atol=1e-12)

    def test_gemm_form_cross(self, small_genotypes):
        g1 = small_genotypes[:10]
        g2 = small_genotypes[10:22]
        np.testing.assert_allclose(ibs_kernel_gemm(g1, g2), ibs_kernel(g1, g2),
                                   atol=1e-12)

    def test_empty_snps_raises(self):
        with pytest.raises(ValueError):
            ibs_kernel(np.zeros((3, 0)))

    def test_mismatched_dimensions_raise(self):
        with pytest.raises(ValueError):
            ibs_kernel(np.zeros((2, 3)), np.zeros((2, 4)))


class TestKernelProperties:
    @given(st.integers(2, 15), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_ibs_symmetry(self, n, ns):
        rng = np.random.default_rng(n * 7 + ns)
        g = rng.integers(0, 3, size=(n, ns))
        k = ibs_kernel(g)
        np.testing.assert_allclose(k, k.T)

    @given(st.floats(min_value=0.001, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_gaussian_monotone_in_distance(self, gamma):
        d = np.array([[0.0, 1.0, 10.0]])
        k = gaussian_kernel(d, gamma)
        assert k[0, 0] >= k[0, 1] >= k[0, 2]
