"""Unit tests of the deterministic fault-injection framework.

The whole chaos methodology rests on two properties pinned here: fault
schedules are *deterministic* (same plan + same workload = same
faults), and plans are *scoped* (installed plans shadow the
``REPRO_FAULTS`` environment, and leave no residue).
"""

import pytest

from repro.resilience import (
    DeadlineExceededError,
    FaultPlan,
    FaultSite,
    InjectedFault,
    InjectedIOError,
    RetryPolicy,
    ServiceOverloadedError,
    StoreCorruptionError,
    TaskFailure,
    TaskGroupError,
    TaskTimeoutError,
    is_transient,
    resolve_retry_policy,
)
from repro.resilience.faults import (
    FAULTS_ENV,
    SITE_SEGMENT_READ,
    SITE_TASK_BODY,
    active_plan,
    clear_plan,
    fault_plan,
    install_plan,
    no_faults,
    parse_faults,
)
from repro.resilience.retry import RETRIES_ENV


@pytest.fixture(autouse=True)
def _clean_plan_state(monkeypatch):
    """Every test starts with no installed plan and no env plan."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    clear_plan()
    yield
    clear_plan()


class TestFaultSite:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            FaultSite(site="")
        with pytest.raises(ValueError, match="kind"):
            FaultSite(site=SITE_TASK_BODY, kind="explode")
        with pytest.raises(ValueError, match="every"):
            FaultSite(site=SITE_TASK_BODY, every=0)
        with pytest.raises(ValueError, match="rate"):
            FaultSite(site=SITE_TASK_BODY, rate=1.5)

    def test_modular_schedule(self):
        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, every=3, after=1)])
        hits = [plan.fire(SITE_TASK_BODY) is not None for _ in range(10)]
        # 1-based occurrences: fires when n > 1 and (n - 1) % 3 == 0
        assert hits == [False, False, False, True, False, False, True,
                        False, False, True]

    def test_times_caps_firings(self):
        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, every=1, times=2)])
        fired = sum(plan.fire(SITE_TASK_BODY) is not None for _ in range(10))
        assert fired == 2
        assert plan.fired == 2
        assert plan.occurrences(SITE_TASK_BODY) == 10

    def test_match_filters_by_key(self):
        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, match="potrf")])
        assert plan.fire(SITE_TASK_BODY, "gemm#3") is None
        assert plan.fire(SITE_TASK_BODY, "potrf#0") is not None
        # non-matching keys do not advance the spec's counter
        assert plan.occurrences(SITE_TASK_BODY) == 1

    def test_rate_schedule_is_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan(
                [FaultSite(site=SITE_TASK_BODY, rate=0.3)], seed=seed)
            return [plan.fire(SITE_TASK_BODY) is not None for _ in range(64)]

        a, b = firing_pattern(7), firing_pattern(7)
        assert a == b            # same seed, same schedule
        assert any(a) and not all(a)
        assert firing_pattern(8) != a  # the seed matters

    def test_first_matching_spec_wins_but_all_count(self):
        plan = FaultPlan([
            FaultSite(site=SITE_TASK_BODY, kind="raise", every=2),
            FaultSite(site=SITE_TASK_BODY, kind="oserror", every=2),
        ])
        with pytest.raises(InjectedFault):
            for _ in range(2):
                plan.inject(SITE_TASK_BODY)
        # both specs saw both occurrences; only the first fired
        assert plan.fired_for(SITE_TASK_BODY) == 1

    def test_inject_kinds(self):
        plan = FaultPlan([FaultSite(site="io", kind="oserror")])
        with pytest.raises(InjectedIOError):
            plan.inject("io")
        plan = FaultPlan([FaultSite(site="x", kind="raise", transient=False)])
        with pytest.raises(InjectedFault) as err:
            plan.inject("x", key="k1")
        assert err.value.transient is False
        assert err.value.site == "x"
        assert err.value.key == "k1"
        # stalls sleep instead of raising
        plan = FaultPlan([FaultSite(site="s", kind="stall", delay_s=0.0)])
        plan.inject("s")
        assert plan.fired == 1

    def test_corrupt_flips_exactly_one_byte(self):
        plan = FaultPlan([FaultSite(site="c", kind="corrupt")], seed=3)
        data = bytes(range(64))
        out = plan.corrupt("c", data)
        assert len(out) == len(data)
        diff = [i for i in range(64) if out[i] != data[i]]
        assert len(diff) == 1
        assert out[diff[0]] == data[diff[0]] ^ 0xFF
        # a non-firing occurrence returns the identical object
        plan = FaultPlan([FaultSite(site="c", kind="corrupt", after=10)])
        assert plan.corrupt("c", data) == data


class TestParseGrammar:
    def test_full_grammar(self):
        plan = parse_faults(
            "seed=42;task-body:raise:every=97:transient=0;"
            "segment-read:oserror:times=2:after=1;"
            "corrupt-read:corrupt:match=seg-00001;"
            "worker-stall:stall:delay=0.01;"
            "task-body:raise:rate=0.125")
        assert plan.seed == 42
        assert len(plan.sites) == 5
        assert plan.sites[0].transient is False
        assert plan.sites[0].every == 97
        assert plan.sites[1].kind == "oserror"
        assert plan.sites[1].times == 2
        assert plan.sites[1].after == 1
        assert plan.sites[2].match == "seg-00001"
        assert plan.sites[3].delay_s == 0.01
        assert plan.sites[4].rate == 0.125

    def test_kind_defaults_to_raise(self):
        plan = parse_faults("task-body")
        assert plan.sites[0].kind == "raise"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_faults("task-body:raise:every")
        with pytest.raises(ValueError, match="unknown"):
            parse_faults("task-body:raise:bogus=1")
        with pytest.raises(ValueError, match="kind"):
            parse_faults("task-body:explode")


class TestPlanResolution:
    def test_no_plan_by_default(self):
        assert active_plan() is None

    def test_env_plan_parsed_and_counters_persist(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed=1;task-body:raise:every=2")
        plan = active_plan()
        assert plan is not None and plan.seed == 1
        plan.fire(SITE_TASK_BODY)
        # same env value -> the *same* plan object (counters survive)
        assert active_plan() is plan
        assert active_plan().occurrences(SITE_TASK_BODY) == 1
        # a changed value re-parses
        monkeypatch.setenv(FAULTS_ENV, "seed=2;task-body:raise")
        assert active_plan() is not plan
        assert active_plan().seed == 2

    def test_installed_plan_shadows_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "task-body:raise")
        mine = FaultPlan([FaultSite(site=SITE_SEGMENT_READ)])
        install_plan(mine)
        assert active_plan() is mine
        clear_plan()
        assert active_plan() is not None  # env applies again

    def test_fault_plan_scope_restores_previous(self):
        outer = FaultPlan([FaultSite(site=SITE_TASK_BODY)])
        install_plan(outer)
        inner = FaultPlan([FaultSite(site=SITE_SEGMENT_READ)])
        with fault_plan(inner) as plan:
            assert plan is inner and active_plan() is inner
        assert active_plan() is outer

    def test_no_faults_disables_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "task-body:raise")
        with no_faults():
            assert active_plan() is None
        assert active_plan() is not None


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_delay_capped_exponential_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.04, jitter=0.5)
        delays = [policy.delay(a, "gemm#7") for a in range(6)]
        assert delays == [policy.delay(a, "gemm#7") for a in range(6)]
        for a, d in enumerate(delays):
            raw = min(0.04, 0.01 * 2 ** a)
            assert 0.5 * raw <= d <= raw
        # different keys decorrelate (no lockstep retry bursts)
        assert policy.delay(0, "gemm#7") != policy.delay(0, "syrk#3")

    def test_retryable_is_transience(self):
        policy = RetryPolicy()
        assert policy.retryable(InjectedFault("s"))
        assert policy.retryable(OSError("disk hiccup"))
        assert not policy.retryable(InjectedFault("s", transient=False))
        assert not policy.retryable(np_linalg_error())
        assert not policy.retryable(
            StoreCorruptionError("m", (0, 0), None, "p", "bad crc"))
        assert not policy.retryable(TaskTimeoutError("t", 1, None, 1.0, 2.0))

    def test_resolution_order(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        assert resolve_retry_policy(3).max_retries == 3   # explicit wins
        assert resolve_retry_policy(None).max_retries == 5  # env
        monkeypatch.delenv(RETRIES_ENV)
        assert resolve_retry_policy(None) is None          # fail-fast
        assert resolve_retry_policy(0).max_retries == 0


def np_linalg_error():
    import numpy as np
    return np.linalg.LinAlgError("not positive definite")


class TestErrorTaxonomy:
    def test_is_transient_taxonomy(self):
        assert is_transient(InjectedIOError("segment-read"))
        assert is_transient(OSError("EIO"))
        assert not is_transient(ValueError("shape"))
        assert not is_transient(
            DeadlineExceededError(0.1, 0.2))  # TimeoutError, not OSError
        assert not is_transient(ServiceOverloadedError(8, 8))

    def test_task_group_error_reports_every_failure(self):
        class T:
            def __init__(self, name, uid):
                self.name, self.uid, self.tag = name, uid, (name, uid)

        failures = [TaskFailure(T("potrf", 1), np_linalg_error(), retries=2),
                    TaskFailure(T("gemm", 2), InjectedFault("task-body"))]
        err = TaskGroupError(failures, completed=(T("syrk", 0),),
                             unfinished=(T("potrf", 1), T("gemm", 2),
                                         T("trsm", 3)))
        msg = str(err)
        assert "2 of 4 task(s) failed" in msg
        assert "(1 completed, 3 unfinished)" in msg
        assert "'potrf'#1" in msg and "after 2 retries" in msg
        assert "'gemm'#2" in msg
        assert err.__cause__ is failures[0].error
        assert not err.matches(np_linalg_error().__class__)  # mixed types
        assert err.matches(Exception)
        assert not err.transient  # LinAlgError is permanent

    def test_task_group_error_transient_aggregate(self):
        class T:
            name, uid, tag = "gemm", 7, None

        err = TaskGroupError([TaskFailure(T(), InjectedFault("x")),
                              TaskFailure(T(), InjectedIOError("y"))],
                             unfinished=(T(), T()))
        assert err.transient
        assert is_transient(err)

    def test_task_group_error_caps_listing(self):
        class T:
            def __init__(self, i):
                self.name, self.uid, self.tag = "t", i, None

        failures = [TaskFailure(T(i), ValueError(str(i))) for i in range(12)]
        msg = str(TaskGroupError(failures, unfinished=[T(i) for i in range(12)]))
        assert "... and 4 more" in msg

    def test_store_corruption_error_names_the_tile(self):
        err = StoreCorruptionError(
            matrix="store binding 0 (4x4 matrix)", coords=(2, 1),
            precision=None, path="/tmp/seg-00000.bin",
            reason="checksum mismatch")
        assert "(2, 1)" in str(err)
        assert "seg-00000.bin" in str(err)
        assert "checksum mismatch" in str(err)
