"""Fault-tolerant runtime semantics: retry, aggregate failure, resume.

Pins the scheduler-level contract of ISSUE 6: transient faults are
retried with bounded backoff and full accounting; permanent faults
surface *all* failed tasks as one :class:`TaskGroupError`; a failed
``run()`` leaves completed tasks done and a follow-up ``run()``
re-drains only the unfinished subgraph.
"""

import time

import numpy as np
import pytest

from repro.resilience import (
    FaultPlan,
    FaultSite,
    InjectedFault,
    RetryPolicy,
    TaskGroupError,
    TaskTimeoutError,
)
from repro.resilience.faults import (
    SITE_TASK_BODY,
    SITE_WORKER_STALL,
    clear_plan,
    fault_plan,
)
from repro.runtime.runtime import Runtime
from repro.runtime.task import AccessMode

EXECUTIONS = ("serial", "threaded")


@pytest.fixture(autouse=True)
def _clean_plan_state(monkeypatch):
    """Isolate from any suite-wide chaos env (the tier1-chaos CI job)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    clear_plan()
    yield
    clear_plan()


def transient_plan(**site_kwargs):
    return FaultPlan([FaultSite(site=SITE_TASK_BODY, **site_kwargs)], seed=1)


class TestRetry:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_transient_fault_retried_to_success(self, execution):
        rt = Runtime(execution=execution, workers=2, task_retries=2)
        a = rt.register_data("a", payload=np.array([1.0]))
        for _ in range(8):
            rt.insert_task("double", (a, AccessMode.READWRITE),
                           body=lambda x: x * 2, flops=1)
        # occurrences advance per *attempt*: faults land on the 3rd and
        # 5th task (their retries consume occurrences 4 and 7)
        with fault_plan(transient_plan(every=3, times=2)) as plan:
            result = rt.run()
        np.testing.assert_array_equal(a.payload, [256.0])
        assert plan.fired == 2
        assert result.trace.total_retries == 2
        assert sum(e.retries for e in result.trace.events) == 2

    def test_retry_accounting_lands_on_the_retried_task(self):
        rt = Runtime(execution="serial", task_retries=1)
        a = rt.register_data("a", payload=np.array([0.0]))
        rt.insert_task("ok", (a, AccessMode.READWRITE),
                       body=lambda x: x + 1, flops=1)
        rt.insert_task("flaky", (a, AccessMode.READWRITE),
                       body=lambda x: x + 1, flops=1)
        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, match="flaky",
                                    times=1)])
        with fault_plan(plan):
            result = rt.run()
        retries = {e.task_name: e.retries for e in result.trace.events}
        assert retries == {"ok": 0, "flaky": 1}

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_retries_exhausted_surface_aggregate(self, execution):
        rt = Runtime(execution=execution, workers=2, task_retries=1)
        a = rt.register_data("a", payload=np.array([1.0]))
        rt.insert_task("doomed", (a, AccessMode.READWRITE),
                       body=lambda x: x, flops=1)
        with fault_plan(transient_plan(every=1)):  # fires on every attempt
            with pytest.raises(TaskGroupError) as err:
                rt.run()
        (failure,) = err.value.failures
        assert failure.task.name == "doomed"
        assert failure.retries == 1  # the policy's budget was spent
        assert isinstance(failure.error, InjectedFault)
        assert err.value.transient

    def test_permanent_fault_not_retried(self):
        rt = Runtime(execution="serial", task_retries=5)
        a = rt.register_data("a", payload=np.array([1.0]))
        rt.insert_task("t", (a, AccessMode.READWRITE), body=lambda x: x,
                       flops=1)
        plan = transient_plan(every=1, transient=False)
        with fault_plan(plan):
            with pytest.raises(TaskGroupError) as err:
                rt.run()
        assert plan.fired == 1  # one attempt, no retries burned
        assert err.value.failures[0].retries == 0
        assert not err.value.transient

    def test_retry_policy_object_wins_over_task_retries(self):
        rt = Runtime(execution="serial", task_retries=0,
                     retry_policy=RetryPolicy(max_retries=3, base_delay_s=0.0))
        a = rt.register_data("a", payload=np.array([1.0]))
        rt.insert_task("t", (a, AccessMode.READWRITE),
                       body=lambda x: x + 1, flops=1)
        with fault_plan(transient_plan(times=3)):
            result = rt.run()
        assert result.trace.total_retries == 3

    def test_default_is_fail_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        rt = Runtime(execution="serial")
        a = rt.register_data("a", payload=np.array([1.0]))
        rt.insert_task("t", (a, AccessMode.READWRITE), body=lambda x: x,
                       flops=1)
        with fault_plan(transient_plan(times=1)):
            with pytest.raises(TaskGroupError):
                rt.run()


class TestAggregateFailures:
    @pytest.mark.parametrize("execution", EXECUTIONS + ("simulated",))
    def test_every_independent_failure_reported(self, execution):
        """The drain keeps going past a failure and reports all of them."""
        rt = Runtime(execution=execution, workers=4)
        handles = [rt.register_data(f"h{i}", payload=np.array([float(i)]))
                   for i in range(6)]
        for i, h in enumerate(handles):
            rt.insert_task(f"task{i}", (h, AccessMode.READWRITE),
                           body=lambda x: x + 1, flops=1)
        plan = FaultPlan([
            FaultSite(site=SITE_TASK_BODY, match="task1", transient=False),
            FaultSite(site=SITE_TASK_BODY, match="task4", transient=False),
        ])
        with fault_plan(plan):
            with pytest.raises(TaskGroupError) as err:
                rt.run()
        assert sorted(f.task.name for f in err.value.failures) == \
            ["task1", "task4"]
        assert len(err.value.completed) == 4
        # the four independent tasks still ran
        for i in (0, 2, 3, 5):
            np.testing.assert_array_equal(handles[i].payload, [i + 1.0])

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_successors_of_a_failed_task_do_not_run(self, execution):
        rt = Runtime(execution=execution, workers=2)
        a = rt.register_data("a", payload=np.array([1.0]))
        rt.insert_task("parent", (a, AccessMode.READWRITE),
                       body=lambda x: x, flops=1)
        rt.insert_task("child", (a, AccessMode.READWRITE),
                       body=lambda x: x * 100, flops=1)
        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, match="parent",
                                    transient=False)])
        with fault_plan(plan):
            with pytest.raises(TaskGroupError) as err:
                rt.run()
        assert [f.task.name for f in err.value.failures] == ["parent"]
        assert [t.name for t in err.value.unfinished] == ["parent", "child"]
        np.testing.assert_array_equal(a.payload, [1.0])  # child never ran


class TestResume:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_followup_run_drains_only_the_unfinished_subgraph(self, execution):
        rt = Runtime(execution=execution, workers=2)
        a = rt.register_data("a", payload=np.array([1.0]))
        b = rt.register_data("b", payload=np.array([10.0]))
        ran: list[str] = []

        def body_of(name, fn):
            def body(*payloads):
                ran.append(name)
                return fn(*payloads)
            return body

        # chain on a (a1 -> a2 -> a3), independent task on b
        rt.insert_task("a1", (a, AccessMode.READWRITE),
                       body=body_of("a1", lambda x: x + 1), flops=1)
        rt.insert_task("a2", (a, AccessMode.READWRITE),
                       body=body_of("a2", lambda x: x * 2), flops=1)
        rt.insert_task("a3", (a, AccessMode.READWRITE),
                       body=body_of("a3", lambda x: x + 3), flops=1)
        rt.insert_task("bside", (b, AccessMode.READWRITE),
                       body=body_of("bside", lambda x: x * 10), flops=1)

        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, match="a2",
                                    transient=False, times=1)])
        with fault_plan(plan):
            with pytest.raises(TaskGroupError) as err:
                rt.run()

        assert {t.name for t in err.value.completed} >= {"a1"}
        assert [t.name for t in err.value.unfinished][:2] == ["a2", "a3"]
        # the runtime's graph now holds exactly the unfinished subgraph
        assert rt.num_tasks() == len(err.value.unfinished)

        before = list(ran)
        result = rt.run()  # plan exhausted (times=1): drains to completion
        assert [n for n in ran[len(before):]] == ["a2", "a3"]  # no re-runs
        np.testing.assert_array_equal(a.payload, [7.0])   # (1+1)*2+3
        np.testing.assert_array_equal(b.payload, [100.0])
        assert result.trace.num_tasks == len(before) and rt.num_tasks() == 0

    def test_resumed_result_matches_unfailed_run(self):
        """Failure + resume converges to the same payloads as no failure."""
        def build(rt):
            a = rt.register_data("a", payload=np.arange(4.0))
            rt.insert_task("scale", (a, AccessMode.READWRITE),
                           body=lambda x: x * 3, flops=1)
            rt.insert_task("shift", (a, AccessMode.READWRITE),
                           body=lambda x: x - 1, flops=1)
            return a

        clean_rt = Runtime(execution="serial")
        expected = build(clean_rt)
        clean_rt.run()

        rt = Runtime(execution="serial")
        a = build(rt)
        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, match="shift",
                                    transient=False, times=1)])
        with fault_plan(plan):
            with pytest.raises(TaskGroupError):
                rt.run()
        rt.run()
        np.testing.assert_array_equal(a.payload, expected.payload)


class TestWatchdog:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_overdue_task_fails_typed_without_hanging(self, execution):
        rt = Runtime(execution=execution, workers=2, task_timeout_s=0.05)
        a = rt.register_data("a", payload=np.array([1.0]))
        b = rt.register_data("b", payload=np.array([2.0]))

        def slow(x):
            time.sleep(0.4)
            return x

        rt.insert_task("stuck", (a, AccessMode.READWRITE), body=slow, flops=1)
        rt.insert_task("fine", (b, AccessMode.READWRITE),
                       body=lambda x: x + 1, flops=1)
        t0 = time.perf_counter()
        with pytest.raises(TaskGroupError) as err:
            rt.run()
        assert time.perf_counter() - t0 < 5.0  # no hang
        assert err.value.matches(TaskTimeoutError)
        (failure,) = err.value.failures
        assert failure.task.name == "stuck"
        assert failure.error.timeout_s == pytest.approx(0.05)
        assert failure.error.elapsed_s >= 0.05
        np.testing.assert_array_equal(b.payload, [3.0])

    def test_worker_stall_under_timeout_is_harmless(self):
        rt = Runtime(execution="threaded", workers=2, task_timeout_s=5.0)
        a = rt.register_data("a", payload=np.array([1.0]))
        rt.insert_task("t", (a, AccessMode.READWRITE),
                       body=lambda x: x + 1, flops=1)
        plan = FaultPlan([FaultSite(site=SITE_WORKER_STALL, kind="stall",
                                    delay_s=0.02)])
        with fault_plan(plan):
            rt.run()
        assert plan.fired == 1
        np.testing.assert_array_equal(a.payload, [2.0])
