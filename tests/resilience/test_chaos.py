"""End-to-end chaos contract of ISSUE 6.

Every transient-fault run is **bitwise identical** to the fault-free
run — across precision plans, worker counts and store budgets — and
permanent faults surface as typed aggregates with task context rather
than hangs or silent corruption.  Fault coverage is asserted through
the plan's counters (``fired_for``), never through timing.
"""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.session import KRRSession
from repro.resilience import FaultPlan, FaultSite, TaskGroupError
from repro.resilience.faults import (
    SITE_SEGMENT_READ,
    SITE_TASK_BODY,
    clear_plan,
    fault_plan,
)

N_TRAIN, N_TEST, NS, TILE = 128, 48, 32, 32
#: Four fp64 tiles: forces spill/reload traffic during fit and predict.
BUDGET = 4 * TILE * TILE * 8

PLANS = {
    "fp64": PrecisionPlan.fp64,
    "fp32": PrecisionPlan.fp32,
    "adaptive-fp16": PrecisionPlan.adaptive_fp16,
    "adaptive-fp8": PrecisionPlan.adaptive_fp8,
}


@pytest.fixture(autouse=True)
def _clean_plan_state(monkeypatch):
    """Isolate from any suite-wide chaos env (the tier1-chaos CI job)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    clear_plan()
    yield
    clear_plan()


@pytest.fixture(scope="module")
def cohort():
    rng = np.random.default_rng(61)
    g_train = rng.integers(0, 3, size=(N_TRAIN, NS)).astype(np.int8)
    y = rng.standard_normal((N_TRAIN, 2))
    g_test = rng.integers(0, 3, size=(N_TEST, NS)).astype(np.int8)
    return g_train, y, g_test


def fit_predict(cohort, plan_name, workers=1, budget=None,
                task_retries=None):
    g_train, y, g_test = cohort
    config = KRRConfig(tile_size=TILE,
                       precision_plan=PLANS[plan_name](),
                       workers=workers, store_budget_bytes=budget,
                       task_retries=task_retries)
    session = KRRSession(config)
    session.fit(g_train, y)
    predictions = session.predict(g_test)
    store = getattr(session, "store", None)
    stats = store.stats.snapshot() if store is not None else None
    return predictions, stats


@pytest.fixture(scope="module")
def baselines(cohort):
    """Fault-free reference predictions, one per precision plan."""
    return {name: fit_predict(cohort, name)[0] for name in PLANS}


def chaos_plan() -> FaultPlan:
    """Transient faults at the runtime and store layers.

    Deterministic counter schedules; the store's single-retry read
    absorbs every ``segment-read`` fault (``every=4`` cannot fire on
    two consecutive occurrences), and ``task_retries`` absorbs the
    ``task-body`` ones.
    """
    return FaultPlan([
        FaultSite(site=SITE_TASK_BODY, kind="raise", every=7),
        FaultSite(site=SITE_SEGMENT_READ, kind="oserror", every=4),
    ], seed=42)


class TestBitwiseUnderTransientFaults:
    @pytest.mark.parametrize("plan_name", list(PLANS))
    @pytest.mark.parametrize("workers", [1, 8])
    @pytest.mark.parametrize("budget", [None, BUDGET],
                             ids=["resident", "budgeted"])
    def test_chaos_run_bitwise_identical(self, cohort, baselines,
                                         plan_name, workers, budget):
        plan = chaos_plan()
        with fault_plan(plan):
            predictions, stats = fit_predict(
                cohort, plan_name, workers=workers, budget=budget,
                task_retries=3)
        assert plan.fired_for(SITE_TASK_BODY) >= 1, \
            "the chaos run must actually have injected runtime faults"
        if budget is not None:
            assert plan.fired_for(SITE_SEGMENT_READ) >= 1, \
                "a budgeted run must exercise faulted segment reads"
            assert stats.io_retries >= 1  # absorbed, not surfaced
        np.testing.assert_array_equal(predictions, baselines[plan_name])


class TestPerPhaseCoverage:
    def test_each_pipeline_phase_survives_a_fault(self, cohort, baselines):
        """>=1 transient fault in Build, Factor, Solve, Predict and the
        store-reload path — one run, still bitwise identical."""
        g_train, y, g_test = cohort
        config = KRRConfig(tile_size=TILE,
                           precision_plan=PrecisionPlan.adaptive_fp16(),
                           workers=4, store_budget_bytes=BUDGET,
                           task_retries=2)
        session = KRRSession(config)
        fit_sites = [
            FaultSite(site=SITE_TASK_BODY, match="build_row", times=1),
            FaultSite(site=SITE_TASK_BODY, match="potrf", times=1),
            FaultSite(site=SITE_TASK_BODY, match="solve_", times=1),
            FaultSite(site=SITE_SEGMENT_READ, kind="oserror", every=5),
        ]
        fit_plan = FaultPlan(fit_sites, seed=7)
        with fault_plan(fit_plan):
            session.fit(g_train, y)
        for spec, fired in zip(fit_plan.sites, fit_plan._fired):
            assert fired >= 1, f"no fault injected for {spec}"

        predict_plan = FaultPlan(
            [FaultSite(site=SITE_TASK_BODY, match="gemm", times=1)])
        with fault_plan(predict_plan):
            predictions = session.predict(g_test)
        assert predict_plan.fired == 1
        np.testing.assert_array_equal(predictions, baselines["adaptive-fp16"])


class TestPermanentFaults:
    def test_typed_aggregate_with_task_context(self, cohort):
        g_train, y, _ = cohort
        session = KRRSession(KRRConfig(tile_size=TILE, workers=2,
                                       task_retries=3))
        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, match="potrf",
                                    transient=False, times=1)])
        with fault_plan(plan):
            with pytest.raises(TaskGroupError) as err:
                session.fit(g_train, y)
        assert any(f.task.name == "potrf" for f in err.value.failures)
        assert "potrf" in str(err.value)
        assert not err.value.transient

    def test_session_reusable_after_permanent_failure(self, cohort,
                                                      baselines):
        """A failed fit leaves the session runtime clean for a redo."""
        g_train, y, g_test = cohort
        session = KRRSession(KRRConfig(tile_size=TILE,
                                       precision_plan=PrecisionPlan.fp64(),
                                       workers=2))
        plan = FaultPlan([FaultSite(site=SITE_TASK_BODY, match="syrk",
                                    transient=False, times=1)])
        with fault_plan(plan):
            with pytest.raises(TaskGroupError):
                session.fit(g_train, y)
        session.fit(g_train, y)  # plan exhausted: the redo is fault-free
        predictions = session.predict(g_test)
        np.testing.assert_array_equal(predictions, baselines["fp64"])
