"""Tests for GPU/system specs, flop counts, and the scaling model."""

import numpy as np
import pytest

from repro.perfmodel.compare import regenie_comparison, system_comparison
from repro.perfmodel.flops import (
    associate_flops,
    associate_precision_fractions,
    build_flops,
    krr_flops,
    memory_bytes_kernel_matrix,
    predict_flops,
    rr_flops,
    solve_flops,
)
from repro.perfmodel.gpus import A100, GH200, GPU_REGISTRY, MI250X, V100, gpu
from repro.perfmodel.scaling import (
    MachineModel,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.perfmodel.systems import ALPS, SHAHEEN3_CPU_NODE_PEAK, SYSTEM_REGISTRY, system
from repro.precision.formats import Precision


class TestGPUSpecs:
    def test_registry_contains_paper_devices(self):
        assert set(GPU_REGISTRY) == {"V100", "A100", "MI250X", "GH200"}
        assert gpu("gh200") is GH200
        with pytest.raises(ValueError):
            gpu("B200")

    def test_peak_ordering_across_generations(self):
        assert GH200.peak_for(Precision.FP16) > A100.peak_for(Precision.FP16) > \
            V100.peak_for(Precision.FP16)

    def test_fp8_capability(self):
        assert GH200.fp8_capable
        assert not A100.fp8_capable
        # FP8 request on non-FP8 hardware falls back to the FP16 rate
        assert A100.sustained_associate_for(Precision.FP8_E4M3) == \
            A100.sustained_associate_for(Precision.FP16)

    def test_sustained_below_peak(self):
        for spec in GPU_REGISTRY.values():
            for precision, rate in spec.sustained_associate.items():
                assert rate <= spec.peak_for(precision)

    def test_peak_fallbacks(self):
        assert V100.peak_for(Precision.BF16) == V100.peak_for(Precision.FP16)
        assert GH200.peak_for(Precision.INT32) == GH200.peak_for(Precision.INT8)


class TestSystems:
    def test_registry(self):
        assert set(SYSTEM_REGISTRY) == {"SUMMIT", "LEONARDO", "FRONTIER", "ALPS"}
        assert system("alps") is ALPS
        with pytest.raises(ValueError):
            system("fugaku")

    def test_paper_scales(self):
        assert system("Summit").paper_gpus == 18_432
        assert system("Frontier").paper_gpus == 36_100
        assert system("Alps").paper_gpus == 8_100

    def test_nodes_for_gpus(self):
        assert ALPS.nodes_for_gpus(4096) == 1024
        assert ALPS.nodes_for_gpus(5) == 2

    def test_memory_aggregation(self):
        assert ALPS.memory_for_gpus(2) == 2 * ALPS.gpu.memory_capacity


class TestFlopCounts:
    def test_paper_complexities(self):
        # N_P^2 * N_S for Build, N_P^3/3 for Associate (Sec. VI-C)
        assert build_flops(1000, 500) == 1000 ** 2 * 500
        assert associate_flops(3000) == pytest.approx(3000 ** 3 / 3)

    def test_krr_total(self):
        total = krr_flops(1000, 500, n_phenotypes=2, n_test=100)
        assert total > build_flops(1000, 500) + associate_flops(1000)
        assert solve_flops(1000, 2) == 2 * 1000 ** 2 * 2
        assert predict_flops(100, 1000, 500, 2) > 0

    def test_rr_flops(self):
        assert rr_flops(1000, 200) > 200 ** 3 / 3

    def test_precision_fractions_gemm_dominates(self):
        fractions = associate_precision_fractions(100)
        assert fractions[Precision.FP16] > 0.9
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_precision_fractions_single_tile(self):
        fractions = associate_precision_fractions(1)
        assert fractions[Precision.FP32] == pytest.approx(1.0)

    def test_memory_footprint_mix(self):
        fp32_only = memory_bytes_kernel_matrix(10_000, {Precision.FP32: 1.0})
        mixed = memory_bytes_kernel_matrix(
            10_000, {Precision.FP32: 0.1, Precision.FP8_E4M3: 0.9})
        assert mixed < fp32_only / 2
        with pytest.raises(ValueError):
            memory_bytes_kernel_matrix(100, {})


class TestMachineModel:
    def test_lower_precision_is_faster(self):
        model = MachineModel(system="Alps")
        n = model.matrix_size_for_memory(4096)
        times = {low: model.associate_estimate(n, 4096, low_precision=low).time
                 for low in (Precision.FP32, Precision.FP16, Precision.FP8_E4M3)}
        assert times[Precision.FP8_E4M3] < times[Precision.FP16] < times[Precision.FP32]

    def test_fig10_speedup_ratios(self):
        """Fig. 10c: FP32/FP16 ~3.2x and FP32/FP8 ~4.8x over FP32 on Alps."""
        model = MachineModel(system="Alps")
        n = 12_255_232
        fp32 = model.associate_estimate(n, 4096, low_precision=Precision.FP32)
        fp16 = model.associate_estimate(n, 4096, low_precision=Precision.FP16)
        fp8 = model.associate_estimate(n, 4096, low_precision=Precision.FP8_E4M3)
        assert 2.5 < fp16.throughput / fp32.throughput < 4.0
        assert 3.8 < fp8.throughput / fp32.throughput < 5.5

    def test_weak_scaling_near_perfect(self):
        model = MachineModel(system="Alps")
        points = weak_scaling_series(model, [256, 1024, 4096], phase="associate",
                                     low_precision=Precision.FP16)
        assert all(p.efficiency > 0.75 for p in points)
        assert points[-1].throughput > points[0].throughput * 10

    def test_strong_scaling_efficiency_drops_faster_for_low_precision(self):
        model = MachineModel(system="Alps")
        n = model.matrix_size_for_memory(1024)
        eff = {}
        for low in (Precision.FP32, Precision.FP16, Precision.FP8_E4M3):
            pts = strong_scaling_series(model, [1024, 4096], n, low_precision=low)
            eff[low] = pts[-1].efficiency
        assert eff[Precision.FP32] >= eff[Precision.FP16] >= eff[Precision.FP8_E4M3]
        assert eff[Precision.FP8_E4M3] < 0.8

    def test_build_weak_scaling_speedup(self):
        """Fig. 7: ~12x speedup going from 256 to 4096 GPUs."""
        model = MachineModel(system="Alps")
        pts = weak_scaling_series(model, [256, 4096], phase="build", snp_ratio=1.0)
        speedup = pts[-1].throughput / pts[0].throughput
        assert 10.0 < speedup <= 16.0
        # >1 ExaOp/s of INT8 build throughput at 4096 GPUs
        assert pts[-1].throughput > 1.0e18

    def test_krr_estimate_composition(self):
        model = MachineModel(system="Alps")
        est = model.krr_estimate(1_000_000, 1_000_000, 1024)
        assert est["krr"].flops == pytest.approx(
            est["build"].flops + est["associate"].flops)
        assert est["krr"].time >= max(est["build"].time, est["associate"].time)

    def test_build_throughput_exceeds_associate(self):
        model = MachineModel(system="Alps")
        est = model.krr_estimate(4_000_000, 4_000_000, 4096,
                                 low_precision=Precision.FP8_E4M3)
        assert est["build"].throughput > est["associate"].throughput

    def test_matrix_size_for_memory_monotone(self):
        model = MachineModel(system="Leonardo")
        assert model.matrix_size_for_memory(4096) > model.matrix_size_for_memory(1024)
        with pytest.raises(ValueError):
            model.matrix_size_for_memory(16, fill=2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MachineModel(system="Alps", tile_size=0)
        with pytest.raises(ValueError):
            MachineModel(system="Alps", overlap=2.0)
        model = MachineModel(system="Alps")
        with pytest.raises(ValueError):
            model.associate_estimate(1000, 0)


class TestComparisons:
    def test_system_comparison_ordering(self):
        rows = {r.system: r for r in system_comparison()}
        assert set(rows) == {"Summit", "Leonardo", "Frontier", "Alps"}
        # Alps achieves the highest KRR throughput (Fig. 14e)
        assert rows["Alps"].krr_pflops == max(r.krr_pflops for r in rows.values())
        # headline: >1 ExaOp/s mixed-precision KRR on Alps
        assert rows["Alps"].krr_pflops > 1000.0

    def test_alps_beats_leonardo_by_large_factor(self):
        rows = {r.system: r for r in system_comparison()}
        assert rows["Alps"].associate_pflops > 2.0 * rows["Leonardo"].associate_pflops

    def test_regenie_five_orders_of_magnitude(self):
        comparison = regenie_comparison()
        assert 4.5 <= comparison.orders_of_magnitude <= 6.5
        assert comparison.regenie_throughput == SHAHEEN3_CPU_NODE_PEAK

    def test_regenie_with_explicit_throughput(self):
        comparison = regenie_comparison(krr_throughput=1.805e18)
        assert comparison.speedup == pytest.approx(1.805e18 / SHAHEEN3_CPU_NODE_PEAK)
