"""Tests for the tile-centric adaptive precision rule."""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.tiles.adaptive import (
    AdaptivePrecisionRule,
    PrecisionHeatmap,
    candidates_for_gpu,
    decide_tile_precisions,
    precision_heatmap,
)
from repro.tiles.matrix import TileMatrix


def _near_diagonal_matrix(n=64, tile=16, off_scale=1e-4, seed=0):
    """Diagonally dominant matrix: off-diagonal tiles have tiny norms."""
    rng = np.random.default_rng(seed)
    a = off_scale * rng.normal(size=(n, n))
    a = a + a.T
    np.fill_diagonal(a, 1.0 + rng.random(n))
    return a


class TestRule:
    def test_diagonal_kept_wide(self):
        rule = AdaptivePrecisionRule()
        assert rule.decide(1.0, 10.0, 4, is_diagonal=True) is Precision.FP32

    def test_zero_tile_gets_narrowest(self):
        rule = AdaptivePrecisionRule()
        narrowest = Precision.narrowest(*rule.candidates)
        assert rule.decide(0.0, 10.0, 4, is_diagonal=False) is narrowest

    def test_large_tile_never_dropped_below_working(self):
        rule = AdaptivePrecisionRule(accuracy=1e-8)
        chosen = rule.decide(10.0, 10.0, 4, is_diagonal=False)
        # a dominant tile under a tight threshold must stay at or above FP32
        assert chosen.rank >= Precision.FP32.rank

    def test_small_tile_can_drop(self):
        rule = AdaptivePrecisionRule(accuracy=1e-3)
        assert rule.decide(1e-6, 10.0, 4, is_diagonal=False) is Precision.FP16

    def test_tighter_accuracy_chooses_wider(self):
        loose = AdaptivePrecisionRule(accuracy=1e-2)
        tight = AdaptivePrecisionRule(accuracy=1e-9)
        norm, total = 0.01, 10.0
        assert loose.decide(norm, total, 4, False).rank <= \
            tight.decide(norm, total, 4, False).rank


class TestCandidates:
    def test_fp8_capable_gpus(self):
        assert candidates_for_gpu("GH200")[0] is Precision.FP8_E4M3
        assert candidates_for_gpu("h100")[0] is Precision.FP8_E4M3

    def test_fp16_floor_gpus(self):
        assert candidates_for_gpu("A100")[0] is Precision.FP16
        assert candidates_for_gpu("V100")[0] is Precision.FP16
        assert candidates_for_gpu("MI250X")[0] is Precision.FP16


class TestDecisions:
    def test_near_diagonal_matrix_gets_low_offdiag(self):
        a = _near_diagonal_matrix()
        decisions = decide_tile_precisions(a, AdaptivePrecisionRule(), tile_size=16)
        for (i, j), p in decisions.items():
            if i == j:
                assert p is Precision.FP32
            else:
                assert p is Precision.FP16

    def test_fp8_floor_used_when_available(self):
        a = _near_diagonal_matrix(off_scale=1e-5)
        rule = AdaptivePrecisionRule(candidates=candidates_for_gpu("GH200"))
        decisions = decide_tile_precisions(a, rule, tile_size=16)
        offdiag = [p for (i, j), p in decisions.items() if i != j]
        assert all(p is Precision.FP8_E4M3 for p in offdiag)

    def test_uniform_matrix_never_dropped_when_accuracy_tight(self, rng):
        a = rng.normal(size=(48, 48))
        a = a @ a.T + 48 * np.eye(48)
        rule = AdaptivePrecisionRule(accuracy=1e-9)
        decisions = decide_tile_precisions(a, rule, tile_size=16)
        # nothing may fall below the FP32 working precision at this threshold
        assert all(p.rank >= Precision.FP32.rank for p in decisions.values())

    def test_accepts_tile_matrix(self, rng):
        a = rng.normal(size=(32, 32))
        tm = TileMatrix.from_dense(a + a.T, tile_size=8)
        decisions = decide_tile_precisions(tm)
        assert len(decisions) == 16

    def test_dense_without_tile_size_raises(self):
        with pytest.raises(ValueError):
            decide_tile_precisions(np.eye(8))


class TestHeatmap:
    def test_fractions_sum_to_one(self):
        a = _near_diagonal_matrix()
        hm = precision_heatmap(a, tile_size=16)
        assert sum(hm.fractions.values()) == pytest.approx(1.0)
        assert sum(hm.counts.values()) == 16

    def test_heatmap_matches_paper_structure(self):
        a = _near_diagonal_matrix()
        hm = precision_heatmap(a, tile_size=16)
        # 4 diagonal FP32 tiles out of 16
        assert hm.fraction(Precision.FP32) == pytest.approx(0.25)
        assert hm.fraction(Precision.FP16) == pytest.approx(0.75)

    def test_render_is_grid_of_symbols(self):
        a = _near_diagonal_matrix()
        hm = precision_heatmap(a, tile_size=16)
        lines = hm.render().splitlines()
        assert len(lines) == 4
        assert all(len(line) == 4 for line in lines)
        assert lines[0][0] == "S"   # FP32 diagonal
        assert lines[0][1] == "h"   # FP16 off-diagonal

    def test_from_decisions(self):
        decisions = {(0, 0): Precision.FP32, (0, 1): Precision.FP16,
                     (1, 0): Precision.FP16, (1, 1): Precision.FP32}
        hm = PrecisionHeatmap.from_decisions(decisions, (2, 2))
        assert hm.counts[Precision.FP16] == 2
        assert hm.grid[1, 1] is Precision.FP32
