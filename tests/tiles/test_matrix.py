"""Tests for the TileMatrix container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.formats import Precision
from repro.tiles.matrix import TileMatrix


@pytest.fixture
def dense(rng):
    return rng.normal(size=(50, 30))


class TestConstruction:
    def test_from_dense_roundtrip_fp64(self, dense):
        tm = TileMatrix.from_dense(dense, tile_size=16)
        np.testing.assert_array_equal(tm.to_dense(), dense)
        assert tm.shape == dense.shape
        assert tm.grid_shape == (4, 2)

    def test_roundtrip_fp16_quantizes(self, dense):
        tm = TileMatrix.from_dense(dense, tile_size=16, precision=Precision.FP16)
        back = tm.to_dense()
        assert not np.array_equal(back, dense)
        np.testing.assert_allclose(back, dense, rtol=2 ** -10)

    def test_precision_callable(self, dense):
        tm = TileMatrix.from_dense(
            dense, tile_size=16,
            precision=lambda i, j: Precision.FP32 if i == j else Precision.FP16,
        )
        assert tm.tile_precision(0, 0) is Precision.FP32
        assert tm.tile_precision(1, 0) is Precision.FP16

    def test_precision_mapping(self, dense):
        pmap = {(i, j): Precision.FP64 for i in range(4) for j in range(2)}
        pmap[(0, 1)] = Precision.FP8_E4M3
        tm = TileMatrix.from_dense(dense, tile_size=16, precision=pmap)
        assert tm.tile_precision(0, 1) is Precision.FP8_E4M3

    def test_zeros(self):
        tm = TileMatrix.zeros(10, 12, 4)
        assert tm.to_dense().sum() == 0.0
        assert tm.shape == (10, 12)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            TileMatrix.from_dense(np.zeros(5), tile_size=2)


class TestSymmetricStorage:
    def test_symmetric_roundtrip(self, rng):
        a = rng.normal(size=(40, 40))
        sym = a + a.T
        tm = TileMatrix.from_dense(sym, tile_size=16, symmetric=True)
        np.testing.assert_allclose(tm.to_dense(), sym)

    def test_upper_reads_are_transposes(self, rng):
        a = rng.normal(size=(20, 20))
        sym = a + a.T
        tm = TileMatrix.from_dense(sym, tile_size=8, symmetric=True)
        upper = tm.get_tile(0, 1).to_float64()
        lower = tm.get_tile(1, 0).to_float64()
        np.testing.assert_array_equal(upper, lower.T)

    def test_symmetric_requires_square(self):
        with pytest.raises(ValueError):
            TileMatrix.from_dense(np.zeros((4, 6)), tile_size=2, symmetric=True)

    def test_set_upper_tile_mirrors(self, rng):
        tm = TileMatrix.zeros(8, 8, 4, symmetric=True)
        block = rng.normal(size=(4, 4))
        tm.set_tile(0, 1, block)
        np.testing.assert_allclose(tm.get_tile(1, 0).to_float64(), block.T)

    def test_stored_tile_count_is_lower_triangle(self, rng):
        a = rng.normal(size=(40, 40))
        tm = TileMatrix.from_dense(a + a.T, tile_size=10, symmetric=True)
        assert len(tm._tiles) == 10  # 4*5/2


class TestTileAccess:
    def test_set_tile_shape_check(self):
        tm = TileMatrix.zeros(10, 10, 4)
        with pytest.raises(ValueError, match="shape"):
            tm.set_tile(0, 0, np.zeros((3, 3)))

    def test_set_tile_with_precision(self):
        tm = TileMatrix.zeros(8, 8, 4)
        tm.set_tile(0, 0, np.ones((4, 4)), precision=Precision.FP8_E4M3)
        assert tm.tile_precision(0, 0) is Precision.FP8_E4M3

    def test_set_tile_precision(self, dense):
        tm = TileMatrix.from_dense(dense, tile_size=16)
        tm.set_tile_precision(0, 0, "fp16")
        assert tm.tile_precision(0, 0) is Precision.FP16

    def test_apply_precision_map(self, dense):
        tm = TileMatrix.from_dense(dense, tile_size=16)
        tm.apply_precision_map(Precision.FP16)
        grid = tm.precision_grid()
        assert all(grid[i, j] is Precision.FP16
                   for i in range(4) for j in range(2))

    def test_precision_grid_shape(self, dense):
        tm = TileMatrix.from_dense(dense, tile_size=16)
        assert tm.precision_grid().shape == tm.grid_shape


class TestFootprint:
    def test_nbytes_uniform(self):
        tm = TileMatrix.from_dense(np.zeros((32, 32)), tile_size=16,
                                   precision=Precision.FP32)
        assert tm.nbytes() == 32 * 32 * 4

    def test_mixed_precision_footprint_smaller(self, rng):
        a = rng.normal(size=(64, 64))
        fp32 = TileMatrix.from_dense(a, tile_size=16, precision=Precision.FP32)
        mixed = TileMatrix.from_dense(
            a, tile_size=16,
            precision=lambda i, j: Precision.FP32 if i == j else Precision.FP8_E4M3)
        assert mixed.nbytes() < fp32.nbytes()
        by_prec = mixed.footprint_by_precision()
        assert Precision.FP8_E4M3 in by_prec and Precision.FP32 in by_prec

    def test_symmetric_footprint_half(self, rng):
        a = rng.normal(size=(64, 64))
        sym = TileMatrix.from_dense(a + a.T, tile_size=16, symmetric=True,
                                    precision=Precision.FP32)
        full = TileMatrix.from_dense(a + a.T, tile_size=16,
                                     precision=Precision.FP32)
        assert sym.nbytes() < full.nbytes()

    def test_copy_independent(self, dense):
        tm = TileMatrix.from_dense(dense, tile_size=16)
        dup = tm.copy()
        dup.set_tile(0, 0, np.zeros((16, 16)))
        assert not np.allclose(tm.get_tile(0, 0).to_float64(), 0.0)

    def test_norm_matches_dense(self, dense):
        tm = TileMatrix.from_dense(dense, tile_size=16)
        assert tm.norm() == pytest.approx(np.linalg.norm(dense))


class TestRoundtripProperty:
    @given(st.integers(5, 40), st.integers(5, 40), st.integers(2, 16))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_any_shape(self, rows, cols, tile_size):
        rng = np.random.default_rng(rows * 1000 + cols * 10 + tile_size)
        dense = rng.normal(size=(rows, cols))
        tm = TileMatrix.from_dense(dense, tile_size=tile_size)
        np.testing.assert_array_equal(tm.to_dense(), dense)


class TestDiagonalShift:
    def test_add_diagonal_matches_dense(self, rng):
        a = rng.normal(size=(50, 50))
        a = a + a.T
        tm = TileMatrix.from_dense(a, tile_size=16)
        tm.add_diagonal(0.75)
        np.testing.assert_array_equal(tm.to_dense(), a + 0.75 * np.eye(50))

    def test_add_diagonal_symmetric_storage(self, rng):
        a = rng.normal(size=(48, 48))
        a = a + a.T
        tm = TileMatrix.from_dense(a, tile_size=16, symmetric=True)
        tm.add_diagonal(2.0)
        np.testing.assert_array_equal(tm.to_dense(), a + 2.0 * np.eye(48))

    def test_add_diagonal_touches_only_diagonal_tiles(self, rng):
        a = rng.normal(size=(48, 48))
        tm = TileMatrix.from_dense(a + a.T, tile_size=16, symmetric=True)
        before = {
            (i, j): tm.get_tile(i, j)
            for i in range(3) for j in range(i)
        }
        tm.add_diagonal(1.0)
        for (i, j), tile in before.items():
            # off-diagonal tiles are the exact same objects, untouched
            assert tm.get_tile(i, j) is tile

    def test_add_diagonal_preserves_tile_precision(self, rng):
        a = rng.normal(size=(32, 32))
        tm = TileMatrix.from_dense(
            a + a.T, tile_size=16,
            precision=lambda i, j: Precision.FP32 if i == j else Precision.FP16)
        tm.add_diagonal(0.5)
        assert tm.tile_precision(0, 0) is Precision.FP32
        assert tm.tile_precision(1, 0) is Precision.FP16

    def test_shift_diagonal_moves_the_regularization(self, rng):
        a = rng.normal(size=(40, 40))
        a = a + a.T
        tm = TileMatrix.from_dense(a, tile_size=16)
        tm.add_diagonal(1.0)
        tm.shift_diagonal(1.0, 10.0)
        np.testing.assert_allclose(tm.to_dense(), a + 10.0 * np.eye(40))

    def test_add_diagonal_requires_square(self, dense):
        tm = TileMatrix.from_dense(dense, tile_size=16)  # 50 x 30
        with pytest.raises(ValueError):
            tm.add_diagonal(1.0)


class TestUnpackedLower:
    def test_lower_triangle_matches_symmetric_source(self, rng):
        a = rng.normal(size=(50, 50))
        a = a + a.T
        sym = TileMatrix.from_dense(a, tile_size=16, symmetric=True)
        unpacked = sym.unpacked_lower()
        assert not unpacked.symmetric
        np.testing.assert_array_equal(np.tril(unpacked.to_dense()), np.tril(a))

    def test_copy_is_independent(self, rng):
        a = rng.normal(size=(32, 32))
        sym = TileMatrix.from_dense(a + a.T, tile_size=16, symmetric=True)
        unpacked = sym.unpacked_lower()
        unpacked.set_tile(1, 0, np.zeros((16, 16)))
        assert not np.allclose(sym.get_tile(1, 0).to_float64(), 0.0)

    def test_preserves_tile_precisions(self, rng):
        a = rng.normal(size=(32, 32))
        sym = TileMatrix.from_dense(
            a + a.T, tile_size=16, symmetric=True,
            precision=lambda i, j: Precision.FP32 if i == j else Precision.FP16)
        unpacked = sym.unpacked_lower()
        assert unpacked.tile_precision(0, 0) is Precision.FP32
        assert unpacked.tile_precision(1, 0) is Precision.FP16
