"""Tests for the tile-low-rank (TLR) extension."""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.tiles.lowrank import (
    LowRankTile,
    TLRMatrix,
    compress_tile,
    compressible_rank,
)


def _smooth_kernel_matrix(n=96, length_scale=0.5, seed=0):
    """A smooth (squared-exponential) kernel matrix: off-diagonal tiles are low-rank."""
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(0, 1, size=n))
    d = (x[:, None] - x[None, :]) ** 2
    return np.exp(-d / (2 * length_scale ** 2)) + 1e-6 * np.eye(n)


class TestLowRankTile:
    def test_exact_reconstruction_of_true_lowrank_tile(self, rng):
        u = rng.normal(size=(20, 3))
        v = rng.normal(size=(16, 3))
        tile = u @ v.T
        lr = compress_tile(tile, tolerance=1e-12, precision=Precision.FP64)
        assert lr.rank <= 4
        np.testing.assert_allclose(lr.to_dense(), tile, atol=1e-10)

    def test_rank_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            LowRankTile(u=rng.normal(size=(4, 2)), v=rng.normal(size=(4, 3)))

    def test_footprint_smaller_than_dense(self, rng):
        u = rng.normal(size=(64, 2))
        tile = u @ u.T
        lr = compress_tile(tile, tolerance=1e-10)
        assert lr.nbytes() < 64 * 64 * 4
        assert lr.compression_ratio() > 1.0

    def test_factor_quantization(self, rng):
        tile = rng.normal(size=(8, 8))
        lr = compress_tile(tile, tolerance=0.0, precision=Precision.FP16)
        assert lr.u.dtype == np.float16
        assert lr.precision is Precision.FP16

    def test_max_rank_cap(self, rng):
        tile = rng.normal(size=(30, 30))  # full rank
        lr = compress_tile(tile, tolerance=1e-12, max_rank=5)
        assert lr.rank == 5


class TestCompressibleRank:
    def test_zero_matrix(self):
        assert compressible_rank(np.zeros((5, 5)), 1e-3) == 0

    def test_rank_one(self):
        a = np.outer(np.arange(1, 6), np.ones(4))
        assert compressible_rank(a, 1e-10) == 1

    def test_full_rank_random(self, rng):
        a = rng.normal(size=(12, 12))
        assert compressible_rank(a, 1e-12) == 12

    def test_tolerance_monotone(self, rng):
        a = rng.normal(size=(20, 20))
        assert compressible_rank(a, 0.5) <= compressible_rank(a, 1e-3)


class TestTLRMatrix:
    def test_accuracy_within_tolerance(self):
        a = _smooth_kernel_matrix()
        tlr = TLRMatrix(a, tile_size=24, tolerance=1e-4)
        # per-tile tolerance 1e-4 keeps the global error of the same order
        assert tlr.relative_error(a) < 5e-4

    def test_compression_on_smooth_kernel(self):
        a = _smooth_kernel_matrix(length_scale=1.0)
        tlr = TLRMatrix(a, tile_size=24, tolerance=1e-3)
        assert tlr.num_lowrank_tiles > 0
        assert tlr.compression_ratio() > 1.2
        assert tlr.max_offdiagonal_rank() < 24

    def test_random_matrix_keeps_dense_tiles(self, rng):
        a = rng.normal(size=(48, 48))
        a = a + a.T
        tlr = TLRMatrix(a, tile_size=16, tolerance=1e-10)
        # nothing is compressible at that tolerance: factors would be larger
        assert tlr.num_lowrank_tiles == 0
        np.testing.assert_allclose(tlr.to_dense(), a, rtol=1e-5, atol=1e-4)

    def test_diagonal_tiles_always_dense(self):
        a = _smooth_kernel_matrix()
        tlr = TLRMatrix(a, tile_size=24, tolerance=1e-2)
        for i in range(tlr.layout.tile_rows):
            assert tlr.tile_rank(i, i) is None

    def test_tile_rank_symmetric_lookup(self):
        a = _smooth_kernel_matrix()
        tlr = TLRMatrix(a, tile_size=24, tolerance=1e-3)
        assert tlr.tile_rank(0, 3) == tlr.tile_rank(3, 0)

    def test_matvec_matches_dense(self, rng):
        a = _smooth_kernel_matrix()
        tlr = TLRMatrix(a, tile_size=24, tolerance=1e-6)
        x = rng.normal(size=a.shape[0])
        np.testing.assert_allclose(tlr.matvec(x), a @ x, rtol=1e-4, atol=1e-5)

    def test_matvec_matrix_rhs(self, rng):
        a = _smooth_kernel_matrix()
        tlr = TLRMatrix(a, tile_size=24, tolerance=1e-6)
        x = rng.normal(size=(a.shape[0], 3))
        assert tlr.matvec(x).shape == (a.shape[0], 3)

    def test_fp16_factors_compose_with_lowrank(self):
        a = _smooth_kernel_matrix(length_scale=1.0)
        tlr32 = TLRMatrix(a, tile_size=24, tolerance=1e-3,
                          factor_precision=Precision.FP32)
        tlr16 = TLRMatrix(a, tile_size=24, tolerance=1e-3,
                          factor_precision=Precision.FP16)
        assert tlr16.nbytes() < tlr32.nbytes()
        assert tlr16.relative_error(a) < 1e-2

    def test_non_square_raises(self, rng):
        with pytest.raises(ValueError):
            TLRMatrix(rng.normal(size=(10, 12)), tile_size=4)

    def test_gwas_kernel_matrix_compresses_at_loose_tolerance(self, small_genotypes):
        """The KRR kernel's off-diagonal tiles compress at a loose tolerance.

        At a tight tolerance the small (30x30) tiles are effectively
        full-rank and the TLR format correctly falls back to dense
        storage; at the looser tolerance the off-diagonal tiles become
        low-rank and the footprint shrinks — the data-sparsity the
        paper's outlook section proposes to exploit.
        """
        from repro.distance.build import build_kernel_matrix

        k = build_kernel_matrix(small_genotypes, gamma=0.02, tile_size=30).to_dense()
        tight = TLRMatrix(k, tile_size=30, tolerance=1e-3)
        assert tight.num_lowrank_tiles == 0
        assert tight.relative_error(k) < 1e-3

        loose = TLRMatrix(k, tile_size=30, tolerance=0.05)
        assert loose.num_lowrank_tiles > 0
        assert loose.compression_ratio() > 1.2
        assert loose.relative_error(k) < 0.08
