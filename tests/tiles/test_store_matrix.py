"""TileMatrix ↔ TileStore integration: fault-in, copies, serialization."""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.store import TileStore
from repro.tiles.matrix import TileMatrix
from repro.tiles.serialize import (
    load_tile_matrix,
    pack_tile_matrix,
    save_tile_matrix,
    unpack_tile_matrix,
)

TILE = 16


def spd(rng, n=64):
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestAttachDetach:
    def test_attach_twice_same_store_is_noop(self, rng):
        tm = TileMatrix.from_dense(spd(rng), TILE, Precision.FP64)
        with TileStore() as store:
            tm.attach_store(store)
            assert tm.attach_store(store) is tm

    def test_attach_to_second_store_rejected(self, rng):
        tm = TileMatrix.from_dense(spd(rng), TILE, Precision.FP64)
        with TileStore() as s1, TileStore() as s2:
            tm.attach_store(s1)
            with pytest.raises(RuntimeError, match="different TileStore"):
                tm.attach_store(s2)

    def test_detach_restores_full_residency(self, rng):
        tm = TileMatrix.from_dense(spd(rng), TILE, Precision.FP32)
        ref = tm.to_dense().copy()
        logical = tm.nbytes()
        with TileStore(budget_bytes=TILE * TILE * 4) as store:
            tm.attach_store(store)
            assert tm.resident_nbytes() < logical
            tm.detach_store()
            assert tm.store is None
            assert tm.resident_nbytes() == logical
        # store closed, segments gone: the matrix must be self-contained
        np.testing.assert_array_equal(tm.to_dense(), ref)

    def test_store_property(self, rng):
        tm = TileMatrix.from_dense(spd(rng), TILE, Precision.FP64)
        assert tm.store is None
        with TileStore() as store:
            tm.attach_store(store)
            assert tm.store is store


class TestAccessSemantics:
    def test_symmetric_upper_read_faults_lower(self, rng):
        dense = spd(rng)
        tm = TileMatrix.from_dense(dense, TILE, Precision.FP64,
                                   symmetric=True)
        with TileStore(budget_bytes=2 * TILE * TILE * 8) as store:
            tm.attach_store(store)
            upper = tm.get_tile(0, 3).to_float64()
            np.testing.assert_array_equal(
                upper, dense[0:TILE, 3 * TILE:4 * TILE])

    def test_unwritten_tile_materializes_zeros(self, rng):
        tm = TileMatrix.empty(64, 64, TILE, Precision.FP64)
        with TileStore(budget_bytes=TILE * TILE * 8) as store:
            tm.attach_store(store)
            assert not tm.has_tile_data(2, 2)
            np.testing.assert_array_equal(
                tm.get_tile(2, 2).to_float64(), np.zeros((TILE, TILE)))
            assert tm.has_tile_data(2, 2)  # zeros are data once touched

    def test_set_tile_precision_through_store(self, rng):
        dense = spd(rng)
        tm = TileMatrix.from_dense(dense, TILE, Precision.FP64)
        plain = TileMatrix.from_dense(dense, TILE, Precision.FP64)
        with TileStore(budget_bytes=2 * TILE * TILE * 8) as store:
            tm.attach_store(store)
            tm.set_tile_precision(1, 2, Precision.FP16)
            plain.set_tile_precision(1, 2, Precision.FP16)
            assert tm.tile_precision(1, 2) is Precision.FP16
            np.testing.assert_array_equal(
                tm.get_tile(1, 2).to_float64(),
                plain.get_tile(1, 2).to_float64())

    def test_apply_precision_map_spilled(self, rng):
        dense = spd(rng)
        tm = TileMatrix.from_dense(dense, TILE, Precision.FP64,
                                   symmetric=True)
        plain = TileMatrix.from_dense(dense, TILE, Precision.FP64,
                                      symmetric=True)
        pmap = {(i, j): (Precision.FP32 if i == j else Precision.FP16)
                for i in range(4) for j in range(4)}
        with TileStore(budget_bytes=2 * TILE * TILE * 8) as store:
            tm.attach_store(store)
            tm.apply_precision_map(pmap)
            plain.apply_precision_map(pmap)
            np.testing.assert_array_equal(tm.to_dense(), plain.to_dense())

    def test_add_shift_diagonal_spilled(self, rng):
        dense = spd(rng)
        tm = TileMatrix.from_dense(dense, TILE, Precision.FP32,
                                   symmetric=True)
        plain = TileMatrix.from_dense(dense, TILE, Precision.FP32,
                                      symmetric=True)
        with TileStore(budget_bytes=TILE * TILE * 4) as store:
            tm.attach_store(store)
            tm.add_diagonal(0.5)
            plain.add_diagonal(0.5)
            tm.shift_diagonal(0.5, 5.0)
            plain.shift_diagonal(0.5, 5.0)
            np.testing.assert_array_equal(tm.to_dense(), plain.to_dense())


class TestCopies:
    def test_deep_copy_is_store_backed_and_bounded(self, rng):
        tm = TileMatrix.from_dense(spd(rng), TILE, Precision.FP32)
        ref = tm.to_dense().copy()
        budget = 2 * TILE * TILE * 4
        with TileStore(budget_bytes=budget) as store:
            tm.attach_store(store)
            peak_before = store.stats.peak_resident_bytes
            dup = tm.copy()
            assert dup.store is store
            # copying streamed tile by tile: no budget excursion beyond
            # whatever attach already recorded
            assert store.stats.peak_resident_bytes == peak_before
            np.testing.assert_array_equal(dup.to_dense(), ref)
            dup.set_tile(0, 0, np.zeros((TILE, TILE)))
            np.testing.assert_array_equal(tm.to_dense(), ref)  # detached

    def test_shallow_copy_cow_regularization(self, rng):
        dense = spd(rng)
        tm = TileMatrix.from_dense(dense, TILE, Precision.FP32,
                                   symmetric=True)
        plain = TileMatrix.from_dense(dense, TILE, Precision.FP32,
                                      symmetric=True)
        ref = tm.to_dense().copy()
        plain_reg = plain.shallow_copy()
        plain_reg.add_diagonal(2.0)
        with TileStore(budget_bytes=4 * TILE * TILE * 4) as store:
            tm.attach_store(store)
            reg = tm.shallow_copy()
            reg.add_diagonal(2.0)
            # copy-on-write: the source kernel is untouched...
            np.testing.assert_array_equal(tm.to_dense(), ref)
            # ...and the regularized copy matches the store-less path
            # bit for bit, spill cycles and all
            np.testing.assert_array_equal(reg.to_dense(),
                                          plain_reg.to_dense())


class TestSerialization:
    def test_pack_spilled_equals_pack_resident(self, rng):
        dense = spd(rng)
        tm = TileMatrix.from_dense(dense, TILE, Precision.FP16,
                                   symmetric=True)
        plain_pack = pack_tile_matrix(
            TileMatrix.from_dense(dense, TILE, Precision.FP16,
                                  symmetric=True))
        with TileStore(budget_bytes=TILE * TILE * 2) as store:
            tm.attach_store(store)
            store_pack = pack_tile_matrix(tm)
        assert sorted(plain_pack) == sorted(store_pack)
        for name in plain_pack:
            np.testing.assert_array_equal(plain_pack[name], store_pack[name])

    def test_store_backed_load_is_lazy_and_bitwise(self, rng, tmp_path):
        tm = TileMatrix.from_dense(spd(rng), TILE, Precision.FP16)
        path = save_tile_matrix(tm, tmp_path / "m.npz")
        with TileStore() as store:
            back = load_tile_matrix(path, store=store)
            assert back.resident_nbytes() == 0          # fully spilled
            assert back.nbytes() == tm.nbytes()          # logically whole
            np.testing.assert_array_equal(back.to_dense(), tm.to_dense())

    def test_unpack_store_backed_roundtrip_all_precisions(self, rng):
        pmap = {}
        cycle = [Precision.FP64, Precision.FP32, Precision.FP16,
                 Precision.BF16, Precision.FP8_E4M3]
        for idx, key in enumerate((i, j) for i in range(4) for j in range(4)):
            pmap[key] = cycle[idx % len(cycle)]
        tm = TileMatrix.from_dense(spd(rng), TILE, pmap)
        packed = pack_tile_matrix(tm)
        with TileStore(budget_bytes=TILE * TILE * 8) as store:
            back = unpack_tile_matrix(packed, store=store)
            np.testing.assert_array_equal(back.to_dense(), tm.to_dense())
            assert back.footprint_by_precision() == tm.footprint_by_precision()
