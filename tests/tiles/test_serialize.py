"""Bitwise round-trip tests for the mixed-precision tile serializer."""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.precision.fp8 import fp8_grid, quantize_fp8
from repro.precision.quantize import quantize
from repro.tiles.matrix import TileMatrix
from repro.tiles.serialize import (
    decode_fp8,
    decode_payload,
    encode_fp8,
    encode_payload,
    load_tile_matrix,
    pack_tile_matrix,
    save_tile_matrix,
    unpack_tile_matrix,
)

ALL_STORAGE = [
    Precision.FP64,
    Precision.FP32,
    Precision.FP16,
    Precision.BF16,
    Precision.FP8_E4M3,
    Precision.FP8_E5M2,
    Precision.INT8,
    Precision.INT32,
]


class TestFp8Codec:
    @pytest.mark.parametrize("variant",
                             [Precision.FP8_E4M3, Precision.FP8_E5M2])
    def test_full_grid_round_trips_bitwise(self, variant):
        grid = fp8_grid(variant)
        values = np.concatenate([grid, -grid]).astype(np.float32)
        decoded = decode_fp8(encode_fp8(values, variant), variant)
        assert decoded.dtype == np.float32
        assert np.array_equal(decoded.view(np.uint32), values.view(np.uint32))

    @pytest.mark.parametrize("variant",
                             [Precision.FP8_E4M3, Precision.FP8_E5M2])
    def test_quantized_random_data_round_trips(self, variant):
        rng = np.random.default_rng(0)
        x = quantize_fp8(rng.standard_normal((64, 64)) * 10.0, variant)
        assert np.array_equal(decode_fp8(encode_fp8(x, variant), variant), x)

    def test_nan_round_trips(self):
        x = np.array([np.nan, 1.0, -2.0], dtype=np.float32)
        q = quantize_fp8(x)
        out = decode_fp8(encode_fp8(q), Precision.FP8_E4M3)
        assert np.isnan(out[0]) and np.array_equal(out[1:], q[1:])

    def test_one_byte_per_element(self):
        codes = encode_fp8(np.zeros((8, 8), dtype=np.float32))
        assert codes.dtype == np.uint8 and codes.nbytes == 64

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            encode_fp8(np.array([1e6], dtype=np.float32), Precision.FP8_E4M3)

    def test_non_fp8_precision_rejected(self):
        with pytest.raises(ValueError):
            encode_fp8(np.zeros(4), Precision.FP16)
        with pytest.raises(ValueError):
            decode_fp8(np.zeros(4, dtype=np.uint8), Precision.FP32)


class TestPayloadCodec:
    @pytest.mark.parametrize("precision", ALL_STORAGE)
    def test_round_trip_is_bitwise(self, precision):
        rng = np.random.default_rng(3)
        data = quantize(rng.standard_normal((32, 32)) * 3.0, precision)
        raw = encode_payload(data, precision)
        assert raw.itemsize == precision.bytes_per_element
        back = decode_payload(raw, precision)
        assert back.dtype == data.dtype
        assert np.array_equal(back, data)

    def test_bf16_is_two_bytes_and_exact(self):
        x = quantize(np.linspace(-5, 5, 97), Precision.BF16)
        raw = encode_payload(x, Precision.BF16)
        assert raw.dtype == np.uint16
        assert np.array_equal(
            decode_payload(raw, Precision.BF16).view(np.uint32),
            x.view(np.uint32))

    def test_negative_zero_preserved(self):
        x = quantize(np.array([-0.0, 0.0]), Precision.FP8_E4M3)
        back = decode_payload(encode_payload(x, Precision.FP8_E4M3),
                              Precision.FP8_E4M3)
        assert np.array_equal(np.signbit(back), np.signbit(x))


def _mosaic_matrix(n=128, tile=32, symmetric=True,
                   precisions=(Precision.FP32, Precision.FP16,
                               Precision.FP8_E4M3)) -> TileMatrix:
    rng = np.random.default_rng(11)
    a = rng.standard_normal((n, n))
    dense = (a + a.T) / 2.0 if symmetric else a

    def pmap(i, j):
        if i == j:
            return precisions[0]
        return precisions[(i + j) % len(precisions)]

    return TileMatrix.from_dense(dense, tile, pmap, symmetric=symmetric)


class TestTileMatrixRoundTrip:
    @pytest.mark.parametrize("symmetric", [True, False])
    def test_pack_unpack_bitwise(self, symmetric):
        m = _mosaic_matrix(symmetric=symmetric)
        back = unpack_tile_matrix(pack_tile_matrix(m))
        assert back.shape == m.shape
        assert back.symmetric == m.symmetric
        assert back.tile_size == m.tile_size
        for (i, j) in m._iter_stored():
            a, b = m.get_tile(i, j), back.get_tile(i, j)
            assert b.precision is a.precision
            assert b.data.dtype == a.data.dtype
            assert np.array_equal(b.data, a.data)
        assert np.array_equal(back.to_dense(), m.to_dense())

    def test_unmaterialized_tiles_stay_implicit(self):
        m = TileMatrix.empty(96, 96, 32, Precision.FP32)
        m.set_tile(1, 2, np.ones((32, 32)), precision=Precision.FP16)
        arrays = pack_tile_matrix(m)
        assert set(arrays) == {"meta", "t1_2"}
        back = unpack_tile_matrix(arrays)
        assert len(back._tiles) == 1
        assert np.array_equal(back.to_dense(), m.to_dense())

    def test_prefix_allows_embedding(self):
        m = _mosaic_matrix(n=64)
        arrays = pack_tile_matrix(m, prefix="factor/")
        arrays["weights"] = np.ones(3)
        back = unpack_tile_matrix(arrays, prefix="factor/")
        assert np.array_equal(back.to_dense(), m.to_dense())

    def test_save_load_file(self, tmp_path):
        m = _mosaic_matrix()
        p = save_tile_matrix(m, tmp_path / "factor")
        assert p.suffix == ".npz"
        back = load_tile_matrix(p)
        assert np.array_equal(back.to_dense(), m.to_dense())
        assert back.footprint_by_precision() == m.footprint_by_precision()

    def test_footprint_follows_mosaic(self, tmp_path):
        """The fp8 mosaic's archive is measurably smaller than fp32's."""
        n, tile = 256, 32
        rng = np.random.default_rng(5)
        a = rng.standard_normal((n, n))
        dense = (a + a.T) / 2.0
        fp32 = TileMatrix.from_dense(dense, tile, Precision.FP32,
                                     symmetric=True)

        def fp8_map(i, j):
            return Precision.FP32 if i == j else Precision.FP8_E4M3

        fp8 = TileMatrix.from_dense(dense, tile, fp8_map, symmetric=True)
        p32 = save_tile_matrix(fp32, tmp_path / "fp32")
        p8 = save_tile_matrix(fp8, tmp_path / "fp8")
        assert p8.stat().st_size < 0.5 * p32.stat().st_size

    def test_future_format_version_rejected(self):
        m = _mosaic_matrix(n=64)
        arrays = pack_tile_matrix(m)
        import json
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode())
        meta["format_version"] = 99
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(),
                                       dtype=np.uint8)
        with pytest.raises(ValueError, match="newer format"):
            unpack_tile_matrix(arrays)


class TestCodecHardening:
    """Asymmetries found in review: inf and reserved-pattern collisions."""

    def test_inf_rejected_not_silently_zeroed(self):
        for variant in (Precision.FP8_E4M3, Precision.FP8_E5M2):
            with pytest.raises(ValueError, match="quantize"):
                encode_fp8(np.array([np.inf], dtype=np.float32), variant)
            with pytest.raises(ValueError, match="quantize"):
                encode_fp8(np.array([-np.inf], dtype=np.float32), variant)

    def test_e5m2_cannot_collide_with_reserved_exponent(self):
        # 65536 has binary exponent 16 -> field 31, reserved for inf/NaN
        with pytest.raises(ValueError, match="range"):
            encode_fp8(np.array([65536.0], dtype=np.float32),
                       Precision.FP8_E5M2)

    def test_e4m3_cannot_collide_with_nan_pattern(self):
        # 480 would encode as S.1111.111 — E4M3's NaN — if unchecked
        with pytest.raises(ValueError, match="range"):
            encode_fp8(np.array([480.0], dtype=np.float32),
                       Precision.FP8_E4M3)
