"""Tests for band ("rainbow") precision assignments."""

import pytest

from repro.precision.formats import Precision
from repro.tiles.band import (
    band_fraction_map,
    band_map_as_grid,
    band_precision_map,
    rainbow_pattern,
)
from repro.tiles.layout import TileLayout


@pytest.fixture
def layout():
    return TileLayout.square(100, 10)  # 10x10 tile grid


class TestBandMap:
    def test_full_fp32(self, layout):
        pmap = band_precision_map(layout, 1.0)
        assert all(p is Precision.FP32 for p in pmap.values())

    def test_zero_fraction_keeps_only_diagonal_high(self, layout):
        pmap = band_precision_map(layout, 0.0)
        for (i, j), p in pmap.items():
            if i == j:
                assert p is Precision.FP32
            else:
                assert p is Precision.FP16

    def test_half_fraction_splits_bands(self, layout):
        pmap = band_precision_map(layout, 0.5)
        # band distance <= round(0.5 * 9) = 4 stays FP32
        assert pmap[(4, 0)] is Precision.FP32
        assert pmap[(5, 0)] is Precision.FP16

    def test_fraction_monotone(self, layout):
        fractions = [band_fraction_map(band_precision_map(layout, f), layout)
                     .get(Precision.FP32, 0.0) for f in (0.1, 0.4, 0.8)]
        assert fractions[0] <= fractions[1] <= fractions[2]

    def test_custom_precisions(self, layout):
        pmap = band_precision_map(layout, 0.2, high="fp64", low="fp8",
                                  diagonal="fp32")
        assert pmap[(0, 0)] is Precision.FP32
        assert pmap[(1, 0)] is Precision.FP64
        assert pmap[(9, 0)] is Precision.FP8_E4M3

    def test_covers_all_tiles(self, layout):
        pmap = band_precision_map(layout, 0.3)
        assert len(pmap) == layout.num_tiles

    def test_symmetric_pattern(self, layout):
        pmap = band_precision_map(layout, 0.4)
        for i in range(10):
            for j in range(10):
                assert pmap[(i, j)] == pmap[(j, i)]

    def test_invalid_fraction(self, layout):
        with pytest.raises(ValueError):
            band_precision_map(layout, 1.5)

    def test_non_square_grid_raises(self):
        with pytest.raises(ValueError):
            band_precision_map(TileLayout(rows=20, cols=10, tile_size=5), 0.5)


class TestFractionMap:
    def test_excludes_diagonal(self, layout):
        pmap = band_precision_map(layout, 0.0)
        fractions = band_fraction_map(pmap, layout)
        assert fractions[Precision.FP16] == pytest.approx(1.0)

    def test_empty_map(self, layout):
        assert band_fraction_map({}, layout) == {}


class TestRainbow:
    def test_levels_progress_outward(self, layout):
        precisions = (Precision.FP32, Precision.FP16, Precision.FP8_E4M3)
        pmap = rainbow_pattern(layout, precisions)
        assert pmap[(0, 0)] is Precision.FP32
        assert pmap[(9, 0)] is Precision.FP8_E4M3
        # mid band gets the mid precision
        assert pmap[(4, 0)] in precisions

    def test_single_precision(self, layout):
        pmap = rainbow_pattern(layout, (Precision.FP16,))
        assert all(p is Precision.FP16 for p in pmap.values())

    def test_empty_raises(self, layout):
        with pytest.raises(ValueError):
            rainbow_pattern(layout, ())

    def test_grid_rendering(self, layout):
        pmap = band_precision_map(layout, 0.5)
        grid = band_map_as_grid(pmap, layout)
        assert grid.shape == (10, 10)
        assert grid[0, 0] is Precision.FP32
