"""Tests for tile-grid geometry and block-cyclic distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles.layout import BlockCyclicDistribution, TileLayout


class TestTileLayout:
    def test_even_division(self):
        layout = TileLayout(rows=100, cols=60, tile_size=20)
        assert layout.grid_shape == (5, 3)
        assert layout.num_tiles == 15
        assert layout.tile_shape(0, 0) == (20, 20)
        assert layout.tile_shape(4, 2) == (20, 20)

    def test_ragged_edges(self):
        layout = TileLayout(rows=105, cols=50, tile_size=20)
        assert layout.grid_shape == (6, 3)
        assert layout.tile_shape(5, 0) == (5, 20)
        assert layout.tile_shape(0, 2) == (20, 10)
        assert layout.tile_shape(5, 2) == (5, 10)

    def test_tile_slice(self):
        layout = TileLayout(rows=10, cols=10, tile_size=4)
        rs, cs = layout.tile_slice(2, 1)
        assert (rs.start, rs.stop) == (8, 10)
        assert (cs.start, cs.stop) == (4, 8)

    def test_tile_of_index(self):
        layout = TileLayout(rows=10, cols=10, tile_size=4)
        assert layout.tile_of_index(0, 0) == (0, 0)
        assert layout.tile_of_index(9, 9) == (2, 2)
        assert layout.tile_of_index(4, 3) == (1, 0)

    def test_tile_of_index_out_of_range(self):
        layout = TileLayout(rows=10, cols=10, tile_size=4)
        with pytest.raises(IndexError):
            layout.tile_of_index(10, 0)

    def test_iter_tiles_count_and_order(self):
        layout = TileLayout(rows=9, cols=6, tile_size=3)
        tiles = list(layout.iter_tiles())
        assert len(tiles) == 6
        assert tiles[0] == (0, 0)
        assert tiles[-1] == (2, 1)

    def test_iter_lower_tiles(self):
        layout = TileLayout.square(12, 4)
        lower = list(layout.iter_lower_tiles())
        assert len(lower) == 6  # 3*4/2
        assert all(i >= j for i, j in lower)
        strict = list(layout.iter_lower_tiles(include_diagonal=False))
        assert len(strict) == 3
        assert all(i > j for i, j in strict)

    def test_square_constructor(self):
        layout = TileLayout.square(16, 4)
        assert layout.rows == layout.cols == 16
        assert layout.is_square_grid

    def test_out_of_range_tile_raises(self):
        layout = TileLayout(rows=8, cols=8, tile_size=4)
        with pytest.raises(IndexError):
            layout.tile_shape(2, 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TileLayout(rows=-1, cols=4, tile_size=2)
        with pytest.raises(ValueError):
            TileLayout(rows=4, cols=4, tile_size=0)

    def test_empty_matrix(self):
        layout = TileLayout(rows=0, cols=0, tile_size=4)
        assert layout.num_tiles == 0
        assert list(layout.iter_tiles()) == []

    @given(st.integers(1, 200), st.integers(1, 200), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_tile_shapes_cover_matrix(self, rows, cols, tile_size):
        layout = TileLayout(rows=rows, cols=cols, tile_size=tile_size)
        total = sum(layout.tile_shape(i, j)[0] * layout.tile_shape(i, j)[1]
                    for i, j in layout.iter_tiles())
        assert total == rows * cols


class TestBlockCyclic:
    def test_owner_deterministic(self):
        dist = BlockCyclicDistribution(p=2, q=3)
        assert dist.num_ranks == 6
        assert dist.owner(0, 0) == 0
        assert dist.owner(1, 0) == 3
        assert dist.owner(0, 1) == 1
        assert dist.owner(2, 3) == dist.owner(0, 0)  # cyclic wrap

    def test_tiles_of_rank_partition(self):
        layout = TileLayout.square(40, 5)
        dist = BlockCyclicDistribution(p=2, q=2)
        all_tiles = set()
        for rank in range(dist.num_ranks):
            tiles = dist.tiles_of_rank(rank, layout)
            assert all_tiles.isdisjoint(tiles)
            all_tiles.update(tiles)
        assert all_tiles == set(layout.iter_tiles())

    def test_load_balance(self):
        layout = TileLayout.square(64, 8)
        dist = BlockCyclicDistribution(p=2, q=4)
        loads = dist.load_per_rank(layout)
        assert sum(loads.values()) == layout.num_tiles
        assert max(loads.values()) - min(loads.values()) <= 1

    def test_for_ranks_near_square(self):
        dist = BlockCyclicDistribution.for_ranks(12)
        assert dist.num_ranks == 12
        assert abs(dist.p - dist.q) <= dist.q  # reasonably balanced

    def test_for_ranks_prime(self):
        dist = BlockCyclicDistribution.for_ranks(7)
        assert dist.num_ranks == 7

    def test_invalid_rank(self):
        dist = BlockCyclicDistribution(p=2, q=2)
        with pytest.raises(ValueError):
            dist.tiles_of_rank(4, TileLayout.square(8, 4))

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            BlockCyclicDistribution(p=0, q=1)

    def test_negative_tile_raises(self):
        dist = BlockCyclicDistribution(p=2, q=2)
        with pytest.raises(IndexError):
            dist.owner(-1, 0)
