"""Tests for the Tile storage object."""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.tiles.tile import Tile


class TestTile:
    def test_payload_quantized_on_construction(self):
        tile = Tile(np.array([[1.0 + 1e-8, 2.0]]), precision=Precision.FP16)
        assert tile.data.dtype == np.float16
        assert float(tile.data[0, 0]) == np.float16(1.0)

    def test_fp8_tile_values_on_grid(self):
        tile = Tile(np.array([1000.0, 0.3]), precision=Precision.FP8_E4M3)
        assert float(tile.data[0]) == 448.0

    def test_nbytes_reflects_precision(self):
        data = np.ones((8, 8))
        assert Tile(data, Precision.FP64).nbytes == 8 * 64
        assert Tile(data, Precision.FP16).nbytes == 2 * 64
        assert Tile(data, Precision.FP8_E4M3).nbytes == 64

    def test_convert_roundtrip_loses_information(self):
        rng = np.random.default_rng(0)
        tile = Tile(rng.normal(size=(6, 6)), precision=Precision.FP64)
        low = tile.convert(Precision.FP8_E4M3)
        back = low.convert(Precision.FP64)
        assert not np.allclose(back.data, tile.data)
        assert low.precision is Precision.FP8_E4M3

    def test_convert_inplace_bumps_version(self):
        tile = Tile(np.ones((3, 3)), precision=Precision.FP32)
        v0 = tile.version
        tile.convert_(Precision.FP16)
        assert tile.precision is Precision.FP16
        assert tile.version == v0 + 1

    def test_update_requantizes(self):
        tile = Tile(np.zeros((2, 2)), precision=Precision.FP16)
        tile.update(np.full((2, 2), 1e6))
        assert float(tile.data[0, 0]) == pytest.approx(65504.0)

    def test_norm_and_max_abs(self):
        tile = Tile(np.array([[3.0, 4.0]]), precision=Precision.FP64)
        assert tile.norm() == pytest.approx(5.0)
        assert tile.max_abs() == 4.0

    def test_empty_tile_max_abs(self):
        tile = Tile(np.zeros((0, 3)), precision=Precision.FP32)
        assert tile.max_abs() == 0.0

    def test_copy_is_independent(self):
        tile = Tile(np.ones((2, 2)), precision=Precision.FP32, coords=(1, 2))
        dup = tile.copy()
        dup.update(np.zeros((2, 2)))
        assert float(tile.data[0, 0]) == 1.0
        assert dup.coords == (1, 2)

    def test_to_float64_returns_copy(self):
        tile = Tile(np.ones((2, 2)), precision=Precision.FP32)
        arr = tile.to_float64()
        arr[0, 0] = 99.0
        assert float(tile.data[0, 0]) == 1.0
