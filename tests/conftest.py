"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests without installing the package (e.g. straight
# from a source checkout on an offline machine).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_genotypes() -> np.ndarray:
    """A small LD-structured genotype matrix shared across tests."""
    from repro.data.genotypes import simulate_genotypes

    return simulate_genotypes(120, 40, seed=7, maf_low=0.2)


@pytest.fixture(scope="session")
def small_cohort():
    """A small UK-BioBank-like cohort (two diseases) shared across tests."""
    from repro.data.ukb import make_ukb_like_cohort

    return make_ukb_like_cohort(
        n_individuals=260, n_snps=48, seed=11,
        diseases=(("Hypertension", 0.27), ("Asthma", 0.12)),
    )


@pytest.fixture(scope="session")
def spd_matrix(rng) -> np.ndarray:
    """A well-conditioned SPD matrix for linear-algebra tests."""
    a = rng.standard_normal((96, 96))
    return a @ a.T / 96.0 + 2.0 * np.eye(96)


@pytest.fixture(scope="session")
def accuracy_workflow():
    """A GWASWorkflow on a cohort where KRR clearly beats RR (session-cached)."""
    from repro.data.ukb import make_ukb_like_cohort
    from repro.gwas.workflow import GWASWorkflow

    cohort = make_ukb_like_cohort(n_individuals=520, n_snps=64, seed=42)
    return GWASWorkflow(cohort, train_fraction=0.8, seed=0)
