"""Tests for the list scheduler, devices, traces, and the Runtime facade."""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.runtime.device import Device, DeviceModel, GENERIC_GPU, make_devices
from repro.runtime.runtime import Runtime
from repro.runtime.task import AccessMode


class TestDeviceModel:
    def test_throughput_fallbacks(self):
        assert GENERIC_GPU.throughput_for(Precision.FP16) == \
            GENERIC_GPU.throughput[Precision.FP16]
        # BF16 falls back to FP16, INT32 to INT8, E5M2 to E4M3
        assert GENERIC_GPU.throughput_for(Precision.BF16) == \
            GENERIC_GPU.throughput[Precision.FP16]
        assert GENERIC_GPU.throughput_for(Precision.INT32) == \
            GENERIC_GPU.throughput[Precision.INT8]

    def test_task_time(self):
        model = DeviceModel("d", {Precision.FP32: 1e12})
        assert model.task_time(1e12, Precision.FP32) == pytest.approx(1.0)

    def test_transfer_time_includes_latency(self):
        model = DeviceModel("d", {Precision.FP32: 1e12}, link_bandwidth=1e9,
                            link_latency=1e-5)
        assert model.transfer_time(0) == 0.0
        assert model.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_make_devices(self):
        devices = make_devices(3)
        assert len(devices) == 3
        assert [d.index for d in devices] == [0, 1, 2]
        with pytest.raises(ValueError):
            make_devices(0)

    def test_device_utilization(self):
        d = Device(index=0)
        d.busy_time = 2.0
        assert d.utilization(4.0) == 0.5
        assert d.utilization(0.0) == 0.0


class TestRuntimeExecution:
    def test_correct_execution_order_and_results(self):
        rt = Runtime(workers=2)
        a = rt.register_data("a", payload=np.array([1.0]))
        b = rt.register_data("b", payload=np.array([0.0]))
        rt.insert_task("double", (a, AccessMode.READWRITE), body=lambda x: x * 2,
                       flops=10)
        rt.insert_task("copy", (a, AccessMode.READ), (b, AccessMode.WRITE),
                       body=lambda x, y: x + 1, flops=10)
        result = rt.run()
        np.testing.assert_array_equal(a.payload, [2.0])
        np.testing.assert_array_equal(b.payload, [3.0])
        assert result.trace.num_tasks == 2

    def test_all_tasks_executed_in_dependency_order(self):
        rt = Runtime(workers=4)
        handles = [rt.register_data(f"x{i}", payload=i) for i in range(6)]
        order = []

        def make_body(idx):
            def body(*args):
                order.append(idx)
            return body

        # chain: each task reads the previous handle and writes the next
        for i in range(5):
            rt.insert_task(f"t{i}", (handles[i], AccessMode.READ),
                           (handles[i + 1], AccessMode.WRITE),
                           body=make_body(i), flops=1.0)
        rt.run()
        assert order == sorted(order)

    def test_duplicate_data_name_raises(self):
        rt = Runtime()
        rt.register_data("a")
        with pytest.raises(ValueError):
            rt.register_data("a")

    def test_makespan_respects_critical_path(self):
        model = DeviceModel("slow", {Precision.FP32: 1e9})
        rt = Runtime(num_devices=8, device_model=model, execution="simulated")
        a = rt.register_data("a", payload=1.0, precision=Precision.FP32)
        for _ in range(4):
            rt.insert_task("step", (a, AccessMode.READWRITE), flops=1e9,
                           precision=Precision.FP32)
        result = rt.run()
        # 4 dependent tasks of 1 s each cannot finish faster than 4 s
        assert result.makespan >= 4.0

    def test_parallel_tasks_use_multiple_devices(self):
        model = DeviceModel("slow", {Precision.FP32: 1e9})
        rt = Runtime(num_devices=4, device_model=model, execution="simulated")
        handles = [rt.register_data(f"h{i}", payload=1.0, shape=(1,),
                                    home_device=i) for i in range(4)]
        for h in handles:
            rt.insert_task("work", (h, AccessMode.READWRITE), flops=1e9,
                           precision=Precision.FP32)
        result = rt.run()
        devices_used = {e.device for e in result.trace.events}
        assert len(devices_used) == 4
        assert result.makespan == pytest.approx(1.0, rel=0.1)

    def test_transfers_recorded_when_data_moves(self):
        rt = Runtime(num_devices=2, execution="simulated")
        a = rt.register_data("a", payload=np.ones((16, 16)),
                             precision=Precision.FP32, home_device=0)
        b = rt.register_data("b", payload=np.zeros((16, 16)),
                             precision=Precision.FP32, home_device=1)
        rt.insert_task("use", (a, AccessMode.READ), (b, AccessMode.READWRITE),
                       flops=1.0, precision=Precision.FP32)
        result = rt.run()
        assert result.comm.num_transfers >= 1
        assert result.comm.total_bytes > 0

    def test_priority_breaks_ties(self):
        rt = Runtime(workers=1)
        executed = []
        a = rt.register_data("a", payload=0)
        b = rt.register_data("b", payload=0)
        rt.insert_task("low", (a, AccessMode.READWRITE),
                       body=lambda x: executed.append("low"), priority=0)
        rt.insert_task("high", (b, AccessMode.READWRITE),
                       body=lambda x: executed.append("high"), priority=10)
        rt.run()
        assert executed[0] == "high"

    def test_trace_summary_and_flops_by_precision(self):
        rt = Runtime(workers=1)
        a = rt.register_data("a", payload=1.0)
        rt.insert_task("k16", (a, AccessMode.READWRITE), flops=100,
                       precision=Precision.FP16)
        rt.insert_task("k32", (a, AccessMode.READWRITE), flops=50,
                       precision=Precision.FP32)
        result = rt.run()
        summary = result.summary()
        assert summary["total_flops"] == 150
        by_prec = result.trace.flops_by_precision()
        assert by_prec[Precision.FP16] == 100
        assert by_prec[Precision.FP32] == 50

    def test_reset_graph_keeps_data(self):
        rt = Runtime()
        a = rt.register_data("a", payload=1.0)
        rt.insert_task("t", (a, AccessMode.READWRITE), flops=1.0)
        rt.run()
        rt.reset_graph()
        assert rt.num_tasks() == 0
        assert rt.data("a") is a

    def test_gantt_rows_sorted(self):
        rt = Runtime(workers=2)
        a = rt.register_data("a", payload=1.0)
        for i in range(3):
            rt.insert_task(f"t{i}", (a, AccessMode.READWRITE), flops=10.0)
        result = rt.run()
        rows = result.trace.gantt_rows()
        for events in rows.values():
            starts = [s for s, _, _ in events]
            assert starts == sorted(starts)
