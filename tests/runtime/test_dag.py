"""Tests for dataflow dependency derivation and DAG queries."""

import pytest

from repro.precision.formats import Precision
from repro.runtime.dag import TaskGraph
from repro.runtime.task import AccessMode, DataHandle


@pytest.fixture
def handles():
    return DataHandle("A"), DataHandle("B"), DataHandle("C")


class TestDependencies:
    def test_read_after_write(self, handles):
        a, _, _ = handles
        g = TaskGraph()
        w = g.insert_task("write", (a, AccessMode.WRITE))
        r = g.insert_task("read", (a, AccessMode.READ))
        assert w in g.predecessors(r)
        assert g.graph.edges[w, r]["kind"] == "RAW"

    def test_write_after_read(self, handles):
        a, _, _ = handles
        g = TaskGraph()
        g.insert_task("init", (a, AccessMode.WRITE))
        r = g.insert_task("read", (a, AccessMode.READ))
        w2 = g.insert_task("overwrite", (a, AccessMode.WRITE))
        assert r in g.predecessors(w2)

    def test_write_after_write(self, handles):
        a, _, _ = handles
        g = TaskGraph()
        w1 = g.insert_task("w1", (a, AccessMode.WRITE))
        w2 = g.insert_task("w2", (a, AccessMode.WRITE))
        assert w1 in g.predecessors(w2)

    def test_independent_tasks_have_no_edge(self, handles):
        a, b, _ = handles
        g = TaskGraph()
        t1 = g.insert_task("t1", (a, AccessMode.READWRITE))
        t2 = g.insert_task("t2", (b, AccessMode.READWRITE))
        assert g.num_edges == 0
        assert t2 not in g.successors(t1)

    def test_parallel_reads_share_no_edges(self, handles):
        a, _, _ = handles
        g = TaskGraph()
        g.insert_task("init", (a, AccessMode.WRITE))
        r1 = g.insert_task("r1", (a, AccessMode.READ))
        r2 = g.insert_task("r2", (a, AccessMode.READ))
        assert r1 not in g.predecessors(r2)
        assert r2 not in g.predecessors(r1)

    def test_readwrite_chains_serialize(self, handles):
        a, _, _ = handles
        g = TaskGraph()
        tasks = [g.insert_task(f"t{i}", (a, AccessMode.READWRITE)) for i in range(5)]
        order = g.topological_order()
        assert order == tasks


class TestGraphQueries:
    def _diamond(self):
        a, b, c, d = (DataHandle(x) for x in "abcd")
        g = TaskGraph()
        t0 = g.insert_task("src", (a, AccessMode.WRITE), flops=1.0)
        t1 = g.insert_task("l", (a, AccessMode.READ), (b, AccessMode.WRITE), flops=2.0)
        t2 = g.insert_task("r", (a, AccessMode.READ), (c, AccessMode.WRITE), flops=5.0)
        t3 = g.insert_task("sink", (b, AccessMode.READ), (c, AccessMode.READ),
                           (d, AccessMode.WRITE), flops=1.0)
        return g, (t0, t1, t2, t3)

    def test_topological_order_valid(self):
        g, (t0, t1, t2, t3) = self._diamond()
        order = g.topological_order()
        assert order.index(t0) < order.index(t1) < order.index(t3)
        assert order.index(t0) < order.index(t2) < order.index(t3)

    def test_is_acyclic(self):
        g, _ = self._diamond()
        assert g.is_acyclic()

    def test_total_and_critical_path_flops(self):
        g, _ = self._diamond()
        assert g.total_flops() == 9.0
        assert g.critical_path_flops() == 7.0  # src -> r -> sink

    def test_task_counts_by_name(self):
        g, _ = self._diamond()
        counts = g.task_counts_by_name()
        assert counts == {"src": 1, "l": 1, "r": 1, "sink": 1}

    def test_execute_sequential_runs_bodies(self):
        a = DataHandle("a", payload=0)
        g = TaskGraph()
        g.insert_task("inc", (a, AccessMode.READWRITE), body=lambda x: x + 1)
        g.insert_task("inc", (a, AccessMode.READWRITE), body=lambda x: x + 1)
        g.execute_sequential()
        assert a.payload == 2

    def test_len_and_precision_default(self):
        g, _ = self._diamond()
        assert len(g) == 4
        assert g.tasks[0].precision is Precision.FP64

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.critical_path_flops() == 0.0
        assert g.topological_order() == []
