"""Tests for tasks and data handles."""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.runtime.task import AccessMode, DataHandle, Task


class TestAccessMode:
    def test_read_flags(self):
        assert AccessMode.READ.reads and not AccessMode.READ.writes
        assert AccessMode.WRITE.writes and not AccessMode.WRITE.reads
        assert AccessMode.READWRITE.reads and AccessMode.READWRITE.writes


class TestDataHandle:
    def test_nbytes_uses_precision(self):
        h = DataHandle("A", shape=(8, 8), precision=Precision.FP16)
        assert h.nbytes() == 128
        assert h.nbytes(Precision.FP64) == 512

    def test_unique_uids(self):
        a = DataHandle("x")
        b = DataHandle("x")
        assert a.uid != b.uid
        assert hash(a) != hash(b)

    def test_scalar_handle(self):
        h = DataHandle("s", shape=(), precision=Precision.FP32)
        assert h.nbytes() == 4


class TestTask:
    def test_reads_and_writes(self):
        a = DataHandle("A")
        b = DataHandle("B")
        t = Task("gemm", ((a, AccessMode.READ), (b, AccessMode.READWRITE)))
        assert t.reads == (a, b)
        assert t.writes == (b,)

    def test_mode_coercion_from_string_value(self):
        a = DataHandle("A")
        t = Task("k", ((a, "RW"),))
        assert t.accesses[0][1] is AccessMode.READWRITE

    def test_execute_inplace_body(self):
        a = DataHandle("A", payload=np.ones(3))
        calls = []
        t = Task("noop", ((a, AccessMode.READ),), body=lambda x: calls.append(x.sum()))
        t.execute()
        assert calls == [3.0]

    def test_execute_returns_new_payload(self):
        a = DataHandle("A", payload=np.ones(3))
        b = DataHandle("B", payload=np.zeros(3))
        t = Task("copy", ((a, AccessMode.READ), (b, AccessMode.WRITE)),
                 body=lambda x, y: x * 2)
        t.execute()
        np.testing.assert_array_equal(b.payload, [2, 2, 2])
        np.testing.assert_array_equal(a.payload, [1, 1, 1])

    def test_execute_output_count_mismatch(self):
        a = DataHandle("A", payload=1.0)
        t = Task("bad", ((a, AccessMode.READ),), body=lambda x: (x, x))
        with pytest.raises(RuntimeError, match="outputs"):
            t.execute()

    def test_no_body_is_noop(self):
        t = Task("empty", ())
        t.execute()  # must not raise

    def test_byte_accounting(self):
        a = DataHandle("A", shape=(4, 4), precision=Precision.FP32)
        b = DataHandle("B", shape=(4, 4), precision=Precision.FP16)
        t = Task("k", ((a, AccessMode.READ), (b, AccessMode.WRITE)))
        assert t.bytes_read() == 64
        assert t.bytes_written() == 32
