"""Tests for the threaded out-of-order executor and runtime reuse.

Three layers of guarantees are pinned here:

1. **Dependency correctness under concurrency** — WAR/WAW/RAW edges
   derived from access declarations are honoured by the worker pool,
   and the critical-path length bounds what can overlap.
2. **Bitwise determinism** — the threaded executor's Cholesky and
   Build outputs equal the serial reference bit for bit, across
   precision plans (fp64 / fp32 / adaptive-fp16 / adaptive-fp8) and
   worker counts {1, 2, 8}.
3. **Session-long reuse** — repeated ``run()`` calls drain the pending
   graph without rebuilding scheduler state, namespaces keep the handle
   registry collision-free, and foreign handles are rejected.
"""

import threading

import numpy as np
import pytest

from repro.distance.build import KernelBuilder
from repro.gwas.config import PrecisionPlan
from repro.linalg.cholesky import cholesky
from repro.precision.formats import Precision
from repro.runtime.dag import TaskGraph
from repro.runtime.runtime import Runtime, resolve_workers
from repro.runtime.task import AccessMode, DataHandle


def _spd(n, seed=0, diag=4.0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a = a @ a.T / n
    return a + diag * np.eye(n)


PLANS = [
    PrecisionPlan.fp64(),
    PrecisionPlan.fp32(),
    PrecisionPlan.adaptive_fp16(),
    PrecisionPlan.adaptive_fp8(),
]
WORKER_COUNTS = (1, 2, 8)


class TestDependencyOrderingUnderConcurrency:
    def test_waw_chain_executes_in_insertion_order(self):
        """READWRITE tasks on one handle must serialize, even with a
        full worker pool racing over the ready set."""
        rt = Runtime(execution="threaded", workers=8)
        h = rt.register_data("acc", payload=[])
        order = []

        def make_body(idx):
            def body(acc):
                order.append(idx)
            return body

        for i in range(64):
            rt.insert_task(f"t{i}", (h, AccessMode.READWRITE),
                           body=make_body(i))
        rt.run()
        assert order == list(range(64))

    def test_war_blocks_overwrite_until_readers_finish(self):
        """A writer must not run before earlier readers of the handle."""
        rt = Runtime(execution="threaded", workers=8)
        a = rt.register_data("a", payload=np.array([1.0]))
        b = rt.register_data("b", payload=None)
        c = rt.register_data("c", payload=None)
        seen = {}

        rt.insert_task("read1", (a, AccessMode.READ), (b, AccessMode.WRITE),
                       body=lambda x, _: float(x[0]))
        rt.insert_task("read2", (a, AccessMode.READ), (c, AccessMode.WRITE),
                       body=lambda x, _: float(x[0]))
        rt.insert_task("overwrite", (a, AccessMode.WRITE),
                       body=lambda _: np.array([2.0]))
        rt.run()
        seen["b"], seen["c"] = b.payload, c.payload
        # both readers observed the pre-overwrite value
        assert seen == {"b": 1.0, "c": 1.0}
        np.testing.assert_array_equal(a.payload, [2.0])

    def test_independent_tasks_overlap_on_workers(self):
        """Tasks with no shared handles genuinely run concurrently."""
        rt = Runtime(execution="threaded", workers=4)
        barrier = threading.Barrier(4, timeout=10.0)

        def body(_):
            barrier.wait()  # deadlocks unless 4 bodies are in flight

        for i in range(4):
            h = rt.register_data(f"h{i}", payload=i)
            rt.insert_task(f"t{i}", (h, AccessMode.READWRITE), body=body)
        result = rt.run()
        assert result.trace.num_tasks == 4
        assert {e.device for e in result.trace.events} == {0, 1, 2, 3}

    def test_exceptions_propagate_from_worker_threads(self):
        from repro.runtime import TaskGroupError

        rt = Runtime(execution="threaded", workers=4)
        h = rt.register_data("x", payload=-np.eye(4))
        rt.insert_task("potrf", (h, AccessMode.READWRITE),
                       body=np.linalg.cholesky)
        rt.insert_task("never", (h, AccessMode.READWRITE),
                       body=lambda a: a)
        with pytest.raises(TaskGroupError) as excinfo:
            rt.run()
        # the aggregate error carries every failure with task context
        exc = excinfo.value
        assert exc.matches(np.linalg.LinAlgError)
        assert [f.task.name for f in exc.failures] == ["potrf"]
        assert "potrf" in str(exc)
        # both the failed task and the successor it blocked are parked
        # as the pending graph, ready for a resumed run()
        assert rt.num_tasks() == 2
        assert [t.name for t in rt.graph.tasks] == ["potrf", "never"]

    def test_diamond_dependencies(self):
        """fan-out/fan-in: both branches read the source, the sink reads
        both branches — any interleaving must produce the same sink."""
        for _ in range(5):  # repeat to shake out scheduling races
            rt = Runtime(execution="threaded", workers=8)
            src = rt.register_data("src", payload=np.array([3.0]))
            l = rt.register_data("l", payload=None)
            r = rt.register_data("r", payload=None)
            out = rt.register_data("out", payload=None)
            rt.insert_task("left", (src, AccessMode.READ), (l, AccessMode.WRITE),
                           body=lambda s, _: s * 2)
            rt.insert_task("right", (src, AccessMode.READ), (r, AccessMode.WRITE),
                           body=lambda s, _: s + 1)
            rt.insert_task("join", (l, AccessMode.READ), (r, AccessMode.READ),
                           (out, AccessMode.WRITE),
                           body=lambda x, y, _: x + y)
            rt.run()
            np.testing.assert_array_equal(out.payload, [10.0])


class TestCriticalPath:
    def test_chain_critical_path_length(self):
        g = TaskGraph()
        h = DataHandle("h")
        for i in range(7):
            g.insert_task(f"t{i}", (h, AccessMode.READWRITE))
        assert g.critical_path_length() == 7

    def test_parallel_tasks_have_unit_depth(self):
        g = TaskGraph()
        for i in range(5):
            g.insert_task(f"t{i}", (DataHandle(f"h{i}"), AccessMode.READWRITE))
        assert g.critical_path_length() == 1

    def test_cholesky_dag_depth_matches_elimination_structure(self):
        """Right-looking tiled Cholesky on an nt x nt grid has a
        POTRF -> TRSM -> (SYRK|GEMM) chain per panel: depth 3(nt-1)+1."""
        nt = 4
        rt = Runtime(execution="simulated")
        cholesky(_spd(16 * nt), tile_size=16, runtime=rt)
        graph = rt.last_graph
        assert graph.critical_path_length() == 3 * (nt - 1) + 1
        # and the critical-path flops bound the simulated makespan
        assert graph.critical_path_flops() <= graph.total_flops()

    def test_empty_graph(self):
        assert TaskGraph().critical_path_length() == 0


class TestBitwiseDeterminism:
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.label())
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_threaded_cholesky_bitwise_identical_to_serial(self, plan, workers):
        n, ts = 96, 16
        a = _spd(n, seed=3)
        from repro.tiles.layout import TileLayout

        pmap = plan.precision_map(TileLayout.square(n, ts), matrix=a)
        serial = cholesky(a, tile_size=ts,
                          working_precision=plan.working_precision,
                          precision_map=pmap, execution="serial")
        threaded = cholesky(a, tile_size=ts,
                            working_precision=plan.working_precision,
                            precision_map=pmap,
                            execution="threaded", workers=workers)
        np.testing.assert_array_equal(threaded.to_dense(), serial.to_dense())
        assert threaded.flops == serial.flops
        assert threaded.flops_by_precision == serial.flops_by_precision

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("storage", [
        Precision.FP64, Precision.FP32, Precision.FP16, Precision.FP8_E4M3,
    ])
    def test_threaded_build_bitwise_identical_to_serial(self, small_genotypes,
                                                        storage, workers):
        genotypes = small_genotypes[:72]
        serial = KernelBuilder(gamma=0.03, tile_size=16,
                               storage_precision=storage,
                               execution="serial").build_training(genotypes)
        threaded = KernelBuilder(gamma=0.03, tile_size=16,
                                 storage_precision=storage,
                                 execution="threaded",
                                 workers=workers).build_training(genotypes)
        np.testing.assert_array_equal(threaded.to_dense(), serial.to_dense())
        assert threaded.flops == serial.flops
        assert threaded.flops_by_precision == serial.flops_by_precision

    def test_stress_repeated_threaded_runs_are_stable(self):
        """Same DAG, many threaded executions, one bit pattern."""
        a = _spd(64, seed=9)
        reference = cholesky(a, tile_size=16, execution="serial").to_dense()
        for _ in range(10):
            again = cholesky(a, tile_size=16, execution="threaded",
                             workers=8).to_dense()
            np.testing.assert_array_equal(again, reference)


class TestRuntimeReuse:
    def test_run_drains_pending_tasks_only(self):
        rt = Runtime(execution="threaded", workers=2)
        h = rt.register_data("x", payload=np.array([1.0]))
        rt.insert_task("inc", (h, AccessMode.READWRITE), body=lambda v: v + 1)
        first = rt.run()
        assert first.trace.num_tasks == 1
        # a second run with nothing pending must be a no-op, not a replay
        second = rt.run()
        assert second.trace.num_tasks == 0
        np.testing.assert_array_equal(h.payload, [2.0])

    def test_scheduler_not_rebuilt_between_runs(self):
        rt = Runtime(execution="threaded", workers=2)
        scheduler = rt.scheduler
        for i in range(3):
            h = rt.register_data(f"x{i}", payload=float(i))
            rt.insert_task("t", (h, AccessMode.READWRITE), body=lambda v: v)
            rt.run()
        assert rt.scheduler is scheduler
        rt.reset_graph()
        assert rt.scheduler is scheduler
        assert rt.runs_completed == 3

    def test_session_trace_accumulates_across_runs(self):
        rt = Runtime(execution="threaded", workers=2)
        for i in range(3):
            h = rt.register_data(f"x{i}", payload=1.0)
            rt.insert_task("t", (h, AccessMode.READWRITE), flops=10.0,
                           precision=Precision.FP32, body=lambda v: v)
            rt.run(phase="build" if i == 0 else "associate")
        assert rt.session_trace.num_tasks == 3
        assert rt.phase_trace("build").num_tasks == 1
        assert rt.phase_trace("associate").num_tasks == 2
        rt.clear_phase("associate")
        assert rt.phase_trace("associate").num_tasks == 0
        assert rt.session_trace.num_tasks == 3

    def test_foreign_handle_rejected(self):
        rt = Runtime(execution="threaded")
        other = Runtime(execution="threaded")
        foreign = other.register_data("x", payload=1.0)
        with pytest.raises(RuntimeError, match="not registered"):
            rt.insert_task("t", (foreign, AccessMode.READ))

    def test_released_handle_rejected(self):
        rt = Runtime(execution="threaded")
        h = rt.register_data("ns:x", payload=1.0)
        assert rt.release("ns:") == 1
        with pytest.raises(RuntimeError, match="not registered"):
            rt.insert_task("t", (h, AccessMode.READ))

    def test_register_exist_ok_checks_shape(self):
        rt = Runtime(execution="threaded")
        h = rt.register_data("x", shape=(4, 4))
        assert rt.register_data("x", shape=(4, 4), exist_ok=True) is h
        with pytest.raises(ValueError, match="re-registered"):
            rt.register_data("x", shape=(2, 2), exist_ok=True)
        with pytest.raises(ValueError, match="already registered"):
            rt.register_data("x", shape=(4, 4))

    def test_namespaces_are_unique(self):
        rt = Runtime(execution="threaded")
        assert rt.namespace("chol") != rt.namespace("chol")

    def test_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(5) == 5  # explicit wins
        assert Runtime(execution="threaded").workers == 3

    def test_invalid_execution_mode_rejected(self):
        with pytest.raises(ValueError, match="execution"):
            Runtime(execution="warp-speed")


class TestLibraryDrainGuard:
    def test_insert_and_drain_routines_refuse_pending_foreign_tasks(self):
        from repro.linalg.cholesky import cholesky

        rt = Runtime(execution="threaded", workers=2)
        h = rt.register_data("mine", payload=np.array([1.0]))
        rt.insert_task("foreign", (h, AccessMode.READWRITE), body=lambda v: v)
        a = _spd(32)
        with pytest.raises(RuntimeError, match="unrelated pending"):
            cholesky(a, tile_size=16, runtime=rt)
        # the foreign task was not executed and is still pending
        assert rt.num_tasks() == 1
        rt.run()
        assert rt.num_tasks() == 0
        cholesky(a, tile_size=16, runtime=rt)  # now fine

    def test_register_exist_ok_checks_precision(self):
        rt = Runtime(execution="threaded")
        rt.register_data("x", shape=(4, 4), precision=Precision.FP32)
        with pytest.raises(ValueError, match="re-registered"):
            rt.register_data("x", shape=(4, 4), precision=Precision.FP16,
                             exist_ok=True)
