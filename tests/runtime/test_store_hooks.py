"""Scheduler ↔ store integration: pin/unpin lifecycle and eviction
raciness under threaded out-of-order DAG execution.

The headline invariant: an 8-worker threaded DAG Cholesky over a
store-backed workspace with a budget a fraction of the mosaic stays
**bitwise identical** to the serial, fully-resident elimination — for
every precision plan, because spill/reload round-trips are exact and
every ordering constraint is an explicit dependency edge.
"""

import numpy as np
import pytest

from repro.gwas.config import PrecisionPlan
from repro.linalg.cholesky import cholesky
from repro.precision.formats import Precision
from repro.runtime.runtime import Runtime
from repro.runtime.task import AccessMode
from repro.store import StoreSchedulerHooks, TileStore
from repro.tiles.matrix import TileMatrix

TILE = 32


def spd(rng, n):
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


PLANS = {
    "fp64": PrecisionPlan.fp64(),
    "fp32": PrecisionPlan.fp32(),
    "adaptive-fp16": PrecisionPlan.adaptive_fp16(),
    "adaptive-fp8": PrecisionPlan.adaptive_fp8(),
}


class TestHookLifecycle:
    def test_pins_follow_dispatch_and_complete(self, rng):
        """Every pin taken at dispatch is released by completion."""
        tm = TileMatrix.from_dense(spd(rng, 4 * TILE), TILE, Precision.FP64)
        with TileStore(budget_bytes=2 * TILE * TILE * 8) as store:
            tm.attach_store(store)
            binding = tm._binding
            events = []

            class Spy(StoreSchedulerHooks):
                def task_dispatch(self, task):
                    events.append(("dispatch", task.name))
                    super().task_dispatch(task)

                def task_complete(self, task):
                    events.append(("complete", task.name))
                    super().task_complete(task)

            rt = Runtime(execution="threaded", workers=4)
            rt.scheduler.hooks = Spy(store)
            handles = [rt.register_data(f"t{d}", payload=None)
                       for d in range(4)]
            for d in range(4):
                rt.insert_task(
                    f"touch{d}", (handles[d], AccessMode.READWRITE),
                    body=(lambda d=d: (lambda _:
                          tm.set_tile(d, d, tm.get_tile(d, d).to_float64()
                                      + 1.0)))(),
                    tile_deps=((binding, (d, d)),),
                )
            rt.run()
            assert len([e for e in events if e[0] == "dispatch"]) == 4
            assert len([e for e in events if e[0] == "complete"]) == 4
            # all pins released: every diagonal tile is evictable again
            for d in range(4):
                assert not store.residency.pinned((binding.bid, (d, d)))

    def test_hooks_fire_in_serial_mode_too(self, rng):
        tm = TileMatrix.from_dense(spd(rng, 2 * TILE), TILE, Precision.FP64)
        with TileStore(budget_bytes=TILE * TILE * 8) as store:
            tm.attach_store(store)
            binding = tm._binding
            seen = []

            class Spy(StoreSchedulerHooks):
                def task_ready(self, task):
                    seen.append("ready")
                    super().task_ready(task)

            rt = Runtime(execution="serial")
            rt.scheduler.hooks = Spy(store)
            h = rt.register_data("x", payload=None)
            rt.insert_task("noop", (h, AccessMode.READWRITE),
                           body=lambda _: None,
                           tile_deps=((binding, (0, 0)),))
            rt.run()
            assert seen == ["ready"]

    def test_pins_released_on_task_failure(self, rng):
        tm = TileMatrix.from_dense(spd(rng, 2 * TILE), TILE, Precision.FP64)
        with TileStore(budget_bytes=TILE * TILE * 8) as store:
            tm.attach_store(store)
            binding = tm._binding
            rt = Runtime(execution="threaded", workers=2)
            rt.scheduler.hooks = StoreSchedulerHooks(store)
            h = rt.register_data("x", payload=None)

            def boom(_):
                raise RuntimeError("task failure")

            rt.insert_task("boom", (h, AccessMode.READWRITE), body=boom,
                           tile_deps=((binding, (0, 0)),))
            with pytest.raises(RuntimeError, match="task failure"):
                rt.run()
            assert not store.residency.pinned((binding.bid, (0, 0)))

    def test_attach_store_idempotent_and_exclusive(self):
        rt = Runtime(execution="serial")
        with TileStore() as s1, TileStore() as s2:
            rt.attach_store(s1)
            rt.attach_store(s1)  # no-op
            with pytest.raises(RuntimeError, match="already has"):
                rt.attach_store(s2)


class TestThreadedCholeskyUnderBudget:
    """The eviction-raciness net: threaded + tight budget == serial."""

    N = 8 * TILE  # an 8x8 tile grid: plenty of concurrent trailing GEMMs

    @pytest.fixture(scope="class")
    def matrix(self):
        rng = np.random.default_rng(99)
        return spd(rng, self.N)

    @pytest.mark.parametrize("plan_name", list(PLANS))
    def test_bitwise_vs_serial_unbudgeted(self, matrix, plan_name):
        plan = PLANS[plan_name]

        def tiled_input():
            tm = TileMatrix.from_dense(matrix, TILE, Precision.FP64,
                                       symmetric=True)
            pmap = plan.precision_map(tm.layout, matrix=tm)
            tm.apply_precision_map(pmap)
            return tm, pmap

        ref_tm, pmap = tiled_input()
        ref = cholesky(ref_tm, working_precision=plan.working_precision,
                       precision_map=pmap, execution="serial")

        oo_tm, pmap_oo = tiled_input()
        assert pmap_oo == pmap
        budget = max(oo_tm.nbytes() // 4, 6 * TILE * TILE * 8)
        with TileStore(budget_bytes=budget) as store:
            oo_tm.attach_store(store)
            rt = Runtime(execution="threaded", workers=8)
            res = cholesky(oo_tm, working_precision=plan.working_precision,
                           precision_map=pmap, runtime=rt)
            np.testing.assert_array_equal(res.to_dense(), ref.to_dense())
            assert res.factor.store is store
            assert store.stats.spills > 0
            assert store.stats.reloads > 0
            # flop accounting agrees with the resident path
            assert res.flops == ref.flops
            assert res.flops_by_precision == ref.flops_by_precision

    def test_repeated_runs_deterministic(self, matrix):
        plan = PLANS["adaptive-fp16"]
        outputs = []
        for _ in range(3):
            tm = TileMatrix.from_dense(matrix, TILE, Precision.FP64,
                                       symmetric=True)
            pmap = plan.precision_map(tm.layout, matrix=tm)
            tm.apply_precision_map(pmap)
            with TileStore(budget_bytes=tm.nbytes() // 4) as store:
                tm.attach_store(store)
                rt = Runtime(execution="threaded", workers=8)
                res = cholesky(tm, working_precision=plan.working_precision,
                               precision_map=pmap, runtime=rt)
                outputs.append(res.to_dense())
        np.testing.assert_array_equal(outputs[0], outputs[1])
        np.testing.assert_array_equal(outputs[0], outputs[2])

    def test_peak_resident_under_budget_when_working_set_fits(self, matrix):
        """Build the workspace *inside* the store: peak <= budget."""
        plan = PLANS["fp32"]
        tm = TileMatrix.from_dense(matrix, TILE, Precision.FP64,
                                   symmetric=True)
        pmap = plan.precision_map(tm.layout, matrix=tm)
        tm.apply_precision_map(pmap)
        budget = tm.nbytes() // 2
        with TileStore(budget_bytes=budget) as store:
            # stream the kernel into store-backed storage (as the Build
            # phase does), so residency is budget-managed from tile one
            oo = TileMatrix.empty(self.N, self.N, TILE, Precision.FP64,
                                  symmetric=True)
            oo.attach_store(store)
            for i in range(oo.layout.tile_rows):
                for j in range(i + 1):
                    oo.set_tile(i, j, tm.get_tile(i, j).to_float64(),
                                precision=tm.tile_precision(i, j))
            # 4 workers x <=3 pinned tiles each fits the half budget;
            # larger pools could legitimately overflow it (pins win)
            rt = Runtime(execution="threaded", workers=4)
            res = cholesky(oo, working_precision=plan.working_precision,
                           precision_map=pmap, runtime=rt)
            assert store.stats.peak_resident_bytes <= budget
            assert store.stats.budget_overflows == 0
            ref = cholesky(tm, working_precision=plan.working_precision,
                           precision_map=pmap, execution="serial")
            np.testing.assert_array_equal(res.to_dense(), ref.to_dense())
