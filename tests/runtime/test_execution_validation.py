"""Typed validation of the execution-mode and worker-count knobs.

Unknown execution modes and non-positive worker counts must raise a
``ValueError`` that names the allowed modes / the offending knob —
both for explicit arguments and for the ``REPRO_EXECUTION`` /
``REPRO_WORKERS`` environment paths.
"""

import pytest

from repro.gwas.config import KRRConfig
from repro.runtime.runtime import (
    EXECUTION_ENV,
    WORKERS_ENV,
    Runtime,
    resolve_execution,
    resolve_workers,
)
from repro.runtime.scheduler import EXECUTION_MODES, Scheduler

ALL_MODES = ("serial", "threaded", "simulated", "process")


def test_execution_modes_constant_names_all_four():
    assert sorted(EXECUTION_MODES) == sorted(ALL_MODES)


class TestResolveExecution:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_valid_modes_pass_through(self, mode, monkeypatch):
        monkeypatch.delenv(EXECUTION_ENV, raising=False)
        assert resolve_execution(mode) == mode

    def test_default_is_threaded(self, monkeypatch):
        monkeypatch.delenv(EXECUTION_ENV, raising=False)
        assert resolve_execution() == "threaded"

    def test_bogus_argument_names_allowed_modes(self, monkeypatch):
        monkeypatch.delenv(EXECUTION_ENV, raising=False)
        with pytest.raises(ValueError) as err:
            resolve_execution("fork-join")
        for mode in ALL_MODES:
            assert mode in str(err.value)
        assert "fork-join" in str(err.value)

    def test_bogus_env_names_allowed_modes(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_ENV, "distributed")
        with pytest.raises(ValueError) as err:
            resolve_execution()
        for mode in ALL_MODES:
            assert mode in str(err.value)

    def test_env_selects_process(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_ENV, "process")
        assert resolve_execution() == "process"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_ENV, "process")
        assert resolve_execution("serial") == "serial"


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_raises(self, bad):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            resolve_workers(bad)

    def test_env_zero_raises_naming_knob(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()

    def test_env_garbage_raises_naming_knob(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "abc")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()

    def test_env_valid_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert resolve_workers() == 2


class TestSchedulerAndRuntime:
    def test_scheduler_rejects_unknown_mode(self):
        with pytest.raises(ValueError) as err:
            Scheduler(execution="mpi")
        for mode in ALL_MODES:
            assert mode in str(err.value)

    def test_runtime_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.delenv(EXECUTION_ENV, raising=False)
        with pytest.raises(ValueError) as err:
            Runtime(execution="bogus")
        for mode in ALL_MODES:
            assert mode in str(err.value)

    def test_runtime_env_driven_bogus_mode(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_ENV, "bogus")
        with pytest.raises(ValueError):
            Runtime()

    def test_runtime_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            Runtime(execution="threaded", workers=0)

    def test_runtime_env_process_mode_runs(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_ENV, "process")
        monkeypatch.setenv(WORKERS_ENV, "1")
        rt = Runtime()
        try:
            assert rt.execution == "process"
            assert rt.workers == 1
        finally:
            rt.close()


class TestKRRConfigValidation:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_valid_modes_accepted(self, mode):
        assert KRRConfig(execution=mode).execution == mode

    def test_none_is_accepted(self):
        assert KRRConfig().execution is None

    def test_bogus_mode_raises_naming_modes(self):
        with pytest.raises(ValueError) as err:
            KRRConfig(execution="async")
        for mode in ALL_MODES:
            assert mode in str(err.value)

    def test_zero_workers_raises(self):
        with pytest.raises(ValueError):
            KRRConfig(workers=0)
