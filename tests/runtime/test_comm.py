"""Tests for the communication engine and conversion-placement policy."""

import pytest

from repro.precision.formats import Precision
from repro.runtime.comm import (
    CommunicationEngine,
    ConversionPolicy,
    decide_conversion_side,
)
from repro.runtime.task import DataHandle


class TestConversionSide:
    def test_equal_precisions_no_conversion(self):
        assert decide_conversion_side(Precision.FP32, Precision.FP32) is \
            ConversionPolicy.NONE

    def test_narrower_destination_converts_at_sender(self):
        assert decide_conversion_side(Precision.FP32, Precision.FP16) is \
            ConversionPolicy.SENDER

    def test_wider_destination_converts_at_receiver(self):
        assert decide_conversion_side(Precision.FP8_E4M3, Precision.FP32) is \
            ConversionPolicy.RECEIVER


class TestWirePrecision:
    def test_adaptive_picks_narrower(self):
        engine = CommunicationEngine(adaptive_conversion=True)
        assert engine.wire_precision(Precision.FP32, Precision.FP16) is Precision.FP16
        assert engine.wire_precision(Precision.FP16, Precision.FP32) is Precision.FP16

    def test_non_adaptive_ships_source(self):
        engine = CommunicationEngine(adaptive_conversion=False)
        assert engine.wire_precision(Precision.FP32, Precision.FP16) is Precision.FP32


class TestLedger:
    def _handle(self, precision=Precision.FP32):
        return DataHandle("K(1,0)", shape=(32, 32), precision=precision)

    def test_record_transfer_bytes(self):
        engine = CommunicationEngine()
        record = engine.record_transfer(self._handle(), 0, 1, Precision.FP16)
        assert record.bytes_moved == 32 * 32 * 2  # FP16 on the wire
        assert record.policy is ConversionPolicy.SENDER
        assert engine.total_bytes == record.bytes_moved
        assert engine.num_transfers == 1

    def test_savings_vs_source_precision(self):
        engine = CommunicationEngine()
        engine.record_transfer(self._handle(Precision.FP32), 0, 1, Precision.FP16)
        # saved 2 bytes per element
        assert engine.savings_vs_source_precision() == 32 * 32 * 2

    def test_no_savings_when_same_precision(self):
        engine = CommunicationEngine()
        engine.record_transfer(self._handle(Precision.FP16), 0, 1, Precision.FP16)
        assert engine.savings_vs_source_precision() == 0

    def test_non_adaptive_moves_more_bytes(self):
        adaptive = CommunicationEngine(adaptive_conversion=True)
        baseline = CommunicationEngine(adaptive_conversion=False)
        for engine in (adaptive, baseline):
            engine.record_transfer(self._handle(Precision.FP32), 0, 1, Precision.FP16)
        assert adaptive.total_bytes < baseline.total_bytes

    def test_bytes_by_policy(self):
        engine = CommunicationEngine()
        engine.record_transfer(self._handle(Precision.FP32), 0, 1, Precision.FP16)
        engine.record_transfer(self._handle(Precision.FP16), 1, 0, Precision.FP32)
        by_policy = engine.bytes_by_policy()
        assert ConversionPolicy.SENDER in by_policy
        assert ConversionPolicy.RECEIVER in by_policy

    def test_reset(self):
        engine = CommunicationEngine()
        engine.record_transfer(self._handle(), 0, 1, Precision.FP32)
        engine.reset()
        assert engine.num_transfers == 0
        assert engine.total_bytes == 0
