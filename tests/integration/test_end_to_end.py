"""End-to-end integration tests of the paper's headline claims.

These tests exercise the whole stack — synthetic cohort generation,
the INT8 GEMM-form Build phase, the adaptive-precision tiled Cholesky
Associate phase, and the Predict phase — and assert the qualitative
results of the paper's evaluation:

1. KRR captures epistatic signal that linear RR misses (Table I/Fig. 5).
2. The adaptive FP16 mosaic preserves the FP32 accuracy (Fig. 5).
3. The FP8 floor degrades accuracy only slightly (Fig. 6 / Table I).
4. The runtime-scheduled factorization is numerically identical to the
   direct tile-by-tile execution.
5. KRR also beats the REGENIE-like and LMM baselines on epistatic traits.
"""

import numpy as np
import pytest

from repro.baselines.lmm import GRMLinearMixedModel
from repro.baselines.regenie import RegenieConfig, RegenieLikeRegression
from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig
from repro.gwas.krr import KernelRidgeRegressionGWAS
from repro.gwas.metrics import pearson_correlation
from repro.gwas.workflow import GWASWorkflow


@pytest.fixture(scope="module")
def workflow(accuracy_workflow):
    return accuracy_workflow


@pytest.fixture(scope="module")
def krr_result(workflow):
    return workflow.run_krr(KRRConfig(tile_size=64,
                                      precision_plan=PrecisionPlan.adaptive_fp16()))


@pytest.fixture(scope="module")
def rr_result(workflow):
    return workflow.run_rr(RRConfig(tile_size=16, regularization=10.0,
                                    precision_plan=PrecisionPlan.adaptive_fp16()))


class TestKRRvsRR:
    def test_krr_pearson_higher_on_average(self, krr_result, rr_result):
        assert krr_result.mean_pearson() > rr_result.mean_pearson() + 0.1

    def test_krr_mspe_lower_on_average(self, krr_result, rr_result):
        assert krr_result.mean_mspe() < 0.92 * rr_result.mean_mspe()

    def test_krr_wins_on_majority_of_diseases(self, krr_result, rr_result, workflow):
        names = workflow.dataset.phenotype_names
        wins = sum(krr_result.pearson(n) > rr_result.pearson(n) for n in names)
        assert wins >= len(names) - 1

    def test_rr_correlation_in_paper_range(self, rr_result):
        # linear RR saturates at the additive+confounder share (~0.2-0.4)
        assert 0.0 < rr_result.mean_pearson() < 0.5

    def test_krr_correlation_substantial(self, krr_result):
        assert krr_result.mean_pearson() > 0.4


class TestPrecisionPlans:
    def test_adaptive_fp16_matches_fp32_accuracy(self, workflow):
        fp32 = workflow.run_krr(KRRConfig(tile_size=64,
                                          precision_plan=PrecisionPlan.fp32()))
        fp16 = workflow.run_krr(KRRConfig(tile_size=64,
                                          precision_plan=PrecisionPlan.adaptive_fp16()))
        assert fp16.mean_mspe() == pytest.approx(fp32.mean_mspe(), rel=0.05)
        assert fp16.mean_pearson() == pytest.approx(fp32.mean_pearson(), abs=0.05)

    def test_fp8_floor_small_degradation_still_beats_rr(self, workflow, rr_result):
        fp8 = workflow.run_krr(KRRConfig(tile_size=64,
                                         precision_plan=PrecisionPlan.adaptive_fp8()))
        fp16 = workflow.run_krr(KRRConfig(tile_size=64,
                                          precision_plan=PrecisionPlan.adaptive_fp16()))
        # degradation vs FP16 is bounded ...
        assert fp8.mean_pearson() > fp16.mean_pearson() - 0.15
        # ... and FP8 KRR still clearly better than FP16 RR (Table I, last column)
        assert fp8.mean_pearson() > rr_result.mean_pearson()


class TestRuntimeConsistency:
    def test_runtime_and_direct_factorization_agree_end_to_end(self, workflow):
        """The task-runtime path must not change the numerics."""
        from repro.linalg import cholesky, solve_cholesky
        from repro.runtime import Runtime

        train = workflow.split.train
        model = KernelRidgeRegressionGWAS(KRRConfig(tile_size=64,
                                                    precision_plan=PrecisionPlan.fp32()))
        build = model.build(train.genotypes, train.confounders)
        a = build.to_dense() + model.config.alpha * np.eye(train.n_individuals)

        direct = cholesky(a, tile_size=64, working_precision="fp32",
                          execution="serial")
        runtime = Runtime(execution="threaded", workers=4)
        scheduled = cholesky(a, tile_size=64, working_precision="fp32",
                             runtime=runtime)
        np.testing.assert_array_equal(scheduled.to_dense(), direct.to_dense())

        y = train.phenotypes[:, :1] - train.phenotypes[:, :1].mean(axis=0)
        w_direct = solve_cholesky(direct, y, precision="fp32")
        w_sched = solve_cholesky(scheduled, y, precision="fp32")
        np.testing.assert_allclose(w_sched, w_direct, rtol=1e-5, atol=1e-6)


class TestAgainstBaselines:
    def test_krr_beats_regenie_on_epistatic_trait(self, workflow, krr_result):
        split = workflow.split
        train, test = split.train, split.test
        regenie = RegenieLikeRegression(RegenieConfig(block_size=16, n_folds=3))
        name = workflow.dataset.phenotype_names[0]
        pred = regenie.fit_predict(train.genotypes, train.phenotype(name),
                                   test.genotypes)
        regenie_rho = pearson_correlation(test.phenotype(name), pred)
        assert krr_result.pearson(name) > regenie_rho

    def test_krr_beats_lmm_on_epistatic_trait(self, workflow, krr_result):
        split = workflow.split
        train, test = split.train, split.test
        name = workflow.dataset.phenotype_names[1]
        lmm = GRMLinearMixedModel()
        pred = lmm.fit_predict(train.genotypes, train.phenotype(name),
                               test.genotypes)
        lmm_rho = pearson_correlation(test.phenotype(name), pred)
        assert krr_result.pearson(name) > lmm_rho
