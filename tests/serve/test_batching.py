"""Tests for micro-batch planning and the tile-aligned slice geometry."""

import numpy as np
import pytest

from repro.serve.batching import (
    effective_batch_rows,
    micro_batch_slices,
    plan_micro_batch,
)


class TestEffectiveBatchRows:
    def test_rounds_down_to_tile_multiples(self):
        assert effective_batch_rows(64, 100) == 64
        assert effective_batch_rows(64, 128) == 128
        assert effective_batch_rows(64, 190) == 128

    def test_minimum_one_tile(self):
        assert effective_batch_rows(64, 1) == 64

    def test_none_is_monolithic(self):
        assert effective_batch_rows(64, None) is None


class TestMicroBatchSlices:
    def test_monolithic(self):
        assert micro_batch_slices(100, 64, None) == [slice(0, 100)]

    def test_tile_aligned_boundaries(self):
        slices = micro_batch_slices(150, 64, 64)
        assert slices == [slice(0, 64), slice(64, 128), slice(128, 150)]
        assert all(s.start % 64 == 0 for s in slices)

    def test_empty_cohort(self):
        assert micro_batch_slices(0, 64, 64) == [slice(0, 0)]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            micro_batch_slices(-1, 64, 64)


class TestPlanMicroBatch:
    def _cohorts(self, *sizes, ns=16):
        rng = np.random.default_rng(0)
        return [rng.integers(0, 3, size=(m, ns)).astype(np.int8)
                for m in sizes]

    def test_plan_geometry(self):
        plan = plan_micro_batch(self._cohorts(10, 150, 64), None, 64, 64)
        assert plan.n_requests == 3
        assert plan.total_rows == 224
        assert plan.row_batches == (1, 3, 1)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            plan_micro_batch([], None, 64, 64)

    def test_mismatched_snp_panels_rejected(self):
        a = self._cohorts(10)[0]
        b = self._cohorts(10, ns=17)[0]
        with pytest.raises(ValueError, match="SNP panel"):
            plan_micro_batch([a, b], None, 64, 64)

    def test_mixed_confounding_rejected(self):
        cohorts = self._cohorts(8, 8)
        confs = [np.zeros((8, 2)), None]
        with pytest.raises(ValueError, match="confounded"):
            plan_micro_batch(cohorts, confs, 64, 64)

    def test_confounder_row_mismatch_rejected(self):
        cohorts = self._cohorts(8)
        with pytest.raises(ValueError, match="one row per"):
            plan_micro_batch(cohorts, [np.zeros((5, 2))], 64, 64)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2D"):
            plan_micro_batch([np.zeros(8)], None, 64, 64)
