"""Tests for the named/versioned model registry and its LRU byte budget."""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.session import KRRSession
from repro.serve.registry import ModelKey, ModelRegistry


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(23)
    g = rng.integers(0, 3, size=(128, 48)).astype(np.int8)
    y = rng.standard_normal((128, 2))
    session = KRRSession(KRRConfig(
        tile_size=64, precision_plan=PrecisionPlan.adaptive_fp16()))
    session.fit(g, y)
    return session.export_model()


class TestVersions:
    def test_versions_increment_per_name(self, model):
        reg = ModelRegistry()
        assert reg.register("height", model) == ModelKey("height", 1)
        assert reg.register("height", model) == ModelKey("height", 2)
        assert reg.register("bmi", model) == ModelKey("bmi", 1)
        assert reg.versions("height") == [1, 2]
        assert reg.names() == ["bmi", "height"]

    def test_get_defaults_to_latest(self, model):
        reg = ModelRegistry()
        reg.register("m", model)
        reg.register("m", model)
        assert reg.entry("m").key.version == 2
        assert reg.entry("m", version=1).key.version == 1
        assert reg.get("m") is model

    def test_missing_lookups_raise(self, model):
        reg = ModelRegistry()
        with pytest.raises(KeyError, match="no model"):
            reg.get("absent")
        reg.register("m", model)
        with pytest.raises(KeyError, match="version 7"):
            reg.get("m", version=7)

    def test_unregister(self, model):
        reg = ModelRegistry()
        reg.register("m", model)
        reg.register("m", model)
        assert reg.unregister("m", version=1) == 1
        assert reg.versions("m") == [2]
        assert reg.unregister("m") == 1
        with pytest.raises(KeyError):
            reg.unregister("m")

    def test_register_rejects_non_models(self):
        with pytest.raises(TypeError):
            ModelRegistry().register("m", np.zeros(3))


class TestLRUEviction:
    def test_budget_evicts_least_recently_used(self, model):
        per_model = model.resident_bytes()
        reg = ModelRegistry(max_resident_bytes=int(2.5 * per_model))
        k1 = reg.register("a", model)
        k2 = reg.register("b", model)
        reg.get("a")  # b becomes least recently used
        k3 = reg.register("c", model)
        assert k1 in reg and k3 in reg
        assert k2 not in reg, "the LRU entry should have been evicted"
        assert reg.evictions == 1
        assert reg.resident_bytes() <= reg.max_resident_bytes

    def test_new_registration_is_never_the_victim(self, model):
        per_model = model.resident_bytes()
        reg = ModelRegistry(max_resident_bytes=int(0.5 * per_model))
        key = reg.register("only", model)
        # over budget, but evicting the sole model would serve nothing
        assert key in reg and len(reg) == 1

    def test_resident_bytes_tracks_the_precision_mosaic(self, model):
        reg = ModelRegistry()
        reg.register("m", model)
        assert reg.resident_bytes() == model.resident_bytes()

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ModelRegistry(max_resident_bytes=0)

    def test_fp8_models_pack_denser_than_fp32(self):
        """The serving motivation for FP8 storage: more models per budget."""
        rng = np.random.default_rng(29)
        g = rng.integers(0, 3, size=(128, 48)).astype(np.int8)
        y = rng.standard_normal((128, 2))

        def fitted(plan):
            s = KRRSession(KRRConfig(tile_size=64, precision_plan=plan))
            s.fit(g, y)
            return s.export_model()

        fp32 = fitted(PrecisionPlan.fp32())
        fp8 = fitted(PrecisionPlan.adaptive_fp8())
        assert fp8.resident_bytes() < fp32.resident_bytes()
        budget = 2 * fp32.resident_bytes()
        reg = ModelRegistry(max_resident_bytes=budget)
        n = 0
        while reg.evictions == 0:
            reg.register(f"m{n}", fp8)
            n += 1
            assert n < 64  # safety net
        assert n > 2, "FP8 artifacts should outpack the fp32 budget"
