"""Tests for the concurrent prediction service.

Acceptance contract under test: the service answers >= 8 concurrent
requests with per-request results **bitwise equal** to a solo
``session.predict`` of the same cohort, while coalescing queued
requests into shared micro-batches.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan, ServeConfig
from repro.gwas.session import KRRSession
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.service import (
    DEFAULT_MODEL_NAME,
    SERVE_PHASE,
    PredictionService,
)

N_TRAIN, NS, NPH = 192, 48, 2
#: awkward on purpose: sub-tile, non-tile-aligned and multi-tile cohorts
REQUEST_SIZES = (1, 10, 33, 64, 100, 7, 128, 65)


@pytest.fixture(scope="module")
def fitted_session():
    rng = np.random.default_rng(31)
    g = rng.integers(0, 3, size=(N_TRAIN, NS)).astype(np.int8)
    y = rng.standard_normal((N_TRAIN, NPH))
    session = KRRSession(KRRConfig(
        tile_size=64, precision_plan=PrecisionPlan.adaptive_fp16()))
    session.fit(g, y)
    return session


@pytest.fixture(scope="module")
def model(fitted_session):
    return fitted_session.export_model()


@pytest.fixture(scope="module")
def request_cohorts():
    rng = np.random.default_rng(37)
    return [rng.integers(0, 3, size=(m, NS)).astype(np.int8)
            for m in REQUEST_SIZES]


@pytest.fixture(scope="module")
def solo_predictions(fitted_session, request_cohorts):
    return [fitted_session.predict(c) for c in request_cohorts]


class TestBitwiseServing:
    def test_eight_concurrent_clients_bitwise(self, model, request_cohorts,
                                              solo_predictions):
        """>= 8 concurrent requests, each bitwise equal to solo predict."""
        barrier = threading.Barrier(len(request_cohorts))

        def client(cohort):
            barrier.wait()  # genuinely concurrent submission
            return service.predict(cohort, timeout=60)

        with PredictionService(
                model, config=ServeConfig(batch_window_s=0.02)) as service:
            with ThreadPoolExecutor(len(request_cohorts)) as pool:
                results = list(pool.map(client, request_cohorts))
        assert len(results) >= 8
        for result, ref in zip(results, solo_predictions):
            assert np.array_equal(result.predictions, ref)

    def test_coalesced_batch_is_bitwise(self, model, request_cohorts,
                                        solo_predictions):
        """Deterministic full coalescing: enqueue everything, then start."""
        service = PredictionService(
            model,
            config=ServeConfig(max_batch_requests=len(request_cohorts),
                               batch_window_s=0.2),
            autostart=False)
        futures = [service.submit(c) for c in request_cohorts]
        service.start()
        results = [f.result(timeout=60) for f in futures]
        service.close()
        for result, ref in zip(results, solo_predictions):
            assert np.array_equal(result.predictions, ref)
        assert all(r.coalesced_requests == len(request_cohorts)
                   for r in results)
        assert service.stats.batches == 1
        assert service.stats.requests == len(request_cohorts)

    def test_per_request_mode_disables_coalescing(self, model,
                                                  request_cohorts):
        service = PredictionService(
            model, config=ServeConfig(max_batch_requests=1),
            autostart=False)
        futures = [service.submit(c) for c in request_cohorts[:4]]
        service.start()
        results = [f.result(timeout=60) for f in futures]
        service.close()
        assert all(r.coalesced_requests == 1 for r in results)
        assert service.stats.batches == 4


class TestRequestStats:
    def test_per_request_latency_and_flops(self, model, request_cohorts):
        with PredictionService(model) as service:
            result = service.predict(request_cohorts[4], timeout=60)
        assert result.rows == request_cohorts[4].shape[0]
        assert result.flops == model.predict_flops(result.rows)
        assert result.latency_s > 0
        assert result.latency_s >= result.queue_s
        assert result.compute_s > 0
        assert result.model_key == ModelKey(DEFAULT_MODEL_NAME, 1)

    def test_micro_batch_count_reflects_streaming(self, model):
        rng = np.random.default_rng(5)
        cohort = rng.integers(0, 3, size=(150, NS)).astype(np.int8)
        with PredictionService(
                model, config=ServeConfig(batch_rows=64)) as service:
            result = service.predict(cohort, timeout=60)
        assert result.micro_batches == 3  # 64 + 64 + 22

    def test_stats_accumulate(self, model, request_cohorts):
        with PredictionService(model) as service:
            for c in request_cohorts[:3]:
                service.predict(c, timeout=60)
            stats = service.stats
        assert stats.requests == 3
        assert stats.rows == sum(c.shape[0] for c in request_cohorts[:3])
        assert stats.flops == pytest.approx(sum(
            model.predict_flops(c.shape[0]) for c in request_cohorts[:3]))
        assert stats.batches >= 1
        assert stats.mean_coalesced >= 1.0

    def test_serving_runs_trace_the_serve_phase(self, model, request_cohorts):
        with PredictionService(model) as service:
            service.predict(request_cohorts[3], timeout=60)
            session = next(iter(service._sessions.values()))
        assert SERVE_PHASE in session.runtime.phases()
        trace = session.runtime.phase_trace(SERVE_PHASE)
        assert trace.num_tasks > 0
        assert session.phase_flops[SERVE_PHASE] == pytest.approx(
            trace.total_flops)


class TestRegistryIntegration:
    def test_named_models_and_version_pinning(self, fitted_session,
                                              request_cohorts):
        rng = np.random.default_rng(41)
        g = rng.integers(0, 3, size=(N_TRAIN, NS)).astype(np.int8)
        y = rng.standard_normal((N_TRAIN, NPH))
        other = KRRSession(KRRConfig(tile_size=64))
        other.fit(g, y)

        registry = ModelRegistry()
        registry.register("height", fitted_session.export_model())
        registry.register("height", other.export_model())  # v2

        cohort = request_cohorts[4]
        with PredictionService(registry) as service:
            v1 = service.predict(cohort, model="height", version=1,
                                 timeout=60)
            latest = service.predict(cohort, model="height", timeout=60)
        assert v1.model_key.version == 1
        assert latest.model_key.version == 2
        assert np.array_equal(v1.predictions, fitted_session.predict(cohort))
        assert np.array_equal(latest.predictions, other.predict(cohort))
        assert not np.array_equal(v1.predictions, latest.predictions)

    def test_mixed_model_queue_batches_per_model(self, fitted_session,
                                                 request_cohorts):
        registry = ModelRegistry()
        registry.register("a", fitted_session.export_model())
        registry.register("b", fitted_session.export_model())
        service = PredictionService(registry, autostart=False)
        futures = [service.submit(c, model=("a" if i % 2 else "b"))
                   for i, c in enumerate(request_cohorts[:6])]
        service.start()
        for f, c in zip(futures, request_cohorts[:6]):
            assert np.array_equal(f.result(timeout=60).predictions,
                                  fitted_session.predict(c))
        service.close()
        # a batch never mixes models
        assert service.stats.batches >= 2
        assert service.stats.max_coalesced <= 3

    def test_submit_resolves_the_model_eagerly(self, model, request_cohorts):
        """An eviction after submit must not fail the in-flight request."""
        registry = ModelRegistry(
            max_resident_bytes=int(1.5 * model.resident_bytes()))
        registry.register("pinned", model)
        service = PredictionService(registry, autostart=False)
        future = service.submit(request_cohorts[2], model="pinned")
        registry.register("other", model)  # evicts "pinned"
        assert ModelKey("pinned", 1) not in registry
        service.start()
        assert future.result(timeout=60).predictions.shape[0] == \
            request_cohorts[2].shape[0]
        service.close()


class TestValidationAndLifecycle:
    def test_wrong_snp_panel_rejected_at_submit(self, model):
        with PredictionService(model, autostart=False) as service:
            with pytest.raises(ValueError, match="SNP"):
                service.submit(np.zeros((4, NS + 1), dtype=np.int8))

    def test_confounder_contract_rejected_at_submit(self, model):
        with PredictionService(model, autostart=False) as service:
            with pytest.raises(ValueError, match="confounders"):
                service.submit(np.zeros((4, NS), dtype=np.int8),
                               confounders=np.zeros((4, 2)))

    def test_unknown_model_rejected_at_submit(self, model):
        with PredictionService(model, autostart=False) as service:
            with pytest.raises(KeyError):
                service.submit(np.zeros((4, NS), dtype=np.int8),
                               model="absent")

    def test_queue_backpressure(self, model, request_cohorts):
        service = PredictionService(
            model, config=ServeConfig(max_queue_depth=2), autostart=False)
        service.submit(request_cohorts[0])
        service.submit(request_cohorts[1])
        with pytest.raises(RuntimeError, match="full"):
            service.submit(request_cohorts[2])
        service.start()
        service.close()

    def test_close_drains_pending_requests(self, model, request_cohorts,
                                           solo_predictions):
        service = PredictionService(model, autostart=False)
        futures = [service.submit(c) for c in request_cohorts[:3]]
        service.start()
        service.close()
        for f, ref in zip(futures, solo_predictions[:3]):
            assert np.array_equal(f.result(timeout=1).predictions, ref)

    def test_submit_after_close_raises(self, model, request_cohorts):
        service = PredictionService(model)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(request_cohorts[0])

    def test_execution_failure_propagates_to_futures(self, model,
                                                     request_cohorts,
                                                     monkeypatch):
        def boom(self, *args, **kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(KRRSession, "predict_many", boom)
        service = PredictionService(model, autostart=False)
        future = service.submit(request_cohorts[0])
        service.start()
        with pytest.raises(RuntimeError, match="injected"):
            future.result(timeout=60)
        service.close()
        assert service.stats.failures == 1

    def test_rejects_unknown_model_container(self):
        with pytest.raises(TypeError):
            PredictionService(np.zeros(3))


class TestTraceBounding:
    def test_serve_traces_reset_periodically(self, model, request_cohorts):
        """A long-running service must not accumulate task events
        without bound: every trace_reset_batches micro-batches the
        session runtime's traces are dropped (service counters stay)."""
        from repro.gwas.config import ServeConfig

        service = PredictionService(
            model,
            config=ServeConfig(max_batch_requests=1, trace_reset_batches=2),
            autostart=False)
        futures = [service.submit(request_cohorts[0]) for _ in range(5)]
        service.start()
        for f in futures:
            f.result(timeout=60)
        session = next(iter(service._sessions.values()))
        service.close()
        assert service.stats.batches == 5
        # resets fired after batches 2 and 4: only batch 5's single
        # predict task survives in the traces
        assert session.runtime.phase_trace(SERVE_PHASE).num_tasks == 1
        assert session.runtime.session_trace.num_tasks == 1


class TestReviewRegressions:
    """Hardening found in review: malformed requests and unstarted close."""

    def test_malformed_confounders_rejected_at_submit(self, fitted_session,
                                                      request_cohorts):
        rng = np.random.default_rng(51)
        g = fitted_session.training_genotypes_
        y = rng.standard_normal((g.shape[0], NPH))
        conf = rng.standard_normal((g.shape[0], 3))
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g, y, conf)
        with PredictionService(session.export_model(),
                               autostart=False) as service:
            cohort = request_cohorts[2]
            with pytest.raises(ValueError, match="one row per"):
                service.submit(cohort, confounders=np.zeros((3, 3)))
            with pytest.raises(ValueError, match="confounder column"):
                service.submit(cohort,
                               confounders=np.zeros((cohort.shape[0], 5)))
            # a well-formed request still goes through
            ok = service.submit(
                cohort, confounders=np.zeros((cohort.shape[0], 3)))
        assert ok.result(timeout=60).rows == cohort.shape[0]

    def test_close_without_start_drains_the_backlog(self, model,
                                                    request_cohorts,
                                                    solo_predictions):
        service = PredictionService(model, autostart=False)
        futures = [service.submit(c) for c in request_cohorts[:3]]
        service.close()  # never started: must still resolve the futures
        for f, ref in zip(futures, solo_predictions[:3]):
            assert np.array_equal(f.result(timeout=1).predictions, ref)
        assert service.stats.requests == 3
