"""Graceful degradation of the prediction service under pressure.

ISSUE 6's serving ladder: a full admission queue *sheds* (typed, at
submit), an expired deadline *fails fast* before micro-batch planning
(no wasted kernel work), an abandoned ``predict(timeout=)`` *cancels*
its queue slot, and a transient dispatch fault *retries* bitwise.
"""

import time

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan, ServeConfig
from repro.gwas.session import KRRSession
from repro.resilience import (
    DeadlineExceededError,
    FaultPlan,
    FaultSite,
    ServiceOverloadedError,
)
from repro.resilience.faults import (
    SITE_SERVE_DISPATCH,
    clear_plan,
    fault_plan,
)
from repro.serve.service import PredictionService

N_TRAIN, NS = 128, 32


@pytest.fixture(autouse=True)
def _clean_plan_state(monkeypatch):
    """Isolate from any suite-wide chaos env (the tier1-chaos CI job)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    clear_plan()
    yield
    clear_plan()


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(53)
    g = rng.integers(0, 3, size=(N_TRAIN, NS)).astype(np.int8)
    y = rng.standard_normal(N_TRAIN)
    session = KRRSession(KRRConfig(
        tile_size=32, precision_plan=PrecisionPlan.adaptive_fp16()))
    session.fit(g, y)
    return session.export_model()


@pytest.fixture(scope="module")
def cohort():
    rng = np.random.default_rng(59)
    return rng.integers(0, 3, size=(20, NS)).astype(np.int8)


def stall_plan(delay_s=0.4, times=1):
    """Stall the dispatcher inside its first micro-batch execution."""
    return FaultPlan([FaultSite(site=SITE_SERVE_DISPATCH, kind="stall",
                                delay_s=delay_s, times=times)])


def wait_until(predicate, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestAdmissionControl:
    def test_full_queue_sheds_typed(self, model, cohort):
        config = ServeConfig(max_batch_requests=1, max_queue_depth=1)
        with fault_plan(stall_plan()):
            with PredictionService(model, config=config) as service:
                first = service.submit(cohort)
                # the dispatcher pulls `first` and stalls inside execute
                assert wait_until(lambda: service.pending() == 0)
                queued = service.submit(cohort)
                with pytest.raises(ServiceOverloadedError) as err:
                    service.submit(cohort)
                assert err.value.queue_depth == 1
                assert err.value.max_queue_depth == 1
                assert service.stats.shed == 1
                # the admitted requests still complete normally
                first.result(timeout=10)
                queued.result(timeout=10)
        assert service.stats.requests == 2

    def test_unbounded_queue_never_sheds(self, model, cohort):
        with PredictionService(model, config=ServeConfig()) as service:
            futures = [service.submit(cohort) for _ in range(12)]
            for future in futures:
                future.result(timeout=10)
            assert service.stats.shed == 0


class TestDeadlines:
    def test_expired_request_fails_fast_typed(self, model, cohort):
        config = ServeConfig(max_batch_requests=4, batch_window_s=0.25)
        with PredictionService(model, config=config) as service:
            future = service.submit(cohort, deadline_s=0.02)
            with pytest.raises(DeadlineExceededError) as err:
                future.result(timeout=10)
            assert err.value.deadline_s == pytest.approx(0.02)
            assert err.value.waited_s >= 0.02
            assert service.stats.expired == 1
            assert service.stats.failures == 0  # degraded, not failed

    def test_config_default_deadline_applies(self, model, cohort):
        config = ServeConfig(max_batch_requests=4, batch_window_s=0.25,
                             request_deadline_s=0.02)
        with PredictionService(model, config=config) as service:
            with pytest.raises(DeadlineExceededError):
                service.submit(cohort).result(timeout=10)

    def test_survivors_unharmed_by_expired_batchmates(self, model, cohort):
        """An expired request is culled; the rest of its batch answers."""
        solo = KRRSession.from_model(model).predict(cohort)
        config = ServeConfig(max_batch_requests=4, batch_window_s=0.15)
        with PredictionService(model, config=config) as service:
            doomed = service.submit(cohort, deadline_s=0.02)
            live = service.submit(cohort)  # same micro-batch window
            result = live.result(timeout=10)
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=10)
            np.testing.assert_array_equal(result.predictions, solo)
            assert service.stats.expired == 1
            assert service.stats.requests == 1


class TestAbandonment:
    def test_predict_timeout_withdraws_the_request(self, model, cohort):
        config = ServeConfig(max_batch_requests=1)
        with fault_plan(stall_plan()):
            with PredictionService(model, config=config) as service:
                first = service.submit(cohort)
                assert wait_until(lambda: service.pending() == 0)
                with pytest.raises(TimeoutError):
                    service.predict(cohort, timeout=0.03)
                # the queue slot is gone: the dispatcher never plans it
                assert service.pending() == 0
                assert service.stats.cancelled == 1
                first.result(timeout=10)
        assert service.stats.requests == 1


class TestDispatchRetry:
    def test_transient_dispatch_fault_retried_bitwise(self, model, cohort):
        solo = KRRSession.from_model(model).predict(cohort)
        plan = FaultPlan([FaultSite(site=SITE_SERVE_DISPATCH, kind="raise",
                                    times=1)])
        with fault_plan(plan):
            with PredictionService(
                    model, config=ServeConfig(dispatch_retries=1)) as service:
                result = service.predict(cohort, timeout=10)
        assert plan.fired == 1
        assert service.stats.dispatch_retries == 1
        assert service.stats.failures == 0
        np.testing.assert_array_equal(result.predictions, solo)

    def test_retries_exhausted_fail_the_batch(self, model, cohort):
        plan = FaultPlan([FaultSite(site=SITE_SERVE_DISPATCH, kind="raise",
                                    every=1)])
        with fault_plan(plan):
            with PredictionService(
                    model, config=ServeConfig(dispatch_retries=1)) as service:
                with pytest.raises(Exception, match="serve-dispatch"):
                    service.predict(cohort, timeout=10)
        assert service.stats.failures == 1
        assert service.stats.dispatch_retries == 1

    def test_permanent_dispatch_fault_not_retried(self, model, cohort):
        plan = FaultPlan([FaultSite(site=SITE_SERVE_DISPATCH, kind="raise",
                                    transient=False, times=1)])
        with fault_plan(plan):
            with PredictionService(
                    model, config=ServeConfig(dispatch_retries=3)) as service:
                with pytest.raises(Exception, match="permanent fault"):
                    service.predict(cohort, timeout=10)
        assert service.stats.dispatch_retries == 0
