"""Store-backed fitted models in the serving tier.

The serving story of ``repro.store``: artifacts open with their factor
tiles left on disk (faulted in lazily), so the registry's resident-byte
budget reflects actual memory — and predictions after registry-pressure
eviction and reload stay bitwise identical to the fitting session.
"""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan, ServeConfig
from repro.gwas.model import FittedModel
from repro.gwas.session import KRRSession
from repro.serve.registry import ModelRegistry
from repro.serve.service import PredictionService
from repro.store import TileStore


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(31)
    g = rng.integers(0, 3, size=(192, 64)).astype(np.float64)
    y = rng.standard_normal((192, 2))
    g_test = rng.integers(0, 3, size=(48, 64)).astype(np.float64)
    session = KRRSession(KRRConfig(
        tile_size=64, precision_plan=PrecisionPlan.adaptive_fp16()))
    session.fit(g, y)
    return session, g_test


@pytest.fixture(scope="module")
def artifact(fitted, tmp_path_factory):
    session, _ = fitted
    path = tmp_path_factory.mktemp("models") / "m.npz"
    session.export_model().save(path)
    return path


class TestStoreBackedLoad:
    def test_resident_bytes_exclude_spilled_factor(self, artifact):
        plain = FittedModel.load(artifact)
        with TileStore() as store:
            lazy = FittedModel.load(artifact, store=store)
            factor_bytes = plain.factor.nbytes()
            assert lazy.factor.nbytes() == factor_bytes  # logically whole
            assert lazy.factor.resident_nbytes() == 0    # nothing faulted
            assert (plain.resident_bytes() - lazy.resident_bytes()
                    == factor_bytes)

    def test_predict_bitwise_equals_session(self, fitted, artifact):
        session, g_test = fitted
        with TileStore() as store:
            lazy = FittedModel.load(artifact, store=store)
            np.testing.assert_array_equal(lazy.predict(g_test),
                                          session.predict(g_test))

    def test_factor_reuse_faults_in_and_matches(self, fitted, artifact):
        session, _ = fitted
        extra = np.sin(np.arange(session.weights_.shape[0], dtype=np.float64))
        with TileStore(budget_bytes=64 << 10) as store:
            lazy = FittedModel.load(artifact, store=store)
            np.testing.assert_array_equal(
                lazy.solve_additional_phenotypes(extra),
                session.solve_additional_phenotypes(extra))
            assert store.stats.reloads > 0  # the factor came off disk


class TestRegistryPressure:
    def test_predict_after_eviction_and_reload(self, fitted, artifact):
        """The serve satellite: eviction → reload → bitwise predict."""
        session, g_test = fitted
        solo = session.predict(g_test)
        with TileStore() as store:
            lazy = FittedModel.load(artifact, store=store)
            registry = ModelRegistry(
                max_resident_bytes=2 * lazy.resident_bytes())
            registry.register("m", lazy)
            # registry pressure: a fully-resident sibling blows the
            # budget and evicts the store-backed entry (it is LRU)
            big = FittedModel.load(artifact)
            registry.register("other", big)
            registry.register("other2", big)
            assert registry.versions("m") == []  # evicted
            assert registry.evictions >= 1

            # reload from the artifact (store-backed again) and serve:
            # still bitwise equal to the fitting session
            reloaded = FittedModel.load(artifact, store=store)
            registry.register("m", reloaded)
            np.testing.assert_array_equal(
                registry.get("m").predict(g_test), solo)

    def test_store_backed_via_prediction_service(self, fitted, artifact):
        session, g_test = fitted
        with TileStore() as store:
            registry = ModelRegistry()
            registry.register("m", FittedModel.load(artifact, store=store))
            with PredictionService(
                    registry,
                    config=ServeConfig(max_batch_requests=4)) as service:
                result = service.predict(g_test, model="m", timeout=60)
            np.testing.assert_array_equal(result.predictions,
                                          session.predict(g_test))


class TestResidencyRefresh:
    def test_register_repolls_faulted_in_residency(self, fitted, artifact):
        """Budget enforcement sees tiles a store-backed model faulted
        in *after* it was registered."""
        session, _ = fitted
        with TileStore() as store:
            lazy = FittedModel.load(artifact, store=store)
            reg = ModelRegistry(max_resident_bytes=10 << 30)
            reg.register("m", lazy)
            registered_at = reg.resident_bytes()
            # serving faults the whole factor in (unbounded store)
            extra = np.ones(session.weights_.shape[0])
            lazy.solve_additional_phenotypes(extra)
            # the next registration re-polls: the total now includes
            # the faulted-in factor tiles
            reg.register("other", FittedModel.load(artifact, store=store))
            refreshed = reg.entry("m").resident_bytes
            assert refreshed > registered_at
            assert refreshed - registered_at == lazy.factor.resident_nbytes()


class TestRunningTotal:
    """The O(n²) eviction fix: the running total must track mutations."""

    def test_total_tracks_register_unregister_evict(self, fitted, artifact):
        plain = FittedModel.load(artifact)
        per_model = plain.resident_bytes()
        reg = ModelRegistry(max_resident_bytes=int(3.5 * per_model))
        assert reg.resident_bytes() == 0
        reg.register("a", plain)
        reg.register("b", plain)
        assert reg.resident_bytes() == 2 * per_model
        reg.unregister("a")
        assert reg.resident_bytes() == per_model
        # churn through evictions: total stays consistent with entries
        for i in range(8):
            reg.register(f"m{i}", plain)
        assert reg.resident_bytes() == sum(
            reg.entry(k.name, k.version).resident_bytes for k in reg.keys())
        assert reg.resident_bytes() <= reg.max_resident_bytes
        assert reg.evictions > 0
