"""Tests for the three-phase KRR GWAS solver."""

import numpy as np
import pytest

from repro.distance.euclidean import squared_euclidean_gemm
from repro.distance.kernels import gaussian_kernel
from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.krr import KernelRidgeRegressionGWAS
from repro.precision.formats import Precision
from repro.tiles.matrix import TileMatrix


def _reference_krr(g_train, y_train, g_test, gamma, alpha):
    """Direct FP64 KRR (no tiling, no mixed precision)."""
    k = gaussian_kernel(squared_euclidean_gemm(g_train, precision="fp64"), gamma)
    y_mean = y_train.mean(axis=0)
    w = np.linalg.solve(k + alpha * np.eye(k.shape[0]), y_train - y_mean)
    k_test = gaussian_kernel(
        squared_euclidean_gemm(g_test, g_train, precision="fp64"), gamma)
    return k_test @ w + y_mean


@pytest.fixture
def cohort_arrays(small_cohort):
    split = small_cohort.split(0.8, seed=0)
    return split.train, split.test


class TestPhases:
    def test_build_returns_symmetric_kernel(self, cohort_arrays):
        train, _ = cohort_arrays
        model = KernelRidgeRegressionGWAS(KRRConfig(tile_size=52))
        build = model.build(train.genotypes)
        assert isinstance(build.kernel, TileMatrix)
        k = build.to_dense()
        np.testing.assert_allclose(k, k.T)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_associate_solves_regularized_system(self, cohort_arrays):
        train, _ = cohort_arrays
        cfg = KRRConfig(tile_size=52, alpha=0.5,
                        precision_plan=PrecisionPlan.fp32())
        model = KernelRidgeRegressionGWAS(cfg)
        build = model.build(train.genotypes)
        weights, fact = model.associate(build.kernel, train.phenotypes)
        k = build.to_dense()
        y_centered = train.phenotypes - train.phenotypes.mean(axis=0)
        residual = (k + 0.5 * np.eye(k.shape[0])) @ weights - y_centered
        assert np.linalg.norm(residual) / np.linalg.norm(y_centered) < 1e-3

    def test_fit_predict_matches_reference_in_high_precision(self, cohort_arrays):
        train, test = cohort_arrays
        cfg = KRRConfig(tile_size=52, alpha=0.5, gamma=0.02, normalize_gamma=False,
                        precision_plan=PrecisionPlan.fp64(),
                        snp_precision=Precision.INT8)
        model = KernelRidgeRegressionGWAS(cfg)
        pred = model.fit_predict(train.genotypes, train.phenotypes, test.genotypes)
        reference = _reference_krr(train.genotypes, train.phenotypes,
                                   test.genotypes, 0.02, 0.5)
        np.testing.assert_allclose(pred, reference, rtol=1e-4, atol=1e-4)

    def test_adaptive_fp16_close_to_fp32(self, cohort_arrays):
        train, test = cohort_arrays
        base = dict(tile_size=52, alpha=0.5)
        pred32 = KernelRidgeRegressionGWAS(KRRConfig(
            precision_plan=PrecisionPlan.fp32(), **base)).fit_predict(
            train.genotypes, train.phenotypes, test.genotypes)
        pred16 = KernelRidgeRegressionGWAS(KRRConfig(
            precision_plan=PrecisionPlan.adaptive_fp16(), **base)).fit_predict(
            train.genotypes, train.phenotypes, test.genotypes)
        assert np.corrcoef(pred32.ravel(), pred16.ravel())[0, 1] > 0.99

    def test_fp8_floor_degrades_but_correlates(self, cohort_arrays):
        train, test = cohort_arrays
        base = dict(tile_size=52, alpha=0.5)
        pred32 = KernelRidgeRegressionGWAS(KRRConfig(
            precision_plan=PrecisionPlan.fp32(), **base)).fit_predict(
            train.genotypes, train.phenotypes, test.genotypes)
        pred8 = KernelRidgeRegressionGWAS(KRRConfig(
            precision_plan=PrecisionPlan.adaptive_fp8(), **base)).fit_predict(
            train.genotypes, train.phenotypes, test.genotypes)
        err8 = np.linalg.norm(pred8 - pred32)
        assert err8 > 0  # FP8 storage is visibly different
        assert np.corrcoef(pred32.ravel(), pred8.ravel())[0, 1] > 0.9

    def test_phase_flops_recorded(self, cohort_arrays):
        train, test = cohort_arrays
        model = KernelRidgeRegressionGWAS(KRRConfig(tile_size=52))
        model.fit(train.genotypes, train.phenotypes, train.confounders)
        flops = model.model_.phase_flops
        assert flops["build"] > 0 and flops["associate"] > 0
        model.predict(test.genotypes, test.confounders)
        assert model.model_.phase_flops["predict"] > 0

    def test_precision_map_attached_for_adaptive_plans(self, cohort_arrays):
        train, _ = cohort_arrays
        model = KernelRidgeRegressionGWAS(KRRConfig(
            tile_size=52, precision_plan=PrecisionPlan.adaptive_fp16()))
        model.fit(train.genotypes, train.phenotypes)
        assert model.model_.precision_map is not None


class TestErrorsAndReuse:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KernelRidgeRegressionGWAS().predict(np.zeros((3, 4)))

    def test_snp_panel_mismatch(self, cohort_arrays):
        train, test = cohort_arrays
        model = KernelRidgeRegressionGWAS(KRRConfig(tile_size=52))
        model.fit(train.genotypes, train.phenotypes)
        with pytest.raises(ValueError):
            model.predict(test.genotypes[:, :10])

    def test_confounder_configuration_mismatch(self, cohort_arrays):
        train, test = cohort_arrays
        model = KernelRidgeRegressionGWAS(KRRConfig(tile_size=52))
        model.fit(train.genotypes, train.phenotypes, train.confounders)
        with pytest.raises(ValueError):
            model.predict(test.genotypes)  # confounders missing

    def test_row_mismatch(self, cohort_arrays):
        train, _ = cohort_arrays
        with pytest.raises(ValueError):
            KernelRidgeRegressionGWAS(KRRConfig(tile_size=52)).fit(
                train.genotypes, train.phenotypes[:-3])

    def test_solve_additional_phenotypes_matches_full_fit(self, cohort_arrays, rng):
        train, _ = cohort_arrays
        cfg = KRRConfig(tile_size=52, precision_plan=PrecisionPlan.fp32())
        model = KernelRidgeRegressionGWAS(cfg)
        model.fit(train.genotypes, train.phenotypes[:, :1])
        extra = model.solve_additional_phenotypes(train.phenotypes[:, 1:])
        full = KernelRidgeRegressionGWAS(cfg)
        full.fit(train.genotypes, train.phenotypes)
        np.testing.assert_allclose(extra, full.model_.weights[:, 1:],
                                   rtol=1e-5, atol=1e-6)

    def test_keyword_overrides(self):
        model = KernelRidgeRegressionGWAS(alpha=2.0, gamma=0.5)
        assert model.config.alpha == 2.0
        assert model.config.gamma == 0.5
