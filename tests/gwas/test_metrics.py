"""Tests for MSPE, Pearson correlation, and the accuracy report."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gwas.metrics import (
    accuracy_report,
    mean_squared_prediction_error,
    mspe,
    pearson_correlation,
    r_squared,
)


class TestMSPE:
    def test_perfect_prediction(self):
        y = np.arange(5.0)
        assert mspe(y, y) == 0.0

    def test_known_value(self):
        assert mspe(np.array([0.0, 0.0]), np.array([1.0, 3.0])) == pytest.approx(5.0)

    def test_alias(self):
        assert mspe is mean_squared_prediction_error

    def test_2d_average_over_entries(self):
        y = np.zeros((3, 2))
        yhat = np.ones((3, 2))
        assert mspe(y, yhat) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mspe(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mspe(np.array([]), np.array([]))


class TestPearson:
    def test_perfect_correlation(self, rng):
        y = rng.normal(size=100)
        assert pearson_correlation(y, 2 * y + 3) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self, rng):
        y = rng.normal(size=100)
        assert pearson_correlation(y, -y) == pytest.approx(-1.0)

    def test_matches_numpy_corrcoef(self, rng):
        y = rng.normal(size=200)
        yhat = 0.5 * y + rng.normal(size=200)
        expected = np.corrcoef(y, yhat)[0, 1]
        assert pearson_correlation(y, yhat) == pytest.approx(expected, rel=1e-10)

    def test_constant_prediction_returns_zero(self, rng):
        y = rng.normal(size=50)
        assert pearson_correlation(y, np.full(50, 2.0)) == 0.0

    def test_bounded(self, rng):
        y = rng.normal(size=300)
        yhat = rng.normal(size=300)
        assert -1.0 <= pearson_correlation(y, yhat) <= 1.0


class TestR2AndReport:
    def test_r_squared_perfect(self, rng):
        y = rng.normal(size=60)
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_r_squared_mean_prediction_zero(self, rng):
        y = rng.normal(size=60)
        assert r_squared(y, np.full(60, y.mean())) == pytest.approx(0.0, abs=1e-10)

    def test_report_per_phenotype(self, rng):
        y = rng.normal(size=(80, 2))
        yhat = y + 0.1 * rng.normal(size=(80, 2))
        report = accuracy_report(y, yhat, ["a", "b"])
        assert set(report.keys()) == {"a", "b"}
        assert set(report["a"].keys()) == {"mspe", "pearson", "r2"}
        assert report["a"]["pearson"] > 0.9

    def test_report_1d(self, rng):
        y = rng.normal(size=50)
        report = accuracy_report(y, y)
        assert "phenotype_0" in report

    def test_report_name_mismatch(self, rng):
        with pytest.raises(ValueError):
            accuracy_report(rng.normal(size=(10, 2)), rng.normal(size=(10, 2)), ["x"])


class TestMetricProperties:
    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=60),
           st.floats(0.1, 5.0), st.floats(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_pearson_invariant_to_affine_transform(self, values, scale, shift):
        y = np.array(values)
        # degenerate inputs (no variance, or variance below float64
        # resolution relative to the shift) are out of scope
        if y.std() < 1e-6:
            return
        yhat = np.linspace(0, 1, len(y))
        base = pearson_correlation(y, yhat)
        transformed = pearson_correlation(y * scale + shift, yhat)
        assert transformed == pytest.approx(base, abs=1e-8)

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_mspe_non_negative(self, values):
        y = np.array(values)
        yhat = np.zeros_like(y)
        assert mspe(y, yhat) >= 0.0
