"""Tests for precision plans and solver configurations."""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig
from repro.precision.formats import Precision
from repro.tiles.layout import TileLayout


class TestPrecisionPlan:
    def test_fp32_uniform(self):
        plan = PrecisionPlan.fp32()
        assert plan.mode == "uniform"
        assert plan.label() == "100(FP32)"
        layout = TileLayout.square(40, 10)
        pmap = plan.precision_map(layout)
        assert all(p is Precision.FP32 for p in pmap.values())

    def test_fp64_uniform(self):
        assert PrecisionPlan.fp64().working_precision is Precision.FP64

    def test_band_plan_label_and_map(self):
        plan = PrecisionPlan.band(0.8)
        assert plan.label() == "80(FP32):20(FP16)"
        layout = TileLayout.square(100, 10)
        pmap = plan.precision_map(layout)
        assert pmap[(0, 0)] is Precision.FP32
        assert pmap[(9, 0)] is Precision.FP16

    def test_adaptive_requires_matrix(self):
        plan = PrecisionPlan.adaptive_fp16()
        with pytest.raises(ValueError):
            plan.precision_map(TileLayout.square(20, 10))

    def test_adaptive_map_from_matrix(self):
        plan = PrecisionPlan.adaptive_fp16()
        rng = np.random.default_rng(0)
        a = 1e-4 * rng.normal(size=(40, 40))
        a = a + a.T + np.diag(2.0 + rng.random(40))
        pmap = plan.precision_map(TileLayout.square(40, 10), matrix=a)
        assert pmap[(0, 0)] is Precision.FP32
        assert pmap[(1, 0)] is Precision.FP16

    def test_adaptive_fp8_floor(self):
        plan = PrecisionPlan.adaptive_fp8()
        assert plan.low_precision is Precision.FP8_E4M3
        assert "FP8" in plan.label().upper()

    def test_adaptive_for_gpu(self):
        assert PrecisionPlan.adaptive("GH200").low_precision is Precision.FP8_E4M3
        assert PrecisionPlan.adaptive("A100").low_precision is Precision.FP16

    def test_adaptive_rule_candidates(self):
        rule = PrecisionPlan.adaptive_fp8().adaptive_rule()
        assert Precision.FP8_E4M3 in rule.candidates
        rule16 = PrecisionPlan.adaptive_fp16().adaptive_rule()
        assert Precision.FP8_E4M3 not in rule16.candidates

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PrecisionPlan(mode="magic")

    def test_invalid_band_fraction(self):
        with pytest.raises(ValueError):
            PrecisionPlan(mode="band", band_high_fraction=2.0)

    def test_string_precisions_coerced(self):
        plan = PrecisionPlan(mode="uniform", working_precision="fp64",
                             low_precision="fp8")
        assert plan.working_precision is Precision.FP64
        assert plan.low_precision is Precision.FP8_E4M3


class TestRRConfig:
    def test_defaults(self):
        cfg = RRConfig()
        assert cfg.regularization == 1.0
        assert cfg.snp_precision is Precision.INT8

    def test_validation(self):
        with pytest.raises(ValueError):
            RRConfig(regularization=-1.0)
        with pytest.raises(ValueError):
            RRConfig(tile_size=0)


class TestKRRConfig:
    def test_defaults(self):
        cfg = KRRConfig()
        assert cfg.kernel_type == "gaussian"
        assert cfg.precision_plan.mode == "adaptive"

    def test_effective_gamma_normalization(self):
        cfg = KRRConfig(gamma=0.01, normalize_gamma=True)
        anchored = cfg.effective_gamma(int(KRRConfig.GAMMA_REFERENCE_SNPS))
        assert anchored == pytest.approx(0.01)
        # more SNPs -> smaller effective gamma (distances grow with NS)
        assert cfg.effective_gamma(400) < anchored
        assert cfg.effective_gamma(100) > anchored

    def test_effective_gamma_raw(self):
        cfg = KRRConfig(gamma=0.02, normalize_gamma=False)
        assert cfg.effective_gamma(10_000) == 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            KRRConfig(gamma=-0.1)
        with pytest.raises(ValueError):
            KRRConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            KRRConfig(kernel_type="linear")
        with pytest.raises(ValueError):
            KRRConfig(tile_size=-2)


class TestWithOptions:
    def test_krr_with_options_replaces_fields(self):
        base = KRRConfig(alpha=0.5, gamma=0.01, tile_size=64)
        derived = base.with_options(alpha=2.0, gamma=0.1)
        assert derived.alpha == 2.0 and derived.gamma == 0.1
        assert derived.tile_size == 64
        # the original is untouched (frozen dataclass semantics)
        assert base.alpha == 0.5

    def test_rr_with_options(self):
        base = RRConfig(regularization=1.0)
        assert base.with_options(regularization=9.0).regularization == 9.0

    def test_precision_plan_with_options(self):
        plan = PrecisionPlan.adaptive_fp16().with_options(accuracy=1e-2)
        assert plan.accuracy == 1e-2

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown KRRConfig option"):
            KRRConfig().with_options(aplha=1.0)  # typo on purpose

    def test_validation_reruns_on_replace(self):
        with pytest.raises(ValueError):
            KRRConfig().with_options(alpha=-1.0)

    def test_string_precisions_normalized(self):
        cfg = KRRConfig().with_options(snp_precision="fp32")
        assert cfg.snp_precision is Precision.FP32


class TestPredictBatchRows:
    def test_default_batch(self):
        assert KRRConfig().predict_batch_rows == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            KRRConfig(predict_batch_rows=0)
        assert KRRConfig(predict_batch_rows=None).predict_batch_rows is None


class TestExecutionKnobs:
    """The unified workers/execution knob and the build_workers migration."""

    def test_defaults(self):
        cfg = KRRConfig()
        assert cfg.workers is None
        assert cfg.execution is None
        assert cfg.build_workers is None

    def test_workers_and_execution_validate(self):
        assert KRRConfig(workers=4, execution="threaded").workers == 4
        assert RRConfig(workers=2, execution="serial").execution == "serial"
        with pytest.raises(ValueError):
            KRRConfig(workers=0)
        with pytest.raises(ValueError):
            KRRConfig(execution="warp-speed")
        with pytest.raises(ValueError):
            RRConfig(execution="warp-speed")

    def test_build_workers_deprecated_but_honoured(self):
        with pytest.warns(DeprecationWarning, match="build_workers"):
            cfg = KRRConfig(build_workers=4)
        # the legacy knob seeds the unified one
        assert cfg.workers == 4

    def test_build_workers_does_not_override_explicit_workers(self):
        with pytest.warns(DeprecationWarning):
            cfg = KRRConfig(build_workers=4, workers=2)
        assert cfg.workers == 2

    def test_build_workers_warns_through_with_options(self):
        with pytest.warns(DeprecationWarning):
            cfg = KRRConfig().with_options(build_workers=3)
        assert cfg.workers == 3

    def test_build_workers_normalized_away_after_seeding(self):
        """Once honoured, the deprecated knob must not survive on the
        config: ``with_options`` re-runs validation via
        ``dataclasses.replace``, and a lingering build_workers would
        re-warn and clobber explicit worker overrides."""
        import warnings

        with pytest.warns(DeprecationWarning):
            cfg = KRRConfig(build_workers=4)
        assert cfg.workers == 4
        assert cfg.build_workers is None
        # deriving a config must not re-emit the deprecation warning ...
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            derived = cfg.with_options(alpha=2.0)
            # ... and an explicit workers override must not be clobbered
            cleared = cfg.with_options(workers=None)
        assert derived.workers == 4
        assert cleared.workers is None
        assert cleared.build_workers is None

    def test_build_workers_validation(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                KRRConfig(build_workers=0)

    def test_session_runtime_follows_config(self):
        from repro.gwas.session import KRRSession, RRSession

        session = KRRSession(KRRConfig(workers=2, execution="serial"))
        assert session.runtime.execution == "serial"
        assert session.runtime.workers == 2
        rr = RRSession(RRConfig(workers=3, execution="threaded"))
        assert rr.runtime.execution == "threaded"
        assert rr.runtime.workers == 3

    def test_legacy_build_workers_drives_session_runtime(self):
        from repro.gwas.session import KRRSession

        with pytest.warns(DeprecationWarning):
            session = KRRSession(KRRConfig(build_workers=2))
        assert session.runtime.workers == 2


class TestConfigSerialization:
    """to_dict/from_dict — the artifact embedding of configs."""

    def test_krr_round_trip(self):
        cfg = KRRConfig(
            gamma=0.035, alpha=2.5, kernel_type="gaussian", tile_size=32,
            precision_plan=PrecisionPlan.adaptive_fp8(accuracy=0.3),
            snp_precision="fp32", predict_batch_rows=256,
            normalize_gamma=False, artifact_compress=True)
        back = KRRConfig.from_dict(cfg.to_dict())
        assert back == cfg

    def test_runtime_knobs_not_serialized(self):
        cfg = KRRConfig(workers=7, execution="serial")
        data = cfg.to_dict()
        assert "workers" not in data and "execution" not in data
        back = KRRConfig.from_dict(data)
        assert back.workers is None and back.execution is None

    def test_dict_is_json_ready(self):
        import json

        payload = json.dumps(KRRConfig().to_dict())
        assert KRRConfig.from_dict(json.loads(payload)) == KRRConfig()

    def test_precision_plan_round_trip(self):
        plan = PrecisionPlan.band(0.6, low_precision="fp8")
        assert PrecisionPlan.from_dict(plan.to_dict()) == plan


class TestServeConfig:
    def test_defaults(self):
        from repro.gwas.config import ServeConfig

        cfg = ServeConfig()
        assert cfg.max_batch_requests == 8
        assert cfg.batch_window_s > 0
        assert cfg.batch_rows is None
        assert cfg.max_queue_depth is None

    def test_validation(self):
        from repro.gwas.config import ServeConfig

        with pytest.raises(ValueError):
            ServeConfig(max_batch_requests=0)
        with pytest.raises(ValueError):
            ServeConfig(batch_window_s=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(batch_rows=0)
        with pytest.raises(ValueError):
            ServeConfig(max_queue_depth=0)

    def test_with_options(self):
        from repro.gwas.config import ServeConfig

        cfg = ServeConfig().with_options(max_batch_requests=16)
        assert cfg.max_batch_requests == 16
        with pytest.raises(ValueError):
            ServeConfig().with_options(window=1)  # unknown field
