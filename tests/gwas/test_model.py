"""Tests for the FittedModel artifact: export, save/load, bitwise predict.

The headline acceptance contract: ``FittedModel.load(p).predict(X)``
equals the originating session's ``predict(X)`` **exactly** across
fp64, fp32, adaptive-fp16 and adaptive-fp8 plans, and the serialized
adaptive-fp8 artifact is measurably smaller than the fp32 one.
"""

import numpy as np
import pytest

from repro.data.io import load_model, save_model
from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.model import FittedModel
from repro.gwas.session import KRRSession
from repro.precision.formats import Precision


@pytest.fixture(scope="module")
def cohort():
    rng = np.random.default_rng(17)
    n, ns = 256, 64
    g_train = rng.integers(0, 3, size=(n, ns)).astype(np.int8)
    y = rng.standard_normal((n, 3))
    g_test = rng.integers(0, 3, size=(150, ns)).astype(np.int8)
    return g_train, y, g_test


PLANS = [
    pytest.param(PrecisionPlan.fp64(), id="fp64"),
    pytest.param(PrecisionPlan.fp32(), id="fp32"),
    pytest.param(PrecisionPlan.adaptive_fp16(), id="adaptive-fp16"),
    pytest.param(PrecisionPlan.adaptive_fp8(), id="adaptive-fp8"),
]


def _fitted(cohort, plan) -> KRRSession:
    g_train, y, _ = cohort
    session = KRRSession(KRRConfig(tile_size=64, precision_plan=plan))
    session.fit(g_train, y)
    return session


class TestExport:
    def test_requires_fitted_session(self):
        with pytest.raises(RuntimeError, match="fitted session"):
            KRRSession(KRRConfig()).export_model()

    def test_export_carries_the_predict_state(self, cohort):
        g_train, y, _ = cohort
        session = _fitted(cohort, PrecisionPlan.adaptive_fp16())
        model = session.export_model()
        assert model.n_train == g_train.shape[0]
        assert model.n_snps == g_train.shape[1]
        assert model.n_phenotypes == y.shape[1]
        assert model.gamma == session.gamma_
        assert model.alpha == session.alpha_
        assert np.array_equal(model.weights, session.weights_)
        assert np.array_equal(model.y_means, session.y_means_)

    def test_artifact_arrays_are_frozen(self, cohort):
        model = _fitted(cohort, PrecisionPlan.fp32()).export_model()
        for arr in (model.weights, model.y_means, model.training_genotypes):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_runtime_knobs_are_not_exported(self, cohort):
        g_train, y, _ = cohort
        session = KRRSession(KRRConfig(tile_size=64, workers=2,
                                       execution="serial"))
        session.fit(g_train, y)
        model = session.export_model()
        assert model.config.workers is None
        assert model.config.execution is None

    def test_later_associate_does_not_disturb_exported_model(self, cohort):
        g_train, y, g_test = cohort
        session = _fitted(cohort, PrecisionPlan.fp32())
        model = session.export_model()
        ref = model.predict(g_test)
        session.associate(y, alpha=50.0)  # mutates the session, not the model
        assert np.array_equal(model.predict(g_test), ref)

    def test_factor_keeps_the_storage_mosaic(self, cohort):
        model = _fitted(cohort, PrecisionPlan.adaptive_fp8()).export_model()
        by_prec = model.footprint_by_precision()
        assert Precision.FP8_E4M3 in by_prec, (
            "the adaptive-fp8 factor should store FP8 tiles")

    def test_predict_flops_linear_in_rows(self, cohort):
        model = _fitted(cohort, PrecisionPlan.fp32()).export_model()
        assert model.predict_flops(20) == pytest.approx(
            2 * model.predict_flops(10))


class TestBitwiseRoundTrip:
    @pytest.mark.parametrize("plan", PLANS)
    def test_load_predicts_bitwise_identically(self, cohort, plan, tmp_path):
        g_train, y, g_test = cohort
        session = _fitted(cohort, plan)
        ref = session.predict(g_test)
        path = session.export_model().save(tmp_path / "model")
        loaded = FittedModel.load(path)
        assert np.array_equal(loaded.predict(g_test), ref)
        # and a full serving session restored from the artifact agrees
        restored = KRRSession.from_model(loaded)
        assert np.array_equal(restored.predict(g_test), ref)

    @pytest.mark.parametrize("plan", PLANS)
    def test_factor_round_trips_bitwise(self, cohort, plan, tmp_path):
        session = _fitted(cohort, plan)
        model = session.export_model()
        loaded = FittedModel.load(model.save(tmp_path / "model"))
        for (i, j) in model.factor._iter_stored():
            # has_tile_data/get_tile see spilled tiles too, so this
            # stays exhaustive when the suite runs out-of-core
            # (REPRO_STORE_BUDGET)
            if not model.factor.has_tile_data(i, j):
                continue
            a = model.factor.get_tile(i, j)
            b = loaded.factor.get_tile(i, j)
            assert b.precision is a.precision
            assert np.array_equal(b.data, a.data)

    def test_factor_solves_round_trip_bitwise(self, cohort, tmp_path):
        g_train, y, _ = cohort
        session = _fitted(cohort, PrecisionPlan.adaptive_fp16())
        rng = np.random.default_rng(3)
        extra = rng.standard_normal((g_train.shape[0], 2))
        ref = np.asarray(session.solve_additional_phenotypes(extra))
        loaded = FittedModel.load(
            session.export_model().save(tmp_path / "model"))
        assert np.array_equal(
            np.asarray(loaded.solve_additional_phenotypes(extra)), ref)

    def test_confounders_round_trip(self, cohort, tmp_path):
        g_train, y, g_test = cohort
        rng = np.random.default_rng(5)
        conf_train = rng.standard_normal((g_train.shape[0], 4))
        conf_test = rng.standard_normal((g_test.shape[0], 4))
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y, conf_train)
        ref = session.predict(g_test, conf_test)
        loaded = FittedModel.load(
            session.export_model().save(tmp_path / "model"))
        assert loaded.training_confounders is not None
        assert np.array_equal(loaded.predict(g_test, conf_test), ref)
        with pytest.raises(ValueError):
            loaded.predict(g_test)  # confounder contract enforced

    def test_resident_bytes_survive_the_round_trip(self, cohort, tmp_path):
        model = _fitted(cohort, PrecisionPlan.adaptive_fp8()).export_model()
        loaded = FittedModel.load(model.save(tmp_path / "model"))
        assert loaded.resident_bytes() == model.resident_bytes()

    def test_boosted_alpha_is_persisted(self, cohort, tmp_path):
        g_train, y, _ = cohort
        session = _fitted(cohort, PrecisionPlan.fp32())
        loaded = FittedModel.load(
            session.export_model().save(tmp_path / "model"))
        assert loaded.alpha == session.alpha_
        assert loaded.gamma == session.gamma_


class TestArtifactFootprint:
    def test_fp8_artifact_measurably_smaller_than_fp32(self, cohort, tmp_path):
        """Acceptance criterion: the on-disk footprint follows the mosaic."""
        p32 = _fitted(cohort, PrecisionPlan.fp32()).export_model().save(
            tmp_path / "fp32")
        p8 = _fitted(cohort, PrecisionPlan.adaptive_fp8()).export_model().save(
            tmp_path / "fp8")
        size32, size8 = p32.stat().st_size, p8.stat().st_size
        assert size8 < 0.8 * size32, (
            f"adaptive-fp8 artifact ({size8} B) should be measurably "
            f"smaller than fp32 ({size32} B)")

    def test_compression_knob(self, cohort, tmp_path):
        model = _fitted(cohort, PrecisionPlan.fp32()).export_model()
        raw = model.save(tmp_path / "raw", compress=False)
        packed = model.save(tmp_path / "packed", compress=True)
        assert packed.stat().st_size < raw.stat().st_size
        assert np.array_equal(FittedModel.load(packed).weights,
                              FittedModel.load(raw).weights)

    def test_config_artifact_compress_default(self, cohort, tmp_path):
        g_train, y, _ = cohort
        session = KRRSession(KRRConfig(tile_size=64, artifact_compress=True))
        session.fit(g_train, y)
        model = session.export_model()
        compressed = model.save(tmp_path / "default")
        explicit_raw = model.save(tmp_path / "raw", compress=False)
        assert compressed.stat().st_size < explicit_raw.stat().st_size


class TestIOWiring:
    def test_save_model_load_model(self, cohort, tmp_path):
        _, _, g_test = cohort
        model = _fitted(cohort, PrecisionPlan.fp32()).export_model()
        path = save_model(model, tmp_path / "via_io")
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(g_test), model.predict(g_test))

    def test_save_model_rejects_non_models(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(np.zeros(3), tmp_path / "nope")

    def test_load_rejects_foreign_archives(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, meta_json=np.frombuffer(b'{"format": "other"}',
                                               dtype=np.uint8))
        with pytest.raises(ValueError, match="not a fitted-model"):
            FittedModel.load(path)


class TestFromModel:
    def test_restored_session_supports_factor_reuse(self, cohort):
        g_train, y, _ = cohort
        session = _fitted(cohort, PrecisionPlan.fp32())
        model = session.export_model()
        restored = KRRSession.from_model(model, execution="serial")
        assert restored.runtime.execution == "serial"
        rng = np.random.default_rng(9)
        extra = rng.standard_normal((g_train.shape[0], 2))
        assert np.array_equal(
            np.asarray(restored.solve_additional_phenotypes(extra)),
            np.asarray(session.solve_additional_phenotypes(extra)))

    def test_restored_session_requires_build_before_associate(self, cohort):
        model = _fitted(cohort, PrecisionPlan.fp32()).export_model()
        restored = KRRSession.from_model(model)
        with pytest.raises(RuntimeError, match="build"):
            restored.associate(np.zeros(model.n_train))
