"""Tests for cross-validation and the end-to-end workflow driver."""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, RRConfig
from repro.gwas.cv import CrossValidationResult, grid_search_cv, kfold_indices
from repro.gwas.workflow import GWASWorkflow


class TestKFold:
    def test_partition(self):
        folds = kfold_indices(50, 5, seed=0)
        assert len(folds) == 5
        all_valid = np.concatenate([v for _, v in folds])
        np.testing.assert_array_equal(np.sort(all_valid), np.arange(50))

    def test_train_valid_disjoint(self):
        for train, valid in kfold_indices(30, 3, seed=1):
            assert np.intersect1d(train, valid).size == 0
            assert train.size + valid.size == 30

    def test_invalid_folds(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)
        with pytest.raises(ValueError):
            kfold_indices(2, 5)


class TestGridSearch:
    def test_selects_best_hyperparameters(self, small_cohort):
        result = grid_search_cv(
            small_cohort.genotypes, small_cohort.phenotypes[:, 0],
            alphas=(0.5, 5.0), gammas=(0.01, 0.05),
            n_folds=2, base_config=KRRConfig(tile_size=64), seed=0,
        )
        assert isinstance(result, CrossValidationResult)
        assert (result.best_alpha, result.best_gamma) in result.scores
        assert result.best_score == min(result.scores.values())
        assert len(result.scores) == 4
        assert all(len(v) == 2 for v in result.fold_scores.values())

    def test_best_config_carries_selection(self, small_cohort):
        result = grid_search_cv(
            small_cohort.genotypes[:120], small_cohort.phenotypes[:120, 0],
            alphas=(1.0,), gammas=(0.02,), n_folds=2,
            base_config=KRRConfig(tile_size=40), seed=1,
        )
        cfg = result.best_config(KRRConfig(tile_size=40))
        assert cfg.alpha == result.best_alpha
        assert cfg.gamma == result.best_gamma
        assert cfg.tile_size == 40

    def test_empty_grid_raises(self, small_cohort):
        with pytest.raises(ValueError):
            grid_search_cv(small_cohort.genotypes, small_cohort.phenotypes[:, 0],
                           alphas=(), gammas=(0.1,))


class TestWorkflow:
    def test_rr_and_krr_use_same_split(self, small_cohort):
        wf = GWASWorkflow(small_cohort, train_fraction=0.8, seed=0)
        results = wf.compare(RRConfig(tile_size=16, regularization=10.0),
                             KRRConfig(tile_size=52))
        assert set(results.keys()) == {"rr", "krr"}
        n_test = wf.split.n_test
        assert results["rr"].predictions.shape[0] == n_test
        assert results["krr"].predictions.shape[0] == n_test

    def test_report_contains_all_phenotypes(self, small_cohort):
        wf = GWASWorkflow(small_cohort, seed=0)
        res = wf.run_krr(KRRConfig(tile_size=52))
        assert set(res.report.keys()) == set(small_cohort.phenotype_names)
        for metrics in res.report.values():
            assert {"mspe", "pearson", "r2"} <= set(metrics.keys())

    def test_mean_helpers(self, small_cohort):
        wf = GWASWorkflow(small_cohort, seed=0)
        res = wf.run_rr(RRConfig(tile_size=16, regularization=10.0))
        assert res.mean_mspe() == pytest.approx(
            np.mean([m["mspe"] for m in res.report.values()]))
        assert -1.0 <= res.mean_pearson() <= 1.0

    def test_krr_records_phase_flops(self, small_cohort):
        wf = GWASWorkflow(small_cohort, seed=0)
        res = wf.run_krr(KRRConfig(tile_size=52))
        assert res.phase_flops["build"] > 0
        assert res.phase_flops["associate"] > 0
