"""Factor-once CG sweeps: grid_search_cv routing, counters, timings.

The sweep contract: with ``solver="cg"`` each (fold, γ) session pays one
Build and **one** factorization, solves every other α by preconditioned
CG, selects the same (α, γ) as the direct route, and reports per-phase
wall-clock plus factorization/fallback counters on the result.
"""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig
from repro.gwas.cv import CrossValidationResult, grid_search_cv
from repro.gwas.session import KRRSession
from repro.linalg.cg import SOLVER_ENV

ALPHAS = (0.25, 1.0, 4.0)
GAMMAS = (0.01, 0.05)
FOLDS = 3


@pytest.fixture(scope="module")
def cohort():
    rng = np.random.default_rng(7)
    x = rng.integers(0, 3, size=(120, 30)).astype(np.float64)
    y = x[:, :5] @ rng.standard_normal(5) + 0.3 * rng.standard_normal(120)
    return x, y


@pytest.fixture(scope="module")
def direct_result(cohort):
    x, y = cohort
    return grid_search_cv(x, y, alphas=ALPHAS, gammas=GAMMAS, n_folds=FOLDS,
                          seed=0, solver="direct")


@pytest.fixture(scope="module")
def cg_result(cohort):
    x, y = cohort
    return grid_search_cv(x, y, alphas=ALPHAS, gammas=GAMMAS, n_folds=FOLDS,
                          seed=0, solver="cg")


class TestValidation:
    def test_n_folds(self, cohort):
        with pytest.raises(ValueError, match="n_folds"):
            grid_search_cv(*cohort, n_folds=1)

    def test_empty_alphas(self, cohort):
        with pytest.raises(ValueError, match="alphas"):
            grid_search_cv(*cohort, alphas=[])

    def test_empty_gammas(self, cohort):
        with pytest.raises(ValueError, match="gammas"):
            grid_search_cv(*cohort, gammas=[])

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_non_positive_alpha(self, cohort, bad):
        with pytest.raises(ValueError, match="alphas must be positive"):
            grid_search_cv(*cohort, alphas=[1.0, bad])

    def test_bogus_solver(self, cohort):
        with pytest.raises(ValueError, match="solver"):
            grid_search_cv(*cohort, solver="gmres")


class TestFactorOnceSweep:
    def test_same_selection(self, direct_result, cg_result):
        assert (cg_result.best_alpha, cg_result.best_gamma) == \
            (direct_result.best_alpha, direct_result.best_gamma)

    def test_scores_close(self, direct_result, cg_result):
        for key, direct_score in direct_result.scores.items():
            assert cg_result.scores[key] == pytest.approx(
                direct_score, rel=1e-2)

    def test_factorization_counts(self, direct_result, cg_result):
        sessions = FOLDS * len(GAMMAS)
        assert direct_result.factorizations == sessions * len(ALPHAS)
        assert cg_result.factorizations == sessions + cg_result.cg_fallbacks
        assert direct_result.cg_fallbacks == 0

    def test_solver_reported(self, direct_result, cg_result):
        assert direct_result.solver == "direct"
        assert cg_result.solver == "cg"

    def test_phase_seconds_recorded(self, direct_result, cg_result):
        for result in (direct_result, cg_result):
            for key in ("build", "factor", "solve", "predict"):
                assert result.phase_seconds.get(key, 0.0) > 0.0
        # result dataclass defaults stay backward compatible
        bare = CrossValidationResult(best_alpha=1.0, best_gamma=0.1,
                                     best_score=0.0)
        assert bare.phase_seconds == {} and bare.factorizations == 0

    def test_fold_scores_complete(self, cg_result):
        for errs in cg_result.fold_scores.values():
            assert len(errs) == FOLDS

    def test_env_opt_in(self, cohort, monkeypatch, cg_result):
        monkeypatch.setenv(SOLVER_ENV, "cg")
        x, y = cohort
        result = grid_search_cv(x, y, alphas=ALPHAS, gammas=GAMMAS[:1],
                                n_folds=FOLDS, seed=0)
        assert result.solver == "cg"
        assert result.factorizations == FOLDS + result.cg_fallbacks


class TestCgSessionEnvironments:
    """CG sessions under process execution and tight store budgets."""

    def _weights(self, config, cohort):
        x, y = cohort
        session = KRRSession(config)
        session.build(x)
        for alpha in ALPHAS:
            w = session.associate(y, alpha=alpha)
        return session, w

    def test_process_backend_bitwise(self, cohort):
        ref, w_ref = self._weights(
            KRRConfig(tile_size=32, solver="cg", execution="serial"), cohort)
        proc, w_proc = self._weights(
            KRRConfig(tile_size=32, solver="cg", execution="process",
                      workers=2), cohort)
        np.testing.assert_array_equal(w_proc, w_ref)
        assert proc.factorization_count_ == ref.factorization_count_
        assert proc.cg_fallbacks_ == ref.cg_fallbacks_
        if proc.cg_result_ is not None and ref.cg_result_ is not None:
            assert proc.cg_result_.residual_norms == \
                ref.cg_result_.residual_norms

    def test_store_budget_bitwise(self, cohort):
        ref, w_ref = self._weights(KRRConfig(tile_size=32, solver="cg"),
                                   cohort)
        mosaic = ref.kernel_.nbytes()
        oo, w_oo = self._weights(
            KRRConfig(tile_size=32, solver="cg", workers=2,
                      store_budget_bytes=mosaic // 2), cohort)
        np.testing.assert_array_equal(w_oo, w_ref)
        stats = oo.store_stats()
        assert stats.spills > 0
        assert oo.factorization_count_ == ref.factorization_count_

    def test_cg_iteration_flops_visible(self, cohort):
        from repro.precision.formats import Precision

        session, _ = self._weights(KRRConfig(tile_size=32, solver="cg"),
                                   cohort)
        # the FP64 entry carries the CG matvec work (the direct route's
        # associate runs entirely in the working precision)
        assert session.flops_by_precision.get(Precision.FP64, 0.0) > 0.0
        assert session.phase_flops["associate"] > 0.0
