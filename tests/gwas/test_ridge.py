"""Tests for the ridge-regression GWAS solver."""

import numpy as np
import pytest

from repro.gwas.config import PrecisionPlan, RRConfig
from repro.gwas.ridge import RidgeRegressionGWAS
from repro.precision.formats import Precision


def _reference_ridge(x, y, lam):
    """Closed-form ridge on standardized X / centered Y (FP64)."""
    xs = (x - x.mean(axis=0)) / x.std(axis=0)
    yc = y - y.mean(axis=0)
    p = xs.shape[1]
    beta = np.linalg.solve(xs.T @ xs + lam * np.eye(p), xs.T @ yc)
    return beta


@pytest.fixture
def linear_problem(rng):
    n, p = 300, 24
    x = rng.integers(0, 3, size=(n, p)).astype(np.float64)
    beta_true = rng.normal(size=p)
    y = (x - x.mean(0)) @ beta_true + 0.3 * rng.normal(size=n)
    return x, y[:, None]


class TestFit:
    def test_matches_closed_form_fp64(self, linear_problem):
        x, y = linear_problem
        model = RidgeRegressionGWAS(RRConfig(
            regularization=5.0, tile_size=8,
            precision_plan=PrecisionPlan.fp64(), snp_precision=Precision.INT8))
        fitted = model.fit(x, y)
        reference = _reference_ridge(x, y, 5.0)
        np.testing.assert_allclose(fitted.beta, reference, rtol=1e-4, atol=1e-5)

    def test_fp32_close_to_fp64(self, linear_problem):
        x, y = linear_problem
        m64 = RidgeRegressionGWAS(RRConfig(regularization=5.0, tile_size=8,
                                           precision_plan=PrecisionPlan.fp64()))
        m32 = RidgeRegressionGWAS(RRConfig(regularization=5.0, tile_size=8,
                                           precision_plan=PrecisionPlan.fp32()))
        b64 = m64.fit(x, y).beta
        b32 = m32.fit(x, y).beta
        np.testing.assert_allclose(b32, b64, rtol=1e-2, atol=1e-2)

    def test_recovers_strong_linear_signal(self, linear_problem):
        x, y = linear_problem
        model = RidgeRegressionGWAS(RRConfig(regularization=1.0, tile_size=8))
        pred = model.fit_predict(x[:250], y[:250], x[250:])
        corr = np.corrcoef(pred[:, 0], y[250:, 0])[0, 1]
        assert corr > 0.8

    def test_shrinkage_with_regularization(self, linear_problem):
        x, y = linear_problem
        small = RidgeRegressionGWAS(RRConfig(regularization=0.1, tile_size=8))
        large = RidgeRegressionGWAS(RRConfig(regularization=1000.0, tile_size=8))
        beta_small = small.fit(x, y).beta
        beta_large = large.fit(x, y).beta
        assert np.linalg.norm(beta_large) < np.linalg.norm(beta_small)

    def test_multivariate_phenotypes(self, linear_problem, rng):
        x, y = linear_problem
        y2 = np.hstack([y, rng.normal(size=y.shape)])
        model = RidgeRegressionGWAS(RRConfig(tile_size=8))
        fitted = model.fit(x, y2)
        assert fitted.beta.shape == (x.shape[1], 2)
        pred = model.predict(x[:10])
        assert pred.shape == (10, 2)

    def test_flop_accounting_by_precision(self, linear_problem):
        x, y = linear_problem
        model = RidgeRegressionGWAS(RRConfig(tile_size=8))
        fitted = model.fit(x, y, integer_columns=np.ones(x.shape[1], dtype=bool))
        assert fitted.flops > 0
        assert Precision.INT8 in fitted.flops_by_precision

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegressionGWAS().predict(np.zeros((2, 3)))

    def test_row_mismatch_raises(self, linear_problem):
        x, y = linear_problem
        with pytest.raises(ValueError):
            RidgeRegressionGWAS(RRConfig(tile_size=8)).fit(x, y[:-5])

    def test_reuse_factorization_for_new_phenotypes(self, linear_problem, rng):
        x, y = linear_problem
        model = RidgeRegressionGWAS(RRConfig(regularization=2.0, tile_size=8,
                                             precision_plan=PrecisionPlan.fp64()))
        model.fit(x, y)
        y_new = rng.normal(size=(x.shape[0], 1))
        reused = model.solve_additional_phenotypes(x, y_new)
        direct = RidgeRegressionGWAS(RRConfig(regularization=2.0, tile_size=8,
                                              precision_plan=PrecisionPlan.fp64()))
        expected = direct.fit(x, y_new).beta
        np.testing.assert_allclose(reused, expected, rtol=1e-6, atol=1e-8)

    def test_keyword_override_constructor(self):
        model = RidgeRegressionGWAS(regularization=7.0)
        assert model.config.regularization == 7.0
