"""Process-backend KRR sessions: the full-pipeline bitwise matrix.

``KRRConfig(execution="process")`` must drive Build → Factor → Solve →
Predict through worker OS processes and reproduce the serial session
bit for bit — across precision plans, worker counts, and store budgets.
This is the acceptance contract of the process backend at the level
users actually touch.
"""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.session import KRRSession
from repro.runtime.runtime import EXECUTION_ENV, WORKERS_ENV

TILE = 64

PLANS = {
    "fp32": PrecisionPlan.fp32(),
    "adaptive-fp16": PrecisionPlan.adaptive_fp16(),
    "adaptive-fp8": PrecisionPlan.adaptive_fp8(),
}

#: serial references, computed once per precision plan
_REFERENCE: dict = {}


@pytest.fixture(scope="module")
def cohort():
    rng = np.random.default_rng(53)
    g_train = rng.integers(0, 3, size=(192, 80)).astype(np.float64)
    y = rng.standard_normal((192, 2))
    g_test = rng.integers(0, 3, size=(64, 80)).astype(np.float64)
    return g_train, y, g_test


def fit_predict(config, cohort):
    g_train, y, g_test = cohort
    session = KRRSession(config)
    try:
        session.fit(g_train, y)
        return (session.predict(g_test), session.weights_.copy(),
                session.alpha_, session.kernel_.nbytes(),
                session.store_stats())
    finally:
        session.runtime.close()


def reference(plan_name, cohort):
    if plan_name not in _REFERENCE:
        _REFERENCE[plan_name] = fit_predict(
            KRRConfig(tile_size=TILE, precision_plan=PLANS[plan_name],
                      execution="serial"), cohort)
    return _REFERENCE[plan_name]


@pytest.mark.parametrize("plan_name", list(PLANS))
@pytest.mark.parametrize("workers", [1, 2, 8])
def test_process_session_bitwise_vs_serial(cohort, plan_name, workers):
    ref_pred, ref_weights, ref_alpha, _, _ = reference(plan_name, cohort)
    pred, weights, alpha, _, _ = fit_predict(
        KRRConfig(tile_size=TILE, precision_plan=PLANS[plan_name],
                  execution="process", workers=workers), cohort)
    np.testing.assert_array_equal(pred, ref_pred)
    np.testing.assert_array_equal(weights, ref_weights)
    assert alpha == ref_alpha


@pytest.mark.parametrize("plan_name", ["fp32", "adaptive-fp8"])
def test_process_session_bitwise_under_tight_budget(cohort, plan_name):
    ref_pred, ref_weights, ref_alpha, mosaic, _ = reference(plan_name, cohort)
    # workers=2 keeps the pinned working set inside the quarter budget
    pred, weights, alpha, _, stats = fit_predict(
        KRRConfig(tile_size=TILE, precision_plan=PLANS[plan_name],
                  execution="process", workers=2,
                  store_budget_bytes=mosaic // 4), cohort)
    np.testing.assert_array_equal(pred, ref_pred)
    np.testing.assert_array_equal(weights, ref_weights)
    assert alpha == ref_alpha
    assert stats.spills > 0
    assert stats.reloads > 0


def test_env_driven_process_session(cohort, monkeypatch):
    """REPRO_EXECUTION/REPRO_WORKERS select the backend without code."""
    monkeypatch.setenv(EXECUTION_ENV, "process")
    monkeypatch.setenv(WORKERS_ENV, "2")
    ref_pred, ref_weights, ref_alpha, _, _ = reference("fp32", cohort)
    session = KRRSession(KRRConfig(tile_size=TILE,
                                   precision_plan=PLANS["fp32"]))
    try:
        assert session.runtime.execution == "process"
        assert session.runtime.workers == 2
        g_train, y, g_test = cohort
        session.fit(g_train, y)
        np.testing.assert_array_equal(session.predict(g_test), ref_pred)
        np.testing.assert_array_equal(session.weights_, ref_weights)
        assert session.alpha_ == ref_alpha
    finally:
        session.runtime.close()
