"""Out-of-core KRR sessions: budgeted fit/predict bitwise contracts."""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.session import KRRSession
from repro.store import STORE_BUDGET_ENV, TileStore


@pytest.fixture(scope="module")
def cohort():
    rng = np.random.default_rng(41)
    g_train = rng.integers(0, 3, size=(448, 120)).astype(np.float64)
    y = rng.standard_normal((448, 2))
    g_test = rng.integers(0, 3, size=(96, 120)).astype(np.float64)
    return g_train, y, g_test


def fit_predict(config, cohort):
    g_train, y, g_test = cohort
    session = KRRSession(config)
    session.fit(g_train, y)
    return session, session.predict(g_test)


PLANS = {
    "fp32": PrecisionPlan.fp32(),
    "adaptive-fp16": PrecisionPlan.adaptive_fp16(),
    "adaptive-fp8": PrecisionPlan.adaptive_fp8(),
}


class TestBudgetedFitPredict:
    @pytest.mark.parametrize("plan_name", list(PLANS))
    def test_quarter_budget_bitwise_and_under_budget(self, cohort, plan_name):
        plan = PLANS[plan_name]
        ref_session, ref_pred = fit_predict(
            KRRConfig(tile_size=64, precision_plan=plan), cohort)
        mosaic = ref_session.kernel_.nbytes()

        # workers=2 keeps the pinned working set (<= workers x 3 tiles)
        # inside the quarter budget; the peak<=budget contract only
        # holds when the pinned set fits (REPRO_WORKERS=8 would not)
        oo_session, oo_pred = fit_predict(
            KRRConfig(tile_size=64, precision_plan=plan, workers=2,
                      store_budget_bytes=mosaic // 4), cohort)
        stats = oo_session.store_stats()
        np.testing.assert_array_equal(oo_pred, ref_pred)
        np.testing.assert_array_equal(oo_session.weights_,
                                      ref_session.weights_)
        assert oo_session.alpha_ == ref_session.alpha_
        assert stats.peak_resident_bytes <= stats.budget_bytes
        assert stats.spills > 0
        assert stats.reloads > 0

    def test_threaded_eight_workers_matches_serial_unbudgeted(self, cohort):
        """The acceptance raciness check at session level."""
        ref_session, ref_pred = fit_predict(
            KRRConfig(tile_size=64, execution="serial"), cohort)
        mosaic = ref_session.kernel_.nbytes()
        oo_session, oo_pred = fit_predict(
            KRRConfig(tile_size=64, execution="threaded", workers=8,
                      store_budget_bytes=mosaic // 4), cohort)
        np.testing.assert_array_equal(oo_pred, ref_pred)
        np.testing.assert_array_equal(oo_session.weights_,
                                      ref_session.weights_)

    def test_factor_reuse_faults_from_store(self, cohort):
        g_train, y, _ = cohort
        ref = KRRSession(KRRConfig(tile_size=64)).fit(g_train, y)
        oo = KRRSession(KRRConfig(
            tile_size=64,
            store_budget_bytes=ref.kernel_.nbytes() // 4)).fit(g_train, y)
        extra = np.cos(np.arange(g_train.shape[0], dtype=np.float64))
        np.testing.assert_array_equal(
            oo.solve_additional_phenotypes(extra),
            ref.solve_additional_phenotypes(extra))

    def test_export_model_from_budgeted_session(self, cohort, tmp_path):
        g_train, y, g_test = cohort
        ref = KRRSession(KRRConfig(tile_size=64)).fit(g_train, y)
        oo = KRRSession(KRRConfig(
            tile_size=64,
            store_budget_bytes=ref.kernel_.nbytes() // 4)).fit(g_train, y)
        model = oo.export_model()
        # store knobs never travel with the artifact
        assert model.config.store_budget_bytes is None
        assert model.config.store_dir is None
        path = model.save(tmp_path / "model.npz")
        from repro.gwas.model import FittedModel

        loaded = FittedModel.load(path)
        np.testing.assert_array_equal(loaded.predict(g_test),
                                      ref.predict(g_test))


class TestStoreWiring:
    def test_no_store_by_default(self, monkeypatch):
        monkeypatch.delenv(STORE_BUDGET_ENV, raising=False)
        session = KRRSession(KRRConfig(tile_size=64))
        assert session.store is None
        assert session.store_stats() is None

    def test_env_budget_creates_store(self, monkeypatch):
        monkeypatch.setenv(STORE_BUDGET_ENV, "8m")
        session = KRRSession(KRRConfig(tile_size=64))
        assert session.store is not None
        assert session.store.budget_bytes == 8 << 20

    def test_explicit_budget_beats_env(self, monkeypatch):
        monkeypatch.setenv(STORE_BUDGET_ENV, "8m")
        session = KRRSession(KRRConfig(tile_size=64,
                                       store_budget_bytes=1 << 20))
        assert session.store.budget_bytes == 1 << 20

    def test_store_dir_is_used(self, cohort, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_BUDGET_ENV, raising=False)
        g_train, y, _ = cohort
        spill_dir = tmp_path / "spill"
        session = KRRSession(KRRConfig(
            tile_size=64, store_budget_bytes=64 << 10,
            store_dir=str(spill_dir)))
        session.fit(g_train, y)
        assert any(spill_dir.glob("seg-*.bin"))

    def test_store_knobs_not_serialized(self):
        cfg = KRRConfig(tile_size=64, store_budget_bytes=1 << 20,
                        store_dir="/tmp/somewhere")
        data = cfg.to_dict()
        assert "store_budget_bytes" not in data
        assert "store_dir" not in data
        assert KRRConfig.from_dict(data).store_budget_bytes is None

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="store_budget_bytes"):
            KRRConfig(store_budget_bytes=0)

    def test_scheduler_hooks_installed(self, monkeypatch):
        monkeypatch.delenv(STORE_BUDGET_ENV, raising=False)
        from repro.store import StoreSchedulerHooks

        session = KRRSession(KRRConfig(tile_size=64,
                                       store_budget_bytes=1 << 20))
        hooks = session.runtime.scheduler.hooks
        assert isinstance(hooks, StoreSchedulerHooks)
        assert hooks.store is session.store

    def test_kernel_and_factor_share_session_store(self, cohort):
        g_train, y, _ = cohort
        session = KRRSession(KRRConfig(tile_size=64,
                                       store_budget_bytes=256 << 10))
        session.fit(g_train, y)
        assert session.kernel_.store is session.store
        assert session.factorization_.factor.store is session.store


class TestGridSearchUnderBudget:
    def test_grid_search_matches_unbudgeted(self, cohort, monkeypatch):
        monkeypatch.delenv(STORE_BUDGET_ENV, raising=False)
        from repro.gwas.cv import grid_search_cv

        g_train, y, _ = cohort
        kwargs = dict(alphas=(0.1, 1.0), gammas=(0.01,), n_folds=2)
        ref = grid_search_cv(g_train, y[:, 0],
                             base_config=KRRConfig(tile_size=64), **kwargs)
        monkeypatch.setenv(STORE_BUDGET_ENV, "256k")
        oo = grid_search_cv(g_train, y[:, 0],
                            base_config=KRRConfig(tile_size=64), **kwargs)
        assert oo.best_alpha == ref.best_alpha
        assert oo.best_score == ref.best_score
