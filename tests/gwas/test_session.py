"""Tests for the tile-native KRR solver session.

The headline contract under test: ``KRRSession`` keeps the kernel
matrix tiled from Build through Associate and Predict with **zero
dense n×n round-trips**, while producing predictions identical to the
historical dense Associate/Predict path.
"""

from unittest import mock

import numpy as np
import pytest

from repro.distance.build import KernelBuilder
from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.cv import grid_search_cv, kfold_indices
from repro.gwas.krr import KernelRidgeRegressionGWAS
from repro.gwas.metrics import mean_squared_prediction_error
from repro.gwas.session import KRRSession
from repro.linalg.blas3 import gemm
from repro.linalg.cholesky import cholesky
from repro.linalg.solve import solve_cholesky
from repro.precision.formats import Precision
from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TileMatrix


@pytest.fixture(scope="module")
def cohort_512():
    rng = np.random.default_rng(7)
    n, ns = 512, 128
    g_train = rng.integers(0, 3, size=(n, ns)).astype(np.int8)
    y = rng.standard_normal((n, 3))
    g_test = rng.integers(0, 3, size=(200, ns)).astype(np.int8)
    return g_train, y, g_test


def _seed_dense_fit_predict(cfg: KRRConfig, g_train, y, g_test):
    """Frozen copy of the historical dense Associate/Predict path.

    Build streams tiles (as in PR 1), but Associate densifies the
    kernel, copies the full dense matrix per regularization attempt,
    and Predict materializes the whole cross kernel — exactly what the
    estimator did before the session redesign.
    """
    plan = cfg.precision_plan
    gamma = cfg.effective_gamma(g_train.shape[1])
    builder = KernelBuilder(
        kernel_type=cfg.kernel_type, gamma=gamma, tile_size=cfg.tile_size,
        snp_precision=cfg.snp_precision,
        adaptive_rule=plan.adaptive_rule() if plan.mode == "adaptive" else None,
        storage_precision=plan.working_precision)
    build = builder.build_training(g_train)
    k_dense = build.kernel.to_dense()
    n = k_dense.shape[0]
    layout = TileLayout.square(n, cfg.tile_size)
    alpha = cfg.alpha if cfg.alpha > 0 else 1e-6
    diag = np.diag_indices(n)
    a = k_dense.copy()
    a[diag] += alpha
    pmap = plan.precision_map(layout, matrix=a)
    fact = cholesky(a, tile_size=cfg.tile_size,
                    working_precision=plan.working_precision,
                    precision_map=pmap)
    y_means = y.mean(axis=0)
    w = np.asarray(solve_cholesky(fact, y - y_means[None, :],
                                  precision=plan.working_precision),
                   dtype=np.float64)
    pbuilder = KernelBuilder(
        kernel_type=cfg.kernel_type, gamma=gamma, tile_size=cfg.tile_size,
        snp_precision=cfg.snp_precision,
        storage_precision=plan.working_precision)
    cross = pbuilder.build_cross(g_test, g_train, None, None)
    k_test = cross.to_dense()
    preds = gemm(k_test, w, tile_size=cfg.tile_size,
                 precision=plan.working_precision)
    return preds + y_means[None, :]


class TestNoDenseRoundTrip:
    def test_fit_predict_never_densifies_a_tile_matrix(self, cohort_512):
        """The acceptance criterion: no ``to_dense`` on the hot path at n=512."""
        g_train, y, g_test = cohort_512

        def forbidden(self, *args, **kwargs):
            raise AssertionError(
                "TileMatrix.to_dense called inside the session hot path")

        session = KRRSession(KRRConfig(tile_size=64))
        with mock.patch.object(TileMatrix, "to_dense", forbidden):
            session.fit(g_train, y)
            predictions = session.predict(g_test)
        assert predictions.shape == (g_test.shape[0], y.shape[1])

    def test_associate_retry_does_not_densify(self):
        """The boost-retry loop must stay tile-native too."""
        rng = np.random.default_rng(0)
        n = 64
        q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        eigs = np.linspace(1.0, 2.0, n)
        eigs[0] = -5.0  # indefinite at alpha=1, PD at alpha=10
        k = (q * eigs) @ q.T
        k = (k + k.T) / 2.0
        session = KRRSession(KRRConfig(
            tile_size=32, alpha=1.0, precision_plan=PrecisionPlan.fp64()))
        session.adopt_kernel(k)

        def forbidden(self, *args, **kwargs):
            raise AssertionError("to_dense called during associate retry")

        with mock.patch.object(TileMatrix, "to_dense", forbidden):
            session.associate(np.ones(n))
        assert session.regularization_boosts_ == 1


class TestSeedPathEquivalence:
    @pytest.mark.parametrize("plan", [
        PrecisionPlan.adaptive_fp16(),
        PrecisionPlan.fp32(),
        PrecisionPlan.adaptive_fp8(),
        PrecisionPlan.fp64(),
    ], ids=lambda p: p.label())
    def test_predictions_match_dense_path(self, cohort_512, plan):
        g_train, y, g_test = cohort_512
        cfg = KRRConfig(tile_size=64, precision_plan=plan)
        reference = _seed_dense_fit_predict(cfg, g_train, y, g_test)
        session = KRRSession(cfg)
        session.fit(g_train, y)
        predictions = session.predict(g_test)
        rel = (np.linalg.norm(predictions - reference)
               / np.linalg.norm(reference))
        assert rel <= 1e-10

    def test_batched_predict_matches_monolithic(self, cohort_512):
        g_train, y, g_test = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        monolithic = session.predict(g_test, batch_rows=g_test.shape[0])
        batched = session.predict_batched(g_test, batch_rows=64)
        # sub-tile requests are clamped up to one tile
        clamped = session.predict_batched(g_test, batch_rows=1)
        np.testing.assert_array_equal(batched, monolithic)
        np.testing.assert_array_equal(clamped, monolithic)

    def test_wrapper_estimator_delegates_to_session(self, cohort_512):
        g_train, y, g_test = cohort_512
        cfg = KRRConfig(tile_size=64)
        wrapped = KernelRidgeRegressionGWAS(cfg).fit_predict(g_train, y, g_test)
        direct = KRRSession(cfg).fit_predict(g_train, y, g_test)
        np.testing.assert_array_equal(wrapped, direct)


def _indefinite_kernel(n: int, min_eig: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigs = np.linspace(1.0, 2.0, n)
    eigs[0] = min_eig
    k = (q * eigs) @ q.T
    return (k + k.T) / 2.0


class TestRegularizationBoost:
    def test_no_boost_for_positive_definite_kernel(self):
        n = 48
        k = _indefinite_kernel(n, min_eig=0.5)
        session = KRRSession(KRRConfig(
            tile_size=16, alpha=1.0, precision_plan=PrecisionPlan.fp64()))
        session.adopt_kernel(k)
        session.associate(np.ones(n))
        assert session.regularization_boosts_ == 0
        assert session.alpha_ == 1.0

    def test_boost_succeeds_on_second_attempt(self):
        n = 48
        k = _indefinite_kernel(n, min_eig=-5.0)  # K+1I indefinite, K+10I PD
        session = KRRSession(KRRConfig(
            tile_size=16, alpha=1.0, precision_plan=PrecisionPlan.fp64()))
        session.adopt_kernel(k)
        y = np.random.default_rng(5).standard_normal(n)
        weights = session.associate(y)
        assert session.regularization_boosts_ == 1
        assert session.alpha_ == pytest.approx(10.0)
        # the solved system is K + 10I, not K + I
        expected = np.linalg.solve(k + 10.0 * np.eye(n), y - y.mean())
        np.testing.assert_allclose(weights[:, 0], expected, atol=1e-8)

    def test_boost_succeeds_on_third_attempt(self):
        n = 48
        k = _indefinite_kernel(n, min_eig=-50.0)  # needs alpha=100
        session = KRRSession(KRRConfig(
            tile_size=16, alpha=1.0, precision_plan=PrecisionPlan.fp64()))
        session.adopt_kernel(k)
        session.associate(np.ones(n))
        assert session.regularization_boosts_ == 2
        assert session.alpha_ == pytest.approx(100.0)

    def test_terminal_linalg_error_after_exhausted_boosts(self):
        n = 48
        k = _indefinite_kernel(n, min_eig=-500.0)  # not PD even at alpha=100
        session = KRRSession(KRRConfig(
            tile_size=16, alpha=1.0, precision_plan=PrecisionPlan.fp64()))
        session.adopt_kernel(k)
        with pytest.raises(np.linalg.LinAlgError,
                           match="remained indefinite"):
            session.associate(np.ones(n))
        # all three attempts failed; the counter records every boost
        # applied, matching the historical estimator's accounting
        assert session.regularization_boosts_ == 3

    def test_wrapper_exposes_boost_count(self):
        n = 48
        k = _indefinite_kernel(n, min_eig=-5.0)
        model = KernelRidgeRegressionGWAS(KRRConfig(
            tile_size=16, alpha=1.0, precision_plan=PrecisionPlan.fp64()))
        model.associate(k, np.ones(n))
        assert model.regularization_boosts_ == 1


class TestFlopAccounting:
    def test_predict_folds_flops_into_both_views(self, cohort_512):
        g_train, y, g_test = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        before_phase = sum(session.phase_flops.values())
        before_prec = sum(session.flops_by_precision.values())
        assert before_phase == pytest.approx(before_prec)

        session.predict(g_test)
        assert session.phase_flops["predict"] > 0
        after_phase = sum(session.phase_flops.values())
        after_prec = sum(session.flops_by_precision.values())
        # the Predict contribution lands in *both* accounting views
        assert after_phase == pytest.approx(after_prec)
        assert after_phase > before_phase
        # the cross-kernel Gram runs in the SNP precision, the K_test @ W
        # GEMM in the working precision
        assert session.flops_by_precision[Precision.INT8] > 0
        assert session.flops_by_precision[Precision.FP32] > 0

    def test_model_views_are_live(self, cohort_512):
        """The wrapper's KRRModel shares the session accounting dicts."""
        g_train, y, g_test = cohort_512
        model = KernelRidgeRegressionGWAS(KRRConfig(tile_size=64))
        model.fit(g_train, y)
        assert "predict" not in model.model_.phase_flops
        model.predict(g_test)
        assert model.model_.phase_flops["predict"] > 0
        assert sum(model.model_.phase_flops.values()) == pytest.approx(
            sum(model.model_.flops_by_precision.values()))

    def test_reassociate_resets_associate_and_predict_accounting(self, cohort_512):
        g_train, y, g_test = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        session.predict(g_test)
        assert "predict" in session.phase_flops
        session.associate(y, alpha=1.0)
        assert "predict" not in session.phase_flops
        assert sum(session.phase_flops.values()) == pytest.approx(
            sum(session.flops_by_precision.values()))


class TestSessionReuse:
    def test_alpha_sweep_over_one_build(self, cohort_512):
        """associate(alpha=...) refits without rebuilding the kernel.

        Pinned to the direct route: the bitwise sweep-vs-scratch
        contract is a property of per-alpha refactorization, which a
        REPRO_SOLVER=cg environment deliberately replaces with
        tolerance-bounded CG re-solves.
        """
        g_train, y, g_test = cohort_512
        cfg = KRRConfig(tile_size=64, solver="direct")
        session = KRRSession(cfg)
        session.build(g_train)
        swept = {}
        for alpha in (0.1, 1.0):
            session.associate(y, alpha=alpha)
            swept[alpha] = session.predict(g_test)
        for alpha, pred in swept.items():
            scratch = KRRSession(cfg.with_options(alpha=alpha))
            np.testing.assert_array_equal(
                pred, scratch.fit_predict(g_train, y, g_test))

    def test_cross_kernel_reuse_matches_streamed_predict(self, cohort_512):
        g_train, y, g_test = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        streamed = session.predict(g_test)
        cross = session.cross_kernel(g_test)
        reused = session.predict_with_kernel(cross)
        np.testing.assert_array_equal(reused, streamed)

    def test_build_is_required_before_associate(self):
        with pytest.raises(RuntimeError):
            KRRSession().associate(np.ones(8))

    def test_fit_is_required_before_predict(self):
        with pytest.raises(RuntimeError):
            KRRSession().predict(np.zeros((3, 4)))


class TestGridSearchReuse:
    def test_one_build_per_fold_gamma(self, small_cohort):
        """The alpha axis must not rebuild the kernel."""
        genotypes = small_cohort.genotypes
        phenotypes = small_cohort.phenotypes[:, 0]
        builds = []
        original = KernelBuilder.build_training

        def counting(self, *args, **kwargs):
            builds.append(1)
            return original(self, *args, **kwargs)

        alphas, gammas, n_folds = (0.1, 1.0, 10.0), (0.005, 0.02), 2
        with mock.patch.object(KernelBuilder, "build_training", counting):
            grid_search_cv(genotypes, phenotypes, alphas=alphas, gammas=gammas,
                           n_folds=n_folds,
                           base_config=KRRConfig(tile_size=52))
        assert len(builds) == n_folds * len(gammas)

    def test_scores_match_per_point_refit(self, small_cohort):
        genotypes = small_cohort.genotypes
        phenotypes = small_cohort.phenotypes[:, 0][:, None]
        base = KRRConfig(tile_size=52)
        alphas, gammas, n_folds = (0.5, 5.0), (0.01, 0.05), 2

        # solver pinned: this asserts the kernel-reuse sweep matches
        # per-point refits to 1e-12, a direct-route property; the CG
        # route's (looser) agreement contract lives in test_cv_cg.py.
        result = grid_search_cv(genotypes, phenotypes[:, 0], alphas=alphas,
                                gammas=gammas, n_folds=n_folds,
                                base_config=base, seed=3, solver="direct")

        folds = kfold_indices(genotypes.shape[0], n_folds, seed=3)
        for alpha in alphas:
            for gamma in gammas:
                errs = []
                for train_idx, valid_idx in folds:
                    session = KRRSession(base.with_options(
                        alpha=float(alpha), gamma=float(gamma)))
                    pred = session.fit_predict(
                        genotypes[train_idx], phenotypes[train_idx],
                        genotypes[valid_idx])
                    errs.append(mean_squared_prediction_error(
                        phenotypes[valid_idx], pred))
                np.testing.assert_allclose(
                    result.scores[(float(alpha), float(gamma))],
                    float(np.mean(errs)), rtol=1e-12)


class TestWrapperStatelessness:
    """The legacy estimator's build()/associate() were side-effect-free;
    the wrapper must preserve that even though it delegates to a session."""

    def test_build_does_not_disturb_fitted_model(self, cohort_512):
        g_train, y, g_test = cohort_512
        rng = np.random.default_rng(3)
        other = rng.integers(0, 3, size=(128, g_train.shape[1])).astype(np.int8)

        model = KernelRidgeRegressionGWAS(KRRConfig(tile_size=64))
        model.fit(g_train, y)
        expected = model.predict(g_test)

        model.build(other)  # historical behaviour: pure, no state change
        np.testing.assert_array_equal(model.predict(g_test), expected)

    def test_associate_does_not_disturb_fitted_model(self, cohort_512):
        g_train, y, g_test = cohort_512
        model = KernelRidgeRegressionGWAS(KRRConfig(tile_size=64))
        model.fit(g_train, y)
        expected = model.predict(g_test)

        k = _indefinite_kernel(64, min_eig=-5.0)
        model.associate(k, np.ones(64))
        assert model.regularization_boosts_ == 1  # reports the standalone run
        np.testing.assert_array_equal(model.predict(g_test), expected)


class TestShallowRegularizedCopy:
    def test_associate_shares_off_diagonal_tiles_with_kernel(self, cohort_512):
        """Regularization must not copy (or touch) the off-diagonal tiles."""
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.build(g_train)
        before = {(i, j): session.kernel_.get_tile(i, j)
                  for i in range(3) for j in range(i)}
        before_dense = {k: t.to_float64() for k, t in before.items()}
        session.associate(y)
        for (i, j), tile in before.items():
            if session.store is None:
                # object identity proves zero copying; an out-of-core
                # session (REPRO_STORE_BUDGET) may legitimately have
                # spilled and re-faulted the tile, so only the bitwise
                # value contract applies there
                assert session.kernel_.get_tile(i, j) is tile
            np.testing.assert_array_equal(
                session.kernel_.get_tile(i, j).to_float64(),
                before_dense[(i, j)])
            np.testing.assert_array_equal(tile.to_float64(), before_dense[(i, j)])

    def test_repeated_associate_identical(self, cohort_512):
        """The kernel must survive associate() unmodified, so re-running
        with the same alpha reproduces the weights exactly."""
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.build(g_train)
        w1 = session.associate(y, alpha=0.5)
        w2 = session.associate(y, alpha=0.5)
        np.testing.assert_array_equal(w1, w2)


class TestRuntimeTraceAccounting:
    """The session-owned runtime's traces are the accounting source."""

    def test_session_owns_one_runtime_across_phases(self, cohort_512):
        g_train, y, g_test = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        runtime = session.runtime
        scheduler = runtime.scheduler
        session.fit(g_train, y)
        session.predict(g_test)
        assert session.runtime is runtime
        assert runtime.scheduler is scheduler
        # Build + Associate (cholesky + 2 solve sweeps) + Predict all
        # drained through the one runtime
        assert runtime.runs_completed >= 5

    def test_phase_flops_match_phase_traces(self, cohort_512):
        g_train, y, g_test = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        session.predict(g_test)
        rt = session.runtime
        assert session.phase_flops["build"] == pytest.approx(
            rt.phase_trace("build").total_flops)
        assert session.phase_flops["associate"] == pytest.approx(
            rt.phase_trace("associate").total_flops)
        assert session.phase_flops["predict"] == pytest.approx(
            rt.phase_trace("predict").total_flops)

    def test_associate_includes_factorization_and_solve_tasks(self, cohort_512):
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.build(g_train)
        session.associate(y)
        trace = session.runtime.phase_trace("associate")
        names = {e.task_name for e in trace.events}
        assert {"potrf", "trsm", "syrk", "solve_trsm", "solve_gemm"} <= names
        # associate accounting = factorization + weight-panel solve
        assert session.phase_flops["associate"] > \
            session.factorization_.flops > 0

    def test_failed_boost_attempts_never_pollute_accounting(self):
        n = 64
        k = _indefinite_kernel(n, min_eig=-5.0)
        session = KRRSession(KRRConfig(
            tile_size=32, alpha=1.0, precision_plan=PrecisionPlan.fp64()))
        session.adopt_kernel(k)
        session.associate(np.ones(n))
        assert session.regularization_boosts_ == 1
        # only the successful factorization's tasks are in the trace:
        # nt=2 gives 2 potrf + 1 trsm + 1 syrk (+ 2x2 solve rows)
        trace = session.runtime.phase_trace("associate")
        by_name = {}
        for e in trace.events:
            by_name[e.task_name] = by_name.get(e.task_name, 0) + 1
        assert by_name["potrf"] == 2
        assert session.phase_flops["associate"] == pytest.approx(
            trace.total_flops)

    def test_serial_and_threaded_sessions_bitwise_identical(self, cohort_512):
        g_train, y, g_test = cohort_512
        serial = KRRSession(KRRConfig(tile_size=64, execution="serial"))
        threaded = KRRSession(KRRConfig(tile_size=64, execution="threaded",
                                        workers=8))
        p_serial = serial.fit_predict(g_train, y, g_test)
        p_threaded = threaded.fit_predict(g_train, y, g_test)
        np.testing.assert_array_equal(p_threaded, p_serial)
        assert serial.phase_flops == threaded.phase_flops

    def test_reassociate_clears_predict_trace(self, cohort_512):
        """phase_flops and the runtime's predict trace must stay in
        lock-step across a re-associate (which resets predict)."""
        g_train, y, g_test = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        session.predict(g_test)
        session.associate(y, alpha=1.0)
        assert session.runtime.phase_trace("predict").num_tasks == 0
        session.predict(g_test)
        assert session.phase_flops["predict"] == pytest.approx(
            session.runtime.phase_trace("predict").total_flops)

    def test_adopt_kernel_resets_build_accounting(self, cohort_512):
        """Adopting a foreign kernel after a build must drop the stale
        build entry from *both* accounting views."""
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(
            tile_size=64, precision_plan=PrecisionPlan.fp64()))
        session.build(g_train)
        assert session.phase_flops["build"] > 0
        k = _indefinite_kernel(64, min_eig=0.5)
        session.adopt_kernel(k)
        assert "build" not in session.phase_flops
        session.associate(np.ones(64))
        assert sum(session.phase_flops.values()) == pytest.approx(
            sum(session.flops_by_precision.values()))

    def test_adopt_kernel_consistent_before_next_associate(self, cohort_512):
        """Between adopt_kernel and the next associate, both accounting
        views must already agree (no stale build contribution)."""
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        session.adopt_kernel(_indefinite_kernel(64, min_eig=0.5))
        assert sum(session.phase_flops.values()) == pytest.approx(
            sum(session.flops_by_precision.values()))


class TestGridSearchTieBreaking:
    def test_exact_tie_breaks_to_smallest_alpha_then_gamma(self):
        """With all-zero phenotypes every grid point predicts the mean
        exactly, so every score ties at 0 — the winner must be the
        (min alpha, min gamma) pair, not whatever the caller's grid
        ordering put first in dict insertion order."""
        rng = np.random.default_rng(2)
        genotypes = rng.integers(0, 3, size=(48, 20)).astype(np.int8)
        phenotypes = np.zeros(48)

        result = grid_search_cv(
            genotypes, phenotypes,
            alphas=(10.0, 1.0), gammas=(0.1, 0.001),  # descending on purpose
            n_folds=2, base_config=KRRConfig(tile_size=24))

        tied = [k for k, v in result.scores.items()
                if v == result.best_score]
        assert len(tied) == 4, "the construction should tie every grid point"
        assert result.best_alpha == 1.0
        assert result.best_gamma == 0.001


class TestAdoptKernelAccounting:
    def test_full_fit_then_adopt_leaves_no_stale_build_flops(self, cohort_512):
        """After fit() + adopt_kernel(): no negative/stale Build
        contributions in flops_by_precision and no 'build' phase entry."""
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        # the INT8 Gram flops exist only in the Build phase
        assert Precision.INT8 in session.flops_by_precision

        session.adopt_kernel(_indefinite_kernel(64, min_eig=0.5))

        assert "build" not in session.phase_flops
        assert session.runtime.phase_trace("build").num_tasks == 0
        assert all(fl > 0.0 for fl in session.flops_by_precision.values()), (
            "no negative or zero-stale per-precision entries may remain")
        assert Precision.INT8 not in session.flops_by_precision, (
            "the Build-only INT8 Gram contribution must be dropped")


class TestPredictMany:
    """The micro-batch primitive underneath repro.serve."""

    def test_bitwise_equal_to_solo_predicts(self, cohort_512):
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        rng = np.random.default_rng(13)
        # sub-tile, non-aligned and multi-batch cohorts
        cohorts = [rng.integers(0, 3, size=(m, g_train.shape[1])).astype(np.int8)
                   for m in (1, 33, 64, 130)]
        refs = [session.predict(c) for c in cohorts]
        outs = session.predict_many(cohorts, batch_rows=64)
        refs_batched = [session.predict(c, batch_rows=64) for c in cohorts]
        for out, ref, ref_b in zip(outs, refs, refs_batched):
            assert np.array_equal(out, ref)
            assert np.array_equal(out, ref_b)

    def test_accounting_matches_solo_predicts(self, cohort_512):
        g_train, y, _ = cohort_512
        rng = np.random.default_rng(14)
        cohorts = [rng.integers(0, 3, size=(m, g_train.shape[1])).astype(np.int8)
                   for m in (40, 70)]

        solo = KRRSession(KRRConfig(tile_size=64))
        solo.fit(g_train, y)
        for c in cohorts:
            solo.predict(c)

        many = KRRSession(KRRConfig(tile_size=64))
        many.fit(g_train, y)
        many.predict_many(cohorts)

        assert many.phase_flops["predict"] == pytest.approx(
            solo.phase_flops["predict"])

    def test_custom_phase_label(self, cohort_512):
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        rng = np.random.default_rng(15)
        cohort = rng.integers(0, 3, size=(32, g_train.shape[1])).astype(np.int8)
        session.predict_many([cohort], phase="serve")
        assert "serve" in session.runtime.phases()
        assert session.phase_flops["serve"] == pytest.approx(
            session.runtime.phase_trace("serve").total_flops)
        assert "predict" not in session.phase_flops

    def test_empty_and_mismatched_lists(self, cohort_512):
        g_train, y, _ = cohort_512
        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(g_train, y)
        assert session.predict_many([]) == []
        cohort = g_train[:10]
        with pytest.raises(ValueError, match="one entry per cohort"):
            session.predict_many([cohort], confounder_list=[None, None])
