"""Tests for dataset containers, splitting, I/O, confounders and the UKB cohort."""

import numpy as np
import pytest

from repro.data.confounders import genotype_principal_components, simulate_confounders
from repro.data.dataset import GWASDataset, TrainTestSplit
from repro.data.io import load_dataset, save_dataset
from repro.data.ukb import DISEASES, make_ukb_like_cohort


@pytest.fixture
def dataset(small_genotypes, rng):
    n = small_genotypes.shape[0]
    phenotypes = rng.normal(size=(n, 2))
    confounders = rng.normal(size=(n, 3))
    return GWASDataset(genotypes=small_genotypes, phenotypes=phenotypes,
                       confounders=confounders,
                       phenotype_names=["trait_a", "trait_b"], name="test")


class TestGWASDataset:
    def test_dimension_properties(self, dataset):
        assert dataset.n_individuals == 120
        assert dataset.n_snps == 40
        assert dataset.n_phenotypes == 2
        assert dataset.n_confounders == 3

    def test_phenotype_lookup(self, dataset):
        np.testing.assert_array_equal(dataset.phenotype("trait_b"),
                                      dataset.phenotypes[:, 1])
        with pytest.raises(KeyError):
            dataset.phenotype("missing")

    def test_design_matrix_concatenates(self, dataset):
        x = dataset.design_matrix()
        assert x.shape == (120, 43)
        mask = dataset.integer_column_mask()
        assert mask.sum() == 40
        assert not mask[-1]

    def test_design_matrix_without_confounders(self, small_genotypes, rng):
        ds = GWASDataset(small_genotypes, rng.normal(size=120))
        assert ds.design_matrix().shape == (120, 40)
        assert ds.n_phenotypes == 1  # 1D phenotypes promoted to a column

    def test_row_mismatch_raises(self, small_genotypes, rng):
        with pytest.raises(ValueError):
            GWASDataset(small_genotypes, rng.normal(size=50))

    def test_confounder_mismatch_raises(self, small_genotypes, rng):
        with pytest.raises(ValueError):
            GWASDataset(small_genotypes, rng.normal(size=120),
                        confounders=rng.normal(size=(60, 2)))

    def test_phenotype_names_default(self, small_genotypes, rng):
        ds = GWASDataset(small_genotypes, rng.normal(size=(120, 3)))
        assert ds.phenotype_names == ["phenotype_0", "phenotype_1", "phenotype_2"]

    def test_phenotype_name_length_mismatch(self, small_genotypes, rng):
        with pytest.raises(ValueError):
            GWASDataset(small_genotypes, rng.normal(size=(120, 2)),
                        phenotype_names=["only_one"])

    def test_subset(self, dataset):
        sub = dataset.subset(np.arange(10))
        assert sub.n_individuals == 10
        assert sub.phenotype_names == dataset.phenotype_names


class TestSplit:
    def test_split_sizes(self, dataset):
        split = dataset.split(train_fraction=0.8, seed=0)
        assert split.n_train == 96
        assert split.n_test == 24
        assert split.train.n_individuals == 96

    def test_split_disjoint_and_covering(self, dataset):
        split = dataset.split(0.75, seed=1)
        union = np.union1d(split.train_indices, split.test_indices)
        np.testing.assert_array_equal(union, np.arange(120))

    def test_split_reproducible(self, dataset):
        s1 = dataset.split(0.8, seed=3)
        s2 = dataset.split(0.8, seed=3)
        np.testing.assert_array_equal(s1.train_indices, s2.train_indices)

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(1.5)

    def test_overlap_detection(self, dataset):
        with pytest.raises(ValueError):
            TrainTestSplit(dataset, np.array([0, 1]), np.array([1, 2]))


class TestIO:
    def test_roundtrip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "cohort")
        assert path.suffix == ".npz"
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.genotypes, dataset.genotypes)
        np.testing.assert_array_equal(loaded.phenotypes, dataset.phenotypes)
        np.testing.assert_array_equal(loaded.confounders, dataset.confounders)
        assert loaded.phenotype_names == dataset.phenotype_names
        assert loaded.name == "test"

    def test_roundtrip_without_confounders(self, small_genotypes, rng, tmp_path):
        ds = GWASDataset(small_genotypes, rng.normal(size=120), name="noconf")
        loaded = load_dataset(save_dataset(ds, tmp_path / "noconf.npz"))
        assert loaded.confounders is None

    def test_load_adds_suffix(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "x")
        loaded = load_dataset(tmp_path / "x")
        assert loaded.n_individuals == dataset.n_individuals


class TestConfounders:
    def test_shape_with_pcs(self, small_genotypes):
        c = simulate_confounders(120, genotypes=small_genotypes,
                                 n_principal_components=2, seed=0)
        assert c.shape == (120, 5)

    def test_shape_without_genotypes(self):
        c = simulate_confounders(50, seed=1)
        assert c.shape == (50, 3)

    def test_standardized_columns(self, small_genotypes):
        c = simulate_confounders(120, genotypes=small_genotypes, seed=2)
        assert np.all(np.abs(c.mean(axis=0)) < 0.5)
        assert np.all(c.std(axis=0) < 2.0)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            simulate_confounders(0)

    def test_principal_components_orthogonal(self, small_genotypes):
        pcs = genotype_principal_components(small_genotypes, 3)
        assert pcs.shape == (120, 3)
        corr = np.corrcoef(pcs.T)
        off = corr[~np.eye(3, dtype=bool)]
        assert np.all(np.abs(off) < 1e-6)


class TestUKBCohort:
    def test_default_diseases(self):
        cohort = make_ukb_like_cohort(n_individuals=120, n_snps=30, seed=0)
        assert cohort.phenotype_names == list(DISEASES.keys())
        assert cohort.n_individuals == 120
        assert cohort.n_snps == 30
        assert cohort.confounders is not None

    def test_binary_phenotypes_option(self):
        cohort = make_ukb_like_cohort(n_individuals=200, n_snps=30, seed=1,
                                      binary_phenotypes=True)
        assert set(np.unique(cohort.phenotypes)).issubset({0.0, 1.0})
        # prevalences roughly respected
        assert cohort.phenotype("Hypertension").mean() == pytest.approx(0.27, abs=0.05)

    def test_continuous_phenotypes_standardized(self):
        cohort = make_ukb_like_cohort(n_individuals=150, n_snps=30, seed=2)
        assert np.allclose(cohort.phenotypes.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(cohort.phenotypes.std(axis=0), 1.0, atol=1e-9)

    def test_reproducible(self):
        c1 = make_ukb_like_cohort(n_individuals=100, n_snps=20, seed=3)
        c2 = make_ukb_like_cohort(n_individuals=100, n_snps=20, seed=3)
        np.testing.assert_array_equal(c1.genotypes, c2.genotypes)
        np.testing.assert_array_equal(c1.phenotypes, c2.phenotypes)

    def test_override_diseases(self):
        cohort = make_ukb_like_cohort(n_individuals=80, n_snps=20, seed=4,
                                      diseases=(("Asthma", 0.12),))
        assert cohort.phenotype_names == ["Asthma"]
