"""Tests for the LD-block genotype simulator."""

import numpy as np
import pytest

from repro.data.genotypes import (
    GenotypeSimulator,
    LDBlockConfig,
    allele_frequencies,
    ld_matrix,
    simulate_genotypes,
)


class TestGenotypeValues:
    def test_values_are_dosages(self):
        g = simulate_genotypes(100, 50, seed=0)
        assert g.dtype == np.int8
        assert set(np.unique(g)).issubset({0, 1, 2})
        assert g.shape == (100, 50)

    def test_deterministic_with_seed(self):
        g1 = simulate_genotypes(50, 30, seed=5)
        g2 = simulate_genotypes(50, 30, seed=5)
        np.testing.assert_array_equal(g1, g2)

    def test_different_seeds_differ(self):
        g1 = simulate_genotypes(50, 30, seed=1)
        g2 = simulate_genotypes(50, 30, seed=2)
        assert not np.array_equal(g1, g2)

    def test_maf_within_requested_range(self):
        g = simulate_genotypes(2000, 60, seed=3, maf_low=0.2, maf_high=0.5)
        freqs = allele_frequencies(g)
        # sampling noise allows slight excursions beyond the range
        assert freqs.min() > 0.1
        assert freqs.max() < 0.65

    def test_invalid_dimensions(self):
        sim = GenotypeSimulator(seed=0)
        with pytest.raises(ValueError):
            sim.simulate(0, 10)

    def test_invalid_maf_range(self):
        with pytest.raises(ValueError):
            GenotypeSimulator(maf_low=0.6, maf_high=0.7)

    def test_invalid_ld_config(self):
        with pytest.raises(ValueError):
            LDBlockConfig(block_size=0)
        with pytest.raises(ValueError):
            LDBlockConfig(decay=1.5)


class TestLDStructure:
    def test_within_block_ld_exceeds_between_block(self):
        sim = GenotypeSimulator(ld=LDBlockConfig(block_size=10, decay=0.8),
                                maf_low=0.2, seed=4)
        g = sim.simulate(1500, 40)
        r2 = ld_matrix(g)
        within = [r2[i, i + 1] for b in range(0, 40, 10) for i in range(b, b + 9)]
        between = [r2[i, j] for i in range(0, 10) for j in range(20, 30)]
        assert np.mean(within) > 5 * abs(np.mean(between))
        assert np.mean(within) > 0.1

    def test_no_ld_when_disabled(self):
        sim = GenotypeSimulator(ld=None, maf_low=0.3, seed=5)
        g = sim.simulate(1500, 30)
        r2 = ld_matrix(g)
        off = r2[~np.eye(30, dtype=bool)]
        assert np.mean(off) < 0.02

    def test_ld_decays_with_distance(self):
        sim = GenotypeSimulator(ld=LDBlockConfig(block_size=20, decay=0.8),
                                maf_low=0.25, seed=6)
        g = sim.simulate(2000, 20)
        r2 = ld_matrix(g)
        adjacent = np.mean([r2[i, i + 1] for i in range(19)])
        distant = np.mean([r2[i, i + 10] for i in range(10)])
        assert adjacent > distant


class TestPopulationStructure:
    def test_structure_increases_pc_separation(self):
        plain = GenotypeSimulator(population_structure=0.0, seed=7).simulate(300, 80)
        structured = GenotypeSimulator(population_structure=0.2, seed=7).simulate(300, 80)
        from repro.data.confounders import genotype_principal_components

        pc_plain = genotype_principal_components(plain, 1).std()
        pc_struct = genotype_principal_components(structured, 1).std()
        assert pc_struct > pc_plain

    def test_invalid_structure_parameter(self):
        with pytest.raises(ValueError):
            GenotypeSimulator(population_structure=1.5)


class TestDiagnostics:
    def test_allele_frequencies_range(self):
        g = simulate_genotypes(200, 40, seed=8)
        freqs = allele_frequencies(g)
        assert np.all(freqs >= 0) and np.all(freqs <= 1)

    def test_ld_matrix_diagonal_one(self):
        g = simulate_genotypes(200, 20, seed=9, maf_low=0.3)
        r2 = ld_matrix(g)
        np.testing.assert_allclose(np.diag(r2), 1.0, atol=1e-10)

    def test_ld_matrix_max_snps(self):
        g = simulate_genotypes(100, 30, seed=10)
        r2 = ld_matrix(g, max_snps=10)
        assert r2.shape == (10, 10)
