"""Tests for the phenotype simulation models."""

import numpy as np
import pytest

from repro.data.phenotypes import (
    PhenotypeModel,
    liability_to_binary,
    simulate_phenotypes,
)


class TestPhenotypeModel:
    def test_standardized_output(self, small_genotypes):
        model = PhenotypeModel(seed=0)
        y = model.simulate(small_genotypes)
        assert y.shape == (small_genotypes.shape[0],)
        assert abs(y.mean()) < 1e-9
        assert y.std() == pytest.approx(1.0)

    def test_records_causal_architecture(self, small_genotypes):
        model = PhenotypeModel(n_causal=10, n_epistatic_pairs=5, seed=1)
        model.simulate(small_genotypes)
        assert model.causal_snps_.shape == (10,)
        assert model.epistatic_pairs_.shape == (5, 2)
        assert np.all(model.epistatic_pairs_[:, 0] != model.epistatic_pairs_[:, 1])

    def test_deterministic_with_seed(self, small_genotypes):
        y1 = PhenotypeModel(seed=3).simulate(small_genotypes)
        y2 = PhenotypeModel(seed=3).simulate(small_genotypes)
        np.testing.assert_array_equal(y1, y2)

    def test_heritable_signal_correlates_with_genotypes(self, small_genotypes):
        # a highly heritable additive trait must be predictable from the
        # causal SNPs by OLS within the training data
        model = PhenotypeModel(n_causal=5, n_epistatic_pairs=0,
                               heritability_additive=0.9,
                               heritability_epistatic=0.0, seed=4)
        y = model.simulate(small_genotypes)
        x = small_genotypes[:, model.causal_snps_].astype(float)
        x = np.column_stack([np.ones(len(y)), x])
        beta, *_ = np.linalg.lstsq(x, y, rcond=None)
        r2 = 1 - np.sum((y - x @ beta) ** 2) / np.sum((y - y.mean()) ** 2)
        assert r2 > 0.7

    def test_pure_noise_when_no_heritability(self, small_genotypes):
        model = PhenotypeModel(heritability_additive=0.0,
                               heritability_epistatic=0.0,
                               confounder_variance=0.0, seed=5)
        y = model.simulate(small_genotypes)
        assert y.std() == pytest.approx(1.0)

    def test_confounder_component(self, small_genotypes, rng):
        conf = rng.normal(size=(small_genotypes.shape[0], 2))
        model = PhenotypeModel(heritability_additive=0.0,
                               heritability_epistatic=0.0,
                               confounder_variance=0.9, seed=6)
        y = model.simulate(small_genotypes, conf)
        # the phenotype must correlate strongly with some linear
        # combination of the confounders
        beta, *_ = np.linalg.lstsq(np.column_stack([np.ones(len(y)), conf]), y,
                                   rcond=None)
        pred = np.column_stack([np.ones(len(y)), conf]) @ beta
        assert np.corrcoef(pred, y)[0, 1] > 0.8

    def test_invalid_variance_components(self):
        with pytest.raises(ValueError):
            PhenotypeModel(heritability_additive=0.7, heritability_epistatic=0.5)
        with pytest.raises(ValueError):
            PhenotypeModel(heritability_additive=-0.1)
        with pytest.raises(ValueError):
            PhenotypeModel(n_causal=-1)


class TestLiabilityThreshold:
    def test_prevalence_respected(self, rng):
        liability = rng.standard_normal(2000)
        status = liability_to_binary(liability, prevalence=0.2)
        assert set(np.unique(status)).issubset({0.0, 1.0})
        assert status.mean() == pytest.approx(0.2, abs=0.02)

    def test_cases_have_higher_liability(self, rng):
        liability = rng.standard_normal(500)
        status = liability_to_binary(liability, prevalence=0.3)
        assert liability[status == 1].min() >= liability[status == 0].max() - 1e-12

    def test_invalid_prevalence(self):
        with pytest.raises(ValueError):
            liability_to_binary(np.zeros(10), prevalence=0.0)


class TestSimulatePhenotypes:
    def test_panel_shape(self, small_genotypes):
        y = simulate_phenotypes(small_genotypes, n_phenotypes=4, seed=7)
        assert y.shape == (small_genotypes.shape[0], 4)

    def test_phenotypes_differ_across_columns(self, small_genotypes):
        y = simulate_phenotypes(small_genotypes, n_phenotypes=2, seed=8)
        assert abs(np.corrcoef(y[:, 0], y[:, 1])[0, 1]) < 0.5

    def test_deterministic_panel(self, small_genotypes):
        y1 = simulate_phenotypes(small_genotypes, n_phenotypes=2, seed=9)
        y2 = simulate_phenotypes(small_genotypes, n_phenotypes=2, seed=9)
        np.testing.assert_array_equal(y1, y2)
