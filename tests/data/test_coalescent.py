"""Tests for the simplified coalescent (msprime stand-in) simulator."""

import numpy as np
import pytest

from repro.data.coalescent import (
    CoalescentSimulator,
    simulate_coalescent_genotypes,
    site_frequency_spectrum,
)
from repro.data.genotypes import allele_frequencies, ld_matrix


class TestCoalescentGenotypes:
    def test_shape_and_values(self):
        g = simulate_coalescent_genotypes(80, 50, seed=0)
        assert g.shape == (80, 50)
        assert set(np.unique(g)).issubset({0, 1, 2})

    def test_deterministic(self):
        g1 = simulate_coalescent_genotypes(40, 30, seed=3)
        g2 = simulate_coalescent_genotypes(40, 30, seed=3)
        np.testing.assert_array_equal(g1, g2)

    def test_every_site_segregates(self):
        # one mutation is placed per site, so no column is monomorphic
        # across the *haplotypes*; at the genotype level a column can
        # still be all-zero only if the mutation hit a single haplotype
        # carried by nobody, which cannot happen.
        g = simulate_coalescent_genotypes(60, 40, seed=1)
        assert np.all(g.sum(axis=0) > 0)

    def test_rare_variant_skew(self):
        # neutral coalescent: the site-frequency spectrum is dominated by
        # low-frequency variants
        g = simulate_coalescent_genotypes(150, 400, seed=2)
        freqs = allele_frequencies(g)
        assert np.mean(freqs < 0.1) > np.mean(freqs > 0.4)

    def test_sfs_histogram(self):
        g = simulate_coalescent_genotypes(100, 200, seed=4)
        sfs = site_frequency_spectrum(g, n_bins=10)
        assert sfs.sum() == 200
        assert sfs[0] >= sfs[5]

    def test_ld_within_segments(self):
        sim = CoalescentSimulator(segment_snps=25, seed=5)
        g = sim.simulate(400, 50)
        r2 = ld_matrix(g)
        within = np.mean([r2[i, j] for i in range(20) for j in range(i + 1, 25)])
        between = np.mean([r2[i, j] for i in range(25) for j in range(25, 50)])
        assert within > between

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CoalescentSimulator(seed=0).simulate(0, 10)
        with pytest.raises(ValueError):
            CoalescentSimulator(segment_snps=0)

    def test_partial_last_segment(self):
        g = simulate_coalescent_genotypes(30, 37, segment_snps=10, seed=6)
        assert g.shape == (30, 37)
