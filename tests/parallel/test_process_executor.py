"""End-to-end process-backend drains: bitwise equality with serial.

Every phase that ships descriptors to workers — Build rows, Cholesky
tile tasks (resident and store-backed), triangular-solve row blocks,
dense GEMM — must produce results bitwise identical to the serial
drain, and worker-side failures must surface as the same typed
exceptions the in-process paths raise.
"""

import numpy as np
import pytest

from repro.distance.build import KernelBuilder
from repro.linalg.blas3 import gemm
from repro.linalg.cholesky import cholesky
from repro.linalg.solve import solve_cholesky
from repro.precision.formats import Precision
from repro.runtime.runtime import Runtime
from repro.store import TileStore
from repro.tiles.matrix import TileMatrix

N = 128
TILE = 32


def _spd(n: int = N, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T / n + 4.0 * np.eye(n)


@pytest.fixture(scope="module")
def process_rt():
    """One two-worker process pool shared by the module's drains."""
    rt = Runtime(execution="process", workers=2)
    yield rt
    rt.close()


class TestCholeskyProcess:
    @pytest.mark.parametrize("wp", [Precision.FP64, Precision.FP32])
    def test_resident_bitwise_vs_serial(self, process_rt, wp):
        a = _spd()
        serial = cholesky(a, tile_size=TILE, working_precision=wp,
                          execution="serial").to_dense()
        proc = cholesky(a, tile_size=TILE, working_precision=wp,
                        runtime=process_rt).to_dense()
        np.testing.assert_array_equal(proc, serial)

    def test_store_budgeted_bitwise_vs_serial(self, process_rt):
        a = _spd(seed=9)
        serial = cholesky(
            TileMatrix.from_dense(a, TILE, Precision.FP64, symmetric=True),
            working_precision=Precision.FP32,
            execution="serial").to_dense()

        tiled = TileMatrix.from_dense(a, TILE, Precision.FP64, symmetric=True)
        tile_bytes = TILE * TILE * 8
        with TileStore(budget_bytes=3 * tile_bytes) as store:
            tiled.attach_store(store)
            proc = cholesky(tiled, working_precision=Precision.FP32,
                            runtime=process_rt).to_dense()
            stats = store.stats
            assert stats.spills > 0, "tight budget must actually spill"
        np.testing.assert_array_equal(proc, serial)

    def test_workers_one_matches_serial(self):
        a = _spd(seed=11)
        serial = cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                          execution="serial").to_dense()
        rt = Runtime(execution="process", workers=1)
        try:
            proc = cholesky(a, tile_size=TILE,
                            working_precision=Precision.FP32,
                            runtime=rt).to_dense()
        finally:
            rt.close()
        np.testing.assert_array_equal(proc, serial)

    def test_indefinite_matrix_raises_linalgerror(self, process_rt):
        bad = np.eye(N)
        bad[0, 0] = -1.0  # first diagonal tile fails POTRF
        with pytest.raises(np.linalg.LinAlgError):
            cholesky(bad, tile_size=TILE, working_precision=Precision.FP64,
                     runtime=process_rt)
        # the failed drain must not poison the pool for later drains
        a = _spd(seed=13)
        serial = cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                          execution="serial").to_dense()
        proc = cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                        runtime=process_rt).to_dense()
        np.testing.assert_array_equal(proc, serial)


class TestSolveProcess:
    def test_solve_cholesky_bitwise_vs_serial(self, process_rt):
        a = _spd(seed=17)
        rhs = np.random.default_rng(18).standard_normal((N, 4))
        factor = cholesky(a, tile_size=TILE,
                          working_precision=Precision.FP32,
                          execution="serial")
        serial = solve_cholesky(factor, rhs, precision=Precision.FP32)
        proc = solve_cholesky(factor, rhs, precision=Precision.FP32,
                              runtime=process_rt)
        np.testing.assert_array_equal(np.asarray(proc), np.asarray(serial))


class TestBuildProcess:
    def test_build_training_bitwise_vs_serial(self, process_rt):
        rng = np.random.default_rng(19)
        g = rng.integers(0, 3, size=(96, 256)).astype(np.int8)
        serial = KernelBuilder(gamma=0.01, tile_size=TILE, snp_block=128,
                               storage_precision=Precision.FP32,
                               execution="serial").build_training(g)
        proc_builder = KernelBuilder(gamma=0.01, tile_size=TILE,
                                     snp_block=128,
                                     storage_precision=Precision.FP32,
                                     runtime=process_rt)
        proc = proc_builder.build_training(g)
        np.testing.assert_array_equal(proc.to_dense(), serial.to_dense())
        # inline consume_row tasks ran on the coordinator, workers > 1
        assert proc.stats.workers == 2


class TestDenseGemmProcess:
    def test_gemm_bitwise_vs_direct(self, process_rt):
        rng = np.random.default_rng(23)
        a = rng.standard_normal((96, 64))
        b = rng.standard_normal((96, 64))
        direct = gemm(a, b, tile_size=TILE, precision=Precision.FP32,
                      transa=True, transb=False)
        proc = gemm(a, b, tile_size=TILE, precision=Precision.FP32,
                    transa=True, transb=False, runtime=process_rt)
        np.testing.assert_array_equal(proc, direct)


class TestRuntimeReuse:
    def test_sequential_drains_share_one_pool(self, process_rt):
        """Factor then solve on the same runtime: exchange resets between
        drains must not leak refs across them."""
        a = _spd(seed=29)
        rhs = np.random.default_rng(30).standard_normal((N, 2))
        serial_factor = cholesky(a, tile_size=TILE,
                                 working_precision=Precision.FP32,
                                 execution="serial")
        serial_x = solve_cholesky(serial_factor, rhs,
                                  precision=Precision.FP32)

        proc_factor = cholesky(a, tile_size=TILE,
                               working_precision=Precision.FP32,
                               runtime=process_rt)
        proc_x = solve_cholesky(proc_factor, rhs, precision=Precision.FP32,
                                runtime=process_rt)
        np.testing.assert_array_equal(
            proc_factor.to_dense(), serial_factor.to_dense())
        np.testing.assert_array_equal(np.asarray(proc_x),
                                      np.asarray(serial_x))
