"""Descriptor pickle round-trips and behavior equality vs closure bodies.

Every descriptor kind the insertion sites emit must (a) survive a
pickle round trip bit-for-bit and (b) compute exactly what the
corresponding serial closure computes — the process backend's bitwise
contract rests on both.
"""

import pickle

import numpy as np
import pytest
import scipy.linalg

from repro.distance.build import KernelBuilder, compute_kernel_rows
from repro.linalg.blas3 import gemm
from repro.linalg.kernels import (
    panel_operand,
    tile_gemm,
    tile_potrf,
    tile_syrk,
    tile_trsm,
)
from repro.parallel.descriptors import (
    ALL_SPEC_KINDS,
    BuildRowSpec,
    CgMatvecSpec,
    DenseGemmSpec,
    GemmTrailSpec,
    PotrfSpec,
    SolveGemmSpec,
    SolveTrsmSpec,
    SyrkSpec,
    TrsmSpec,
    clear_operand_cache,
)
from repro.precision.formats import Precision
from repro.precision.quantize import quantize
from repro.tiles.tile import Tile

T = 16


def _rng(seed=0):
    return np.random.default_rng(seed)


def _spd_tile(seed=0, coords=(0, 0)) -> Tile:
    a = _rng(seed).standard_normal((T, T))
    return Tile(a @ a.T / T + 4.0 * np.eye(T), precision=Precision.FP64,
                coords=coords)


def _tile(seed=1, coords=(1, 0), precision=Precision.FP32) -> Tile:
    return Tile(_rng(seed).standard_normal((T, T)), precision=precision,
                coords=coords)


def _round_trip(spec):
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    return clone


@pytest.fixture(autouse=True)
def _fresh_operand_cache():
    clear_operand_cache()
    yield
    clear_operand_cache()


def _specimens():
    """One representative instance of every descriptor kind."""
    return {
        PotrfSpec: PotrfSpec(Precision.FP32),
        TrsmSpec: TrsmSpec(Precision.FP32, Precision.FP16),
        SyrkSpec: SyrkSpec(Precision.FP32, key_ik=11),
        GemmTrailSpec: GemmTrailSpec(Precision.FP16, key_ik=11, key_jk=12),
        SolveGemmSpec: SolveGemmSpec(Precision.FP32, transpose_tile=True,
                                     transpose_op=False),
        SolveTrsmSpec: SolveTrsmSpec(Precision.FP32, transpose=False,
                                     lower_solve=True),
        BuildRowSpec: BuildRowSpec(gamma=0.01, snp_block=64, row_start=0,
                                   row_stop=8, col_end=24),
        CgMatvecSpec: CgMatvecSpec(alpha=0.5, row_start=16, row_stop=32,
                                   transposes=(False, False, True)),
        DenseGemmSpec: DenseGemmSpec(tile_size=8, precision=Precision.FP32,
                                     transa=False, transb=True),
    }


def test_every_spec_kind_has_a_specimen():
    assert set(_specimens()) == set(ALL_SPEC_KINDS)


@pytest.mark.parametrize("kind", ALL_SPEC_KINDS,
                         ids=lambda k: k.__name__)
def test_pickle_round_trip(kind):
    spec = _specimens()[kind]
    clone = _round_trip(spec)
    # frozen dataclasses: field-for-field equality after the trip
    assert clone.__dict__ == spec.__dict__


class TestBehaviorEquality:
    """Descriptor.run == the serial closure's arithmetic, bit for bit."""

    def test_potrf(self):
        a = _spd_tile()
        spec = _round_trip(PotrfSpec(Precision.FP32))
        out = spec.run(a)
        expect = tile_potrf(a.to_float64(), precision=Precision.FP32)
        np.testing.assert_array_equal(out.to_float64(), expect)
        assert out.precision is Precision.FP32
        assert out.coords == a.coords

    def test_trsm(self):
        lkk = Tile(np.linalg.cholesky(_spd_tile().to_float64()),
                   precision=Precision.FP32, coords=(0, 0))
        aik = _tile(seed=2, coords=(1, 0))
        spec = _round_trip(TrsmSpec(Precision.FP32, Precision.FP16))
        out = spec.run(lkk, aik)
        expect = tile_trsm(lkk.to_float64(), aik.to_float64(),
                           precision=Precision.FP32, side="right", trans=True)
        np.testing.assert_array_equal(
            out.to_float64(),
            Tile(expect, precision=Precision.FP16).to_float64())
        assert out.precision is Precision.FP16
        assert out.coords == aik.coords

    def test_syrk(self):
        lik = _tile(seed=3, coords=(2, 0))
        aii = _spd_tile(seed=4, coords=(2, 2))
        spec = _round_trip(SyrkSpec(Precision.FP32, key_ik=7))
        out = spec.run(lik, aii)
        expect = tile_syrk(panel_operand(lik.to_float64(), Precision.FP32),
                           aii.to_float64(), precision=Precision.FP32,
                           alpha=-1.0, beta=1.0)
        np.testing.assert_array_equal(out.to_float64(), expect)

    def test_gemm_trail(self):
        lik = _tile(seed=5, coords=(2, 0))
        ljk = _tile(seed=6, coords=(1, 0))
        aij = _tile(seed=7, coords=(2, 1), precision=Precision.FP64)
        spec = _round_trip(GemmTrailSpec(Precision.FP32, key_ik=8, key_jk=9))
        out = spec.run(lik, ljk, aij)
        expect = tile_gemm(panel_operand(lik.to_float64(), Precision.FP32),
                           panel_operand(ljk.to_float64(), Precision.FP32),
                           aij.to_float64(), precision=Precision.FP32,
                           alpha=-1.0, beta=1.0, transb=True)
        np.testing.assert_array_equal(out.to_float64(), expect)

    def test_operand_cache_hit_is_bitwise_stable(self):
        lik = _tile(seed=3, coords=(2, 0))
        aii = _spd_tile(seed=4, coords=(2, 2))
        spec = SyrkSpec(Precision.FP32, key_ik=7)
        first = spec.run(lik, aii).to_float64()
        second = spec.run(lik, aii).to_float64()  # cache hit path
        np.testing.assert_array_equal(first, second)

    def test_solve_gemm(self):
        xj = _rng(8).standard_normal((T, 3))
        acc = _rng(9).standard_normal((T, 3))
        lij = _tile(seed=10, coords=(2, 1))
        spec = _round_trip(SolveGemmSpec(Precision.FP32, transpose_tile=True,
                                         transpose_op=False))
        out = spec.run(xj, acc, lij)
        expect = quantize(acc - lij.to_float64().T @ xj, Precision.FP32)
        np.testing.assert_array_equal(out, np.asarray(expect, np.float64))

    def test_solve_trsm(self):
        acc = _rng(11).standard_normal((T, 3))
        diag = Tile(np.linalg.cholesky(_spd_tile(seed=12).to_float64()),
                    precision=Precision.FP64, coords=(1, 1))
        spec = _round_trip(SolveTrsmSpec(Precision.FP32, transpose=True,
                                         lower_solve=False))
        out = spec.run(acc, diag)
        expect = quantize(
            scipy.linalg.solve_triangular(diag.to_float64().T, acc,
                                          lower=False), Precision.FP32)
        np.testing.assert_array_equal(out, np.asarray(expect, np.float64))

    def test_build_row(self):
        g = _rng(13).integers(0, 3, size=(24, 96)).astype(np.int8)
        builder = KernelBuilder(gamma=0.01, tile_size=8, snp_block=64)
        ctx = builder._prepare_operands(g, g, None, None, symmetric=True)
        spec = _round_trip(BuildRowSpec(gamma=0.01, snp_block=64,
                                        row_start=0, row_stop=8, col_end=24))
        out = spec.run(pickle.loads(pickle.dumps(ctx)))
        expect = compute_kernel_rows(ctx, 0.01, 64, slice(0, 8), slice(0, 24))
        np.testing.assert_array_equal(out, expect)

    def test_cg_matvec(self):
        from repro.linalg.cg import kernel_matvec
        from repro.tiles.matrix import TileMatrix

        k_dense = _rng(16).standard_normal((3 * T, 3 * T))
        k_dense = k_dense @ k_dense.T / (3 * T)
        kernel = TileMatrix.from_dense(k_dense, T, Precision.FP32,
                                       symmetric=True)
        v = _rng(17).standard_normal((3 * T, 2))
        # the insertion site ships *stored* tiles plus a transpose mask
        # for the symmetric upper triangle
        keys = [kernel._stored_key(1, j) for j in range(3)]
        spec = _round_trip(CgMatvecSpec(alpha=0.5, row_start=T, row_stop=2 * T,
                                        transposes=tuple(t for _, t in keys)))
        tiles = tuple(kernel.get_tile(*key) for key, _ in keys)
        out = spec.run(v, None, *tiles)
        # the closure path (kernel_matvec without a runtime) computes the
        # same row band — bit for bit
        expect = kernel_matvec(kernel, v, alpha=0.5)[T:2 * T]
        np.testing.assert_array_equal(out, expect)

    def test_dense_gemm(self):
        a = _rng(14).standard_normal((24, 16))
        b = _rng(15).standard_normal((24, 16))
        spec = _round_trip(DenseGemmSpec(tile_size=8, precision=Precision.FP32,
                                         transa=False, transb=True))
        out = spec.run(a, b)
        expect = gemm(a, b, tile_size=8, precision=Precision.FP32,
                      transa=False, transb=True)
        np.testing.assert_array_equal(out, expect)
