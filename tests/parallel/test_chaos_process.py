"""Chaos: worker crashes mid-Cholesky are transient, recovery is bitwise.

``REPRO_FAULTS=worker-kill:...`` makes workers ``os._exit`` mid-task.
With a retry budget the coordinator must respawn the worker, replay the
lost task, and still produce the exact serial factorization; without
one the drain must fail fast with a :class:`TaskGroupError` whose
failures are transient :class:`WorkerCrashError` records.
"""

import numpy as np
import pytest

from repro.linalg.cholesky import cholesky
from repro.precision.formats import Precision
from repro.resilience.errors import (
    TaskGroupError,
    WorkerCrashError,
    is_transient,
)
from repro.runtime.runtime import Runtime

N = 128
TILE = 32


def _spd(seed: int = 41) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((N, N))
    return a @ a.T / N + 4.0 * np.eye(N)


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    yield


def test_worker_kill_recovers_bitwise(monkeypatch):
    a = _spd()
    serial = cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                      execution="serial").to_dense()

    # every third worker-kill site occurrence kills that worker process
    # (counters are per process, so each respawned worker crashes again
    # until the drain outruns the fault plan)
    monkeypatch.setenv("REPRO_FAULTS", "worker-kill:raise:every=3:times=1")
    monkeypatch.setenv("REPRO_TASK_RETRIES", "2")
    rt = Runtime(execution="process", workers=2)
    try:
        proc = cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                        runtime=rt).to_dense()
        respawns = rt.scheduler._pool.respawns
    finally:
        rt.close()

    np.testing.assert_array_equal(proc, serial)
    assert respawns >= 1, "the fault plan must actually have killed workers"


def test_worker_kill_without_retries_fails_fast(monkeypatch):
    a = _spd(seed=43)
    monkeypatch.setenv("REPRO_FAULTS", "worker-kill:raise:every=2:times=1")
    monkeypatch.setenv("REPRO_TASK_RETRIES", "0")
    rt = Runtime(execution="process", workers=2)
    try:
        with pytest.raises(TaskGroupError) as err:
            cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                     runtime=rt)
    finally:
        rt.close()

    failures = err.value.failures
    assert failures, "a failed drain must carry failure records"
    crashes = [f.error for f in failures
               if isinstance(f.error, WorkerCrashError)]
    assert crashes, "failures must include the worker crash"
    assert all(is_transient(err) for err in crashes)


def test_pool_usable_after_failed_drain(monkeypatch):
    """A crash-failed drain must leave the runtime able to factor again
    once the fault plan is gone."""
    a = _spd(seed=47)
    serial = cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                      execution="serial").to_dense()

    monkeypatch.setenv("REPRO_FAULTS", "worker-kill:raise:every=2:times=1")
    monkeypatch.setenv("REPRO_TASK_RETRIES", "0")
    rt = Runtime(execution="process", workers=2)
    try:
        with pytest.raises(TaskGroupError):
            cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                     runtime=rt)
        # heal the environment: respawned workers parse the env afresh
        monkeypatch.delenv("REPRO_FAULTS")
        rt.scheduler._pool.reset_all()
        proc = cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                        runtime=rt).to_dense()
    finally:
        rt.close()
    np.testing.assert_array_equal(proc, serial)
