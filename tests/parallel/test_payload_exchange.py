"""Payload codec and tile-exchange arenas: bitwise round trips."""

import numpy as np
import pytest

from repro.parallel.exchange import (
    EXCHANGE_ARENAS,
    ExchangeSpec,
    PayloadRef,
    TileExchange,
    resolve_exchange_arena,
)
from repro.parallel.payload import decode_obj, encode_obj
from repro.precision.formats import Precision
from repro.tiles.tile import Tile

TILE_PRECISIONS = (
    Precision.FP64,
    Precision.FP32,
    Precision.FP16,
    Precision.BF16,
    Precision.FP8_E4M3,
    Precision.FP8_E5M2,
)


def _tile(precision: Precision, seed: int = 0) -> Tile:
    rng = np.random.default_rng(seed)
    return Tile(rng.standard_normal((12, 9)), precision=precision,
                coords=(3, 4))


class TestPayloadCodec:
    @pytest.mark.parametrize("precision", TILE_PRECISIONS)
    def test_tile_round_trip_is_bitwise(self, precision):
        tile = _tile(precision)
        kind, meta, raw = encode_obj(tile)
        assert kind == "tile"
        out = decode_obj(kind, meta, raw)
        assert isinstance(out, Tile)
        assert out.precision is tile.precision
        assert out.coords == tile.coords
        assert out.data.dtype == tile.data.dtype
        np.testing.assert_array_equal(out.data, tile.data)

    def test_array_round_trip_is_bitwise_and_writable(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)
        kind, meta, raw = encode_obj(arr)
        assert kind == "array"
        out = decode_obj(kind, meta, raw)
        np.testing.assert_array_equal(out, arr)
        out[0, 0] = -1.0  # consumers (fill_diagonal) write row blocks

    def test_array_preserves_dtype(self):
        for dtype in (np.float32, np.int8, np.int64):
            arr = np.ones((3, 3), dtype=dtype)
            kind, meta, raw = encode_obj(arr)
            out = decode_obj(kind, meta, raw)
            assert out.dtype == arr.dtype

    def test_none_round_trip(self):
        kind, meta, raw = encode_obj(None)
        assert kind == "none" and raw == b""
        assert decode_obj(kind, meta, raw) is None

    def test_pickle_fallback(self):
        obj = {"gamma": 0.01, "rows": [1, 2, 3]}
        kind, meta, raw = encode_obj(obj)
        assert kind == "pickle"
        assert decode_obj(kind, meta, raw) == obj

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown payload kind"):
            decode_obj("bogus", {}, b"")


class TestResolveArena:
    def test_default_is_seg(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXCHANGE", raising=False)
        assert resolve_exchange_arena() == "seg"

    def test_env_selects_shm(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXCHANGE", "shm")
        assert resolve_exchange_arena() == "shm"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXCHANGE", "shm")
        assert resolve_exchange_arena("seg") == "seg"

    @pytest.mark.parametrize("bogus", ["files", "tcp", ""])
    def test_bogus_arena_raises_naming_choices(self, bogus, monkeypatch):
        monkeypatch.setenv("REPRO_EXCHANGE", bogus or "x")
        with pytest.raises(ValueError, match="seg"):
            resolve_exchange_arena(bogus or None)


def _spec(arena: str, tmp_path) -> ExchangeSpec:
    if arena == "seg":
        return ExchangeSpec(arena="seg", directory=str(tmp_path))
    return ExchangeSpec(arena="shm")


@pytest.mark.parametrize("arena", EXCHANGE_ARENAS)
class TestTileExchange:
    def test_put_get_round_trip(self, arena, tmp_path):
        xchg = TileExchange(_spec(arena, tmp_path), producer_tag="t0")
        try:
            tile = _tile(Precision.FP16, seed=7)
            arr = np.linspace(0.0, 1.0, 10)
            ref_t = xchg.put(tile)
            ref_a = xchg.put(arr)
            ref_n = xchg.put(None)
            assert isinstance(ref_t, PayloadRef)
            out_t = xchg.get(ref_t)
            np.testing.assert_array_equal(out_t.data, tile.data)
            assert out_t.precision is tile.precision
            np.testing.assert_array_equal(xchg.get(ref_a), arr)
            assert xchg.get(ref_n) is None
        finally:
            xchg.close()

    def test_refs_are_picklable(self, arena, tmp_path):
        import pickle

        xchg = TileExchange(_spec(arena, tmp_path), producer_tag="t0")
        try:
            ref = xchg.put(_tile(Precision.FP32))
            clone = pickle.loads(pickle.dumps(ref))
            assert clone == ref
            np.testing.assert_array_equal(xchg.get(clone).data,
                                          xchg.get(ref).data)
        finally:
            xchg.close()

    def test_cross_endpoint_read(self, arena, tmp_path):
        """A ref published by one endpoint is readable by another."""
        producer = TileExchange(_spec(arena, tmp_path), producer_tag="p0")
        consumer = TileExchange(_spec(arena, tmp_path), producer_tag="p1")
        try:
            tile = _tile(Precision.FP8_E4M3, seed=3)
            ref = producer.put(tile)
            out = consumer.get(ref)
            np.testing.assert_array_equal(out.data, tile.data)
        finally:
            consumer.close()
            producer.close()

    def test_reset_reclaims_storage(self, arena, tmp_path):
        xchg = TileExchange(_spec(arena, tmp_path), producer_tag="t0")
        try:
            for _ in range(4):
                xchg.put(np.zeros(1000))
            xchg.reset()
            ref = xchg.put(np.ones(5))
            # post-reset refs start the segment over
            assert ref.offset == 0
            np.testing.assert_array_equal(xchg.get(ref), np.ones(5))
        finally:
            xchg.close()

    def test_decode_cache_returns_same_object(self, arena, tmp_path):
        xchg = TileExchange(_spec(arena, tmp_path), producer_tag="t0")
        try:
            ref = xchg.put(_tile(Precision.FP32))
            assert xchg.get(ref) is xchg.get(ref)
        finally:
            xchg.close()
