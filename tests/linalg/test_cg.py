"""Tests for the tile-native preconditioned CG solver.

The contract under test, per ROADMAP item 4b:

* CG with the session's low-precision tiled Cholesky factor as the
  preconditioner solves ``(K + alpha*I) x = b`` to the requested
  tolerance on ill-conditioned kernels, matching the direct tiled
  Cholesky solve and the iterative-refinement reference.
* The convergence history is deterministic — bitwise identical across
  serial / threaded / process execution and store residency budgets.
* Non-convergence in a session falls back to the direct factorization
  and matches the direct route exactly.
"""

import numpy as np
import pytest

from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.session import KRRSession
from repro.linalg.cg import (
    SOLVER_ENV,
    cg_solve,
    kernel_matvec,
    resolve_solver,
)
from repro.linalg.cholesky import cholesky
from repro.linalg.refinement import iterative_refinement_solve
from repro.linalg.solve import solve_cholesky
from repro.precision.formats import Precision
from repro.runtime.runtime import Runtime
from repro.store import TileStore
from repro.tiles.matrix import TileMatrix

TILE = 16
N = 4 * TILE


def _ill_kernel(n=N, seed=0, decades=6):
    """An SPD 'kernel' with eigenvalues spanning ``decades`` decades."""
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    lam = np.logspace(0, -decades, n)
    return (q * lam) @ q.T


def _tiled(dense):
    return TileMatrix.from_dense(dense, TILE, Precision.FP64, symmetric=True)


def _preconditioner(kernel_dense, alpha_ref, plan):
    """The session-style factor of ``K + alpha_ref*I`` in the plan's mosaic."""
    reg = _tiled(kernel_dense + alpha_ref * np.eye(kernel_dense.shape[0]))
    pmap = plan.precision_map(reg.layout, matrix=reg)
    return cholesky(reg, working_precision=plan.working_precision,
                    precision_map=pmap)


PLANS = {
    "fp64": PrecisionPlan.fp64(),
    "fp32": PrecisionPlan.fp32(),
    "adaptive-fp16": PrecisionPlan.adaptive_fp16(),
    "adaptive-fp8": PrecisionPlan.adaptive_fp8(),
}


@pytest.fixture(scope="module")
def process_rt():
    rt = Runtime(execution="process", workers=2)
    yield rt
    rt.close()


class TestKernelMatvec:
    def test_matches_dense(self, rng):
        k = _ill_kernel(seed=3, decades=2)
        kernel = _tiled(k)
        v = rng.standard_normal(N)
        out = kernel_matvec(kernel, v, alpha=0.7)
        np.testing.assert_allclose(out, (k + 0.7 * np.eye(N)) @ v,
                                   rtol=1e-12, atol=1e-12)

    def test_panel_rhs(self, rng):
        k = _ill_kernel(seed=4, decades=2)
        v = rng.standard_normal((N, 3))
        out = kernel_matvec(_tiled(k), v)
        np.testing.assert_allclose(out, k @ v, rtol=1e-12, atol=1e-12)

    def test_dag_bitwise_matches_inline(self, rng):
        k = _ill_kernel(seed=5, decades=3)
        kernel = _tiled(k)
        v = rng.standard_normal((N, 2))
        inline = kernel_matvec(kernel, v, alpha=0.3)
        rt = Runtime(execution="threaded", workers=3)
        tasked = kernel_matvec(kernel, v, alpha=0.3, runtime=rt)
        np.testing.assert_array_equal(tasked, inline)

    def test_rejects_non_square(self, rng):
        rect = TileMatrix.from_dense(rng.standard_normal((N, 2 * N)), TILE,
                                     Precision.FP64)
        with pytest.raises(ValueError, match="square"):
            kernel_matvec(rect, rng.standard_normal(2 * N))

    def test_rejects_mismatched_rows(self, rng):
        with pytest.raises(ValueError, match="rows"):
            kernel_matvec(_tiled(_ill_kernel(decades=1)),
                          rng.standard_normal(N + 1))


class TestCgValidation:
    def test_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            cg_solve(_tiled(_ill_kernel(decades=1)), np.ones(N), alpha=-1.0)

    def test_bad_tol(self):
        with pytest.raises(ValueError, match="tol"):
            cg_solve(_tiled(_ill_kernel(decades=1)), np.ones(N), alpha=1.0,
                     tol=0.0)

    def test_bad_max_iterations(self):
        with pytest.raises(ValueError, match="max_iterations"):
            cg_solve(_tiled(_ill_kernel(decades=1)), np.ones(N), alpha=1.0,
                     max_iterations=0)

    def test_bad_rhs_rows(self):
        with pytest.raises(ValueError, match="rows"):
            cg_solve(_tiled(_ill_kernel(decades=1)), np.ones(N - 1), alpha=1.0)


class TestResolveSolver:
    def test_default_is_direct(self, monkeypatch):
        monkeypatch.delenv(SOLVER_ENV, raising=False)
        assert resolve_solver() == "direct"

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV, "cg")
        assert resolve_solver() == "cg"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV, "cg")
        assert resolve_solver("direct") == "direct"

    def test_bogus_rejected(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV, "minres")
        with pytest.raises(ValueError, match="solver"):
            resolve_solver()

    def test_config_knob_validated(self):
        with pytest.raises(ValueError, match="solver"):
            KRRConfig(solver="jacobi")
        with pytest.raises(ValueError, match="cg_tol"):
            KRRConfig(cg_tol=0.0)
        with pytest.raises(ValueError, match="cg_max_iters"):
            KRRConfig(cg_max_iters=0)


class TestCgAccuracy:
    """CG vs direct Cholesky vs iterative refinement, ill-conditioned K."""

    @pytest.mark.parametrize("plan_name", list(PLANS), ids=list(PLANS))
    def test_matches_direct_and_refinement(self, rng, plan_name):
        plan = PLANS[plan_name]
        k = _ill_kernel(seed=1)
        # FP8 tile storage perturbs K by ~6% of the tile scale: the
        # reference shift must dominate that noise to keep the
        # preconditioner factorizable (the session's boost loop plays
        # this role in production)
        if plan_name == "adaptive-fp8":
            alpha_ref, alpha = 0.25, 0.1
        else:
            alpha_ref, alpha = 1e-2, 3e-3
        b = rng.standard_normal(N)
        truth = np.linalg.solve(k + alpha * np.eye(N), b)

        fact = _preconditioner(k, alpha_ref, plan)
        res = cg_solve(_tiled(k), b, alpha=alpha, preconditioner=fact,
                       tol=1e-10, max_iterations=300,
                       precision=plan.working_precision)
        assert res.converged, f"{plan_name}: {res.residual_norms[-5:]}"
        # the matvec operator is exact FP64, so the converged CG answer
        # tracks the true solution regardless of preconditioner quality
        np.testing.assert_allclose(res.x, truth, rtol=1e-6, atol=1e-8)

        # the direct tiled solve *of the same alpha* and the classic
        # iterative-refinement reference agree with it
        direct_fact = _preconditioner(k, alpha, PrecisionPlan.fp64())
        direct = solve_cholesky(direct_fact, b, precision=Precision.FP64)
        np.testing.assert_allclose(res.x, direct, rtol=1e-6, atol=1e-8)

        ir = iterative_refinement_solve(k + alpha * np.eye(N), b,
                                        factor_precision=Precision.FP32,
                                        tol=1e-12, max_iterations=100)
        np.testing.assert_allclose(res.x, ir.x, rtol=1e-5, atol=1e-7)

    def test_preconditioner_pays(self, rng):
        """The factor-preconditioned solve beats unpreconditioned CG."""
        k = _ill_kernel(seed=2)
        b = rng.standard_normal(N)
        fact = _preconditioner(k, 1e-2, PrecisionPlan.fp32())
        pre = cg_solve(_tiled(k), b, alpha=3e-3, preconditioner=fact,
                       tol=1e-8, max_iterations=300)
        bare = cg_solve(_tiled(k), b, alpha=3e-3, preconditioner=None,
                        tol=1e-8, max_iterations=300)
        assert pre.converged
        assert pre.iterations < bare.iterations

    def test_multi_rhs_matches_column_solves(self, rng):
        k = _ill_kernel(seed=6, decades=4)
        b = rng.standard_normal((N, 3))
        fact = _preconditioner(k, 1e-2, PrecisionPlan.fp32())
        panel = cg_solve(_tiled(k), b, alpha=5e-3, preconditioner=fact,
                         tol=1e-10, max_iterations=300)
        assert panel.converged
        truth = np.linalg.solve(k + 5e-3 * np.eye(N), b)
        np.testing.assert_allclose(panel.x, truth, rtol=1e-6, atol=1e-8)

    def test_residual_history_shape(self, rng):
        k = _ill_kernel(seed=7, decades=2)
        b = rng.standard_normal(N)
        fact = _preconditioner(k, 1e-2, PrecisionPlan.fp32())
        res = cg_solve(_tiled(k), b, alpha=1e-2, preconditioner=fact,
                       tol=1e-8, max_iterations=50)
        assert res.residual_norms[0] == 1.0  # zero initial guess
        assert res.final_residual <= 1e-8
        assert len(res.residual_norms) == res.iterations + 1


class TestCgDeterminism:
    """Bitwise identical solves across execution modes and store budgets."""

    def _reference(self, k, b, fact, plan):
        return cg_solve(_tiled(k), b, alpha=4e-3, preconditioner=fact,
                        tol=1e-9, max_iterations=300,
                        precision=plan.working_precision)

    @pytest.mark.parametrize("plan_name", ["fp32", "adaptive-fp16"],
                             ids=["fp32", "adaptive-fp16"])
    @pytest.mark.parametrize("mode", ["serial", "threaded", "process"])
    @pytest.mark.parametrize("budget", ["none", "tight"],
                             ids=["resident", "oocore"])
    def test_history_bitwise_stable(self, rng, plan_name, mode, budget,
                                    process_rt, request):
        plan = PLANS[plan_name]
        k = _ill_kernel(seed=8, decades=4)
        b = np.random.default_rng(9).standard_normal((N, 2))
        fact = _preconditioner(k, 1e-2, plan)
        ref = self._reference(k, b, fact, plan)
        assert ref.converged

        kernel = _tiled(k)
        if mode == "process":
            rt = process_rt
        else:
            rt = Runtime(execution=mode, workers=1 if mode == "serial" else 3)
        store = None
        if budget == "tight":
            # room for well under one tile row: the matvec must fault
            # kernel tiles in and out under pinning, and still match
            store = TileStore(budget_bytes=6 * TILE * TILE * 8)
            kernel.attach_store(store)
        try:
            res = cg_solve(kernel, b, alpha=4e-3, preconditioner=fact,
                           tol=1e-9, max_iterations=300,
                           precision=plan.working_precision, runtime=rt)
            if store is not None:
                assert store.stats.spills > 0, "tight budget must spill"
        finally:
            if store is not None:
                kernel.detach_store()
                store.close()
        np.testing.assert_array_equal(res.x, ref.x)
        assert res.iterations == ref.iterations
        assert res.residual_norms == ref.residual_norms


class TestSessionFallback:
    """Non-converging CG sessions fall back to the direct factorization."""

    def _cohort(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 3, size=(96, 40)).astype(np.float64)
        y = rng.standard_normal(96)
        return x, y

    def test_fallback_triggers_and_matches_direct(self):
        x, y = self._cohort()
        # one iteration at a sub-fp64 tolerance cannot converge
        cg_cfg = KRRConfig(tile_size=32, solver="cg", cg_tol=1e-15,
                           cg_max_iters=1)
        s_cg = KRRSession(cg_cfg)
        s_cg.build(x)
        s_cg.associate(y, alpha=1.0)
        assert s_cg.factorization_count_ == 1 and s_cg.cg_fallbacks_ == 0
        w = s_cg.associate(y, alpha=8.0)
        assert s_cg.cg_fallbacks_ == 1
        assert s_cg.factorization_count_ == 2
        assert s_cg.cg_result_ is not None and not s_cg.cg_result_.converged

        s_direct = KRRSession(KRRConfig(tile_size=32, solver="direct"))
        s_direct.build(x)
        w_direct = s_direct.associate(y, alpha=8.0)
        np.testing.assert_array_equal(w, w_direct)

    def test_converged_cg_skips_factorization(self):
        x, y = self._cohort(seed=1)
        s = KRRSession(KRRConfig(tile_size=32, solver="cg"))
        s.build(x)
        s.associate(y, alpha=1.0)
        s.associate(y, alpha=2.0)
        assert s.factorization_count_ == 1
        assert s.cg_fallbacks_ == 0
        assert s.cg_result_ is not None and s.cg_result_.converged
