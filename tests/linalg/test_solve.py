"""Tests for triangular and Cholesky-based solves."""

import numpy as np
import pytest

from repro.linalg.cholesky import cholesky
from repro.linalg.solve import solve_cholesky, solve_spd, solve_triangular
from repro.precision.formats import Precision
from repro.tiles.matrix import TileMatrix


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T / n + 2.0 * np.eye(n)


class TestTriangularSolve:
    def test_dense_forward(self, rng):
        l = np.tril(rng.standard_normal((20, 20))) + 5 * np.eye(20)
        b = rng.standard_normal((20, 3))
        x = solve_triangular(l, b, lower=True, precision=Precision.FP64)
        np.testing.assert_allclose(l @ x, b, rtol=1e-10)

    def test_dense_backward(self, rng):
        l = np.tril(rng.standard_normal((20, 20))) + 5 * np.eye(20)
        b = rng.standard_normal((20, 3))
        x = solve_triangular(l, b, lower=True, trans=True, precision=Precision.FP64)
        np.testing.assert_allclose(l.T @ x, b, rtol=1e-10)

    def test_tiled_forward_matches_dense(self, rng):
        l = np.tril(rng.standard_normal((40, 40))) + 6 * np.eye(40)
        b = rng.standard_normal((40, 2))
        tiled = TileMatrix.from_dense(l, 16, Precision.FP64)
        x_tiled = solve_triangular(tiled, b, lower=True, precision=Precision.FP64)
        x_dense = solve_triangular(l, b, lower=True, precision=Precision.FP64)
        np.testing.assert_allclose(x_tiled, x_dense, rtol=1e-9, atol=1e-10)

    def test_tiled_backward_matches_dense(self, rng):
        l = np.tril(rng.standard_normal((40, 40))) + 6 * np.eye(40)
        b = rng.standard_normal((40, 2))
        tiled = TileMatrix.from_dense(l, 16, Precision.FP64)
        x_tiled = solve_triangular(tiled, b, lower=True, trans=True,
                                   precision=Precision.FP64)
        np.testing.assert_allclose(l.T @ x_tiled, b, rtol=1e-8, atol=1e-9)

    def test_vector_rhs_shape_preserved(self, rng):
        l = np.tril(rng.standard_normal((12, 12))) + 4 * np.eye(12)
        b = rng.standard_normal(12)
        x = solve_triangular(l, b, precision=Precision.FP64)
        assert x.shape == (12,)


class TestCholeskySolve:
    def test_solve_matches_numpy(self):
        a = _spd(48)
        rng = np.random.default_rng(1)
        b = rng.standard_normal((48, 4))
        fact = cholesky(a, tile_size=16, working_precision=Precision.FP64)
        x = solve_cholesky(fact, b, precision=Precision.FP64)
        np.testing.assert_allclose(x, np.linalg.solve(a, b), rtol=1e-8, atol=1e-9)

    def test_fp32_solve_accuracy(self):
        a = _spd(48)
        rng = np.random.default_rng(2)
        b = rng.standard_normal((48, 2))
        fact = cholesky(a, tile_size=16, working_precision=Precision.FP32)
        x = solve_cholesky(fact, b, precision=Precision.FP32)
        residual = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        assert residual < 1e-4

    def test_solve_spd_convenience(self):
        a = _spd(32)
        b = np.ones((32, 1))
        x = solve_spd(a, b, tile_size=16, working_precision=Precision.FP64)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8)

    def test_accepts_dense_factor(self):
        a = _spd(24)
        b = np.ones(24)
        l = np.linalg.cholesky(a)
        x = solve_cholesky(l, b, precision=Precision.FP64)
        np.testing.assert_allclose(a @ x, b, rtol=1e-9)


class TestTiledRightHandSide:
    def test_tiled_rhs_matches_dense_rhs(self):
        a = _spd(48)
        rng = np.random.default_rng(9)
        b = rng.standard_normal((48, 3))
        fact = cholesky(a, tile_size=16, working_precision=Precision.FP32)
        x_dense = solve_cholesky(fact, b, precision=Precision.FP32)
        b_tiled = TileMatrix.from_dense(b, tile_size=16, precision=Precision.FP64)
        x_tiled = solve_cholesky(fact, b_tiled, precision=Precision.FP32)
        assert isinstance(x_tiled, TileMatrix)
        np.testing.assert_array_equal(x_tiled.to_dense(), x_dense)

    def test_tiled_rhs_solves_the_system(self):
        a = _spd(40)
        rng = np.random.default_rng(10)
        b = rng.standard_normal((40, 2))
        fact = cholesky(a, tile_size=8, working_precision=Precision.FP64)
        x = solve_cholesky(fact, TileMatrix.from_dense(b, tile_size=8),
                           precision=Precision.FP64)
        np.testing.assert_allclose(a @ x.to_dense(), b, rtol=1e-8, atol=1e-9)

    def test_tiled_rhs_requires_matching_tile_size(self):
        a = _spd(32)
        fact = cholesky(a, tile_size=16, working_precision=Precision.FP64)
        rhs = TileMatrix.from_dense(np.ones((32, 1)), tile_size=8)
        with pytest.raises(ValueError, match="tile size"):
            solve_cholesky(fact, rhs)

    def test_tiled_rhs_requires_tiled_factor(self):
        a = _spd(16)
        l = np.linalg.cholesky(a)
        rhs = TileMatrix.from_dense(np.ones((16, 1)), tile_size=8)
        with pytest.raises(ValueError, match="tiled factor"):
            solve_triangular(l, rhs)
