"""Tests for the mixed-precision iterative refinement solver."""

import numpy as np
import pytest

from repro.linalg.refinement import iterative_refinement_solve
from repro.precision.formats import Precision


def _spd(n, cond=100.0, seed=0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigenvalues = np.logspace(0, np.log10(cond), n)
    return (q * eigenvalues) @ q.T


class TestIterativeRefinement:
    def test_recovers_full_accuracy_from_fp16_factorization(self):
        a = _spd(40)
        rng = np.random.default_rng(1)
        x_true = rng.standard_normal(40)
        b = a @ x_true
        result = iterative_refinement_solve(a, b, factor_precision=Precision.FP16,
                                            solution_precision=Precision.FP64,
                                            tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-5, atol=1e-8)

    def test_residual_decreases(self):
        a = _spd(30, cond=1000.0, seed=2)
        b = np.ones(30)
        result = iterative_refinement_solve(a, b, factor_precision=Precision.FP16)
        assert result.residual_norms[-1] < result.residual_norms[0]

    def test_fp8_factorization_converges_with_more_iterations(self):
        a = _spd(30, cond=30.0, seed=3)
        b = np.ones(30)
        fp16 = iterative_refinement_solve(a, b, factor_precision=Precision.FP16)
        fp8 = iterative_refinement_solve(a, b, factor_precision=Precision.FP8_E4M3)
        assert fp8.converged
        assert fp8.iterations >= fp16.iterations

    def test_matrix_rhs(self):
        a = _spd(25, seed=4)
        b = np.random.default_rng(4).standard_normal((25, 3))
        result = iterative_refinement_solve(a, b)
        assert result.x.shape == (25, 3)
        np.testing.assert_allclose(a @ result.x, b, rtol=1e-4, atol=1e-4)

    def test_max_iterations_respected(self):
        a = _spd(20, cond=1e8, seed=5)
        b = np.ones(20)
        result = iterative_refinement_solve(a, b, factor_precision=Precision.FP8_E4M3,
                                            max_iterations=3, tol=1e-14)
        assert result.iterations <= 3

    def test_vector_shape_preserved(self):
        a = _spd(15, seed=6)
        result = iterative_refinement_solve(a, np.ones(15))
        assert result.x.shape == (15,)
        assert isinstance(result.final_residual, float)
