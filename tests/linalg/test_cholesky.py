"""Tests for the tiled mixed-precision Cholesky factorization."""

import numpy as np
import pytest

from repro.linalg.cholesky import cholesky, cholesky_flops
from repro.precision.formats import Precision
from repro.runtime.runtime import Runtime
from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TileMatrix
from repro.tiles.band import band_precision_map


def _spd(n, seed=0, diag=None):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a = a @ a.T / n
    a += (diag if diag is not None else 2.0) * np.eye(n)
    return a


class TestCorrectness:
    def test_fp64_matches_numpy(self):
        a = _spd(64)
        result = cholesky(a, tile_size=16, working_precision=Precision.FP64)
        np.testing.assert_allclose(result.to_dense(), np.linalg.cholesky(a),
                                   rtol=1e-10, atol=1e-10)

    def test_fp32_reconstruction(self):
        a = _spd(60)
        result = cholesky(a, tile_size=16, working_precision=Precision.FP32)
        l = result.to_dense()
        np.testing.assert_allclose(l @ l.T, a, rtol=1e-4, atol=1e-4)

    def test_uneven_tiles(self):
        a = _spd(50)
        result = cholesky(a, tile_size=16, working_precision=Precision.FP64)
        np.testing.assert_allclose(result.to_dense(), np.linalg.cholesky(a),
                                   rtol=1e-9, atol=1e-9)

    def test_single_tile(self):
        a = _spd(12)
        result = cholesky(a, tile_size=16, working_precision=Precision.FP64)
        np.testing.assert_allclose(result.to_dense(), np.linalg.cholesky(a),
                                   rtol=1e-10)

    def test_factor_is_lower_triangular(self):
        a = _spd(48)
        result = cholesky(a, tile_size=16)
        l = result.to_dense()
        assert np.allclose(l, np.tril(l))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            cholesky(np.zeros((4, 6)), tile_size=2)

    def test_dense_without_tile_size_raises(self):
        with pytest.raises(ValueError):
            cholesky(_spd(8))

    def test_not_positive_definite_raises(self):
        a = -np.eye(16)
        with pytest.raises(np.linalg.LinAlgError):
            cholesky(a, tile_size=8)


class TestMixedPrecision:
    def test_fp16_offdiag_still_accurate(self):
        a = _spd(64, diag=4.0)
        layout = TileLayout.square(64, 16)
        pmap = band_precision_map(layout, 0.0, high=Precision.FP32,
                                  low=Precision.FP16)
        result = cholesky(a, tile_size=16, working_precision=Precision.FP32,
                          precision_map=pmap)
        l = result.to_dense()
        rel = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert rel < 5e-3

    def test_lower_precision_increases_error_monotonically(self):
        a = _spd(64, diag=4.0)
        errors = {}
        for low in (Precision.FP32, Precision.FP16, Precision.FP8_E4M3):
            layout = TileLayout.square(64, 16)
            pmap = {t: (Precision.FP32 if t[0] == t[1] else low)
                    for t in layout.iter_tiles()}
            result = cholesky(a, tile_size=16, working_precision=Precision.FP32,
                              precision_map=pmap)
            l = result.to_dense()
            errors[low] = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert errors[Precision.FP32] <= errors[Precision.FP16] <= \
            errors[Precision.FP8_E4M3]

    def test_flops_by_precision_partition(self):
        a = _spd(80, diag=4.0)
        layout = TileLayout.square(80, 16)
        pmap = {t: (Precision.FP32 if t[0] == t[1] else Precision.FP16)
                for t in layout.iter_tiles()}
        result = cholesky(a, tile_size=16, precision_map=pmap)
        assert result.flops == pytest.approx(sum(result.flops_by_precision.values()))
        # GEMM (FP16) dominates for a 5x5 tile grid
        assert result.flops_by_precision[Precision.FP16] > 0

    def test_task_counts(self):
        a = _spd(64)
        result = cholesky(a, tile_size=16)
        nt = 4
        assert result.task_counts["potrf"] == nt
        assert result.task_counts["trsm"] == nt * (nt - 1) // 2
        assert result.task_counts["syrk"] == nt * (nt - 1) // 2
        assert result.task_counts["gemm"] == nt * (nt - 1) * (nt - 2) // 6

    def test_tile_matrix_input_with_mosaic(self):
        a = _spd(48, diag=4.0)
        tm = TileMatrix.from_dense(
            a, 16, precision=lambda i, j: Precision.FP32 if i == j else Precision.FP16)
        result = cholesky(tm, working_precision=Precision.FP32)
        l = result.to_dense()
        rel = np.linalg.norm(l @ l.T - a) / np.linalg.norm(a)
        assert rel < 5e-3


class TestRuntimePath:
    def test_runtime_bitwise_matches_serial(self):
        """The DAG path (the default) equals the serial elimination bit
        for bit — the acceptance contract of the threaded executor."""
        a = _spd(48)
        serial = cholesky(a, tile_size=16, working_precision=Precision.FP32,
                          execution="serial")
        runtime = Runtime(execution="threaded", workers=3)
        via_runtime = cholesky(a, tile_size=16, working_precision=Precision.FP32,
                               runtime=runtime)
        np.testing.assert_array_equal(via_runtime.to_dense(), serial.to_dense())

    def test_default_execution_is_dag(self):
        a = _spd(32)
        result = cholesky(a, tile_size=16)
        assert result.schedule is not None
        assert result.schedule.trace.num_tasks > 0

    def test_runtime_schedule_attached(self):
        a = _spd(32)
        runtime = Runtime(num_devices=2, execution="simulated")
        result = cholesky(a, tile_size=16, runtime=runtime)
        assert result.schedule is not None
        # run() drains the pending graph; the drained DAG is retained
        assert runtime.graph.num_tasks == 0
        assert result.schedule.trace.num_tasks == runtime.last_graph.num_tasks
        assert runtime.last_graph.is_acyclic()

    def test_runtime_task_count_matches_tile_algorithm(self):
        a = _spd(64)
        runtime = Runtime(num_devices=2, execution="simulated")
        cholesky(a, tile_size=16, runtime=runtime)
        counts = runtime.last_graph.task_counts_by_name()
        assert counts["potrf"] == 4
        assert counts["gemm"] == 4

    def test_session_runtime_reused_across_factorizations(self):
        """One session-long runtime serves repeated factorizations, with
        a single scheduler and a collision-free handle registry."""
        runtime = Runtime(execution="threaded", workers=2)
        scheduler = runtime.scheduler
        for seed in (0, 1, 2):
            a = _spd(48, seed=seed)
            direct = cholesky(a, tile_size=16, execution="serial")
            again = cholesky(a, tile_size=16, runtime=runtime)
            np.testing.assert_array_equal(again.to_dense(), direct.to_dense())
        assert runtime.scheduler is scheduler  # never silently rebuilt
        assert runtime.runs_completed == 3
        # per-invocation namespaces were released after the copy-back
        assert not [n for n in runtime.handles if n.startswith("chol")]


class TestFlopsFormula:
    def test_cholesky_flops_cubic(self):
        assert cholesky_flops(1000) == pytest.approx(1000 ** 3 / 3, rel=0.01)

    def test_accumulated_flops_close_to_formula(self):
        a = _spd(96)
        result = cholesky(a, tile_size=16)
        assert result.flops == pytest.approx(cholesky_flops(96), rel=0.25)


class TestTileNativeInput:
    def test_symmetric_tile_input_never_densifies(self):
        from unittest import mock

        from repro.tiles.matrix import TileMatrix

        a = _spd(64)
        sym = TileMatrix.from_dense(a, tile_size=16, symmetric=True)

        def forbidden(self, *args, **kwargs):
            raise AssertionError("cholesky densified its TileMatrix input")

        with mock.patch.object(TileMatrix, "to_dense", forbidden):
            result = cholesky(sym, working_precision=Precision.FP64)
        np.testing.assert_allclose(result.to_dense(), np.linalg.cholesky(a),
                                   rtol=1e-10, atol=1e-12)

    def test_symmetric_tile_input_matches_dense_input(self):
        from repro.tiles.matrix import TileMatrix

        a = _spd(80)
        dense_result = cholesky(a, tile_size=16, working_precision=Precision.FP32)
        sym = TileMatrix.from_dense(a, tile_size=16, symmetric=True,
                                    precision=Precision.FP32)
        tiled_result = cholesky(sym, working_precision=Precision.FP32)
        np.testing.assert_array_equal(tiled_result.to_dense(),
                                      dense_result.to_dense())
        assert tiled_result.flops == dense_result.flops
