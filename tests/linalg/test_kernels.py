"""Tests for the single-tile POTRF/TRSM/SYRK/GEMM kernels."""

import numpy as np
import pytest
import scipy.linalg

from repro.linalg.kernels import (
    gemm_flops,
    potrf_flops,
    syrk_flops,
    tile_gemm,
    tile_potrf,
    tile_syrk,
    tile_trsm,
    trsm_flops,
)
from repro.precision.formats import Precision


@pytest.fixture
def spd_tile(rng):
    a = rng.standard_normal((16, 16))
    return a @ a.T / 16 + 2.0 * np.eye(16)


class TestPotrf:
    def test_matches_numpy_in_fp64(self, spd_tile):
        l = tile_potrf(spd_tile, precision=Precision.FP64)
        np.testing.assert_allclose(l, np.linalg.cholesky(spd_tile), rtol=1e-12)

    def test_reconstruction_fp32(self, spd_tile):
        l = tile_potrf(spd_tile, precision=Precision.FP32)
        np.testing.assert_allclose(l @ l.T, spd_tile, rtol=1e-4, atol=1e-4)

    def test_upper_option(self, spd_tile):
        u = tile_potrf(spd_tile, precision=Precision.FP64, lower=False)
        np.testing.assert_allclose(u.T @ u, spd_tile, rtol=1e-10)

    def test_indefinite_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            tile_potrf(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_low_precision_quantizes_input(self, spd_tile):
        l16 = tile_potrf(spd_tile, precision=Precision.FP16)
        l64 = tile_potrf(spd_tile, precision=Precision.FP64)
        assert not np.allclose(l16, l64)
        np.testing.assert_allclose(l16, l64, rtol=0.02, atol=0.02)


class TestTrsm:
    def test_right_transposed(self, spd_tile, rng):
        l = np.linalg.cholesky(spd_tile)
        b = rng.standard_normal((10, 16))
        x = tile_trsm(l, b, precision=Precision.FP64, side="right", trans=True)
        np.testing.assert_allclose(x @ l.T, b, rtol=1e-10)

    def test_right_not_transposed(self, spd_tile, rng):
        l = np.linalg.cholesky(spd_tile)
        b = rng.standard_normal((10, 16))
        x = tile_trsm(l, b, precision=Precision.FP64, side="right", trans=False)
        np.testing.assert_allclose(x @ l, b, rtol=1e-10)

    def test_left_variants(self, spd_tile, rng):
        l = np.linalg.cholesky(spd_tile)
        b = rng.standard_normal((16, 5))
        x1 = tile_trsm(l, b, precision=Precision.FP64, side="left", trans=False)
        np.testing.assert_allclose(l @ x1, b, rtol=1e-10)
        x2 = tile_trsm(l, b, precision=Precision.FP64, side="left", trans=True)
        np.testing.assert_allclose(l.T @ x2, b, rtol=1e-10)

    def test_upper_triangular_factor(self, spd_tile, rng):
        u = np.linalg.cholesky(spd_tile).T
        b = rng.standard_normal((8, 16))
        x = tile_trsm(u, b, precision=Precision.FP64, side="right", trans=False,
                      lower=False)
        np.testing.assert_allclose(x @ u, b, rtol=1e-10)

    def test_invalid_side(self, spd_tile, rng):
        with pytest.raises(ValueError):
            tile_trsm(np.eye(4), np.ones((4, 4)), side="middle")


class TestSyrkGemm:
    def test_syrk_update(self, rng):
        a = rng.standard_normal((12, 8))
        c = np.eye(12) * 10.0
        out = tile_syrk(a, c, precision=Precision.FP64, alpha=-1.0, beta=1.0)
        np.testing.assert_allclose(out, c - a @ a.T, rtol=1e-10)

    def test_gemm_update(self, rng):
        a = rng.standard_normal((6, 9))
        b = rng.standard_normal((7, 9))
        c = rng.standard_normal((6, 7))
        out = tile_gemm(a, b, c, precision=Precision.FP64, alpha=-1.0, beta=1.0,
                        transb=True)
        np.testing.assert_allclose(out, c - a @ b.T, rtol=1e-10)

    def test_fp16_gemm_less_accurate_than_fp32(self, rng):
        a = rng.standard_normal((20, 40))
        b = rng.standard_normal((20, 40))
        c = np.zeros((20, 20))
        exact = -a @ b.T
        err16 = np.linalg.norm(tile_gemm(a, b, c, precision=Precision.FP16) - exact)
        err32 = np.linalg.norm(tile_gemm(a, b, c, precision=Precision.FP32) - exact)
        assert err32 < err16


class TestFlopFormulas:
    def test_potrf_dominant_term(self):
        assert potrf_flops(100) == pytest.approx(100 ** 3 / 3, rel=0.05)

    def test_trsm_gemm_syrk(self):
        assert trsm_flops(10, 20) == 2000
        assert gemm_flops(4, 5, 6) == 240
        assert syrk_flops(10, 20) == 10 * 11 * 20
