"""Tests for the tiled SYRK and GEMM drivers."""

import numpy as np
import pytest

from repro.linalg.blas3 import gemm, syrk
from repro.precision.formats import Precision


class TestSyrk:
    def test_matches_gram_matrix(self, rng):
        x = rng.integers(0, 3, size=(60, 24)).astype(np.float64)
        out = syrk(x, tile_size=16, output_precision=Precision.FP64)
        np.testing.assert_allclose(out, x.T @ x, rtol=1e-10)

    def test_symmetry(self, rng):
        x = rng.normal(size=(40, 20))
        out = syrk(x, tile_size=8)
        np.testing.assert_allclose(out, out.T)

    def test_mixed_integer_and_float_columns(self, rng):
        snps = rng.integers(0, 3, size=(50, 16)).astype(np.float64)
        confounders = rng.normal(size=(50, 4))
        x = np.hstack([snps, confounders])
        mask = np.array([True] * 16 + [False] * 4)
        out = syrk(x, tile_size=8, integer_columns=mask,
                   output_precision=Precision.FP64)
        np.testing.assert_allclose(out, x.T @ x, rtol=1e-5, atol=1e-5)

    def test_integer_columns_autodetected(self, rng):
        snps = rng.integers(0, 3, size=(30, 8)).astype(np.float64)
        conf = rng.normal(size=(30, 2))
        x = np.hstack([snps, conf])
        calls = []
        syrk(x, tile_size=4, accumulate_callback=lambda f, p: calls.append(p))
        assert Precision.INT8 in calls
        assert Precision.FP32 in calls

    def test_callback_counts_flops(self, rng):
        x = rng.integers(0, 3, size=(20, 8)).astype(np.float64)
        total = []
        syrk(x, tile_size=4, accumulate_callback=lambda f, p: total.append(f))
        assert sum(total) > 0

    def test_wrong_mask_length_raises(self, rng):
        with pytest.raises(ValueError):
            syrk(rng.normal(size=(10, 4)), tile_size=2,
                 integer_columns=np.array([True, False]))


class TestGemm:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(30, 20))
        b = rng.normal(size=(20, 5))
        out = gemm(a, b, tile_size=8, precision=Precision.FP32)
        np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-4)

    def test_transpose_options(self, rng):
        a = rng.normal(size=(20, 30))
        b = rng.normal(size=(20, 5))
        out = gemm(a, b, tile_size=8, precision=Precision.FP64, transa=True)
        np.testing.assert_allclose(out, a.T @ b, rtol=1e-10)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            gemm(rng.normal(size=(4, 5)), rng.normal(size=(4, 5)), tile_size=2)

    def test_blocking_independent_of_tile_size(self, rng):
        a = rng.normal(size=(25, 33))
        b = rng.normal(size=(33, 7))
        out1 = gemm(a, b, tile_size=5, precision=Precision.FP64)
        out2 = gemm(a, b, tile_size=64, precision=Precision.FP64)
        np.testing.assert_allclose(out1, out2, rtol=1e-12)
