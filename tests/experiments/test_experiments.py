"""Tests for the experiment drivers (scaled-down paper figures/tables)."""

import numpy as np
import pytest

from repro.experiments.report import format_table, format_value
from repro.experiments.scale import SCALE_PRESETS, ScalePreset, get_scale
from repro.precision.formats import Precision


class TestScalePresets:
    def test_known_presets(self):
        assert set(SCALE_PRESETS) == {"tiny", "small", "medium", "large"}
        assert get_scale("small").name == "small"

    def test_preset_passthrough(self):
        preset = SCALE_PRESETS["tiny"]
        assert get_scale(preset) is preset

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_sizes_increase_with_scale(self):
        assert (SCALE_PRESETS["tiny"].n_individuals
                < SCALE_PRESETS["small"].n_individuals
                < SCALE_PRESETS["medium"].n_individuals
                < SCALE_PRESETS["large"].n_individuals)

    def test_invalid_preset(self):
        with pytest.raises(ValueError):
            ScalePreset(name="bad", n_individuals=0, n_snps=10,
                        coalescent_individuals=10, coalescent_snps=10, tile_size=8)


class TestReport:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(True) == "True"
        assert format_value(0.000123) == "1.230e-04"
        assert format_value(1.23456, precision=3) == "1.23"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestHeatmapExperiment:
    @pytest.fixture(scope="class")
    def heatmaps(self):
        from repro.experiments.heatmap import run_precision_heatmaps

        return run_precision_heatmaps(scale="tiny", seed=42)

    def test_fig4a_a100_fp16_offdiagonal(self, heatmaps):
        exp = heatmaps["A100"]
        assert exp.low_precision is Precision.FP16
        assert exp.offdiagonal_low_fraction > 0.9
        assert exp.diagonal_working_fraction == 1.0

    def test_fig4b_gh200_fp8_offdiagonal(self, heatmaps):
        exp = heatmaps["GH200"]
        assert exp.low_precision is Precision.FP8_E4M3
        assert exp.offdiagonal_low_fraction > 0.9
        assert exp.diagonal_working_fraction == 1.0

    def test_footprint_reduction(self, heatmaps):
        # FP16 mosaic halves the FP32 footprint; FP8 goes further
        assert heatmaps["A100"].footprint_reduction > 1.3
        assert heatmaps["GH200"].footprint_reduction > heatmaps["A100"].footprint_reduction


class TestMSPEExperiments:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments.mspe_sweep import run_mspe_sweep

        return run_mspe_sweep(scale="tiny", seed=42)

    def test_fig5_configurations_present(self, sweep):
        labels = sweep.configurations
        assert "100(FP32)" in labels
        assert "10(FP32):90(FP16)" in labels
        assert "Adaptive RR FP32/FP16" in labels
        assert "Adaptive KRR FP32/FP16" in labels

    def test_fig5_band_fp16_matches_fp32(self, sweep):
        for disease, values in sweep.mspe.items():
            ref = values["100(FP32)"]
            for frac in (80, 60, 40, 20):
                assert values[f"{frac}(FP32):{100 - frac}(FP16)"] == pytest.approx(
                    ref, rel=0.02)

    def test_fig5_adaptive_rr_matches_fp32(self, sweep):
        for values in sweep.mspe.values():
            assert values["Adaptive RR FP32/FP16"] == pytest.approx(
                values["100(FP32)"], rel=0.02)

    def test_fig5_krr_beats_every_rr_config(self, sweep):
        for values in sweep.mspe.values():
            krr = values["Adaptive KRR FP32/FP16"]
            rr_best = min(v for k, v in values.items() if "KRR" not in k)
            assert krr < rr_best

    def test_rows_formatting(self, sweep):
        rows = sweep.rows()
        assert len(rows) == len(sweep.mspe)
        assert "phenotype" in rows[0]

    def test_fig6_fp8_between_fp16_krr_and_rr(self):
        from repro.experiments.mspe_sweep import run_mspe_fp8

        result = run_mspe_fp8(scale="tiny", seed=7)
        for idx in range(len(result.sizes)):
            rr = result.mspe["RR FP32/FP16"][idx]
            krr16 = result.mspe["KRR FP32/FP16"][idx]
            krr8 = result.mspe["KRR FP32/FP8"][idx]
            assert krr16 < rr            # KRR better than RR
            assert krr8 <= rr * 1.05     # FP8 KRR still at least as good as RR


class TestPearsonTable:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.experiments.pearson import run_pearson_table

        return run_pearson_table(scale="small", seed=42)

    def test_table1_krr_beats_rr_on_average(self, table):
        diseases = [k for k in table.rr_fp16 if k != "Synthetic [msprime]"]
        rr_mean = np.mean([table.rr_fp16[d] for d in diseases])
        krr_mean = np.mean([table.krr_fp16[d] for d in diseases])
        assert krr_mean > rr_mean + 0.1

    def test_table1_synthetic_row_has_fp8(self, table):
        name = "Synthetic [msprime]"
        assert table.krr_fp8[name] is not None
        assert table.krr_fp16[name] > table.rr_fp16[name]

    def test_table1_ukb_rows_have_no_fp8(self, table):
        diseases = [k for k in table.rr_fp16 if k != "Synthetic [msprime]"]
        assert all(table.krr_fp8[d] is None for d in diseases)

    def test_rows_render(self, table):
        rows = table.rows()
        assert any(r["KRR-FP8"] == "N/A" for r in rows)
        assert len(rows) == len(table.rr_fp16)


class TestPerfFigures:
    def test_fig07_series(self):
        from repro.experiments.perf_figures import run_fig07_build_scaling

        series = run_fig07_build_scaling()
        assert series.x == [256, 512, 1024, 2048, 4096]
        assert series.y == sorted(series.y)
        assert 10 <= series.meta["speedup"] <= 16

    def test_fig08_to_10_each_system(self):
        from repro.experiments.perf_figures import run_fig08_to_10_associate

        for system, expected_mixes in [("Summit", 3), ("Leonardo", 2), ("Alps", 3)]:
            series = run_fig08_to_10_associate(system=system)
            assert len(series) == expected_mixes
            for s in series.values():
                assert len(s.x) == len(s.y) > 0

    def test_fig10_fp8_fastest_on_alps(self):
        from repro.experiments.perf_figures import run_fig08_to_10_associate

        series = run_fig08_to_10_associate(system="Alps")
        fp8 = series["FP32/FP8_E4M3"].y[-1]
        fp16 = series["FP32/FP16"].y[-1]
        fp32 = series["FP32"].y[-1]
        assert fp8 > fp16 > fp32

    def test_fig11_12_efficiencies(self):
        from repro.experiments.perf_figures import run_fig11_12_efficiency

        result = run_fig11_12_efficiency(system="Alps")
        assert set(result) == {"weak", "strong"}
        for label, series in result["weak"].items():
            assert min(series.y) > 0.7
        strong_final = {label: s.y[-1] for label, s in result["strong"].items()}
        assert strong_final["FP32"] >= strong_final["FP32/FP16"]

    def test_fig13_throughput_grows_with_snp_ratio(self):
        from repro.experiments.perf_figures import run_fig13_krr_weak_scaling

        series = run_fig13_krr_weak_scaling(gpu_counts=[256, 1024, 4096])
        finals = [series[r].y[-1] for r in (1, 2, 3, 4, 5)]
        assert finals == sorted(finals)

    def test_fig14_breakdown_structure(self):
        from repro.experiments.perf_figures import run_fig14_breakdown

        breakdown = run_fig14_breakdown(node_counts=(1024, 1936))
        assert set(breakdown) == {1024, 1936}
        for rows in breakdown.values():
            for row in rows:
                assert row["build_pflops"] > row["associate_pflops"]
                assert row["krr_pflops"] <= row["build_pflops"]

    def test_fig14e_headline_numbers(self):
        from repro.experiments.perf_figures import run_fig14e_systems

        result = run_fig14e_systems()
        assert result["alps_krr_exaops"] > 1.0
        assert 4.5 <= result["regenie_orders_of_magnitude"] <= 6.5
        assert len(result["systems"]) == 4
