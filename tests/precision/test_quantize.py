"""Tests for generic quantization helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.formats import Precision
from repro.precision.quantize import (
    Int8Quantization,
    dequantize_int8,
    quantization_error,
    quantize,
    quantize_int8,
    storage_bytes,
)


class TestQuantize:
    def test_fp64_passthrough(self):
        x = np.random.default_rng(0).normal(size=20)
        out = quantize(x, Precision.FP64)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, x)

    def test_fp32_cast(self):
        x = np.array([1.0 + 1e-10])
        out = quantize(x, Precision.FP32)
        assert out.dtype == np.float32
        assert float(out[0]) != 1.0 + 1e-10  # precision lost

    def test_fp16_cast_and_clip(self):
        out = quantize(np.array([1e6, -1e6, 1.0]), Precision.FP16)
        assert out.dtype == np.float16
        assert float(out[0]) == pytest.approx(65504.0)
        assert float(out[1]) == pytest.approx(-65504.0)

    def test_bf16_grid(self):
        out = quantize(np.array([1.0, 3.14159]), Precision.BF16)
        assert out.dtype == np.float32
        assert float(out[0]) == 1.0
        # bf16 has ~3 significant decimal digits
        assert abs(float(out[1]) - 3.14159) < 0.02

    def test_fp8_dispatch(self):
        out = quantize(np.array([1000.0]), Precision.FP8_E4M3)
        assert float(out[0]) == 448.0

    def test_int8(self):
        out = quantize(np.array([1.4, 2.6, 200.0, -200.0]), Precision.INT8)
        assert out.dtype == np.int8
        np.testing.assert_array_equal(out, [1, 3, 127, -128])

    def test_int32(self):
        out = quantize(np.array([1.5e10, -1.5e10, 5.0]), Precision.INT32)
        assert out.dtype == np.int32
        assert out[0] == np.iinfo(np.int32).max
        assert out[1] == np.iinfo(np.int32).min

    def test_accepts_string_precision(self):
        out = quantize(np.ones(3), "fp16")
        assert out.dtype == np.float16

    def test_quantization_error_zero_for_exact(self):
        x = np.array([[0.0, 1.0], [2.0, 0.5]])
        assert quantization_error(x, Precision.FP16) == 0.0

    def test_quantization_error_increases_with_narrower_formats(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(30, 30))
        errs = [quantization_error(x, p)
                for p in (Precision.FP32, Precision.FP16, Precision.FP8_E4M3)]
        assert errs[0] < errs[1] < errs[2]


class TestInt8Quantization:
    def test_genotypes_are_exact(self):
        g = np.array([0, 1, 2, 2, 0], dtype=np.int8)
        q = quantize_int8(g, scale=1.0)
        np.testing.assert_array_equal(q.q, g)
        np.testing.assert_array_equal(q.dequantize(), g.astype(np.float32))

    def test_auto_scale_uses_max_abs(self):
        x = np.array([-2.0, 0.0, 4.0])
        q = quantize_int8(x)
        assert q.scale == pytest.approx(4.0 / 127.0)
        assert q.q.max() == 127

    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=100)
        q = quantize_int8(x)
        err = np.max(np.abs(dequantize_int8(q) - x))
        assert err <= q.scale / 2 + 1e-7

    def test_all_zero_input(self):
        q = quantize_int8(np.zeros(5))
        assert q.scale == 1.0
        np.testing.assert_array_equal(q.q, 0)

    def test_dataclass_fields(self):
        q = quantize_int8(np.array([1.0]))
        assert isinstance(q, Int8Quantization)
        assert q.q.dtype == np.int8


class TestStorageBytes:
    @pytest.mark.parametrize("precision, expected", [
        (Precision.FP64, 800), (Precision.FP32, 400),
        (Precision.FP16, 200), (Precision.FP8_E4M3, 100), (Precision.INT8, 100),
    ])
    def test_matrix_footprint(self, precision, expected):
        assert storage_bytes((10, 10), precision) == expected

    def test_empty_shape(self):
        assert storage_bytes((), Precision.FP32) == 4  # scalar

    def test_accepts_string(self):
        assert storage_bytes((4,), "fp16") == 8


class TestQuantizeProperties:
    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=40),
           st.sampled_from(["fp32", "fp16", "bf16", "fp8"]))
    @settings(max_examples=60, deadline=None)
    def test_idempotence(self, values, precision):
        x = np.array(values)
        once = np.asarray(quantize(x, precision), dtype=np.float64)
        twice = np.asarray(quantize(once, precision), dtype=np.float64)
        np.testing.assert_array_equal(once, twice)

    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_wider_format_never_less_accurate(self, values):
        x = np.array(values)
        err16 = quantization_error(x, Precision.FP16)
        err8 = quantization_error(x, Precision.FP8_E4M3)
        assert err16 <= err8 + 1e-12
