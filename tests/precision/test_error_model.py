"""Tests for the rounding-error bound helpers."""

import numpy as np
import pytest

from repro.precision.error_model import (
    adaptive_perturbation_bound,
    cholesky_error_bound,
    dot_product_error_bound,
    gamma,
    matmul_error_bound,
    min_precision_for_accuracy,
    representable_relative_error,
)
from repro.precision.formats import Precision, unit_roundoff


class TestGamma:
    def test_small_nu(self):
        u = 2.0 ** -24
        assert gamma(100, u) == pytest.approx(100 * u, rel=1e-4)

    def test_monotone_in_n(self):
        u = 2.0 ** -11
        assert gamma(10, u) < gamma(100, u) < gamma(1000, u)

    def test_raises_when_nu_too_large(self):
        with pytest.raises(ValueError):
            gamma(5000, 2.0 ** -11)  # 5000 * 2^-11 > 1


class TestDotProductBound:
    def test_integer_exact(self):
        assert dot_product_error_bound(1000, Precision.INT8) == 0.0

    def test_wider_accumulation_helps(self):
        narrow = dot_product_error_bound(1_000, Precision.FP16, Precision.FP16)
        wide = dot_product_error_bound(1_000, Precision.FP16, Precision.FP32)
        assert wide < narrow

    def test_accumulation_too_long_for_fp16_raises(self):
        with pytest.raises(ValueError):
            dot_product_error_bound(10_000, Precision.FP16, Precision.FP16)

    def test_matmul_bound_equals_dot_bound(self):
        assert matmul_error_bound(5, 6, 200, Precision.FP16) == \
            dot_product_error_bound(200, Precision.FP16)

    def test_bound_is_actually_a_bound(self):
        rng = np.random.default_rng(0)
        n = 256
        x = rng.normal(size=n)
        y = rng.normal(size=n)
        from repro.precision.quantize import quantize
        xf = np.asarray(quantize(x, Precision.FP16), dtype=np.float32)
        yf = np.asarray(quantize(y, Precision.FP16), dtype=np.float32)
        computed = float(np.dot(xf, yf))
        exact = float(np.dot(x, y))
        bound = dot_product_error_bound(n, Precision.FP16, Precision.FP32)
        assert abs(computed - exact) <= bound * float(np.dot(np.abs(x), np.abs(y))) + 1e-6


class TestCholeskyBound:
    def test_zero_for_integers(self):
        assert cholesky_error_bound(100, Precision.INT8) == 0.0

    def test_grows_with_n(self):
        assert cholesky_error_bound(100, Precision.FP32) < \
            cholesky_error_bound(1000, Precision.FP32)

    def test_narrower_precision_larger_bound(self):
        assert cholesky_error_bound(100, Precision.FP32) < \
            cholesky_error_bound(100, Precision.FP16)


class TestAdaptivePerturbation:
    def test_uniform_tiles(self):
        norms = np.full(16, 10.0)
        precisions = np.full(16, Precision.FP16, dtype=object)
        matrix_norm = 40.0  # sqrt(16 * 100)
        bound = adaptive_perturbation_bound(norms, precisions, matrix_norm)
        assert bound == pytest.approx(unit_roundoff(Precision.FP16), rel=1e-12)

    def test_mixed_precisions(self):
        norms = np.array([10.0, 1.0])
        precisions = np.array([Precision.FP32, Precision.FP8_E4M3], dtype=object)
        bound = adaptive_perturbation_bound(norms, precisions, np.sqrt(101.0))
        # dominated by the FP8 tile: 0.0625 * 1 / ~10
        assert 0.004 < bound < 0.01

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            adaptive_perturbation_bound(np.ones(3), np.array([Precision.FP16] * 2,
                                                             dtype=object), 1.0)

    def test_zero_matrix_norm(self):
        assert adaptive_perturbation_bound(np.ones(2),
                                           np.array([Precision.FP16] * 2, dtype=object),
                                           0.0) == 0.0


class TestPrecisionSelection:
    def test_representable_relative_error(self):
        assert representable_relative_error("fp16") == pytest.approx(2.0 ** -11)

    def test_min_precision_for_accuracy(self):
        assert min_precision_for_accuracy(1e-1) is Precision.FP8_E4M3
        assert min_precision_for_accuracy(1e-3) is Precision.FP16
        assert min_precision_for_accuracy(1e-7) is Precision.FP32
        assert min_precision_for_accuracy(1e-15) is Precision.FP64

    def test_min_precision_falls_back_to_widest(self):
        assert min_precision_for_accuracy(1e-20) is Precision.FP64
