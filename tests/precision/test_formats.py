"""Tests for precision format descriptors."""

import numpy as np
import pytest

from repro.precision.formats import (
    FLOAT_STORAGE_FORMATS,
    FP8_E4M3_MAX,
    FP8_E5M2_MAX,
    Precision,
    unit_roundoff,
)


class TestPrecisionMetadata:
    def test_bytes_per_element(self):
        assert Precision.FP64.bytes_per_element == 8
        assert Precision.FP32.bytes_per_element == 4
        assert Precision.FP16.bytes_per_element == 2
        assert Precision.BF16.bytes_per_element == 2
        assert Precision.FP8_E4M3.bytes_per_element == 1
        assert Precision.INT8.bytes_per_element == 1
        assert Precision.INT32.bytes_per_element == 4

    def test_integer_flags(self):
        assert Precision.INT8.is_integer
        assert Precision.INT32.is_integer
        assert not Precision.FP16.is_integer
        assert Precision.FP16.is_float
        assert not Precision.INT8.is_float

    def test_max_finite_values(self):
        assert Precision.FP8_E4M3.max_finite == pytest.approx(448.0)
        assert Precision.FP8_E5M2.max_finite == pytest.approx(57344.0)
        assert Precision.FP16.max_finite == pytest.approx(65504.0)
        assert Precision.INT8.max_finite == 127.0

    def test_numpy_dtypes(self):
        assert Precision.FP64.numpy_dtype == np.dtype(np.float64)
        assert Precision.FP16.numpy_dtype == np.dtype(np.float16)
        # FP8/BF16 have no native dtype: stored as float32 on the grid
        assert Precision.FP8_E4M3.numpy_dtype == np.dtype(np.float32)
        assert Precision.BF16.numpy_dtype == np.dtype(np.float32)
        assert Precision.INT8.numpy_dtype == np.dtype(np.int8)

    def test_module_constants(self):
        assert FP8_E4M3_MAX == 448.0
        assert FP8_E5M2_MAX == 57344.0


class TestUnitRoundoff:
    def test_standard_values(self):
        assert unit_roundoff(Precision.FP64) == pytest.approx(2.0 ** -53)
        assert unit_roundoff(Precision.FP32) == pytest.approx(2.0 ** -24)
        assert unit_roundoff(Precision.FP16) == pytest.approx(2.0 ** -11)
        assert unit_roundoff(Precision.BF16) == pytest.approx(2.0 ** -8)
        assert unit_roundoff(Precision.FP8_E4M3) == pytest.approx(2.0 ** -4)
        assert unit_roundoff(Precision.FP8_E5M2) == pytest.approx(2.0 ** -3)

    def test_integer_roundoff_is_zero(self):
        assert unit_roundoff(Precision.INT8) == 0.0
        assert unit_roundoff(Precision.INT32) == 0.0

    def test_accepts_string(self):
        assert unit_roundoff("fp16") == pytest.approx(2.0 ** -11)

    def test_roundoff_decreases_with_width(self):
        assert (unit_roundoff(Precision.FP64) < unit_roundoff(Precision.FP32)
                < unit_roundoff(Precision.FP16) < unit_roundoff(Precision.FP8_E4M3))


class TestOrdering:
    def test_rank_ordering(self):
        assert Precision.FP64.rank > Precision.FP32.rank > Precision.FP16.rank
        assert Precision.FP16.rank > Precision.FP8_E4M3.rank > Precision.INT8.rank

    def test_wider_narrower(self):
        assert Precision.FP64.wider_than(Precision.FP32)
        assert Precision.FP8_E4M3.narrower_than(Precision.FP16)
        assert not Precision.FP32.wider_than(Precision.FP32)

    def test_widest_narrowest(self):
        assert Precision.widest(Precision.FP16, Precision.FP32) is Precision.FP32
        assert Precision.narrowest(Precision.FP16, Precision.FP32) is Precision.FP16
        assert Precision.widest(Precision.FP8_E4M3) is Precision.FP8_E4M3

    def test_widest_requires_argument(self):
        with pytest.raises(ValueError):
            Precision.widest()
        with pytest.raises(ValueError):
            Precision.narrowest()


class TestFromString:
    @pytest.mark.parametrize("alias, expected", [
        ("fp64", Precision.FP64), ("double", Precision.FP64),
        ("float32", Precision.FP32), ("single", Precision.FP32),
        ("half", Precision.FP16), ("FP16", Precision.FP16),
        ("bf16", Precision.BF16), ("bfloat16", Precision.BF16),
        ("fp8", Precision.FP8_E4M3), ("e4m3", Precision.FP8_E4M3),
        ("e5m2", Precision.FP8_E5M2),
        ("int8", Precision.INT8), ("int32", Precision.INT32),
    ])
    def test_aliases(self, alias, expected):
        assert Precision.from_string(alias) is expected

    def test_passthrough(self):
        assert Precision.from_string(Precision.FP16) is Precision.FP16

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown precision"):
            Precision.from_string("fp128")

    def test_str_roundtrip(self):
        for p in Precision:
            assert Precision.from_string(str(p)) is p


class TestFloatStorageFormats:
    def test_ordering_widest_first(self):
        ranks = [p.rank for p in FLOAT_STORAGE_FORMATS]
        assert ranks == sorted(ranks, reverse=True)

    def test_no_integers(self):
        assert all(p.is_float for p in FLOAT_STORAGE_FORMATS)
