"""Tests for the BLAS-backed mixed-precision GEMM engine.

The engine dispatches the INT8/INT32 variant through float64 dgemm,
which is bit-exact as long as every partial sum stays below 2**53.
These tests pin that claim against the historical int64 reference path
bit for bit, exercise the ``QuantizedOperand`` cache, and cover the
analytic overflow guard.
"""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.precision.gemm import (
    EXACT_DGEMM_BOUND,
    QuantizedOperand,
    gemm_mixed,
    integer_backend,
    set_integer_backend,
    syrk_mixed,
)


class TestBlasVsInt64Reference:
    @pytest.mark.parametrize("shape1, shape2", [
        ((17, 23), (11, 23)),       # generic
        ((1, 64), (1, 64)),         # single row
        ((5, 1), (3, 1)),           # inner dimension 1
        ((64, 8192), (16, 8192)),   # k larger than the default snp_block
    ])
    def test_bitwise_equal_across_backends(self, shape1, shape2):
        rng = np.random.default_rng(sum(shape1) + sum(shape2))
        g1 = rng.integers(0, 3, size=shape1).astype(np.int8)
        g2 = rng.integers(0, 3, size=shape2).astype(np.int8)
        with integer_backend("blas"):
            fast = np.asarray(gemm_mixed(g1, g2, variant="AB8I_C32I_OP32I",
                                         transb=True))
        with integer_backend("int64"):
            ref = np.asarray(gemm_mixed(g1, g2, variant="AB8I_C32I_OP32I",
                                        transb=True))
        assert fast.dtype == ref.dtype
        np.testing.assert_array_equal(fast, ref)

    def test_empty_operands(self):
        g1 = np.zeros((0, 16), dtype=np.int8)
        g2 = np.zeros((4, 16), dtype=np.int8)
        out = gemm_mixed(g1, g2, variant="AB8I_C32I_OP32I", transb=True)
        assert np.asarray(out).shape == (0, 4)

    def test_negative_values_bitwise_equal(self):
        rng = np.random.default_rng(99)
        a = rng.integers(-128, 128, size=(23, 301)).astype(np.int8)
        b = rng.integers(-128, 128, size=(19, 301)).astype(np.int8)
        with integer_backend("blas"):
            fast = np.asarray(gemm_mixed(a, b, variant="AB8I_C32I_OP32I",
                                         transb=True))
        with integer_backend("int64"):
            ref = np.asarray(gemm_mixed(a, b, variant="AB8I_C32I_OP32I",
                                        transb=True))
        np.testing.assert_array_equal(fast, ref)

    def test_syrk_bitwise_equal_across_backends(self):
        rng = np.random.default_rng(7)
        g = rng.integers(0, 3, size=(33, 500)).astype(np.int8)
        with integer_backend("blas"):
            fast = np.asarray(syrk_mixed(g, variant="AB8I_C32I_OP32I"))
        with integer_backend("int64"):
            ref = np.asarray(syrk_mixed(g, variant="AB8I_C32I_OP32I"))
        np.testing.assert_array_equal(fast, ref)
        np.testing.assert_array_equal(
            fast.astype(np.int64), g.astype(np.int64) @ g.astype(np.int64).T)

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            set_integer_backend("fp4")

    def test_backend_restored_after_context(self):
        with integer_backend("int64"):
            pass
        # blas is the module default; a nested raise must also restore
        with pytest.raises(RuntimeError):
            with integer_backend("int64"):
                raise RuntimeError("boom")
        g = np.ones((2, 2), dtype=np.int8)
        out = gemm_mixed(g, g, variant="AB8I_C32I_OP32I", transb=True)
        np.testing.assert_array_equal(np.asarray(out), 2 * np.ones((2, 2)))


class TestOverflowGuard:
    def test_analytic_bound_skips_scan_but_stays_exact(self):
        # genotypes {0,1,2} with k=4096: max|a|*max|b|*k = 16384 << 2**31
        rng = np.random.default_rng(3)
        g = rng.integers(0, 3, size=(8, 4096)).astype(np.int8)
        out = gemm_mixed(g, g, variant="AB8I_C32I_OP32I", transb=True)
        np.testing.assert_array_equal(
            np.asarray(out, dtype=np.int64),
            g.astype(np.int64) @ g.astype(np.int64).T)

    def test_overflow_still_detected_beyond_analytic_bound(self):
        a = np.full((1, 140_000), 127, dtype=np.int8)
        with pytest.raises(OverflowError):
            gemm_mixed(a, a, variant="AB8I_C32I_OP32I", transb=True)

    def test_overflow_detected_on_int64_backend_too(self):
        a = np.full((1, 140_000), 127, dtype=np.int8)
        with integer_backend("int64"):
            with pytest.raises(OverflowError):
                gemm_mixed(a, a, variant="AB8I_C32I_OP32I", transb=True)

    def test_syrk_overflow_detected(self):
        a = np.full((2, 140_000), 127, dtype=np.int8)
        with pytest.raises(OverflowError):
            syrk_mixed(a, variant="AB8I_C32I_OP32I")

    def test_exactness_bound_is_2_to_53(self):
        assert EXACT_DGEMM_BOUND == 2.0 ** 53


class TestQuantizedOperand:
    def test_wrap_reuses_matching_operand(self):
        g = np.arange(12, dtype=np.int8).reshape(3, 4) % 3
        q = QuantizedOperand(g, Precision.INT8)
        assert QuantizedOperand.wrap(q, Precision.INT8) is q
        requantized = QuantizedOperand.wrap(q, Precision.FP32)
        assert requantized is not q
        assert requantized.precision is Precision.FP32

    def test_matches_raw_array_result(self):
        rng = np.random.default_rng(11)
        g1 = rng.integers(0, 3, size=(9, 130)).astype(np.int8)
        g2 = rng.integers(0, 3, size=(7, 130)).astype(np.int8)
        raw = np.asarray(gemm_mixed(g1, g2, variant="AB8I_C32I_OP32I",
                                    transb=True))
        q1 = QuantizedOperand(g1, Precision.INT8)
        q2 = QuantizedOperand(g2, Precision.INT8)
        wrapped = np.asarray(gemm_mixed(q1, q2, variant="AB8I_C32I_OP32I",
                                        transb=True))
        np.testing.assert_array_equal(raw, wrapped)

    def test_slices_share_float64_cache(self):
        rng = np.random.default_rng(4)
        g = rng.integers(0, 3, size=(16, 64)).astype(np.int8)
        q = QuantizedOperand(g, Precision.INT8)
        parent = q.as_float64()
        view = q[2:6, 8:32]
        assert view.as_float64().base is parent or (
            view.as_float64().base is not None)
        np.testing.assert_array_equal(view.as_float64(),
                                      parent[2:6, 8:32])

    def test_sliced_gemm_matches_sliced_array(self):
        rng = np.random.default_rng(5)
        g = rng.integers(0, 3, size=(24, 96)).astype(np.int8)
        q = QuantizedOperand(g, Precision.INT8)
        q.as_float64()
        expected = np.asarray(gemm_mixed(g[:8, 0:48], g[8:, 0:48],
                                         variant="AB8I_C32I_OP32I", transb=True))
        got = np.asarray(gemm_mixed(q[:8, 0:48], q[8:, 0:48],
                                    variant="AB8I_C32I_OP32I", transb=True))
        np.testing.assert_array_equal(expected, got)

    def test_transpose_view(self):
        g = np.arange(6, dtype=np.int8).reshape(2, 3) % 3
        q = QuantizedOperand(g, Precision.INT8)
        q.as_float64()
        assert q.T.shape == (3, 2)
        np.testing.assert_array_equal(q.T.as_float64(), q.as_float64().T)

    def test_max_abs_cached_and_conservative_for_slices(self):
        g = np.array([[0, 1], [2, 0]], dtype=np.int8)
        q = QuantizedOperand(g, Precision.INT8)
        assert q.max_abs() == 2.0
        # slices inherit the parent's bound (conservative, never unsafe)
        assert q[0:1, :].max_abs() == 2.0

    def test_float_precision_operand(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(10, 20))
        q = QuantizedOperand(a, Precision.FP16)
        out = np.asarray(gemm_mixed(q, q, variant="FP16_FP32ACC", transb=True),
                         dtype=np.float64)
        ref = np.asarray(gemm_mixed(a, a, variant="FP16_FP32ACC", transb=True),
                         dtype=np.float64)
        np.testing.assert_array_equal(out, ref)

    def test_mismatched_inner_dims_raise(self):
        q1 = QuantizedOperand(np.zeros((3, 4), dtype=np.int8), Precision.INT8)
        q2 = QuantizedOperand(np.zeros((5, 6), dtype=np.int8), Precision.INT8)
        with pytest.raises(ValueError, match="inner dimensions"):
            gemm_mixed(q1, q2, variant="AB8I_C32I_OP32I")


class TestTriangularSyrk:
    def test_lower_and_upper_agree(self, rng):
        a = rng.normal(size=(12, 7))
        low = np.asarray(syrk_mixed(a, variant="FP64", lower=True))
        up = np.asarray(syrk_mixed(a, variant="FP64", lower=False))
        np.testing.assert_allclose(low, up, rtol=1e-13)
        np.testing.assert_allclose(low, a @ a.T, rtol=1e-13)

    def test_result_exactly_symmetric(self, rng):
        a = rng.normal(size=(20, 9)).astype(np.float32)
        out = np.asarray(syrk_mixed(a, variant="FP32"), dtype=np.float64)
        np.testing.assert_array_equal(out, out.T)

    def test_empty_rank_k(self):
        a = np.zeros((4, 0))
        out = np.asarray(syrk_mixed(a, variant="FP32"), dtype=np.float64)
        np.testing.assert_array_equal(out, np.zeros((4, 4)))
