"""Tests for the software FP8 emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.formats import Precision
from repro.precision.fp8 import fp8_grid, is_representable_fp8, quantize_fp8


class TestE4M3Grid:
    def test_exact_values_preserved(self):
        # powers of two and small integers are exactly representable
        exact = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 448.0, -448.0, 0.25])
        out = quantize_fp8(exact)
        np.testing.assert_array_equal(out, exact.astype(np.float32))

    def test_max_finite_saturation(self):
        out = quantize_fp8(np.array([1e6, -1e6, 500.0, np.inf, -np.inf]))
        np.testing.assert_array_equal(out, [448.0, -448.0, 448.0, 448.0, -448.0])

    def test_nan_propagates(self):
        out = quantize_fp8(np.array([np.nan, 1.0]))
        assert np.isnan(out[0])
        assert out[1] == 1.0

    def test_rounding_to_nearest(self):
        # between 1.0 and 1.125 (grid step 1/8), 1.05 rounds to 1.0
        assert quantize_fp8(np.array([1.05]))[0] == pytest.approx(1.0)
        assert quantize_fp8(np.array([1.10]))[0] == pytest.approx(1.125)

    def test_relative_error_bound(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-400, 400, size=1000)
        q = quantize_fp8(x)
        rel = np.abs(q - x) / np.maximum(np.abs(x), 2 ** -9)
        # unit roundoff of E4M3 is 2^-4
        assert np.all(rel <= 2.0 ** -4 + 1e-12)

    def test_subnormal_handling(self):
        tiny = np.array([2.0 ** -9, 2.0 ** -10])
        out = quantize_fp8(tiny)
        assert np.all(out >= 0)
        # smallest subnormal step is 2^-9; 2^-10 rounds to 0 or 2^-9
        assert out[1] in (0.0, 2.0 ** -9)

    def test_output_dtype_float32(self):
        assert quantize_fp8(np.ones(3)).dtype == np.float32

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=200)
        once = quantize_fp8(x)
        twice = quantize_fp8(once)
        np.testing.assert_array_equal(once, twice)


class TestE5M2:
    def test_larger_range_coarser_grid(self):
        x = np.array([5000.0, 57344.0, 60000.0])
        out = quantize_fp8(x, Precision.FP8_E5M2)
        assert out[1] == 57344.0
        assert out[2] == 57344.0  # saturates
        # E4M3 saturates the same values at 448
        out43 = quantize_fp8(x, Precision.FP8_E4M3)
        assert np.all(out43 == 448.0)

    def test_grid_sizes(self):
        g43 = fp8_grid(Precision.FP8_E4M3)
        g52 = fp8_grid(Precision.FP8_E5M2)
        assert g43.max() == 448.0
        assert g52.max() == 57344.0
        assert len(g43) > len(g52) // 2  # E4M3 denser near zero range


class TestGridConsistency:
    def test_quantized_values_lie_on_grid(self):
        grid = fp8_grid(Precision.FP8_E4M3)
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 448, size=500)
        q = quantize_fp8(x)
        # every quantized magnitude must be a grid point
        for v in np.abs(q):
            assert np.any(np.isclose(grid, v, rtol=0, atol=1e-12))

    def test_is_representable(self):
        grid = fp8_grid(Precision.FP8_E4M3)
        assert np.all(is_representable_fp8(grid[:50]))
        assert not is_representable_fp8(np.array([1.01]))[0]

    def test_invalid_variant_raises(self):
        with pytest.raises(ValueError):
            quantize_fp8(np.ones(2), Precision.FP16)
        with pytest.raises(ValueError):
            fp8_grid(Precision.FP32)


class TestFP8Properties:
    @given(st.lists(st.floats(min_value=-448, max_value=448,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_quantization_is_monotone(self, values):
        x = np.sort(np.array(values, dtype=np.float64))
        q = quantize_fp8(x)
        assert np.all(np.diff(q) >= 0)

    @given(st.floats(min_value=-448, max_value=448,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_error_within_half_step(self, value):
        q = float(quantize_fp8(np.array([value]))[0])
        # relative error bounded by u = 2^-4 for normal range
        if abs(value) >= 2 ** -6:
            assert abs(q - value) <= abs(value) * 2.0 ** -4 + 1e-12
        else:
            assert abs(q - value) <= 2.0 ** -10  # subnormal absolute step / 2
