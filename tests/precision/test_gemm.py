"""Tests for the emulated tensor-core GEMM/SYRK variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.formats import Precision
from repro.precision.gemm import (
    GemmVariant,
    gemm_flop_count,
    gemm_mixed,
    gemm_variant,
    syrk_flop_count,
    syrk_mixed,
    variant_for_input,
)


class TestVariantRegistry:
    def test_paper_int8_variant(self):
        v = gemm_variant("AB8I_C32I_OP32I")
        assert v.input_precision is Precision.INT8
        assert v.accumulate_precision is Precision.INT32
        assert v.output_precision is Precision.INT32

    def test_fp16_accumulates_in_fp32(self):
        v = gemm_variant("FP16_FP32ACC")
        assert v.input_precision is Precision.FP16
        assert v.accumulate_precision is Precision.FP32

    def test_fp8_variant(self):
        v = gemm_variant("FP8_E4M3_FP32ACC")
        assert v.input_precision is Precision.FP8_E4M3

    def test_case_insensitive(self):
        assert gemm_variant("fp32").name == "FP32"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown GEMM variant"):
            gemm_variant("FP4")

    @pytest.mark.parametrize("precision, expected", [
        (Precision.INT8, "AB8I_C32I_OP32I"),
        (Precision.FP64, "FP64"),
        (Precision.FP32, "FP32"),
        (Precision.FP16, "FP16_FP32ACC"),
        (Precision.FP8_E4M3, "FP8_E4M3_FP32ACC"),
    ])
    def test_variant_for_input(self, precision, expected):
        assert variant_for_input(precision).name == expected

    def test_flops_precision_property(self):
        assert gemm_variant("FP16_FP32ACC").flops_precision is Precision.FP16


class TestIntegerGemm:
    def test_exact_for_genotype_data(self, rng):
        g1 = rng.integers(0, 3, size=(17, 23)).astype(np.int8)
        g2 = rng.integers(0, 3, size=(11, 23)).astype(np.int8)
        out = gemm_mixed(g1, g2, variant="AB8I_C32I_OP32I", transb=True)
        expected = g1.astype(np.int64) @ g2.astype(np.int64).T
        np.testing.assert_array_equal(np.asarray(out, dtype=np.int64), expected)

    def test_overflow_detection(self):
        # 127*127*k overflows INT32 for k > ~133000
        a = np.full((1, 140_000), 127, dtype=np.int8)
        with pytest.raises(OverflowError):
            gemm_mixed(a, a, variant="AB8I_C32I_OP32I", transb=True)

    def test_real_values_rounded_to_int8(self):
        a = np.array([[0.4, 1.6]])
        b = np.array([[1.0], [1.0]])
        out = gemm_mixed(a, b, variant="AB8I_C32I_OP32I")
        # 0.4 -> 0, 1.6 -> 2
        assert float(out[0, 0]) == 2.0


class TestFloatGemm:
    def test_fp64_matches_numpy(self, rng):
        a = rng.normal(size=(12, 9))
        b = rng.normal(size=(9, 7))
        out = gemm_mixed(a, b, variant="FP64")
        np.testing.assert_allclose(out, a @ b, rtol=1e-13)

    def test_fp32_close_to_numpy(self, rng):
        a = rng.normal(size=(20, 15))
        b = rng.normal(size=(15, 10))
        out = gemm_mixed(a, b, variant="FP32")
        np.testing.assert_allclose(out, a @ b, rtol=1e-4, atol=1e-5)

    def test_fp16_inputs_lose_precision_but_accumulate_wider(self, rng):
        a = rng.normal(size=(30, 200))
        b = rng.normal(size=(200, 30))
        out16 = np.asarray(gemm_mixed(a, b, variant="FP16_FP32ACC"), dtype=np.float64)
        exact = a @ b
        rel = np.linalg.norm(out16 - exact) / np.linalg.norm(exact)
        # error driven by input rounding (~2^-11), not accumulation length
        assert rel < 5e-3

    def test_fp8_coarser_than_fp16(self, rng):
        a = rng.normal(size=(25, 60))
        b = rng.normal(size=(60, 25))
        exact = a @ b
        err16 = np.linalg.norm(np.asarray(gemm_mixed(a, b, variant="FP16_FP32ACC"),
                                          dtype=np.float64) - exact)
        err8 = np.linalg.norm(np.asarray(gemm_mixed(a, b, variant="FP8_E4M3_FP32ACC"),
                                         dtype=np.float64) - exact)
        assert err8 > err16

    def test_alpha_beta(self, rng):
        a = rng.normal(size=(6, 5))
        b = rng.normal(size=(5, 4))
        c = rng.normal(size=(6, 4))
        out = gemm_mixed(a, b, c, variant="FP64", alpha=-1.0, beta=2.0)
        np.testing.assert_allclose(out, -a @ b + 2.0 * c, rtol=1e-12)

    def test_beta_without_c_raises(self, rng):
        a = rng.normal(size=(3, 3))
        with pytest.raises(ValueError, match="beta"):
            gemm_mixed(a, a, variant="FP32", beta=1.0)

    def test_transpose_flags(self, rng):
        a = rng.normal(size=(5, 8))
        b = rng.normal(size=(4, 8))
        out = gemm_mixed(a, b, variant="FP64", transb=True)
        np.testing.assert_allclose(out, a @ b.T, rtol=1e-12)
        out2 = gemm_mixed(a, a, variant="FP64", transa=True)
        np.testing.assert_allclose(out2, a.T @ a, rtol=1e-12)

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="inner dimensions"):
            gemm_mixed(rng.normal(size=(3, 4)), rng.normal(size=(5, 6)))


class TestSyrk:
    def test_symmetric_output(self, rng):
        a = rng.normal(size=(14, 9))
        out = np.asarray(syrk_mixed(a, variant="FP32"), dtype=np.float64)
        np.testing.assert_allclose(out, out.T, atol=1e-6)

    def test_matches_gram(self, rng):
        a = rng.normal(size=(10, 6))
        out = syrk_mixed(a, variant="FP64")
        np.testing.assert_allclose(out, a @ a.T, rtol=1e-12)

    def test_trans_mode(self, rng):
        a = rng.normal(size=(10, 6))
        out = syrk_mixed(a, variant="FP64", trans=True)
        np.testing.assert_allclose(out, a.T @ a, rtol=1e-12)

    def test_beta_accumulation(self, rng):
        a = rng.normal(size=(5, 4))
        c = np.eye(5)
        out = syrk_mixed(a, c, variant="FP64", alpha=-2.0, beta=3.0)
        np.testing.assert_allclose(out, -2.0 * a @ a.T + 3.0 * c, rtol=1e-12)

    def test_integer_syrk_exact(self, rng):
        g = rng.integers(0, 3, size=(12, 30)).astype(np.int8)
        out = syrk_mixed(g, variant="AB8I_C32I_OP32I")
        np.testing.assert_array_equal(np.asarray(out, dtype=np.int64),
                                      g.astype(np.int64) @ g.astype(np.int64).T)


class TestFlopCounts:
    def test_gemm_flops(self):
        assert gemm_flop_count(10, 20, 30) == 2 * 10 * 20 * 30

    def test_syrk_flops(self):
        assert syrk_flop_count(10, 30) == 10 * 11 * 30


class TestGemmProperties:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_int8_gemm_always_exact_for_genotypes(self, m, n, k):
        rng = np.random.default_rng(m * 100 + n * 10 + k)
        g1 = rng.integers(0, 3, size=(m, k)).astype(np.int8)
        g2 = rng.integers(0, 3, size=(n, k)).astype(np.int8)
        out = gemm_mixed(g1, g2, variant="AB8I_C32I_OP32I", transb=True)
        np.testing.assert_array_equal(np.asarray(out, dtype=np.int64),
                                      g1.astype(np.int64) @ g2.astype(np.int64).T)
