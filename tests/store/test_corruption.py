"""Crash-safety of the tile store: on-disk damage surfaces typed.

Satellite of ISSUE 6: truncation, bit-flips and missing segment files
must raise :class:`~repro.store.StoreCorruptionError` naming the tile
(matrix, coordinates, precision, segment path) for every storage
precision — never a silent wrong answer or an opaque reshape crash —
and :meth:`~repro.store.TileStore.verify` must scrub and repair.
"""

import os

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.store import StoreCorruptionError, TileStore
from repro.tiles.matrix import TileMatrix

TILE = 16

PRECISIONS = [Precision.FP64, Precision.FP32, Precision.FP16,
              Precision.BF16, Precision.FP8_E4M3]


def spd(rng, n=48):
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


def spilled_matrix(rng, store, precision):
    """A matrix attached to ``store`` with every tile spilled to disk."""
    tm = TileMatrix.from_dense(spd(rng), TILE, precision)
    tm.attach_store(store)
    store.spill_all()
    assert not tm._tiles, "all tiles must be on disk for these tests"
    return tm


def flip_byte(path, offset):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


def a_slot(tm):
    """One (key, slot) pair of the matrix's spill index."""
    binding = tm._binding
    key = sorted(binding.index)[0]
    return key, binding.index[key]


class TestBitFlip:
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_flipped_byte_raises_typed_error(self, rng, precision):
        with TileStore() as store:
            tm = spilled_matrix(rng, store, precision)
            key, slot = a_slot(tm)
            flip_byte(slot.segment.path, slot.offset + slot.length // 2)
            with pytest.raises(StoreCorruptionError) as err:
                tm.to_dense()
            assert err.value.coords == key
            assert err.value.precision == precision
            assert "checksum mismatch" in err.value.reason
            assert str(slot.segment.path) == str(err.value.path)
            assert store.stats.crc_failures >= 1

    def test_undamaged_tiles_still_load(self, rng):
        with TileStore() as store:
            tm = spilled_matrix(rng, store, Precision.FP32)
            key, slot = a_slot(tm)
            flip_byte(slot.segment.path, slot.offset)
            good = [k for k in tm._binding.index if k != key]
            for i, j in good:  # the damage is contained to one tile
                assert tm.get_tile(i, j).data is not None


class TestTruncation:
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_truncated_segment_raises_typed_error(self, rng, precision):
        with TileStore() as store:
            tm = spilled_matrix(rng, store, precision)
            binding = tm._binding
            # truncate mid-slot of the *last* slot in the file
            key, slot = max(binding.index.items(),
                            key=lambda kv: kv[1].offset)
            os.truncate(slot.segment.path, slot.offset + slot.length // 2)
            with pytest.raises(StoreCorruptionError) as err:
                binding.load(key)
            assert err.value.coords == key
            assert "truncated slot" in err.value.reason


class TestMissingSegment:
    def test_unlinked_segment_raises_typed_error(self, rng):
        with TileStore() as store:
            tm = spilled_matrix(rng, store, Precision.FP64)
            key, slot = a_slot(tm)
            os.unlink(slot.segment.path)
            slot.segment.close()  # drop the mmap of the dead file
            with pytest.raises(StoreCorruptionError) as err:
                tm.to_dense()
            assert "segment read failed" in err.value.reason
            assert store.stats.io_retries >= 1  # the retry was attempted


class TestVerifyScrub:
    def test_clean_store_verifies_clean(self, rng):
        with TileStore() as store:
            tm = spilled_matrix(rng, store, Precision.FP32)
            report = store.verify()
            assert report.clean
            assert report.slots_checked == len(tm._binding.index)
            assert report.recovered == 0

    def test_resident_copy_repairs_corrupted_slot(self, rng):
        with TileStore() as store:
            tm = spilled_matrix(rng, store, Precision.FP32)
            ref = tm.to_dense().copy()  # faults everything back in
            key, slot = a_slot(tm)
            flip_byte(slot.segment.path, slot.offset + 1)
            report = store.verify()
            assert report.recovered == 1
            assert report.clean
            assert store.stats.recovered_spills == 1
            # the repaired slot round-trips bitwise again
            store.spill_all()
            np.testing.assert_array_equal(tm.to_dense(), ref)

    def test_unrepairable_slot_reported_not_raised(self, rng):
        with TileStore() as store:
            tm = spilled_matrix(rng, store, Precision.FP16)
            key, slot = a_slot(tm)
            flip_byte(slot.segment.path, slot.offset)
            report = store.verify()  # no resident copy: cannot repair
            assert not report.clean
            assert report.recovered == 0
            (error,) = report.errors
            assert error.coords == key
            assert isinstance(error, StoreCorruptionError)

    def test_verify_without_repair_only_reports(self, rng):
        with TileStore() as store:
            tm = spilled_matrix(rng, store, Precision.FP32)
            tm.to_dense()  # resident copies exist...
            key, slot = a_slot(tm)
            flip_byte(slot.segment.path, slot.offset + 2)
            report = store.verify(repair=False)
            assert not report.clean and report.recovered == 0  # ...unused
