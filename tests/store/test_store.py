"""Unit tests of the out-of-core tile store (repro.store)."""

import numpy as np
import pytest

from repro.precision.formats import Precision
from repro.store import (
    STORE_BUDGET_ENV,
    ResidencyManager,
    StoreStats,
    TileStore,
    parse_bytes,
    resolve_store_budget,
)
from repro.tiles.matrix import TileMatrix
from repro.tiles.serialize import encode_payload

TILE = 16
TILE_BYTES_FP64 = TILE * TILE * 8


def spd(rng, n=64):
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


@pytest.fixture
def matrix(rng):
    return TileMatrix.from_dense(spd(rng), TILE, Precision.FP64)


class TestBudgetParsing:
    def test_plain_and_suffixed(self):
        assert parse_bytes("1048576") == 1 << 20
        assert parse_bytes("64k") == 64 << 10
        assert parse_bytes("2M") == 2 << 20
        assert parse_bytes("1g") == 1 << 30
        assert parse_bytes("1.5m") == int(1.5 * (1 << 20))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes("  ")

    def test_resolve_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(STORE_BUDGET_ENV, "123")
        assert resolve_store_budget(999) == 999

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv(STORE_BUDGET_ENV, "4m")
        assert resolve_store_budget(None) == 4 << 20

    def test_resolve_unset(self, monkeypatch):
        monkeypatch.delenv(STORE_BUDGET_ENV, raising=False)
        assert resolve_store_budget(None) is None


class TestSpillReload:
    def test_bitwise_roundtrip_under_tight_budget(self, matrix):
        ref = matrix.to_dense().copy()
        with TileStore(budget_bytes=2 * TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            # re-reading the whole matrix cycles every tile through the
            # spill segment; values must be exact
            np.testing.assert_array_equal(matrix.to_dense(), ref)
            assert store.stats.spills > 0
            assert store.stats.reloads > 0
            matrix.detach_store()
        np.testing.assert_array_equal(matrix.to_dense(), ref)

    @pytest.mark.parametrize("precision", [
        Precision.FP64, Precision.FP32, Precision.FP16, Precision.BF16,
        Precision.FP8_E4M3, Precision.FP8_E5M2,
    ])
    def test_every_codec_roundtrips_bitwise(self, rng, precision):
        tm = TileMatrix.from_dense(spd(rng, 32), TILE, precision)
        ref = tm.to_dense().copy()
        with TileStore(budget_bytes=1) as store:  # evict everything
            tm.attach_store(store)
            np.testing.assert_array_equal(tm.to_dense(), ref)

    def test_clean_eviction_skips_rewrite(self, matrix):
        with TileStore(budget_bytes=TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            matrix.get_tile(0, 0)       # fault in (clean)
            spills_before = store.stats.spills
            matrix.get_tile(1, 1)       # evicts (0, 0), which is clean
            assert store.stats.spills == spills_before
            assert store.stats.drops > 0

    def test_segment_slot_reused_in_place(self, matrix):
        with TileStore(budget_bytes=TILE_BYTES_FP64) as store:
            binding = matrix.attach_store(store)._binding

            def cycle():
                # dirty (0, 0), then force it through a spill
                t = matrix.get_tile(0, 0)
                matrix.set_tile(0, 0, t.to_float64() + 1.0)
                matrix.get_tile(1, 1)

            cycle()
            segment = binding.index[(0, 0)].segment
            size_after_first = segment.size
            for _ in range(4):
                cycle()
            # same-size respills reuse their slot in place: the segment
            # does not grow by one payload per iteration
            assert segment.size == size_after_first

    def test_explicit_directory_left_in_place(self, matrix, tmp_path):
        directory = tmp_path / "spill"
        store = TileStore(directory=directory, budget_bytes=TILE_BYTES_FP64)
        matrix.attach_store(store)
        matrix.to_dense()
        assert any(directory.glob("seg-*.bin"))
        store.close()
        assert directory.exists()
        assert not any(directory.glob("seg-*.bin"))

    def test_temporary_directory_removed_on_close(self, matrix):
        store = TileStore(budget_bytes=TILE_BYTES_FP64)
        directory = store.directory
        matrix.attach_store(store)
        matrix.to_dense()
        store.close()
        assert not directory.exists()


class TestResidencyAccounting:
    def test_peak_stays_under_budget_for_streamed_writes(self, rng):
        budget = 3 * TILE_BYTES_FP64
        with TileStore(budget_bytes=budget) as store:
            tm = TileMatrix.empty(64, 64, TILE, Precision.FP64)
            tm.attach_store(store)
            for i in range(4):
                for j in range(4):
                    tm.set_tile(i, j, rng.normal(size=(TILE, TILE)))
            assert store.stats.peak_resident_bytes <= budget
            assert store.stats.resident_bytes <= budget

    def test_nbytes_is_logical_resident_is_physical(self, matrix):
        logical = matrix.nbytes()
        with TileStore(budget_bytes=TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            assert matrix.nbytes() == logical
            assert matrix.resident_nbytes() <= TILE_BYTES_FP64
            assert matrix.resident_nbytes() < logical

    def test_footprint_by_precision_includes_spilled(self, matrix):
        before = matrix.footprint_by_precision()
        with TileStore(budget_bytes=TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            assert matrix.footprint_by_precision() == before

    def test_tile_precision_of_spilled_tile(self, rng):
        tm = TileMatrix.from_dense(spd(rng, 32), TILE, Precision.FP16)
        with TileStore(budget_bytes=1) as store:
            tm.attach_store(store)
            assert tm.tile_precision(1, 1) is Precision.FP16

    def test_norm_faults_spilled_tiles(self, matrix):
        ref = matrix.norm("fro")
        with TileStore(budget_bytes=TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            assert matrix.norm("fro") == ref


class TestPinning:
    def test_pinned_tile_survives_pressure(self, matrix):
        with TileStore(budget_bytes=2 * TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            binding = matrix._binding
            tile = matrix.get_tile(0, 0)
            store.pin([(binding, (0, 0))])
            for d in range(4):
                matrix.get_tile(d, d)  # pressure
            assert matrix._tiles.get((0, 0)) is tile  # never evicted
            store.unpin([(binding, (0, 0))])
            matrix.get_tile(3, 3)
            matrix.get_tile(2, 2)
            assert (0, 0) not in matrix._tiles  # evictable again

    def test_all_pinned_overflows_budget_but_counts_it(self, matrix):
        with TileStore(budget_bytes=TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            binding = matrix._binding
            deps = [(binding, (d, d)) for d in range(4)]
            store.pin(deps)
            for d in range(4):
                matrix.get_tile(d, d)
            assert store.stats.resident_bytes > store.budget_bytes
            assert store.stats.budget_overflows > 0
            store.unpin(deps)

    def test_pin_before_residency_sticks(self, matrix):
        with TileStore(budget_bytes=2 * TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            binding = matrix._binding
            # pin while the tile is still spilled
            store.pin([(binding, (2, 2))])
            tile = matrix.get_tile(2, 2)
            matrix.get_tile(0, 0)
            matrix.get_tile(1, 1)
            assert matrix._tiles.get((2, 2)) is tile
            store.unpin([(binding, (2, 2))])


class TestSharingAndAdoption:
    def test_shallow_copy_shares_slots_and_diverges_on_write(self, matrix):
        ref = matrix.to_dense().copy()
        with TileStore(budget_bytes=2 * TILE_BYTES_FP64) as store:
            matrix.attach_store(store)
            dup = matrix.shallow_copy()
            dup.set_tile(0, 0, np.zeros((TILE, TILE)))
            np.testing.assert_array_equal(matrix.to_dense(), ref)
            changed = dup.to_dense()
            assert np.array_equal(changed[TILE:, :], ref[TILE:, :])
            assert np.all(changed[:TILE, :TILE] == 0.0)

    def test_unpacked_lower_of_spilled_symmetric(self, rng):
        tm = TileMatrix.from_dense(spd(rng), TILE, Precision.FP32,
                                   symmetric=True)
        ref = np.tril(tm.to_dense())
        with TileStore(budget_bytes=2 * TILE * TILE * 4) as store:
            tm.attach_store(store)
            work = tm.unpacked_lower()
            assert work.store is store
            np.testing.assert_array_equal(np.tril(work.to_dense()), ref)

    def test_adopt_loads_lazily(self, rng):
        data = rng.normal(size=(TILE, TILE))
        raw = encode_payload(np.asarray(data, dtype=np.float32),
                             Precision.FP32)
        with TileStore() as store:
            tm = TileMatrix.empty(TILE, TILE, TILE, Precision.FP32)
            tm.attach_store(store)
            tm._binding.adopt((0, 0), raw, Precision.FP32)
            assert tm.resident_nbytes() == 0
            assert tm.has_tile_data(0, 0)
            np.testing.assert_array_equal(
                tm.get_tile(0, 0).to_float64(),
                np.asarray(data, dtype=np.float32).astype(np.float64))

    def test_spill_all_then_reload(self, matrix):
        ref = matrix.to_dense().copy()
        with TileStore() as store:  # no budget: spill only on request
            matrix.attach_store(store)
            store.spill_all()
            assert matrix.resident_nbytes() == 0
            np.testing.assert_array_equal(matrix.to_dense(), ref)


class TestResidencyManager:
    def test_lru_order_and_touch(self):
        m = ResidencyManager(budget_bytes=100)
        m.add((0, (0, 0)), 40)
        m.add((0, (0, 1)), 40)
        m.touch((0, (0, 0)))  # (0,1) becomes LRU
        assert m.victims_to_fit(40) == [(0, (0, 1))]

    def test_pinned_skipped(self):
        m = ResidencyManager(budget_bytes=100)
        m.add((0, (0, 0)), 60)
        m.add((0, (0, 1)), 40)
        m.pin((0, (0, 0)))
        assert m.victims_to_fit(40) == [(0, (0, 1))]

    def test_no_candidates_counts_overflow(self):
        m = ResidencyManager(budget_bytes=100)
        m.add((0, (0, 0)), 100)
        m.pin((0, (0, 0)))
        assert m.victims_to_fit(50) is None
        assert m.stats.budget_overflows == 1

    def test_stats_snapshot_is_stable(self):
        m = ResidencyManager(budget_bytes=100)
        m.add((0, (0, 0)), 10)
        snap = m.stats.snapshot()
        m.add((0, (0, 1)), 10)
        assert snap.resident_bytes == 10
        assert isinstance(snap, StoreStats)
        assert snap.to_dict()["resident_bytes"] == 10

    def test_remove_binding_purges(self):
        m = ResidencyManager(budget_bytes=100)
        m.add((0, (0, 0)), 10)
        m.add((1, (0, 0)), 20)
        m.remove_binding(0)
        assert m.stats.resident_bytes == 20
