"""Deterministic, seeded fault injection.

A :class:`FaultPlan` is a list of :class:`FaultSite` specs evaluated at
*named injection sites* threaded through the stack:

==================== =====================================================
site                 where it fires
==================== =====================================================
``task-body``        in the scheduler, immediately before a task body runs
``worker-stall``     same spot, as a sleep (simulates a slow/stuck worker)
``segment-read``     in ``_Segment.read`` (raises ``InjectedIOError``)
``segment-write``    in ``_Segment.write`` (raises ``InjectedIOError``)
``corrupt-read``     in ``_Segment.read`` — flips one byte of the payload
``slow-read``        in ``_Segment.read`` — sleeps ``delay_s``
``serve-dispatch``   in the serving dispatcher, before ``predict_many``
``worker-kill``      in a process-backend worker, before a task body —
                     hard-kills the worker process (``os._exit``)
==================== =====================================================

Fault schedules are *counter*-based, not clock- or random-module-based:
a site spec fires on deterministic occurrence numbers (``every``/
``after``/``times``) or via a seeded hash of the occurrence counter
(``rate``), so the same plan against the same workload injects the same
faults — the property the bitwise-identity chaos tests lean on.  All
counters are guarded by one lock; plans are safe to share across the
scheduler's worker threads and the store's prefetch thread.

Plans come from two places, checked in order:

1. an explicitly installed plan (:func:`install_plan` or the
   :func:`fault_plan` context manager — tests use this), or
2. the ``REPRO_FAULTS`` environment variable, parsed once per distinct
   value, e.g.::

       REPRO_FAULTS="seed=42;task-body:raise:every=97;corrupt-read:corrupt:times=2"

Sites are zero-cost when no plan is active (one global read).
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass

from repro.resilience.errors import InjectedFault, InjectedIOError

__all__ = [
    "FAULTS_ENV",
    "SITE_TASK_BODY",
    "SITE_WORKER_STALL",
    "SITE_SEGMENT_READ",
    "SITE_SEGMENT_WRITE",
    "SITE_CORRUPT_READ",
    "SITE_SLOW_READ",
    "SITE_SERVE_DISPATCH",
    "SITE_WORKER_KILL",
    "FaultSite",
    "FaultPlan",
    "parse_faults",
    "active_plan",
    "install_plan",
    "clear_plan",
    "fault_plan",
    "no_faults",
    "inject",
    "corrupt_bytes",
    "reset_child_state",
]

FAULTS_ENV = "REPRO_FAULTS"

SITE_TASK_BODY = "task-body"
SITE_WORKER_STALL = "worker-stall"
SITE_SEGMENT_READ = "segment-read"
SITE_SEGMENT_WRITE = "segment-write"
SITE_CORRUPT_READ = "corrupt-read"
SITE_SLOW_READ = "slow-read"
SITE_SERVE_DISPATCH = "serve-dispatch"
SITE_WORKER_KILL = "worker-kill"

KINDS = ("raise", "oserror", "stall", "slow", "corrupt")


def _hash01(seed: int, tag: str, n: int) -> float:
    """Deterministic uniform-ish value in [0, 1) from (seed, tag, n)."""
    h = zlib.crc32(f"{seed}:{tag}:{n}".encode())
    return (h & 0xFFFFFFFF) / 2.0 ** 32


@dataclass(frozen=True)
class FaultSite:
    """One injection spec: *where* (site/match) and *when* (schedule).

    The schedule fires on eligible occurrence numbers ``n`` (1-based,
    per spec): ``n > after`` and ``(n - after) % every == 0``, at most
    ``times`` firings total.  When ``rate`` is given it replaces the
    modular schedule with a seeded hash test (still deterministic for a
    fixed plan seed and occurrence sequence).
    """

    site: str
    kind: str = "raise"
    every: int = 1
    times: int | None = None
    after: int = 0
    match: str | None = None
    rate: float | None = None
    delay_s: float = 0.002
    transient: bool = True

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("FaultSite.site must be a non-empty string")
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.every < 1:
            raise ValueError("FaultSite.every must be >= 1")
        if self.times is not None and self.times < 0:
            raise ValueError("FaultSite.times must be >= 0")
        if self.after < 0:
            raise ValueError("FaultSite.after must be >= 0")
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError("FaultSite.rate must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("FaultSite.delay_s must be >= 0")


class FaultPlan:
    """A seeded, thread-safe schedule of :class:`FaultSite` specs.

    ``fired`` / ``fired_for`` expose how many faults each spec actually
    injected — chaos tests assert coverage (">=1 fault in the Factor
    phase") through these counters rather than timing.
    """

    def __init__(self, sites, seed: int = 0) -> None:
        self.sites = tuple(sites)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._seen = [0] * len(self.sites)
        self._fired = [0] * len(self.sites)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, sites={list(self.sites)!r})"

    def fire(self, site: str, key: object = None) -> FaultSite | None:
        """Count an occurrence of ``site``; return the spec that fires.

        Every spec matching (site, key) advances its own occurrence
        counter; the first whose schedule hits wins.
        """
        winner = None
        with self._lock:
            for idx, spec in enumerate(self.sites):
                if spec.site != site:
                    continue
                if spec.match is not None and (
                        key is None or spec.match not in str(key)):
                    continue
                n = self._seen[idx] = self._seen[idx] + 1
                if winner is not None:
                    continue
                if spec.times is not None and self._fired[idx] >= spec.times:
                    continue
                if spec.rate is not None:
                    hit = _hash01(self.seed, f"{idx}:{site}", n) < spec.rate
                else:
                    hit = n > spec.after and (n - spec.after) % spec.every == 0
                if hit:
                    self._fired[idx] += 1
                    winner = spec
        return winner

    def inject(self, site: str, key: object = None) -> None:
        """Evaluate ``site``; raise or stall if a spec fires."""
        spec = self.fire(site, key)
        if spec is None:
            return
        if spec.kind in ("stall", "slow"):
            time.sleep(spec.delay_s)
            return
        if spec.kind == "oserror":
            raise InjectedIOError(site, key)
        raise InjectedFault(site, key, transient=spec.transient)

    def corrupt(self, site: str, data: bytes, key: object = None) -> bytes:
        """Return ``data``, with one byte flipped if a spec fires."""
        spec = self.fire(site, key)
        if spec is None or not data:
            return data
        n = sum(self._fired)
        pos = int(_hash01(self.seed, f"pos:{site}", n) * len(data))
        flipped = bytearray(data)
        flipped[pos] ^= 0xFF
        return bytes(flipped)

    @property
    def fired(self) -> int:
        """Total faults injected so far across all specs."""
        with self._lock:
            return sum(self._fired)

    def fired_for(self, site: str) -> int:
        """Faults injected so far at a given site name."""
        with self._lock:
            return sum(f for spec, f in zip(self.sites, self._fired)
                       if spec.site == site)

    def occurrences(self, site: str) -> int:
        """Occurrence count (fired or not) seen at a given site name."""
        with self._lock:
            return max((s for spec, s in zip(self.sites, self._seen)
                        if spec.site == site), default=0)


def parse_faults(text: str) -> FaultPlan:
    """Parse the ``REPRO_FAULTS`` grammar into a :class:`FaultPlan`.

    ``seed=42;site:kind:opt=val:...;site2:kind2`` — entries separated
    by ``;``, options by ``:``.  Options: ``every``, ``times``,
    ``after``, ``match``, ``rate``, ``delay`` (seconds) and
    ``transient`` (0/1).
    """
    seed = 0
    sites: list[FaultSite] = []
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        if entry.startswith("seed="):
            seed = int(entry[len("seed="):])
            continue
        parts = entry.split(":")
        site = parts[0].strip()
        kind = parts[1].strip() if len(parts) > 1 and parts[1].strip() else "raise"
        kwargs: dict[str, object] = {}
        for opt in parts[2:]:
            opt = opt.strip()
            if not opt:
                continue
            if "=" not in opt:
                raise ValueError(
                    f"malformed {FAULTS_ENV} option {opt!r} in {entry!r}")
            name, _, value = opt.partition("=")
            name = name.strip()
            value = value.strip()
            if name in ("every", "times", "after"):
                kwargs[name] = int(value)
            elif name == "rate":
                kwargs[name] = float(value)
            elif name == "delay":
                kwargs["delay_s"] = float(value)
            elif name == "transient":
                kwargs["transient"] = value not in ("0", "false", "no")
            elif name == "match":
                kwargs["match"] = value
            else:
                raise ValueError(
                    f"unknown {FAULTS_ENV} option {name!r} in {entry!r}")
        sites.append(FaultSite(site=site, kind=kind, **kwargs))
    return FaultPlan(sites, seed=seed)


_UNSET = object()
_override: object = _UNSET
_env_text: str | None = None
_env_plan: FaultPlan | None = None
_env_lock = threading.Lock()


def _plan_from_env() -> FaultPlan | None:
    """The plan parsed from ``REPRO_FAULTS``, cached per distinct value.

    The cache keeps the plan's *counters* alive across calls (a chaos
    CI run accumulates occurrences over the whole test session) while
    still noticing monkeypatched env changes.
    """
    global _env_text, _env_plan
    text = os.environ.get(FAULTS_ENV)
    with _env_lock:
        if text != _env_text:
            _env_text = text
            _env_plan = parse_faults(text) if text else None
        return _env_plan


def active_plan() -> FaultPlan | None:
    """The plan injection sites consult; ``None`` disables injection."""
    if _override is not _UNSET:
        return _override  # type: ignore[return-value]
    return _plan_from_env()


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` for this process, shadowing ``REPRO_FAULTS``.

    ``install_plan(None)`` disables injection entirely (including any
    env-configured plan) until :func:`clear_plan`.
    """
    global _override
    _override = plan


def clear_plan() -> None:
    """Drop any installed plan; ``REPRO_FAULTS`` (if set) applies again."""
    global _override
    _override = _UNSET


@contextmanager
def fault_plan(plan: FaultPlan | None):
    """Scope an installed plan; restores the previous override on exit."""
    global _override
    previous = _override
    _override = plan
    try:
        yield plan
    finally:
        _override = previous


def no_faults():
    """Scope with injection disabled (shadows env plans too)."""
    return fault_plan(None)


def inject(site: str, key: object = None) -> None:
    """Module-level injection site: no-op unless a plan is active."""
    plan = active_plan()
    if plan is not None:
        plan.inject(site, key)


def corrupt_bytes(site: str, data: bytes, key: object = None) -> bytes:
    """Module-level corruption site: identity unless a plan is active."""
    plan = active_plan()
    if plan is not None:
        return plan.corrupt(site, data, key)
    return data


def reset_child_state() -> None:
    """Reinitialize module state in a freshly forked worker process.

    A ``fork`` can capture ``_env_lock`` held by another thread (the
    store's prefetch thread injects segment faults under it) and plan
    objects whose internal locks are likewise mid-acquire — either
    would deadlock the child on its first injection site.  Process-
    backend workers call this from their bootstrap: a fresh lock, no
    cached env plan (the child re-parses ``REPRO_FAULTS`` with its own
    counters) and no installed override (``install_plan`` is per
    process by design — worker-side injection is env-driven only).
    """
    global _override, _env_text, _env_plan, _env_lock
    _env_lock = threading.Lock()
    _override = _UNSET
    _env_text = None
    _env_plan = None
