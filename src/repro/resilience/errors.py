"""Typed failure taxonomy of the resilience layer.

Every layer of the stack surfaces *permanent* failures through one of
the exception types here, each carrying enough context (task name/tag,
tile coordinates, queue depths) to diagnose a multi-hour run post
mortem without re-running it:

``TaskGroupError``
    Aggregate failure of a task-graph drain: **every** failed task is
    reported (name, uid, tag, retries taken, underlying error), along
    with which tasks completed and which never ran — replacing the
    historical behaviour of re-raising an arbitrary first failure.
``TaskTimeoutError``
    A task exceeded the scheduler's per-task timeout (stalled worker).
``WorkerCrashError``
    A process-backend worker died mid-task (killed, OOM'd, crashed).
    *Transient*: the coordinator respawns the worker and retries the
    task under the configured retry policy.
``RemoteTaskError``
    A worker-side exception that could not be pickled back verbatim;
    carries the original type name, message, traceback text and
    ``transient`` marker.
``StoreCorruptionError``
    A spill slot failed its integrity check on reload: truncated
    segment, checksum mismatch, or unreadable file — named by matrix,
    tile coordinates, precision and segment path.
``ServiceOverloadedError``
    Admission control shed a request because the serve queue is full.
``DeadlineExceededError``
    A serve request's deadline expired before (or while) it was queued.

Transient faults — injected or real — are modelled by
``InjectedFault`` / ``InjectedIOError`` plus the :func:`is_transient`
predicate the retry machinery consults.  This module is deliberately a
leaf: stdlib-only, importable from every layer without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InjectedFault",
    "InjectedIOError",
    "TaskFailure",
    "TaskGroupError",
    "TaskTimeoutError",
    "WorkerCrashError",
    "RemoteTaskError",
    "StoreCorruptionError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "is_transient",
]


class InjectedFault(RuntimeError):
    """A fault raised by a :class:`~repro.resilience.faults.FaultPlan` site."""

    def __init__(self, site: str, key: object = None,
                 transient: bool = True) -> None:
        self.site = site
        self.key = key
        self.transient = transient
        flavor = "transient" if transient else "permanent"
        super().__init__(
            f"injected {flavor} fault at site {site!r}"
            + (f" (key={key!r})" if key is not None else ""))

    def __reduce__(self):
        # Default exception pickling re-calls __init__ with the message
        # string, which would reset `transient` to True; process-backend
        # workers ship these over a pipe, so preserve the real fields.
        return (InjectedFault, (self.site, self.key, self.transient))


class InjectedIOError(OSError):
    """An injected I/O fault (``kind="oserror"`` sites)."""

    def __init__(self, site: str, key: object = None) -> None:
        self.site = site
        self.key = key
        self.transient = True
        super().__init__(
            f"injected I/O fault at site {site!r}"
            + (f" (key={key!r})" if key is not None else ""))

    def __reduce__(self):
        return (InjectedIOError, (self.site, self.key))


def is_transient(exc: BaseException) -> bool:
    """Is ``exc`` worth retrying?

    Transient means: an explicitly transient injected fault, a plain
    I/O error (the classic supercomputer filesystem hiccup), or an
    aggregate whose every member is itself transient.  Typed permanent
    failures (``StoreCorruptionError``, ``TaskTimeoutError``,
    numerical errors) are *not* transient — retrying them re-fails.
    """
    marker = getattr(exc, "transient", None)
    if marker is not None:
        return bool(marker)
    if isinstance(exc, (StoreCorruptionError, TaskTimeoutError)):
        return False
    return isinstance(exc, OSError)


class TaskTimeoutError(RuntimeError):
    """A task exceeded the scheduler's per-task timeout."""

    def __init__(self, task_name: str, task_uid: int, tag: object,
                 timeout_s: float, elapsed_s: float) -> None:
        self.task_name = task_name
        self.task_uid = task_uid
        self.tag = tag
        self.timeout_s = timeout_s
        self.elapsed_s = elapsed_s
        super().__init__(
            f"task {task_name!r}#{task_uid} (tag={tag!r}) exceeded the "
            f"per-task timeout: {elapsed_s:.3f}s > {timeout_s:.3f}s")


class WorkerCrashError(RuntimeError):
    """A process-backend worker died while executing a task.

    A dead worker is a *transient* fault in this taxonomy — the
    machine-level analogue of a filesystem hiccup: the coordinator
    respawns the worker process and retries the task elsewhere, and
    only repeated crashes surface as a permanent
    :class:`TaskGroupError`.
    """

    transient = True

    def __init__(self, worker_id: int, task_name: str = "?",
                 task_uid: object = None, exitcode: object = None) -> None:
        self.worker_id = worker_id
        self.task_name = task_name
        self.task_uid = task_uid
        self.exitcode = exitcode
        super().__init__(
            f"worker {worker_id} died while executing task "
            f"{task_name!r}#{task_uid}"
            + (f" (exitcode={exitcode})" if exitcode is not None else ""))

    def __reduce__(self):
        return (WorkerCrashError, (self.worker_id, self.task_name,
                                   self.task_uid, self.exitcode))


class RemoteTaskError(RuntimeError):
    """A worker exception that could not be shipped back verbatim.

    Preserves the pieces diagnosis needs — original type name, message,
    remote traceback text — and the ``transient`` marker so the retry
    machinery classifies it exactly as the worker would have.
    """

    def __init__(self, original_type: str, message: str,
                 transient: bool = False, remote_traceback: str = "") -> None:
        self.original_type = original_type
        self.message = message
        self.transient = transient
        self.remote_traceback = remote_traceback
        super().__init__(f"{original_type}: {message}")

    def __reduce__(self):
        return (RemoteTaskError, (self.original_type, self.message,
                                  self.transient, self.remote_traceback))


@dataclass(frozen=True)
class TaskFailure:
    """One failed task inside a :class:`TaskGroupError`."""

    task: object
    error: BaseException
    retries: int = 0

    def describe(self) -> str:
        task = self.task
        name = getattr(task, "name", "?")
        uid = getattr(task, "uid", "?")
        tag = getattr(task, "tag", None)
        suffix = f" after {self.retries} retr" + (
            "y" if self.retries == 1 else "ies") if self.retries else ""
        return (f"task {name!r}#{uid} (tag={tag!r}){suffix}: "
                f"{type(self.error).__name__}: {self.error}")


class TaskGroupError(RuntimeError):
    """Aggregate failure of a task-graph drain.

    Attributes
    ----------
    failures:
        One :class:`TaskFailure` per failed task (name, uid, tag, the
        retries taken and the underlying exception) — *all* of them,
        not just whichever thread lost the race.
    completed:
        Tasks that finished successfully before the drain ended; their
        results are valid, their events are in :attr:`trace`, and a
        resumed run must not re-execute them.
    unfinished:
        Failed tasks plus every task left blocked or never started, in
        insertion order — exactly the subgraph a follow-up
        :meth:`~repro.runtime.runtime.Runtime.run` re-drains.
    trace:
        The partial :class:`~repro.runtime.trace.ExecutionTrace` of the
        completed tasks.
    """

    _LISTED = 8

    def __init__(self, failures, completed=(), unfinished=(),
                 trace=None) -> None:
        self.failures = tuple(failures)
        self.completed = tuple(completed)
        self.unfinished = tuple(unfinished)
        self.trace = trace
        lines = [f.describe() for f in self.failures[:self._LISTED]]
        more = len(self.failures) - self._LISTED
        if more > 0:
            lines.append(f"... and {more} more")
        total = len(self.completed) + len(self.unfinished)
        super().__init__(
            f"{len(self.failures)} of {total} task(s) failed "
            f"({len(self.completed)} completed, "
            f"{len(self.unfinished)} unfinished):\n  " + "\n  ".join(lines))
        if self.failures:
            self.__cause__ = self.failures[0].error

    def matches(self, exc_type) -> bool:
        """True when every failure is an instance of ``exc_type``."""
        return bool(self.failures) and all(
            isinstance(f.error, exc_type) for f in self.failures)

    @property
    def transient(self) -> bool:
        """True when every underlying failure is transient."""
        return bool(self.failures) and all(
            is_transient(f.error) for f in self.failures)


class StoreCorruptionError(RuntimeError):
    """A spill slot failed its integrity check on reload.

    Carries the tile's identity (matrix descriptor, grid coordinates,
    storage precision) and the segment location so corruption reports
    name *what* was lost, not just that a reshape crashed.
    """

    def __init__(self, matrix: str, coords: tuple[int, int],
                 precision: object, path: object, reason: str) -> None:
        self.matrix = matrix
        self.coords = coords
        self.precision = precision
        self.path = path
        self.reason = reason
        super().__init__(
            f"corrupted spill slot for tile {coords} of {matrix} "
            f"(precision={getattr(precision, 'value', precision)}, "
            f"segment={path}): {reason}")


class ServiceOverloadedError(RuntimeError):
    """Admission control shed a request: the serve queue is full."""

    def __init__(self, queue_depth: int, max_queue_depth: int) -> None:
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
        super().__init__(
            f"serve queue is full ({queue_depth} pending requests, "
            f"max_queue_depth={max_queue_depth}); request shed")


class DeadlineExceededError(TimeoutError):
    """A serve request's deadline expired before it was executed."""

    #: ``TimeoutError`` is an ``OSError`` (hence transient by default);
    #: an expired deadline is permanent — the caller already gave up.
    transient = False

    def __init__(self, deadline_s: float, waited_s: float) -> None:
        self.deadline_s = deadline_s
        self.waited_s = waited_s
        super().__init__(
            f"request deadline of {deadline_s:.3f}s expired after "
            f"{waited_s:.3f}s in queue; request was never dispatched")
