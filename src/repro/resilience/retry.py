"""Retry policy with capped exponential backoff and deterministic jitter.

Tile task bodies are pure functions from quantized inputs to quantized
outputs, so re-running one after a transient fault is always safe and
always bitwise-reproducible — the only question is pacing.  The policy
here uses capped exponential backoff whose jitter comes from a seeded
hash of (retry key, attempt), not from ``random``: two runs of the same
workload under the same fault plan back off identically, keeping chaos
runs deterministic end to end.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

from repro.resilience.errors import is_transient

__all__ = ["RETRIES_ENV", "RetryPolicy", "resolve_retry_policy"]

RETRIES_ENV = "REPRO_TASK_RETRIES"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how fast, to re-run a transiently failed task.

    ``max_retries`` bounds re-executions *per task* (0 disables retry).
    The delay before retry ``attempt`` (0-based) is
    ``min(max_delay_s, base_delay_s * 2**attempt)`` scaled down by up
    to ``jitter`` via a seeded hash of the retry key — deterministic,
    but decorrelated across tasks so a burst of transient faults does
    not retry in lockstep.
    """

    max_retries: int = 2
    base_delay_s: float = 0.001
    max_delay_s: float = 0.050
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def retryable(self, exc: BaseException) -> bool:
        """Retry only transient faults; permanent errors surface at once."""
        return is_transient(exc)

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before 0-based retry ``attempt`` of retry-key ``key``."""
        raw = min(self.max_delay_s, self.base_delay_s * 2.0 ** attempt)
        h = zlib.crc32(f"{self.seed}:{key}:{attempt}".encode()) & 0xFFFFFFFF
        return raw * (1.0 - self.jitter * (h / 2.0 ** 32))


def resolve_retry_policy(task_retries: int | None = None,
                         env: str | None = None) -> RetryPolicy | None:
    """Resolve the effective retry policy for a scheduler.

    Explicit ``task_retries`` wins; otherwise ``REPRO_TASK_RETRIES``
    applies (so a chaos CI job can switch retries on suite-wide);
    otherwise ``None`` — fail-fast, the historical behaviour.
    """
    if task_retries is not None:
        return RetryPolicy(max_retries=int(task_retries))
    text = env if env is not None else os.environ.get(RETRIES_ENV)
    if text:
        return RetryPolicy(max_retries=max(0, int(text)))
    return None
