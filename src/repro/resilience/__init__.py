"""repro.resilience: deterministic fault injection and fault tolerance.

The failure model for the whole stack lives here: a seeded
:class:`FaultPlan` drives named injection sites threaded through the
runtime, the tile store and the serving dispatcher; a
:class:`RetryPolicy` paces re-execution of transiently failed (pure)
task bodies; and the typed error taxonomy (:class:`TaskGroupError`,
:class:`StoreCorruptionError`, :class:`ServiceOverloadedError`, ...)
carries task/tile/request context on every permanent failure.

See the "Failure model & recovery" section of ``docs/architecture.md``.
"""

from repro.resilience.errors import (
    DeadlineExceededError,
    InjectedFault,
    InjectedIOError,
    RemoteTaskError,
    ServiceOverloadedError,
    StoreCorruptionError,
    TaskFailure,
    TaskGroupError,
    TaskTimeoutError,
    WorkerCrashError,
    is_transient,
)
from repro.resilience.faults import (
    FAULTS_ENV,
    SITE_CORRUPT_READ,
    SITE_SEGMENT_READ,
    SITE_SEGMENT_WRITE,
    SITE_SERVE_DISPATCH,
    SITE_SLOW_READ,
    SITE_TASK_BODY,
    SITE_WORKER_KILL,
    SITE_WORKER_STALL,
    FaultPlan,
    FaultSite,
    active_plan,
    clear_plan,
    corrupt_bytes,
    fault_plan,
    inject,
    install_plan,
    no_faults,
    parse_faults,
    reset_child_state,
)
from repro.resilience.retry import RETRIES_ENV, RetryPolicy, resolve_retry_policy

__all__ = [
    "DeadlineExceededError",
    "InjectedFault",
    "InjectedIOError",
    "RemoteTaskError",
    "ServiceOverloadedError",
    "StoreCorruptionError",
    "TaskFailure",
    "TaskGroupError",
    "TaskTimeoutError",
    "WorkerCrashError",
    "is_transient",
    "FAULTS_ENV",
    "RETRIES_ENV",
    "SITE_CORRUPT_READ",
    "SITE_SEGMENT_READ",
    "SITE_SEGMENT_WRITE",
    "SITE_SERVE_DISPATCH",
    "SITE_SLOW_READ",
    "SITE_TASK_BODY",
    "SITE_WORKER_KILL",
    "SITE_WORKER_STALL",
    "FaultPlan",
    "FaultSite",
    "RetryPolicy",
    "active_plan",
    "clear_plan",
    "corrupt_bytes",
    "fault_plan",
    "inject",
    "install_plan",
    "no_faults",
    "parse_faults",
    "reset_child_state",
    "resolve_retry_policy",
]
