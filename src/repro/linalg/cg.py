"""Tile-native mixed-precision preconditioned conjugate gradients.

The hyperparameter sweeps of the paper's GWAS workflow solve
``(K + alpha*I) w = y`` for a whole grid of regularizations against
*one* kernel matrix.  The direct path pays one tiled Cholesky
factorization per alpha — O(n^3/3) each — even though the operator
changes only on its diagonal.  This module implements the factor-once
alternative of ROADMAP item 4b:

* factorize ``K + alpha_ref*I`` **once** in the session's low-precision
  tile mosaic (the existing :func:`~repro.linalg.cholesky.cholesky`),
* then solve every other alpha with preconditioned CG, using that
  factor as the preconditioner (applied by the existing tiled
  :func:`~repro.linalg.solve.solve_cholesky` in the working precision)
  while the residuals and search directions iterate in FP64.

Because ``M = L L^T ~= K + alpha_ref*I``, the preconditioned operator
``M^{-1}(K + alpha*I)`` has eigenvalues ``(lam + alpha)/(lam +
alpha_ref)`` clustered within ``[min(1, a/a_ref), max(1, a/a_ref)]`` —
CG converges in a handful of iterations for any alpha near the
reference, each iteration costing O(n^2) instead of O(n^3).

The kernel matvec runs entirely on the TileMatrix/Runtime stack: one
task per tile *row* (``acc = alpha*v_i + sum_j K[i,j] @ v_j``), with
picklable :class:`~repro.parallel.descriptors.CgMatvecSpec` descriptors
so the serial, threaded and process backends all drive it bitwise
identically, and ``tile_deps`` declared per stored tile so store-backed
kernels stay within their residency budget.  The per-row accumulation
order is fixed (ascending ``j``), which makes the whole convergence
history deterministic across execution modes, worker counts and store
budgets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.linalg.cholesky import CholeskyResult
from repro.linalg.kernels import gemm_flops
from repro.linalg.solve import solve_cholesky
from repro.parallel.descriptors import CgMatvecSpec, ProcessTaskSpec, TileInput
from repro.precision.formats import Precision
from repro.resilience.errors import TaskGroupError
from repro.runtime.runtime import Runtime
from repro.runtime.task import AccessMode
from repro.tiles.matrix import TileMatrix

__all__ = [
    "CGResult",
    "SOLVER_ENV",
    "SOLVER_MODES",
    "cg_solve",
    "kernel_matvec",
    "resolve_solver",
]

#: Environment override for the session solver, mirroring
#: ``REPRO_WORKERS`` / ``REPRO_EXECUTION`` — CI re-runs the whole suite
#: under ``REPRO_SOLVER=cg`` without touching call sites.
SOLVER_ENV = "REPRO_SOLVER"

#: Solver routes accepted by :func:`resolve_solver` and
#: ``KRRConfig.solver``.
SOLVER_MODES = ("direct", "cg")


def resolve_solver(solver: str | None = None) -> str:
    """Resolve a solver route (explicit > ``REPRO_SOLVER`` > direct)."""
    mode = solver or os.environ.get(SOLVER_ENV) or "direct"
    if mode not in SOLVER_MODES:
        raise ValueError(
            f"solver must be one of {SOLVER_MODES}, got {mode!r}")
    return mode


@dataclass
class CGResult:
    """Solution and convergence history of one preconditioned CG solve.

    Attributes
    ----------
    x:
        FP64 solution panel (one column per right-hand side).
    iterations:
        Matvec count actually performed.
    converged:
        True when every column's relative residual reached ``tol``.
    residual_norms:
        Per-iteration maximum (over columns) of the relative residual
        ``||b_j - A x_j|| / ||b_j||`` — recorded *before* the
        iteration's update, so ``residual_norms[0]`` is 1.0 for a zero
        initial guess.  Deterministic across execution modes.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


# ----------------------------------------------------------------------
# the DAG matvec
# ----------------------------------------------------------------------
def _row_body(kernel: TileMatrix, i: int, alpha: float,
              row: slice, nt: int):
    """Closure computing ``alpha*v_i + sum_j K[i,j] @ v_j`` for row ``i``.

    The loop order (ascending ``j``) and operation order (``acc = acc +
    tile @ block``) are the bitwise contract shared with
    :class:`~repro.parallel.descriptors.CgMatvecSpec`.

    Symmetric upper-triangle reads fetch the *stored* lower tile and
    multiply through a transposed no-copy view — the same F-ordered
    float64 layout ``get_tile``'s mirrored copy would expose, so the
    BLAS call (and therefore the result) is bitwise unchanged while the
    per-access tile copy disappears from the iteration critical path.
    """
    layout = kernel.layout
    # static per row: column slices and stored-key/transpose pairs
    # (get_tile still runs per execution so spilled tiles fault in)
    cols = [(layout.tile_slice(i, j)[1], *kernel._stored_key(i, j))
            for j in range(nt)]

    def body(v, _out=None):
        acc = alpha * v[row]
        for cs, key, transposed in cols:
            t64 = kernel.get_tile(*key).float64_values()
            if transposed:
                t64 = t64.T
            acc = acc + t64 @ v[cs]
        return acc

    return body


def kernel_matvec(kernel: TileMatrix, v: np.ndarray, alpha: float = 0.0,
                  runtime: Runtime | None = None,
                  phase: str = "solve") -> np.ndarray:
    """``(K + alpha*I) @ v`` on a tiled kernel, in FP64.

    With ``runtime`` the product is inserted as one task per tile row —
    each task reads the full FP64 vector handle and the row's kernel
    tiles (declared via ``tile_deps`` so store-backed kernels pin and
    fault tiles under their budget; carried as
    :class:`~repro.parallel.descriptors.CgMatvecSpec` descriptors so
    worker processes execute the identical arithmetic).  Without a
    runtime the same loop runs inline on the caller's thread.  Both
    paths are bitwise identical.
    """
    if kernel.shape[0] != kernel.shape[1]:
        raise ValueError("kernel_matvec requires a square kernel matrix")
    v = np.asarray(v, dtype=np.float64)
    squeeze = v.ndim == 1
    if squeeze:
        v = v[:, None]
    if v.shape[0] != kernel.shape[0]:
        raise ValueError("vector rows must match the kernel order")
    layout = kernel.layout
    nt = layout.tile_rows
    alpha = float(alpha)
    nrhs = v.shape[1]

    if runtime is None:
        rows = [
            _row_body(kernel, i, alpha, layout.tile_slice(i, 0)[0], nt)(v)
            for i in range(nt)
        ]
        out = np.vstack(rows)
        return out[:, 0] if squeeze else out

    runtime.require_drained("kernel_matvec()")
    ns = runtime.namespace("cgmv")
    binding = kernel._binding
    if binding is not None:
        try:
            runtime.attach_store(kernel.store)
        except RuntimeError:
            pass  # foreign hooks: pinning skipped, reloads stay bitwise

    v_handle = runtime.register_data(f"{ns}v", payload=v)
    out_handles = []
    for i in range(nt):
        row = layout.tile_slice(i, 0)[0]
        h = runtime.register_data(f"{ns}y({i})",
                                  shape=(row.stop - row.start, nrhs))
        out_handles.append(h)
        keys = [kernel._stored_key(i, j) for j in range(nt)]
        if binding is None:
            deps = ()
        else:
            deps = tuple((binding, key) for key, _ in keys)
        runtime.insert_task(
            "cg_matvec",
            (v_handle, AccessMode.READ),
            (h, AccessMode.WRITE),
            body=_row_body(kernel, i, alpha, row, nt),
            flops=gemm_flops(row.stop - row.start, nrhs, layout.cols)
            + (row.stop - row.start) * nrhs,
            precision=Precision.FP64, tag=(i,),
            tile_deps=deps,
            pspec=ProcessTaskSpec(
                CgMatvecSpec(alpha, row.start, row.stop,
                             transposes=tuple(t for _, t in keys)),
                mode="both",
                # ship the *stored* tiles; the spec's transpose mask
                # mirrors the upper triangle exactly like the closure
                aux=tuple(TileInput(kernel, key) for key, _ in keys)),
        )
    try:
        runtime.run(phase=phase)
        out = np.vstack([h.payload for h in out_handles])
    except TaskGroupError:
        # library DAGs are raise-and-discard: a retried matvec inserts
        # a fresh graph, so don't leave the failed subgraph pending
        runtime.reset_graph()
        raise
    finally:
        runtime.release(ns)
    return out[:, 0] if squeeze else out


# ----------------------------------------------------------------------
# preconditioned CG
# ----------------------------------------------------------------------
def cg_solve(
    kernel: TileMatrix,
    rhs: np.ndarray,
    alpha: float,
    preconditioner: CholeskyResult | TileMatrix | None = None,
    tol: float = 1e-8,
    max_iterations: int = 200,
    precision: Precision | str = Precision.FP32,
    runtime: Runtime | None = None,
    phase: str = "solve",
    x0: np.ndarray | None = None,
) -> CGResult:
    """Solve ``(K + alpha*I) X = B`` by tiled preconditioned CG.

    Parameters
    ----------
    kernel:
        The (symmetric positive semi-definite) tiled kernel ``K`` —
        *without* the diagonal shift; ``alpha`` is applied analytically
        inside the matvec, which is what lets one kernel serve the
        whole regularization grid.
    rhs:
        Right-hand side vector or panel (FP64).
    preconditioner:
        Tiled Cholesky factor of ``K + alpha_ref*I`` (any storage
        precision — the session passes its low-precision mosaic
        factor), applied with the tiled
        :func:`~repro.linalg.solve.solve_cholesky` in ``precision``.
        ``None`` runs unpreconditioned CG.
    tol:
        Convergence threshold on the relative residual
        ``||b - A x|| / ||b||``, per column; the solve converges when
        every column is below it.
    precision:
        Working precision of the preconditioner application (the
        triangular solves); the CG recurrences themselves stay FP64.
    runtime:
        Session runtime: each matvec inserts a per-tile-row task DAG
        whose FP64 flops land in ``phase``'s trace.  The preconditioner
        sweeps run inline either way (see below).
    x0:
        Optional warm-start guess (same shape as ``rhs``).  For shifted
        systems the previous shift's solution leaves only the residual
        ``(alpha_prev - alpha)·x_prev``, typically cutting several
        iterations off a regularization sweep; costs one extra matvec
        to form the initial residual.  ``None`` starts from zero.

    Multiple right-hand sides run as simultaneous independent
    recurrences (per-column scalars, one shared matvec per iteration).
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if tol <= 0:
        raise ValueError("tol must be positive")
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    precision = Precision.from_string(precision)
    b = np.asarray(rhs, dtype=np.float64)
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    if b.shape[0] != kernel.shape[0]:
        raise ValueError("right-hand side rows must match the kernel order")

    factor: TileMatrix | None
    if isinstance(preconditioner, CholeskyResult):
        factor = preconditioner.factor
    else:
        factor = preconditioner

    # The preconditioner sweeps run *inline* (no task DAG): a CG
    # iteration applies them once per iteration on the critical path,
    # where per-task scheduling overhead would swamp the O(n^2) BLAS
    # work — and the inline tiled solve is bitwise identical to the
    # tasked one (the solver test suite asserts exactly that), so the
    # convergence history does not depend on this choice.  Only the
    # matvecs go through the runtime, carrying the traced CG flops.
    def apply_preconditioner(r: np.ndarray) -> np.ndarray:
        if factor is None:
            return r
        return np.asarray(
            solve_cholesky(factor, r, precision=precision),
            dtype=np.float64)

    norm_b = np.linalg.norm(b, axis=0)
    scale = np.where(norm_b > 0, norm_b, 1.0)

    if x0 is None:
        x = np.zeros_like(b)
        r = b.copy()  # b - A @ 0
    else:
        x = np.asarray(x0, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape != b.shape:
            raise ValueError("x0 must match the right-hand side shape")
        x = x.copy()
        r = b - kernel_matvec(kernel, x, alpha=alpha, runtime=runtime,
                              phase=phase)
    p = None
    rho_prev = None
    residual_norms: list[float] = []
    converged = False
    iterations = 0

    for _ in range(max_iterations):
        rel = np.linalg.norm(r, axis=0) / scale
        residual_norms.append(float(rel.max()))
        if bool(np.all(rel <= tol)):
            converged = True
            break
        z = apply_preconditioner(r)
        rho = np.einsum("ij,ij->j", r, z)
        if p is None:
            p = z.copy()
        else:
            beta = np.where(rho_prev != 0.0, rho / rho_prev, 0.0)
            p = z + beta[None, :] * p
        q = kernel_matvec(kernel, p, alpha=alpha, runtime=runtime,
                          phase=phase)
        pq = np.einsum("ij,ij->j", p, q)
        gamma = np.where(pq != 0.0, rho / pq, 0.0)
        x = x + gamma[None, :] * p
        r = r - gamma[None, :] * q
        rho_prev = rho
        iterations += 1
    else:
        rel = np.linalg.norm(r, axis=0) / scale
        residual_norms.append(float(rel.max()))
        converged = bool(np.all(rel <= tol))

    return CGResult(
        x=x[:, 0] if squeeze else x,
        iterations=iterations,
        converged=converged,
        residual_norms=residual_norms,
    )
