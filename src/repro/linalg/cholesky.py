"""Tiled mixed-precision Cholesky factorization.

The Associate phase of the paper factorizes the regularized kernel
matrix ``K + alpha*I`` with a right-looking tiled Cholesky whose update
(GEMM/SYRK) tasks run in the precision assigned to the destination tile
by the adaptive rule — the "four-precision Cholesky-based solver"
(FP64/FP32/FP16/FP8) of Sec. V-B2.

Structure of the algorithm per panel ``k`` (lower-triangular variant):

1. ``POTRF``  — factorize the diagonal tile ``A[k,k]`` (working precision).
2. ``TRSM``   — update panel tiles ``A[i,k] <- A[i,k] @ L[k,k]^{-T}``.
3. ``SYRK``   — update diagonal trailing tiles
   ``A[i,i] <- A[i,i] - A[i,k] @ A[i,k]^T``.
4. ``GEMM``   — update off-diagonal trailing tiles
   ``A[i,j] <- A[i,j] - A[i,k] @ A[j,k]^T``; runs in the *destination
   tile's* precision, which is where FP16/FP8 enters.

The factorization can run directly (fast) or through the task runtime
(``runtime=``) to obtain DAG statistics, a simulated schedule and the
data-movement ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.precision.formats import Precision
from repro.linalg.kernels import (
    gemm_flops,
    potrf_flops,
    syrk_flops,
    tile_gemm,
    tile_potrf,
    tile_syrk,
    tile_trsm,
    trsm_flops,
)
from repro.runtime.runtime import Runtime
from repro.runtime.task import AccessMode
from repro.tiles.matrix import TileMatrix


@dataclass
class CholeskyResult:
    """Outcome of the tiled mixed-precision Cholesky factorization.

    Attributes
    ----------
    factor:
        Lower-triangular factor as a :class:`TileMatrix` (tiles keep the
        precision they were computed/stored in).
    flops:
        Total operation count of the factorization.
    flops_by_precision:
        Operation count split by compute precision (the paper's
        "mixed-precision flops" accounting).
    task_counts:
        Number of POTRF/TRSM/SYRK/GEMM tasks executed.
    schedule:
        Optional :class:`~repro.runtime.scheduler.ScheduleResult` when a
        runtime was used.
    """

    factor: TileMatrix
    flops: float
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)
    task_counts: dict[str, int] = field(default_factory=dict)
    schedule: object | None = None

    def to_dense(self) -> np.ndarray:
        """Dense lower-triangular factor (upper part zeroed)."""
        return np.tril(self.factor.to_dense())


def cholesky_flops(n: int) -> float:
    """Total operation count of a Cholesky factorization of order ``n``."""
    return n ** 3 / 3.0 + n ** 2 / 2.0 + n / 6.0


def _accumulate(result: CholeskyResult, name: str, precision: Precision,
                flops: float) -> None:
    result.flops += flops
    result.flops_by_precision[precision] = (
        result.flops_by_precision.get(precision, 0.0) + flops
    )
    result.task_counts[name] = result.task_counts.get(name, 0) + 1


def cholesky(
    matrix: TileMatrix | np.ndarray,
    tile_size: int | None = None,
    working_precision: Precision | str = Precision.FP32,
    precision_map: dict[tuple[int, int], Precision] | None = None,
    runtime: Runtime | None = None,
) -> CholeskyResult:
    """Tiled mixed-precision Cholesky factorization (lower triangular).

    Parameters
    ----------
    matrix:
        Symmetric positive-definite matrix, dense or tiled.  When a
        ``TileMatrix`` is given its per-tile precisions (set e.g. by
        :func:`repro.tiles.adaptive.decide_tile_precisions`) control the
        precision of each trailing update; when a dense array is given,
        ``precision_map`` can supply the mosaic.
    tile_size:
        Required when a dense array is passed.
    working_precision:
        Precision of the panel operations (POTRF/TRSM) and of diagonal
        tiles; FP32 reproduces the paper's configuration, FP64 gives the
        reference factorization.
    precision_map:
        Optional per-tile compute precision overriding the tiles' stored
        precisions.
    runtime:
        Optional task runtime; when given, the factorization is expressed
        as a task graph, executed through the scheduler, and the schedule
        is attached to the result.

    Returns
    -------
    CholeskyResult
    """
    working_precision = Precision.from_string(working_precision)

    if isinstance(matrix, np.ndarray):
        if tile_size is None:
            raise ValueError("tile_size is required for dense input")
        tiled = TileMatrix.from_dense(matrix, tile_size, working_precision,
                                      symmetric=False)
    else:
        # Tile-level workspace copy: the factorization only ever reads
        # lower-triangle tiles, so symmetric storage unpacks tile by
        # tile (per-tile precisions preserved) and dense n x n arrays
        # never exist on this path.
        tiled = matrix.unpacked_lower() if matrix.symmetric else matrix.copy()

    layout = tiled.layout
    if layout.rows != layout.cols:
        raise ValueError("Cholesky requires a square matrix")
    nt = layout.tile_rows

    def tile_precision(i: int, j: int) -> Precision:
        if i == j:
            return working_precision
        if precision_map is not None and (i, j) in precision_map:
            return precision_map[(i, j)]
        p = tiled.tile_precision(i, j)
        # integer storage never participates in the factorization
        if p.is_integer:
            return working_precision
        return p

    result = CholeskyResult(factor=tiled, flops=0.0)

    if runtime is None:
        _cholesky_direct(tiled, working_precision, tile_precision, result)
    else:
        _cholesky_runtime(tiled, nt, working_precision, tile_precision, result,
                          runtime)

    # zero out the (now meaningless) upper-triangle tiles of the factor
    for i in range(nt):
        for j in range(i + 1, nt):
            shape = layout.tile_shape(i, j)
            tiled.set_tile(i, j, np.zeros(shape), precision=tile_precision(i, j))
    return result


# ----------------------------------------------------------------------
# direct (host-ordered) execution
# ----------------------------------------------------------------------
def _cholesky_direct(tiled: TileMatrix, wp: Precision,
                     tile_precision, result: CholeskyResult) -> None:
    from repro.linalg.kernels import panel_operand

    nt = tiled.layout.tile_rows
    for k in range(nt):
        akk = tiled.get_tile(k, k).to_float64()
        lkk = tile_potrf(akk, precision=wp)
        tiled.set_tile(k, k, lkk, precision=wp)
        _accumulate(result, "potrf", wp, potrf_flops(akk.shape[0]))

        # stored panel tiles, read back once per panel instead of once
        # per trailing update they participate in
        panel64: dict[int, np.ndarray] = {}
        for i in range(k + 1, nt):
            aik = tiled.get_tile(i, k).to_float64()
            lik = tile_trsm(lkk, aik, precision=wp, side="right", trans=True)
            tiled.set_tile(i, k, lik, precision=tile_precision(i, k))
            panel64[i] = tiled.get_tile(i, k).to_float64()
            _accumulate(result, "trsm", wp, trsm_flops(aik.shape[1], aik.shape[0]))

        # per-(tile, precision) quantization cache for the trailing update:
        # L[i,k] is consumed by one SYRK and up to nt-k-2 GEMMs, all of
        # which would otherwise re-quantize it from scratch
        qpanel: dict[tuple[int, Precision], object] = {}

        def qtile(idx: int, precision: Precision):
            key = (idx, precision)
            if key not in qpanel:
                qpanel[key] = panel_operand(panel64[idx], precision)
            return qpanel[key]

        for i in range(k + 1, nt):
            lik = panel64[i]
            # SYRK on the diagonal of the trailing matrix
            aii = tiled.get_tile(i, i).to_float64()
            p_ii = wp
            new_aii = tile_syrk(qtile(i, p_ii), aii, precision=p_ii,
                                alpha=-1.0, beta=1.0)
            tiled.set_tile(i, i, new_aii, precision=p_ii)
            _accumulate(result, "syrk", p_ii, syrk_flops(aii.shape[0], lik.shape[1]))

            # GEMM on the off-diagonal trailing tiles of this block column
            for j in range(k + 1, i):
                aij = tiled.get_tile(i, j).to_float64()
                p_ij = tile_precision(i, j)
                new_aij = tile_gemm(qtile(i, p_ij), qtile(j, p_ij), aij,
                                    precision=p_ij,
                                    alpha=-1.0, beta=1.0, transb=True)
                tiled.set_tile(i, j, new_aij, precision=p_ij)
                _accumulate(result, "gemm", p_ij,
                            gemm_flops(aij.shape[0], aij.shape[1], lik.shape[1]))


# ----------------------------------------------------------------------
# runtime-driven execution
# ----------------------------------------------------------------------
def _cholesky_runtime(tiled: TileMatrix, nt: int, wp: Precision,
                      tile_precision, result: CholeskyResult,
                      runtime: Runtime) -> None:
    layout = tiled.layout

    handles: dict[tuple[int, int], object] = {}
    for i in range(nt):
        for j in range(i + 1):
            tile = tiled.get_tile(i, j)
            handles[(i, j)] = runtime.register_data(
                f"A({i},{j})", payload=tile.to_float64(),
                precision=tile.precision, shape=tile.shape,
            )

    def potrf_body(a):
        return tile_potrf(a, precision=wp)

    def make_trsm_body():
        def body(lkk, aik):
            return tile_trsm(lkk, aik, precision=wp, side="right", trans=True)
        return body

    def make_syrk_body(p):
        def body(lik, aii):
            return tile_syrk(lik, aii, precision=p, alpha=-1.0, beta=1.0)
        return body

    def make_gemm_body(p):
        def body(lik, ljk, aij):
            return tile_gemm(lik, ljk, aij, precision=p, alpha=-1.0, beta=1.0,
                             transb=True)
        return body

    for k in range(nt):
        hkk = handles[(k, k)]
        nbk = layout.tile_shape(k, k)[0]
        runtime.insert_task(
            "potrf", (hkk, AccessMode.READWRITE), body=potrf_body,
            flops=potrf_flops(nbk), precision=wp, priority=nt - k + 10,
            tag=(k, k, k),
        )
        _accumulate(result, "potrf", wp, potrf_flops(nbk))

        for i in range(k + 1, nt):
            hik = handles[(i, k)]
            mb, nb = layout.tile_shape(i, k)
            runtime.insert_task(
                "trsm", (hkk, AccessMode.READ), (hik, AccessMode.READWRITE),
                body=make_trsm_body(), flops=trsm_flops(nb, mb),
                precision=wp, priority=nt - k + 5, tag=(i, k, k),
            )
            _accumulate(result, "trsm", wp, trsm_flops(nb, mb))

        for i in range(k + 1, nt):
            hik = handles[(i, k)]
            hii = handles[(i, i)]
            nbi = layout.tile_shape(i, i)[0]
            kbk = layout.tile_shape(i, k)[1]
            runtime.insert_task(
                "syrk", (hik, AccessMode.READ), (hii, AccessMode.READWRITE),
                body=make_syrk_body(wp), flops=syrk_flops(nbi, kbk),
                precision=wp, tag=(i, i, k),
            )
            _accumulate(result, "syrk", wp, syrk_flops(nbi, kbk))
            for j in range(k + 1, i):
                hjk = handles[(j, k)]
                hij = handles[(i, j)]
                p_ij = tile_precision(i, j)
                mb, nb = layout.tile_shape(i, j)
                runtime.insert_task(
                    "gemm", (hik, AccessMode.READ), (hjk, AccessMode.READ),
                    (hij, AccessMode.READWRITE),
                    body=make_gemm_body(p_ij), flops=gemm_flops(mb, nb, kbk),
                    precision=p_ij, tag=(i, j, k),
                )
                _accumulate(result, "gemm", p_ij, gemm_flops(mb, nb, kbk))

    schedule = runtime.run()
    result.schedule = schedule

    # copy results back into the tile matrix
    for (i, j), handle in handles.items():
        tiled.set_tile(i, j, handle.payload, precision=tile_precision(i, j)
                       if i != j else wp)
