"""Tiled mixed-precision Cholesky factorization.

The Associate phase of the paper factorizes the regularized kernel
matrix ``K + alpha*I`` with a right-looking tiled Cholesky whose update
(GEMM/SYRK) tasks run in the precision assigned to the destination tile
by the adaptive rule — the "four-precision Cholesky-based solver"
(FP64/FP32/FP16/FP8) of Sec. V-B2.

Structure of the algorithm per panel ``k`` (lower-triangular variant):

1. ``POTRF``  — factorize the diagonal tile ``A[k,k]`` (working precision).
2. ``TRSM``   — update panel tiles ``A[i,k] <- A[i,k] @ L[k,k]^{-T}``.
3. ``SYRK``   — update diagonal trailing tiles
   ``A[i,i] <- A[i,i] - A[i,k] @ A[i,k]^T``.
4. ``GEMM``   — update off-diagonal trailing tiles
   ``A[i,j] <- A[i,j] - A[i,k] @ A[j,k]^T``; runs in the *destination
   tile's* precision, which is where FP16/FP8 enters.

By default the factorization is expressed as a task DAG and executed
by the runtime's threaded out-of-order scheduler — POTRF/TRSM/SYRK/GEMM
tiles of independent panels run concurrently, and because every
ordering constraint is an explicit dependency edge (including the
serialized accumulation chain on each trailing tile) the result is
bitwise identical to the serial elimination order
(``execution="serial"``).  Passing a session-long ``runtime=`` reuses
one scheduler across phases and feeds its trace accounting; passing
``execution="simulated"`` retains the historical device-timing mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.precision.formats import Precision
from repro.precision.gemm import QuantizedOperand
from repro.linalg.kernels import (
    gemm_flops,
    panel_operand,
    potrf_flops,
    syrk_flops,
    tile_gemm,
    tile_potrf,
    tile_syrk,
    tile_trsm,
    trsm_flops,
)
from repro.parallel.descriptors import (
    GemmTrailSpec,
    PotrfSpec,
    ProcessTaskSpec,
    SyrkSpec,
    TileInput,
    TrsmSpec,
)
from repro.resilience.errors import TaskGroupError
from repro.runtime.runtime import Runtime
from repro.runtime.task import AccessMode
from repro.tiles.matrix import TileMatrix


@dataclass
class CholeskyResult:
    """Outcome of the tiled mixed-precision Cholesky factorization.

    Attributes
    ----------
    factor:
        Lower-triangular factor as a :class:`TileMatrix` (tiles keep the
        precision they were computed/stored in).
    flops:
        Total operation count of the factorization.
    flops_by_precision:
        Operation count split by compute precision (the paper's
        "mixed-precision flops" accounting).
    task_counts:
        Number of POTRF/TRSM/SYRK/GEMM tasks executed.
    schedule:
        Optional :class:`~repro.runtime.scheduler.ScheduleResult` when a
        runtime was used.
    """

    factor: TileMatrix
    flops: float
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)
    task_counts: dict[str, int] = field(default_factory=dict)
    schedule: object | None = None

    def to_dense(self) -> np.ndarray:
        """Dense lower-triangular factor (upper part zeroed)."""
        return np.tril(self.factor.to_dense())


def cholesky_flops(n: int) -> float:
    """Total operation count of a Cholesky factorization of order ``n``."""
    return n ** 3 / 3.0 + n ** 2 / 2.0 + n / 6.0


def _accumulate(result: CholeskyResult, name: str, precision: Precision,
                flops: float) -> None:
    result.flops += flops
    result.flops_by_precision[precision] = (
        result.flops_by_precision.get(precision, 0.0) + flops
    )
    result.task_counts[name] = result.task_counts.get(name, 0) + 1


def cholesky(
    matrix: TileMatrix | np.ndarray,
    tile_size: int | None = None,
    working_precision: Precision | str = Precision.FP32,
    precision_map: dict[tuple[int, int], Precision] | None = None,
    runtime: Runtime | None = None,
    execution: str | None = None,
    workers: int | None = None,
    phase: str = "cholesky",
) -> CholeskyResult:
    """Tiled mixed-precision Cholesky factorization (lower triangular).

    Parameters
    ----------
    matrix:
        Symmetric positive-definite matrix, dense or tiled.  When a
        ``TileMatrix`` is given its per-tile precisions (set e.g. by
        :func:`repro.tiles.adaptive.decide_tile_precisions`) control the
        precision of each trailing update; when a dense array is given,
        ``precision_map`` can supply the mosaic.
    tile_size:
        Required when a dense array is passed.
    working_precision:
        Precision of the panel operations (POTRF/TRSM) and of diagonal
        tiles; FP32 reproduces the paper's configuration, FP64 gives the
        reference factorization.
    precision_map:
        Optional per-tile compute precision overriding the tiles' stored
        precisions.
    runtime:
        Optional session-long task runtime.  When given, the
        factorization inserts its task DAG there (under a fresh handle
        namespace) and runs under that runtime's execution mode; when
        omitted, an ephemeral runtime is created from ``execution`` /
        ``workers``.
    execution:
        ``"threaded"`` (default — out-of-order DAG execution),
        ``"serial"`` (the host-ordered reference elimination, no task
        graph) or ``"simulated"`` (DAG execution under the simulated
        device-timing model).  Ignored when ``runtime`` is given.
    workers:
        Worker threads of an ephemeral threaded runtime (``None``
        resolves through ``REPRO_WORKERS`` / cpu count).
    phase:
        Trace-phase label of the runtime run (sessions pass
        ``"associate"`` so the factorization lands in the Associate
        accounting).

    Returns
    -------
    CholeskyResult
    """
    working_precision = Precision.from_string(working_precision)

    if isinstance(matrix, np.ndarray):
        if tile_size is None:
            raise ValueError("tile_size is required for dense input")
        tiled = TileMatrix.from_dense(matrix, tile_size, working_precision,
                                      symmetric=False)
    else:
        # Tile-level workspace copy: the factorization only ever reads
        # lower-triangle tiles, so symmetric storage unpacks tile by
        # tile (per-tile precisions preserved) and dense n x n arrays
        # never exist on this path.
        tiled = matrix.unpacked_lower() if matrix.symmetric else matrix.copy()

    layout = tiled.layout
    if layout.rows != layout.cols:
        raise ValueError("Cholesky requires a square matrix")
    nt = layout.tile_rows

    def tile_precision(i: int, j: int) -> Precision:
        if i == j:
            return working_precision
        if precision_map is not None and (i, j) in precision_map:
            return precision_map[(i, j)]
        p = tiled.tile_precision(i, j)
        # integer storage never participates in the factorization
        if p.is_integer:
            return working_precision
        return p

    result = CholeskyResult(factor=tiled, flops=0.0)

    if runtime is None:
        from repro.runtime.runtime import resolve_execution

        mode = resolve_execution(execution)
        if mode == "serial":
            _cholesky_direct(tiled, working_precision, tile_precision, result)
        else:
            ephemeral = Runtime(execution=mode, workers=workers)
            _cholesky_runtime(tiled, nt, working_precision, tile_precision,
                              result, ephemeral, phase)
    else:
        _cholesky_runtime(tiled, nt, working_precision, tile_precision, result,
                          runtime, phase)

    # zero out the (now meaningless) upper-triangle tiles of the factor;
    # tiles that were never materialized already read as zeros, so only
    # tiles holding stale data (the dense-input path) need overwriting
    for i in range(nt):
        for j in range(i + 1, nt):
            if not tiled.has_tile_data(i, j):
                continue
            shape = layout.tile_shape(i, j)
            tiled.set_tile(i, j, np.zeros(shape), precision=tile_precision(i, j))
    return result


# ----------------------------------------------------------------------
# direct (host-ordered) execution
# ----------------------------------------------------------------------
def _cholesky_direct(tiled: TileMatrix, wp: Precision,
                     tile_precision, result: CholeskyResult) -> None:
    from repro.linalg.kernels import panel_operand

    nt = tiled.layout.tile_rows
    for k in range(nt):
        akk = tiled.get_tile(k, k).to_float64()
        lkk = tile_potrf(akk, precision=wp)
        tiled.set_tile(k, k, lkk, precision=wp)
        _accumulate(result, "potrf", wp, potrf_flops(akk.shape[0]))

        # stored panel tiles, read back once per panel instead of once
        # per trailing update they participate in
        panel64: dict[int, np.ndarray] = {}
        for i in range(k + 1, nt):
            aik = tiled.get_tile(i, k).to_float64()
            lik = tile_trsm(lkk, aik, precision=wp, side="right", trans=True)
            tiled.set_tile(i, k, lik, precision=tile_precision(i, k))
            panel64[i] = tiled.get_tile(i, k).to_float64()
            _accumulate(result, "trsm", wp, trsm_flops(aik.shape[1], aik.shape[0]))

        # per-(tile, precision) quantization cache for the trailing update:
        # L[i,k] is consumed by one SYRK and up to nt-k-2 GEMMs, all of
        # which would otherwise re-quantize it from scratch
        qpanel: dict[tuple[int, Precision], object] = {}

        def qtile(idx: int, precision: Precision):
            key = (idx, precision)
            if key not in qpanel:
                qpanel[key] = panel_operand(panel64[idx], precision)
            return qpanel[key]

        for i in range(k + 1, nt):
            lik = panel64[i]
            # SYRK on the diagonal of the trailing matrix
            aii = tiled.get_tile(i, i).to_float64()
            p_ii = wp
            new_aii = tile_syrk(qtile(i, p_ii), aii, precision=p_ii,
                                alpha=-1.0, beta=1.0)
            tiled.set_tile(i, i, new_aii, precision=p_ii)
            _accumulate(result, "syrk", p_ii, syrk_flops(aii.shape[0], lik.shape[1]))

            # GEMM on the off-diagonal trailing tiles of this block column
            for j in range(k + 1, i):
                aij = tiled.get_tile(i, j).to_float64()
                p_ij = tile_precision(i, j)
                new_aij = tile_gemm(qtile(i, p_ij), qtile(j, p_ij), aij,
                                    precision=p_ij,
                                    alpha=-1.0, beta=1.0, transb=True)
                tiled.set_tile(i, j, new_aij, precision=p_ij)
                _accumulate(result, "gemm", p_ij,
                            gemm_flops(aij.shape[0], aij.shape[1], lik.shape[1]))


# ----------------------------------------------------------------------
# runtime-driven (DAG) execution — bitwise identical to the serial path
# ----------------------------------------------------------------------
def _cholesky_runtime(tiled: TileMatrix, nt: int, wp: Precision,
                      tile_precision, result: CholeskyResult,
                      runtime: Runtime, phase: str = "cholesky") -> None:
    from repro.tiles.tile import Tile

    if tiled.store is not None:
        _cholesky_runtime_store(tiled, nt, wp, tile_precision, result,
                                runtime, phase)
        return

    layout = tiled.layout
    runtime.require_drained("cholesky()")
    ns = runtime.namespace("chol")

    # Handle payloads are Tile objects, so the working set stays in the
    # tiles' *storage* precision (fp16/fp8 mosaics keep their footprint
    # advantage); task bodies convert to float64 on read, exactly like
    # the serial path's per-access ``get_tile().to_float64()``.
    handles: dict[tuple[int, int], object] = {}
    for i in range(nt):
        for j in range(i + 1):
            tile = tiled.get_tile(i, j)
            handles[(i, j)] = runtime.register_data(
                f"{ns}A({i},{j})", payload=tile,
                precision=tile.precision, shape=tile.shape,
            )

    # Panel tiles are consumed by one SYRK and up to nt-k-2 GEMMs per
    # compute precision; caching the quantized operand per (handle,
    # precision) mirrors the serial path's per-panel cache.  A panel
    # payload never changes after its TRSM wrote it, so the cache is
    # sound under concurrency.  Each entry is refcounted by its
    # consumer tasks and evicted when the last one has used it, so the
    # cache holds (roughly) the panels currently in flight rather than
    # every panel of the factorization.
    import threading

    qcache: dict[tuple[int, Precision], QuantizedOperand] = {}
    qcount: dict[tuple[int, Precision], int] = {}
    qlock = threading.Lock()

    def qexpect(uid: int, precision: Precision) -> None:
        key = (uid, precision)
        qcount[key] = qcount.get(key, 0) + 1

    def qop(uid: int, tile: Tile, precision: Precision) -> QuantizedOperand:
        key = (uid, precision)
        got = qcache.get(key)
        if got is None:
            # benign race: a duplicate compute yields the same
            # deterministic operand and one copy wins
            got = qcache.setdefault(
                key, panel_operand(tile.to_float64(), precision))
        return got

    def qdone(*keys: tuple[int, Precision]) -> None:
        with qlock:
            for key in keys:
                left = qcount.get(key, 0) - 1
                if left <= 0:
                    qcount.pop(key, None)
                    qcache.pop(key, None)
                else:
                    qcount[key] = left

    def potrf_body(a):
        return Tile(tile_potrf(a.to_float64(), precision=wp), precision=wp,
                    coords=a.coords)

    def make_trsm_body(storage: Precision):
        def body(lkk, aik):
            lik = tile_trsm(lkk.to_float64(), aik.to_float64(), precision=wp,
                            side="right", trans=True)
            # storing at the tile's storage precision is the same
            # rounding the serial path applies before the trailing
            # updates read the panel back
            return Tile(lik, precision=storage, coords=aik.coords)
        return body

    def make_syrk_body(p, uid_ik):
        def body(lik, aii):
            out = tile_syrk(qop(uid_ik, lik, p), aii.to_float64(),
                            precision=p, alpha=-1.0, beta=1.0)
            qdone((uid_ik, p))
            return Tile(out, precision=p, coords=aii.coords)
        return body

    def make_gemm_body(p, uid_ik, uid_jk):
        def body(lik, ljk, aij):
            out = tile_gemm(qop(uid_ik, lik, p), qop(uid_jk, ljk, p),
                            aij.to_float64(), precision=p,
                            alpha=-1.0, beta=1.0, transb=True)
            qdone((uid_ik, p), (uid_jk, p))
            return Tile(out, precision=p, coords=aij.coords)
        return body

    for k in range(nt):
        hkk = handles[(k, k)]
        nbk = layout.tile_shape(k, k)[0]
        runtime.insert_task(
            "potrf", (hkk, AccessMode.READWRITE), body=potrf_body,
            flops=potrf_flops(nbk), precision=wp, priority=nt - k + 10,
            tag=(k, k, k),
            pspec=ProcessTaskSpec(PotrfSpec(wp)),
        )
        _accumulate(result, "potrf", wp, potrf_flops(nbk))

        for i in range(k + 1, nt):
            hik = handles[(i, k)]
            mb, nb = layout.tile_shape(i, k)
            runtime.insert_task(
                "trsm", (hkk, AccessMode.READ), (hik, AccessMode.READWRITE),
                body=make_trsm_body(tile_precision(i, k)),
                flops=trsm_flops(nb, mb),
                precision=wp, priority=nt - k + 5, tag=(i, k, k),
                pspec=ProcessTaskSpec(TrsmSpec(wp, tile_precision(i, k))),
            )
            _accumulate(result, "trsm", wp, trsm_flops(nb, mb))

        for i in range(k + 1, nt):
            hik = handles[(i, k)]
            hii = handles[(i, i)]
            nbi = layout.tile_shape(i, i)[0]
            kbk = layout.tile_shape(i, k)[1]
            qexpect(hik.uid, wp)
            runtime.insert_task(
                "syrk", (hik, AccessMode.READ), (hii, AccessMode.READWRITE),
                body=make_syrk_body(wp, hik.uid), flops=syrk_flops(nbi, kbk),
                precision=wp, tag=(i, i, k),
                pspec=ProcessTaskSpec(SyrkSpec(wp, hik.uid)),
            )
            _accumulate(result, "syrk", wp, syrk_flops(nbi, kbk))
            for j in range(k + 1, i):
                hjk = handles[(j, k)]
                hij = handles[(i, j)]
                p_ij = tile_precision(i, j)
                mb, nb = layout.tile_shape(i, j)
                qexpect(hik.uid, p_ij)
                qexpect(hjk.uid, p_ij)
                runtime.insert_task(
                    "gemm", (hik, AccessMode.READ), (hjk, AccessMode.READ),
                    (hij, AccessMode.READWRITE),
                    body=make_gemm_body(p_ij, hik.uid, hjk.uid),
                    flops=gemm_flops(mb, nb, kbk),
                    precision=p_ij, tag=(i, j, k),
                    pspec=ProcessTaskSpec(
                        GemmTrailSpec(p_ij, hik.uid, hjk.uid)),
                )
                _accumulate(result, "gemm", p_ij, gemm_flops(mb, nb, kbk))

    try:
        schedule = runtime.run(phase=phase)
    except TaskGroupError as exc:
        # a failed factorization DAG is disposable: the session's
        # alpha-boost retry inserts a fresh one, so don't park the
        # unfinished subgraph on the session runtime
        runtime.reset_graph()
        if exc.matches(np.linalg.LinAlgError):
            # purely numerical failure (indefinite pivot) keeps its
            # historical type so regularization retries can catch it
            raise np.linalg.LinAlgError(str(exc.failures[0].error)) from exc
        raise
    finally:
        # failed attempts (indefinite matrix at too-small alpha) must
        # not leak this invocation's handles into the session registry
        runtime.release(ns)
    result.schedule = schedule

    # copy results back into the tile matrix (payloads are Tiles whose
    # values already sit on the target precision's grid)
    for (i, j), handle in handles.items():
        tiled.set_tile(i, j, handle.payload.to_float64(),
                       precision=tile_precision(i, j) if i != j else wp)


# ----------------------------------------------------------------------
# store-backed (out-of-core) DAG execution — bitwise identical again
# ----------------------------------------------------------------------
def _cholesky_runtime_store(tiled: TileMatrix, nt: int, wp: Precision,
                            tile_precision, result: CholeskyResult,
                            runtime: Runtime, phase: str) -> None:
    """Panel-by-panel DAG Cholesky over a store-backed workspace.

    Unlike the resident path — which registers every tile as a handle
    payload up front, keeping the whole mosaic alive for the duration —
    this variant's handles are pure synchronization tokens: task bodies
    read their tiles from the matrix on demand (faulting spilled tiles
    in) and write results straight back through ``set_tile`` (making
    them immediately spillable).  The resident working set is therefore
    the active panel plus the in-flight trailing updates, each pinned
    via ``tile_deps`` while its task runs.

    Bitwise equivalence with the serial elimination holds for the same
    reason as the resident DAG path: every read is ordered by an
    explicit dependency edge, ``set_tile``'s storage-precision rounding
    is exactly the serial path's, and spill/reload round-trips are
    exact.
    """
    import threading

    layout = tiled.layout
    binding = tiled._binding
    runtime.require_drained("cholesky()")
    try:
        runtime.attach_store(tiled.store)
    except RuntimeError:
        # the runtime is already hooked to a different store: pins and
        # prefetch for this matrix are skipped, which only costs reload
        # traffic — eviction/reload round-trips stay bitwise
        pass
    ns = runtime.namespace("chol")

    # Synchronization-only handles: one per lower tile, no payload.
    handles: dict[tuple[int, int], object] = {}
    for i in range(nt):
        for j in range(i + 1):
            handles[(i, j)] = runtime.register_data(
                f"{ns}A({i},{j})", payload=None,
                precision=tile_precision(i, j) if i != j else wp,
                shape=layout.tile_shape(i, j),
            )

    def dep(i: int, j: int):
        return (binding, (i, j))

    # Quantized-operand cache, refcounted per (handle uid, precision)
    # exactly like the resident path: a panel tile's payload is fixed
    # once its TRSM ran, and reloads are bitwise, so a cached operand is
    # valid no matter how often the tile spills in between.
    qcache: dict[tuple[int, Precision], QuantizedOperand] = {}
    qcount: dict[tuple[int, Precision], int] = {}
    qlock = threading.Lock()

    def qexpect(uid: int, precision: Precision) -> None:
        key = (uid, precision)
        qcount[key] = qcount.get(key, 0) + 1

    def qop(uid: int, tile, precision: Precision) -> QuantizedOperand:
        key = (uid, precision)
        got = qcache.get(key)
        if got is None:
            got = qcache.setdefault(
                key, panel_operand(tile.to_float64(), precision))
        return got

    def qdone(*keys: tuple[int, Precision]) -> None:
        with qlock:
            for key in keys:
                left = qcount.get(key, 0) - 1
                if left <= 0:
                    qcount.pop(key, None)
                    qcache.pop(key, None)
                else:
                    qcount[key] = left

    def make_potrf_body(k: int):
        def body(_a):
            lkk = tile_potrf(tiled.get_tile(k, k).to_float64(), precision=wp)
            tiled.set_tile(k, k, lkk, precision=wp)
        return body

    def make_trsm_body(i: int, k: int, storage: Precision):
        def body(_lkk, _aik):
            lik = tile_trsm(tiled.get_tile(k, k).to_float64(),
                            tiled.get_tile(i, k).to_float64(),
                            precision=wp, side="right", trans=True)
            tiled.set_tile(i, k, lik, precision=storage)
        return body

    def make_syrk_body(i: int, k: int, p: Precision, uid_ik: int):
        def body(_lik, _aii):
            out = tile_syrk(qop(uid_ik, tiled.get_tile(i, k), p),
                            tiled.get_tile(i, i).to_float64(),
                            precision=p, alpha=-1.0, beta=1.0)
            qdone((uid_ik, p))
            tiled.set_tile(i, i, out, precision=p)
        return body

    def make_gemm_body(i: int, j: int, k: int, p: Precision,
                       uid_ik: int, uid_jk: int):
        def body(_lik, _ljk, _aij):
            out = tile_gemm(qop(uid_ik, tiled.get_tile(i, k), p),
                            qop(uid_jk, tiled.get_tile(j, k), p),
                            tiled.get_tile(i, j).to_float64(), precision=p,
                            alpha=-1.0, beta=1.0, transb=True)
            qdone((uid_ik, p), (uid_jk, p))
            tiled.set_tile(i, j, out, precision=p)
        return body

    def make_writeback(i: int, j: int, storage: Precision):
        # Coordinator-side completion of a worker-executed store task:
        # write the result tile straight back through the store (the
        # same set_tile rounding the serial body applies; set_tile on
        # an already-on-grid tile is exact, so this stays bitwise).
        def on_complete(out):
            tiled.set_tile(i, j, out.to_float64(), precision=storage)
        return on_complete

    for k in range(nt):
        hkk = handles[(k, k)]
        nbk = layout.tile_shape(k, k)[0]
        runtime.insert_task(
            "potrf", (hkk, AccessMode.READWRITE), body=make_potrf_body(k),
            flops=potrf_flops(nbk), precision=wp, priority=nt - k + 10,
            tag=(k, k, k), tile_deps=(dep(k, k),),
            pspec=ProcessTaskSpec(
                PotrfSpec(wp), mode="aux",
                aux=(TileInput(tiled, (k, k), writeback=True),),
                on_complete=make_writeback(k, k, wp)),
        )
        _accumulate(result, "potrf", wp, potrf_flops(nbk))

        for i in range(k + 1, nt):
            hik = handles[(i, k)]
            mb, nb = layout.tile_shape(i, k)
            runtime.insert_task(
                "trsm", (hkk, AccessMode.READ), (hik, AccessMode.READWRITE),
                body=make_trsm_body(i, k, tile_precision(i, k)),
                flops=trsm_flops(nb, mb),
                precision=wp, priority=nt - k + 5, tag=(i, k, k),
                tile_deps=(dep(k, k), dep(i, k)),
                pspec=ProcessTaskSpec(
                    TrsmSpec(wp, tile_precision(i, k)), mode="aux",
                    aux=(TileInput(tiled, (k, k)),
                         TileInput(tiled, (i, k), writeback=True)),
                    on_complete=make_writeback(i, k, tile_precision(i, k))),
            )
            _accumulate(result, "trsm", wp, trsm_flops(nb, mb))

        for i in range(k + 1, nt):
            hik = handles[(i, k)]
            hii = handles[(i, i)]
            nbi = layout.tile_shape(i, i)[0]
            kbk = layout.tile_shape(i, k)[1]
            qexpect(hik.uid, wp)
            runtime.insert_task(
                "syrk", (hik, AccessMode.READ), (hii, AccessMode.READWRITE),
                body=make_syrk_body(i, k, wp, hik.uid),
                flops=syrk_flops(nbi, kbk),
                precision=wp, tag=(i, i, k),
                tile_deps=(dep(i, k), dep(i, i)),
                pspec=ProcessTaskSpec(
                    SyrkSpec(wp, hik.uid), mode="aux",
                    aux=(TileInput(tiled, (i, k)),
                         TileInput(tiled, (i, i), writeback=True)),
                    on_complete=make_writeback(i, i, wp)),
            )
            _accumulate(result, "syrk", wp, syrk_flops(nbi, kbk))
            for j in range(k + 1, i):
                hjk = handles[(j, k)]
                hij = handles[(i, j)]
                p_ij = tile_precision(i, j)
                mb, nb = layout.tile_shape(i, j)
                qexpect(hik.uid, p_ij)
                qexpect(hjk.uid, p_ij)
                runtime.insert_task(
                    "gemm", (hik, AccessMode.READ), (hjk, AccessMode.READ),
                    (hij, AccessMode.READWRITE),
                    body=make_gemm_body(i, j, k, p_ij, hik.uid, hjk.uid),
                    flops=gemm_flops(mb, nb, kbk),
                    precision=p_ij, tag=(i, j, k),
                    tile_deps=(dep(i, k), dep(j, k), dep(i, j)),
                    pspec=ProcessTaskSpec(
                        GemmTrailSpec(p_ij, hik.uid, hjk.uid), mode="aux",
                        aux=(TileInput(tiled, (i, k)),
                             TileInput(tiled, (j, k)),
                             TileInput(tiled, (i, j), writeback=True)),
                        on_complete=make_writeback(i, j, p_ij)),
                )
                _accumulate(result, "gemm", p_ij, gemm_flops(mb, nb, kbk))

    try:
        schedule = runtime.run(phase=phase)
    except TaskGroupError as exc:
        runtime.reset_graph()
        if exc.matches(np.linalg.LinAlgError):
            raise np.linalg.LinAlgError(str(exc.failures[0].error)) from exc
        raise
    finally:
        runtime.release(ns)
    result.schedule = schedule
