"""Triangular and Cholesky-based solves (POTRS).

The Associate phase ends with ``W = (K + alpha*I)^{-1} Ph`` computed as
two triangular solves against the Cholesky factor, both performed in
the full working precision (FP32 in the paper) because the right-hand
side panel ``Ph`` is small (number of phenotypes) and does not benefit
from tensor cores.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.precision.formats import Precision
from repro.precision.quantize import quantize
from repro.linalg.cholesky import CholeskyResult
from repro.linalg.kernels import gemm_flops, trsm_flops
from repro.parallel.descriptors import (
    ProcessTaskSpec,
    SolveGemmSpec,
    SolveTrsmSpec,
    TileInput,
)
from repro.resilience.errors import TaskGroupError
from repro.runtime.runtime import Runtime
from repro.runtime.task import AccessMode
from repro.tiles.matrix import TileMatrix


def _diag_trtrs(diag: np.ndarray, acc: np.ndarray, i: int,
                lower_solve: bool) -> np.ndarray:
    """Diagonal-tile triangular solve via LAPACK ``dtrtrs`` directly.

    This is the exact routine :func:`scipy.linalg.solve_triangular`
    dispatches to for float64 operands, so the result is bitwise
    identical — calling it without the scipy wrapper removes per-call
    validation overhead from the blockwise solve's inner loop (which a
    CG iteration enters once per tile row, per sweep).
    """
    out, info = scipy.linalg.lapack.dtrtrs(diag, acc,
                                           lower=lower_solve, trans=0)
    if info != 0:
        raise scipy.linalg.LinAlgError(
            f"triangular solve failed on diagonal tile {i} (info={info})")
    return out


def _rhs_blocks(factor: TileMatrix, rhs: TileMatrix | np.ndarray,
                precision: Precision) -> dict[int, np.ndarray]:
    """Split the right-hand side into per-tile-row blocks.

    A dense panel is sliced by the factor's tile rows; a tiled panel
    (``TileMatrix`` right-hand side) hands over its tile rows directly,
    so the solve consumes the same tile granularity the factorization
    produced — no dense staging of the panel is required.
    """
    layout = factor.layout
    blocks: dict[int, np.ndarray] = {}
    if isinstance(rhs, TileMatrix):
        if rhs.layout.rows != layout.cols:
            raise ValueError("right-hand side rows must match the factor order")
        if rhs.layout.tile_size != layout.tile_size:
            raise ValueError("tiled right-hand side must share the factor tile size")
        for i in range(rhs.layout.tile_rows):
            row = np.hstack([rhs.get_tile(i, j).to_float64()
                             for j in range(rhs.layout.tile_cols)])
            blocks[i] = np.asarray(quantize(row, precision), dtype=np.float64)
        return blocks
    rhs64 = np.asarray(rhs, dtype=np.float64)
    for i in range(layout.tile_rows):
        ri = layout.tile_slice(i, 0)[0]
        blocks[i] = np.asarray(quantize(rhs64[ri], precision), dtype=np.float64)
    return blocks


def _solve_runtime(factor: TileMatrix, x: dict[int, np.ndarray],
                   forward: bool, lower: bool, precision: Precision,
                   runtime: Runtime, phase: str) -> dict[int, np.ndarray]:
    """Per-tile-row TRSM/GEMM task insertion for the blockwise solve.

    Each tile row of the right-hand side becomes one handle; the block
    update ``acc -= L[i,j] @ x[j]`` is a task reading row ``j`` and
    read-writing row ``i``, and the diagonal solve is a TRSM task on
    row ``i``.  The derived RAW/WAW chains reproduce the sequential
    update order per row exactly (bitwise), while update tasks of
    *different* rows run out of order on the worker pool.
    """
    nt = factor.layout.tile_rows
    runtime.require_drained("solve_triangular()")
    ns = runtime.namespace("trsm")
    handles = {
        i: runtime.register_data(f"{ns}x({i})", payload=x[i])
        for i in range(nt)
    }
    binding = factor._binding
    if binding is not None:
        try:
            runtime.attach_store(factor.store)
        except RuntimeError:
            pass  # foreign hooks: pinning skipped, reloads stay bitwise

    def deps(*coords):
        if binding is None:
            return ()
        return tuple((binding, key) for key in coords)

    # Closures capture tile *coordinates* and read the factor per
    # execution — the same per-access ``to_float64()`` the in-line loop
    # performs, without staging the whole factor in FP64 and without
    # keeping a store-backed factor's tiles alive in closures (spilled
    # tiles fault in exactly when their task runs, pinned by tile_deps).
    def make_update(coords, transpose_tile: bool, transpose_op: bool):
        def body(xj, acc):
            lij = factor.get_tile(*coords).to_float64()
            if transpose_tile:
                lij = lij.T
            if transpose_op:
                lij = lij.T
            acc = acc - lij @ xj
            return np.asarray(quantize(acc, precision), dtype=np.float64)
        return body

    def make_diag_solve(coords, transpose: bool, lower_solve: bool):
        def body(acc):
            diag = factor.get_tile(*coords).to_float64()
            if transpose:
                diag = diag.T
            out = scipy.linalg.solve_triangular(diag, acc, lower=lower_solve)
            return np.asarray(quantize(out, precision), dtype=np.float64)
        return body

    rows = range(nt) if forward else reversed(range(nt))
    for i in rows:
        width = x[i].shape[1]
        others = range(i) if forward else range(i + 1, nt)
        for j in others:
            if forward:
                coords = (i, j) if lower else (j, i)
                transpose_tile, transpose_op = (not lower), False
            else:
                coords = (j, i) if lower else (i, j)
                transpose_tile, transpose_op = (not lower), True
            tile_shape = factor.layout.tile_shape(*coords)
            op_shape = tile_shape if not transpose_tile else tile_shape[::-1]
            if transpose_op:
                op_shape = op_shape[::-1]
            runtime.insert_task(
                "solve_gemm",
                (handles[j], AccessMode.READ),
                (handles[i], AccessMode.READWRITE),
                body=make_update(coords, transpose_tile, transpose_op),
                flops=gemm_flops(op_shape[0], width, op_shape[1]),
                precision=precision, tag=(i, j),
                tile_deps=deps(coords),
                pspec=ProcessTaskSpec(
                    SolveGemmSpec(precision, transpose_tile, transpose_op),
                    mode="both", aux=(TileInput(factor, coords),)),
            )
        diag_shape = factor.layout.tile_shape(i, i)
        if forward:
            transpose, lower_solve = (not lower), True
        else:
            transpose, lower_solve = lower, False
        runtime.insert_task(
            "solve_trsm", (handles[i], AccessMode.READWRITE),
            body=make_diag_solve((i, i), transpose, lower_solve),
            flops=trsm_flops(diag_shape[0], width),
            precision=precision, priority=nt - i if forward else i + 1,
            tag=(i, i),
            tile_deps=deps((i, i)),
            pspec=ProcessTaskSpec(
                SolveTrsmSpec(precision, transpose, lower_solve),
                mode="both", aux=(TileInput(factor, (i, i)),)),
        )
    try:
        runtime.run(phase=phase)
        return {i: handles[i].payload for i in range(nt)}
    except TaskGroupError:
        # library DAGs are raise-and-discard: a retried solve inserts a
        # fresh graph, so don't leave the failed subgraph pending
        runtime.reset_graph()
        raise
    finally:
        runtime.release(ns)


def solve_triangular(factor: TileMatrix | np.ndarray,
                     rhs: np.ndarray | TileMatrix,
                     lower: bool = True, trans: bool = False,
                     precision: Precision | str = Precision.FP32,
                     runtime: Runtime | None = None,
                     phase: str = "solve",
                     ) -> np.ndarray | TileMatrix:
    """Solve ``op(L) X = B`` with a (tiled or dense) triangular factor.

    The solve is performed blockwise by tile columns (forward) or
    reversed (backward), quantizing intermediate panels to the working
    precision after each block update — the same rounding pattern as a
    tile-by-tile runtime execution.

    ``rhs`` may be a dense panel or a :class:`TileMatrix` panel whose
    row tiling matches the factor; a tiled right-hand side streams
    through the solve per tile row and the solution is returned as a
    :class:`TileMatrix` with the same layout.

    With ``runtime`` the blockwise solve is inserted as per-tile-row
    TRSM/GEMM tasks and executed under the runtime's scheduler
    (bitwise identical to the in-line loop); without it the loop runs
    directly on the caller's thread.
    """
    precision = Precision.from_string(precision)
    tiled_rhs = isinstance(rhs, TileMatrix)
    if not tiled_rhs:
        rhs64 = np.asarray(rhs, dtype=np.float64)
        if rhs64.ndim == 1:
            rhs64 = rhs64[:, None]
            squeeze = True
        else:
            squeeze = False
    else:
        rhs64 = rhs
        squeeze = False

    if isinstance(factor, np.ndarray):
        if tiled_rhs:
            raise ValueError("a tiled right-hand side requires a tiled factor")
        l64 = np.asarray(factor, dtype=np.float64)
        op = l64.T if trans else l64
        x = scipy.linalg.solve_triangular(op, rhs64, lower=(lower != trans))
        x = np.asarray(quantize(x, precision), dtype=np.float64)
        return x[:, 0] if squeeze else x

    layout = factor.layout
    nt = layout.tile_rows
    x = _rhs_blocks(factor, rhs64, precision)

    forward = (lower and not trans) or (not lower and trans)
    if runtime is not None:
        x = _solve_runtime(factor, x, forward, lower, precision, runtime,
                           phase)
    elif forward:
        # forward substitution over tile rows
        for i in range(nt):
            acc = x[i].copy()
            for j in range(i):
                # read-only factor accesses: the no-copy float64 view is
                # bitwise identical to to_float64() and skips a tile-size
                # defensive copy per block on the CG critical path
                lij = factor.get_tile(i, j).float64_values() if lower else \
                    factor.get_tile(j, i).float64_values().T
                acc -= lij @ x[j]
                acc = np.asarray(quantize(acc, precision), dtype=np.float64)
            # hand LAPACK an F-ordered diagonal (cached on the tile):
            # dtrtrs converts C-ordered operands on every call otherwise
            tile_ii = factor.get_tile(i, i)
            diag = tile_ii.fortran64_values() if lower else \
                tile_ii.float64_values().T
            x[i] = _diag_trtrs(diag, acc, i, lower_solve=True)
            x[i] = np.asarray(quantize(x[i], precision), dtype=np.float64)
    else:
        # backward substitution over tile rows
        for i in reversed(range(nt)):
            acc = x[i].copy()
            for j in range(i + 1, nt):
                # op(L)[i, j] with op = transpose of a lower factor
                lji = factor.get_tile(j, i).float64_values() if lower else \
                    factor.get_tile(i, j).float64_values().T
                acc -= lji.T @ x[j]
                acc = np.asarray(quantize(acc, precision), dtype=np.float64)
            tile_ii = factor.get_tile(i, i)
            diag = tile_ii.float64_values().T if lower else \
                tile_ii.fortran64_values()
            x[i] = _diag_trtrs(diag, acc, i, lower_solve=False)
            x[i] = np.asarray(quantize(x[i], precision), dtype=np.float64)

    if tiled_rhs:
        out = TileMatrix(rhs64.layout, precision, symmetric=False)
        for i in range(nt):
            c0 = 0
            for j in range(rhs64.layout.tile_cols):
                w = rhs64.layout.tile_shape(i, j)[1]
                out.set_tile(i, j, x[i][:, c0:c0 + w], precision=precision)
                c0 += w
        return out
    # C-ordered result, as the historical in-place dense solve returned
    # (downstream GEMMs are layout-sensitive at the last bit)
    dense = np.ascontiguousarray(np.vstack([x[i] for i in range(nt)]))
    return dense[:, 0] if squeeze else dense


def solve_cholesky(factorization: CholeskyResult | TileMatrix | np.ndarray,
                   rhs: np.ndarray | TileMatrix,
                   precision: Precision | str = Precision.FP32,
                   runtime: Runtime | None = None,
                   phase: str = "solve",
                   ) -> np.ndarray | TileMatrix:
    """POTRS: solve ``A X = B`` given the lower Cholesky factor of ``A``.

    Performs the forward solve ``L Y = B`` followed by the backward
    solve ``L^T X = Y``, both in the given working precision.  A
    :class:`TileMatrix` right-hand-side panel is solved per tile row
    against the tiled factors and returned tiled.  With ``runtime``
    each sweep runs as per-tile-row tasks under that runtime's
    scheduler (see :func:`solve_triangular`).
    """
    if isinstance(factorization, CholeskyResult):
        factor: TileMatrix | np.ndarray = factorization.factor
    else:
        factor = factorization
    y = solve_triangular(factor, rhs, lower=True, trans=False,
                         precision=precision, runtime=runtime, phase=phase)
    x = solve_triangular(factor, y, lower=True, trans=True,
                         precision=precision, runtime=runtime, phase=phase)
    return x


def solve_spd(matrix: np.ndarray, rhs: np.ndarray, tile_size: int,
              working_precision: Precision | str = Precision.FP32,
              precision_map: dict[tuple[int, int], Precision] | None = None) -> np.ndarray:
    """Convenience: factorize + solve a dense SPD system with the tiled solver."""
    from repro.linalg.cholesky import cholesky

    result = cholesky(np.asarray(matrix, dtype=np.float64), tile_size=tile_size,
                      working_precision=working_precision,
                      precision_map=precision_map)
    return solve_cholesky(result, rhs, precision=working_precision)
