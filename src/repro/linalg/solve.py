"""Triangular and Cholesky-based solves (POTRS).

The Associate phase ends with ``W = (K + alpha*I)^{-1} Ph`` computed as
two triangular solves against the Cholesky factor, both performed in
the full working precision (FP32 in the paper) because the right-hand
side panel ``Ph`` is small (number of phenotypes) and does not benefit
from tensor cores.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.precision.formats import Precision
from repro.precision.quantize import quantize
from repro.linalg.cholesky import CholeskyResult
from repro.tiles.matrix import TileMatrix


def solve_triangular(factor: TileMatrix | np.ndarray, rhs: np.ndarray,
                     lower: bool = True, trans: bool = False,
                     precision: Precision | str = Precision.FP32) -> np.ndarray:
    """Solve ``op(L) X = B`` with a (tiled or dense) triangular factor.

    The solve is performed blockwise by tile columns (forward) or
    reversed (backward), quantizing intermediate panels to the working
    precision after each block update — the same rounding pattern as a
    tile-by-tile runtime execution.
    """
    precision = Precision.from_string(precision)
    rhs64 = np.asarray(rhs, dtype=np.float64)
    if rhs64.ndim == 1:
        rhs64 = rhs64[:, None]
        squeeze = True
    else:
        squeeze = False

    if isinstance(factor, np.ndarray):
        l64 = np.asarray(factor, dtype=np.float64)
        op = l64.T if trans else l64
        x = scipy.linalg.solve_triangular(op, rhs64, lower=(lower != trans))
        x = np.asarray(quantize(x, precision), dtype=np.float64)
        return x[:, 0] if squeeze else x

    layout = factor.layout
    nt = layout.tile_rows
    nb = layout.tile_size
    x = np.array(quantize(rhs64, precision), dtype=np.float64)

    def row_slice(i: int) -> slice:
        return layout.tile_slice(i, 0)[0]

    if (lower and not trans) or (not lower and trans):
        # forward substitution over tile rows
        order = range(nt)
        for i in order:
            ri = row_slice(i)
            acc = x[ri].copy()
            for j in range(i):
                rj = row_slice(j)
                lij = factor.get_tile(i, j).to_float64() if lower else \
                    factor.get_tile(j, i).to_float64().T
                acc -= lij @ x[rj]
                acc = np.asarray(quantize(acc, precision), dtype=np.float64)
            lii = factor.get_tile(i, i).to_float64()
            diag = lii if lower else lii.T
            x[ri] = scipy.linalg.solve_triangular(diag, acc, lower=True)
            x[ri] = np.asarray(quantize(x[ri], precision), dtype=np.float64)
    else:
        # backward substitution over tile rows
        for i in reversed(range(nt)):
            ri = row_slice(i)
            acc = x[ri].copy()
            for j in range(i + 1, nt):
                rj = row_slice(j)
                # op(L)[i, j] with op = transpose of a lower factor
                lji = factor.get_tile(j, i).to_float64() if lower else \
                    factor.get_tile(i, j).to_float64().T
                acc -= lji.T @ x[rj]
                acc = np.asarray(quantize(acc, precision), dtype=np.float64)
            lii = factor.get_tile(i, i).to_float64()
            diag = (lii if lower else lii.T).T
            x[ri] = scipy.linalg.solve_triangular(diag, acc, lower=False)
            x[ri] = np.asarray(quantize(x[ri], precision), dtype=np.float64)

    return x[:, 0] if squeeze else x


def solve_cholesky(factorization: CholeskyResult | TileMatrix | np.ndarray,
                   rhs: np.ndarray,
                   precision: Precision | str = Precision.FP32) -> np.ndarray:
    """POTRS: solve ``A X = B`` given the lower Cholesky factor of ``A``.

    Performs the forward solve ``L Y = B`` followed by the backward
    solve ``L^T X = Y``, both in the given working precision.
    """
    if isinstance(factorization, CholeskyResult):
        factor: TileMatrix | np.ndarray = factorization.factor
    else:
        factor = factorization
    y = solve_triangular(factor, rhs, lower=True, trans=False, precision=precision)
    x = solve_triangular(factor, y, lower=True, trans=True, precision=precision)
    return x


def solve_spd(matrix: np.ndarray, rhs: np.ndarray, tile_size: int,
              working_precision: Precision | str = Precision.FP32,
              precision_map: dict[tuple[int, int], Precision] | None = None) -> np.ndarray:
    """Convenience: factorize + solve a dense SPD system with the tiled solver."""
    from repro.linalg.cholesky import cholesky

    result = cholesky(np.asarray(matrix, dtype=np.float64), tile_size=tile_size,
                      working_precision=working_precision,
                      precision_map=precision_map)
    return solve_cholesky(result, rhs, precision=working_precision)
