"""Tiled mixed-precision dense linear algebra.

Implements the Level-3 BLAS / LAPACK operations the paper's Associate
phase is built from, operating on :class:`~repro.tiles.matrix.TileMatrix`
objects with a per-tile precision mosaic:

* :func:`tile_potrf`, :func:`tile_trsm`, :func:`tile_syrk`,
  :func:`tile_gemm` — single-tile kernels at a chosen precision.
* :func:`cholesky` — the tiled (right-looking) mixed-precision Cholesky
  factorization, optionally driven through the task runtime.
* :func:`solve_triangular`, :func:`solve_cholesky` — forward/backward
  substitution and the full POTRS-style solve.
* :func:`syrk`, :func:`gemm` — tiled drivers for the rank-k update and
  matrix multiply used by the RR and Build phases.
* :func:`cg_solve`, :func:`kernel_matvec` — the tile-native
  preconditioned conjugate-gradient solver behind factor-once
  hyperparameter sweeps (``KRRConfig.solver="cg"``).
* :func:`iterative_refinement_solve` — the classic mixed-precision
  iterative-refinement solver used as a reference comparison.
"""

from repro.linalg.kernels import tile_gemm, tile_potrf, tile_syrk, tile_trsm
from repro.linalg.cholesky import CholeskyResult, cholesky, cholesky_flops
from repro.linalg.solve import solve_cholesky, solve_triangular
from repro.linalg.blas3 import gemm, syrk
from repro.linalg.cg import CGResult, cg_solve, kernel_matvec, resolve_solver
from repro.linalg.refinement import RefinementResult, iterative_refinement_solve

__all__ = [
    "tile_potrf",
    "tile_trsm",
    "tile_syrk",
    "tile_gemm",
    "cholesky",
    "CholeskyResult",
    "cholesky_flops",
    "solve_triangular",
    "solve_cholesky",
    "syrk",
    "gemm",
    "cg_solve",
    "CGResult",
    "kernel_matvec",
    "resolve_solver",
    "iterative_refinement_solve",
    "RefinementResult",
]
