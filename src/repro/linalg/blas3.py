"""Tiled Level-3 BLAS drivers (SYRK and GEMM).

The ridge-regression path of the paper (Sec. V-A) computes
``X^T X`` with a mixed-precision SYRK whose tiles dispatch to the
INT8 integer GEMM when they contain only SNP data and to FP32 when
they contain confounders (Fig. 2), and ``X^T Y`` with a plain FP32
GEMM.  These drivers reproduce that fine-grained dispatch on tiled
operands.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.precision.formats import Precision
from repro.precision.gemm import QuantizedOperand, gemm_mixed, variant_for_input
from repro.precision.quantize import quantize
from repro.resilience.errors import TaskGroupError
from repro.tiles.layout import TileLayout


def _tile_precision_for_columns(col_types: np.ndarray, cols: slice) -> Precision:
    """INT8 when every column in the slice is integer-coded, else FP32.

    ``col_types`` is a boolean array marking integer (SNP) columns; a
    tile is eligible for the integer tensor-core path only when *all*
    of its columns are integer, exactly the per-tile dispatch of Fig. 2
    ("without fine-grained computations, the few FP32 tiles would
    contaminate the MxP SYRK").
    """
    if np.all(col_types[cols]):
        return Precision.INT8
    return Precision.FP32


def syrk(
    x: np.ndarray,
    tile_size: int,
    integer_columns: np.ndarray | None = None,
    output_precision: Precision | str = Precision.FP32,
    accumulate_callback: Callable[[int, Precision], None] | None = None,
) -> np.ndarray:
    """Mixed-precision ``X^T X`` via column-tile rank-k accumulation.

    Parameters
    ----------
    x:
        ``n × p`` design matrix (patients × [SNPs + confounders]).
    tile_size:
        Width of the column panels accumulated per step (the ``k``
        blocking of the SYRK).
    integer_columns:
        Boolean array of length ``p`` marking columns encoded as small
        integers (SNPs).  Panels made solely of integer columns go
        through the emulated INT8 tensor-core GEMM; panels containing
        any real-valued confounder go through FP32.  When omitted, a
        column is considered integer if all its values are integral and
        within [-128, 127].
    output_precision:
        Precision of the accumulated result.
    accumulate_callback:
        Optional hook ``(flops, precision)`` called per panel, used by
        the performance accounting.

    Returns
    -------
    numpy.ndarray
        ``p × p`` symmetric matrix ``X^T X`` in float64 container
        (values on the output precision's grid).
    """
    x = np.asarray(x, dtype=np.float64)
    n, p = x.shape
    output_precision = Precision.from_string(output_precision)
    if integer_columns is None:
        integer_columns = np.array([
            bool(np.all(np.mod(x[:, j], 1) == 0) and np.all(np.abs(x[:, j]) <= 127))
            for j in range(p)
        ])
    integer_columns = np.asarray(integer_columns, dtype=bool)
    if integer_columns.shape != (p,):
        raise ValueError("integer_columns must have one entry per column of X")

    layout = TileLayout(rows=n, cols=p, tile_size=tile_size)
    acc = np.zeros((p, p), dtype=np.float64)

    # accumulate over row panels of X^T X = sum_k X[k,:]^T X[k,:]
    for bi in range(layout.tile_rows):
        rs = layout.tile_slice(bi, 0)[0]
        panel = x[rs, :]
        # quantize the row panel once per input precision it is read at;
        # column-tile products below slice the shared quantized views
        qpanel: dict[Precision, QuantizedOperand] = {}

        def qcols(prec: Precision, cols: slice) -> QuantizedOperand:
            variant_input = variant_for_input(prec).input_precision
            if variant_input not in qpanel:
                qpanel[variant_input] = QuantizedOperand(panel, variant_input)
            return qpanel[variant_input][:, cols]

        # split this row panel by column tiles so integer and float
        # columns use different GEMM variants
        for bj in range(layout.tile_cols):
            cs_j = layout.tile_slice(0, bj)[1]
            pj = _tile_precision_for_columns(integer_columns, cs_j)
            for bk in range(bj, layout.tile_cols):
                cs_k = layout.tile_slice(0, bk)[1]
                pk = _tile_precision_for_columns(integer_columns, cs_k)
                prec = Precision.INT8 if (pj is Precision.INT8 and pk is Precision.INT8) \
                    else Precision.FP32
                variant = variant_for_input(prec)
                block = np.asarray(
                    gemm_mixed(qcols(prec, cs_j), qcols(prec, cs_k),
                               variant=variant, transa=True),
                    dtype=np.float64,
                )
                acc[cs_j, cs_k] += block
                if bj != bk:
                    acc[cs_k, cs_j] += block.T
                if accumulate_callback is not None:
                    flops = 2.0 * panel.shape[0] * block.shape[0] * block.shape[1]
                    accumulate_callback(int(flops), prec)

    acc = (acc + acc.T) / 2.0  # exact symmetrization
    return np.asarray(quantize(acc, output_precision), dtype=np.float64)


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    tile_size: int,
    precision: Precision | str = Precision.FP32,
    transa: bool = False,
    transb: bool = False,
    runtime=None,
    phase: str = "gemm",
    flops_detail=None,
) -> np.ndarray:
    """Tiled mixed-precision GEMM ``op(A) @ op(B)``.

    Used for ``X^T Y`` in the RR path and ``K_test @ W`` in the Predict
    phase, both of which the paper keeps in FP32.

    With ``runtime`` the product runs as one inserted task under the
    runtime's scheduler (the k-block accumulation is order-sensitive,
    so it stays a single task rather than a chain), which lands its
    operation count — split by ``flops_detail`` when the caller folds
    in co-accounted work such as the streamed cross-kernel block — in
    the ``phase`` trace the solver sessions read.
    """
    precision = Precision.from_string(precision)
    if runtime is not None:
        from repro.runtime.task import AccessMode

        runtime.require_drained("gemm()")
        ashape, bshape = np.shape(a), np.shape(b)
        m = ashape[1] if transa else ashape[0]
        n = bshape[0] if transb else bshape[1]
        k = ashape[0] if transa else ashape[1]
        total = (float(sum(flops_detail.values())) if flops_detail
                 else 2.0 * m * n * k)
        from repro.parallel.descriptors import (
            DenseGemmSpec,
            ObjectInput,
            ProcessTaskSpec,
        )

        ns = runtime.namespace("gemm")
        out_h = runtime.register_data(f"{ns}C", shape=(m, n),
                                      precision=precision)
        runtime.insert_task(
            "gemm",
            (out_h, AccessMode.WRITE),
            body=lambda _out: gemm(a, b, tile_size, precision,
                                   transa=transa, transb=transb),
            flops=total, precision=precision,
            flops_detail=flops_detail,
            pspec=ProcessTaskSpec(
                DenseGemmSpec(tile_size, precision, transa, transb),
                mode="aux",
                aux=(ObjectInput(a, key=f"{ns}a"),
                     ObjectInput(b, key=f"{ns}b"))),
        )
        try:
            runtime.run(phase=phase)
            return out_h.payload
        except TaskGroupError:
            runtime.reset_graph()
            raise
        finally:
            runtime.release(ns)
    a = np.asarray(a, dtype=np.float64).T if transa else np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64).T if transb else np.asarray(b, dtype=np.float64)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")

    variant = variant_for_input(precision)
    # quantize both operands once; the k-block loop slices shared views
    qa = QuantizedOperand(a, variant.input_precision)
    qb = QuantizedOperand(b, variant.input_precision)
    out = np.zeros((m, n), dtype=np.float64)
    layout_k = TileLayout(rows=k, cols=1, tile_size=tile_size)
    for bk in range(layout_k.tile_rows):
        ks = layout_k.tile_slice(bk, 0)[0]
        out += np.asarray(
            gemm_mixed(qa[:, ks], qb[ks, :], variant=variant), dtype=np.float64
        )
    return np.asarray(quantize(out, precision), dtype=np.float64)
