"""Single-tile computational kernels at a chosen precision.

These are the task bodies of the tiled algorithms — the Python
equivalents of the cuSOLVER/cuBLAS kernels PaRSEC dispatches per tile:

========  =============================================================
POTRF     Cholesky factorization of a diagonal tile.
TRSM      Triangular solve updating a panel tile.
SYRK      Symmetric rank-k update of a diagonal tile.
GEMM      General update of an off-diagonal tile.
========  =============================================================

Each kernel quantizes its inputs to the requested *compute* precision,
performs the operation with a wider accumulator where the hardware
would (FP32 accumulation for FP16/FP8 tensor-core GEMM/SYRK), and
returns the result in float64 so the caller decides the storage
precision of the output tile.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.precision.formats import Precision
from repro.precision.gemm import (
    QuantizedOperand,
    gemm_mixed,
    syrk_mixed,
    variant_for_input,
)
from repro.precision.quantize import quantize


def _as64(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def panel_operand(tile: np.ndarray, precision: Precision | str) -> QuantizedOperand:
    """Pre-quantize a panel tile for reuse across trailing updates.

    The Cholesky trailing update reads each panel tile ``L[i,k]`` once
    per destination tile in its block row/column; wrapping it in a
    :class:`QuantizedOperand` at the update variant's input precision
    makes the repeated quantization a cache hit.
    """
    precision = Precision.from_string(precision)
    variant = variant_for_input(precision if precision.is_float else Precision.FP32)
    return QuantizedOperand(np.asarray(tile), variant.input_precision)


def tile_potrf(a: np.ndarray, precision: Precision | str = Precision.FP64,
               lower: bool = True) -> np.ndarray:
    """Cholesky factorization of one (symmetric positive definite) tile.

    The factorization itself runs in the requested precision's value
    grid: the input is quantized, the factorization is done in float64
    host arithmetic and the factor is re-quantized, which models a
    hardware POTRF whose dominant error is the storage rounding.
    Raises ``numpy.linalg.LinAlgError`` if the tile is not positive
    definite at the chosen precision — the same failure low-precision
    hardware hits when regularization is too small, which is why the
    paper keeps diagonal tiles in the working precision.
    """
    precision = Precision.from_string(precision)
    aq = _as64(quantize(_as64(a), precision))
    factor = np.linalg.cholesky(aq)  # raises LinAlgError if not SPD
    if not lower:
        factor = factor.T
    return _as64(quantize(factor, precision))


def tile_trsm(l_tile: np.ndarray, b_tile: np.ndarray,
              precision: Precision | str = Precision.FP64,
              side: str = "right", lower: bool = True,
              trans: bool = True) -> np.ndarray:
    """Triangular solve kernel.

    Default mode (``side="right"``, ``trans=True``) computes
    ``X = B @ L^{-T}``, the update applied to panel tiles below the
    diagonal in the right-looking tiled Cholesky.
    """
    precision = Precision.from_string(precision)
    t64 = _as64(quantize(_as64(l_tile), precision))
    b64 = _as64(quantize(_as64(b_tile), precision))

    if side == "left" and not trans:
        # T X = B
        x = scipy.linalg.solve_triangular(t64, b64, lower=lower)
    elif side == "left" and trans:
        # T^T X = B
        x = scipy.linalg.solve_triangular(t64.T, b64, lower=not lower)
    elif side == "right" and not trans:
        # X T = B  ->  T^T X^T = B^T
        x = scipy.linalg.solve_triangular(t64.T, b64.T, lower=not lower).T
    elif side == "right" and trans:
        # X T^T = B  ->  T X^T = B^T
        x = scipy.linalg.solve_triangular(t64, b64.T, lower=lower).T
    else:
        raise ValueError("side must be 'left' or 'right'")
    return _as64(quantize(x, precision))


def tile_syrk(a_tile: np.ndarray, c_tile: np.ndarray,
              precision: Precision | str = Precision.FP64,
              alpha: float = -1.0, beta: float = 1.0) -> np.ndarray:
    """Symmetric rank-k update ``C = alpha * A @ A.T + beta * C`` on one tile.

    For FP16/FP8 compute precisions the product accumulates in FP32
    (tensor-core behaviour).  The Gram product runs through the BLAS
    ``?syrk`` triangular update of :func:`repro.precision.gemm.syrk_mixed`
    (half the flops of the full GEMM the historical path used).
    """
    precision = Precision.from_string(precision)
    variant = variant_for_input(precision) if precision.is_float else variant_for_input(Precision.FP32)
    prod = _as64(syrk_mixed(a_tile, variant=variant))
    c64 = _as64(quantize(_as64(c_tile), precision))
    out = alpha * prod + beta * c64
    return _as64(quantize(out, precision))


def tile_gemm(a_tile: np.ndarray, b_tile: np.ndarray, c_tile: np.ndarray,
              precision: Precision | str = Precision.FP64,
              alpha: float = -1.0, beta: float = 1.0,
              transa: bool = False, transb: bool = True) -> np.ndarray:
    """General tile update ``C = alpha * op(A) @ op(B) + beta * C``.

    This is the kernel that dominates the Associate phase; its compute
    precision is what the adaptive mosaic lowers to FP16/FP8.
    """
    precision = Precision.from_string(precision)
    variant = variant_for_input(precision) if precision.is_float else variant_for_input(Precision.FP32)
    prod = _as64(gemm_mixed(a_tile, b_tile, variant=variant,
                            transa=transa, transb=transb))
    c64 = _as64(quantize(_as64(c_tile), precision))
    out = alpha * prod + beta * c64
    return _as64(quantize(out, precision))


def potrf_flops(nb: int) -> float:
    """Operation count of a POTRF on an ``nb × nb`` tile."""
    return nb ** 3 / 3.0 + nb ** 2 / 2.0 + nb / 6.0


def trsm_flops(nb: int, mb: int) -> float:
    """Operation count of a TRSM updating an ``mb × nb`` tile."""
    return float(mb) * nb * nb


def syrk_flops(nb: int, kb: int) -> float:
    """Operation count of a rank-``kb`` SYRK on an ``nb × nb`` tile."""
    return float(nb) * (nb + 1) * kb


def gemm_flops(mb: int, nb: int, kb: int) -> float:
    """Operation count of an ``mb×kb @ kb×nb`` GEMM."""
    return 2.0 * mb * nb * kb
