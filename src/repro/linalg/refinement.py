"""Mixed-precision iterative refinement (reference solver).

Section V-B2 of the paper contrasts the tile-adaptive approach with the
classical mixed-precision *iterative refinement* strategy: factorize in
low precision, then refine the solution with residuals computed in high
precision.  Iterative refinement recovers full accuracy even for
ill-conditioned systems, at the cost of storing the operator in more
than one precision.  We implement it both as a correctness reference
and as an ablation baseline for the memory-footprint comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.precision.formats import Precision
from repro.precision.quantize import quantize


@dataclass
class RefinementResult:
    """Solution and convergence history of iterative refinement."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def iterative_refinement_solve(
    a: np.ndarray,
    b: np.ndarray,
    factor_precision: Precision | str = Precision.FP16,
    residual_precision: Precision | str = Precision.FP64,
    solution_precision: Precision | str = Precision.FP32,
    tol: float = 1e-6,
    max_iterations: int = 50,
) -> RefinementResult:
    """Solve an SPD system ``A x = b`` by mixed-precision iterative refinement.

    The factorization of ``A`` is performed on the matrix quantized to
    ``factor_precision``; each refinement step computes the residual in
    ``residual_precision`` and accumulates the correction in
    ``solution_precision``.

    Parameters
    ----------
    a:
        Symmetric positive-definite matrix.
    b:
        Right-hand side (vector or panel).
    tol:
        Convergence threshold on the relative residual
        ``||b - A x|| / (||A|| ||x|| + ||b||)``.
    max_iterations:
        Refinement iteration cap.
    """
    factor_precision = Precision.from_string(factor_precision)
    residual_precision = Precision.from_string(residual_precision)
    solution_precision = Precision.from_string(solution_precision)

    a64 = np.asarray(a, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    if b64.ndim == 1:
        b64 = b64[:, None]
        squeeze = True
    else:
        squeeze = False

    a_low = np.asarray(quantize(a64, factor_precision), dtype=np.float64)
    # Low-precision quantization can destroy positive definiteness for
    # ill-conditioned matrices; nudge the diagonal if needed, as
    # low-precision factorization codes do in practice.
    jitter = 0.0
    for _ in range(40):
        try:
            chol = scipy.linalg.cho_factor(
                a_low + jitter * np.eye(a_low.shape[0]), lower=True
            )
            break
        except np.linalg.LinAlgError:
            jitter = max(jitter * 10.0, 1e-8 * np.trace(a_low) / a_low.shape[0])
    else:  # pragma: no cover - defensive
        raise np.linalg.LinAlgError("could not factorize the low-precision matrix")

    norm_a = np.linalg.norm(a64, ord="fro")
    norm_b = np.linalg.norm(b64)

    x = np.zeros_like(b64)
    residual_norms: list[float] = []
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        r = np.asarray(
            quantize(b64 - a64 @ x, residual_precision), dtype=np.float64
        )
        res_norm = float(np.linalg.norm(r))
        residual_norms.append(res_norm)
        denom = norm_a * np.linalg.norm(x) + norm_b
        if denom > 0 and res_norm / denom <= tol:
            converged = True
            break
        correction = scipy.linalg.cho_solve(chol, r)
        x = np.asarray(quantize(x + correction, solution_precision), dtype=np.float64)

    result_x = x[:, 0] if squeeze else x
    return RefinementResult(
        x=result_x,
        iterations=iterations,
        converged=converged,
        residual_norms=residual_norms,
    )
