"""repro — Mixed-Precision Kernel Ridge Regression for multivariate GWAS.

Reproduction of Ltaief et al., "Toward Capturing Genetic Epistasis From
Multivariate Genome-Wide Association Studies Using Mixed-Precision Kernel
Ridge Regression" (SC 2024, Gordon Bell finalist).

The package is organised around the paper's three-phase KRR workflow
(Build / Associate / Predict) and the substrates it depends on:

``repro.precision``
    Software-emulated low-precision arithmetic (FP64/FP32/FP16/BF16,
    FP8 E4M3/E5M2, INT8) and the tensor-core style mixed-precision
    GEMM/SYRK variants used throughout the paper.
``repro.tiles``
    Tiled matrix storage with a per-tile precision mosaic, the
    tile-centric adaptive precision rule, and band ("rainbow")
    precision assignments.
``repro.runtime``
    A PaRSEC-like dynamic task runtime: task DAGs, a dataflow
    scheduler over simulated devices, and a communication engine that
    decides whether precision conversion happens at the sender or the
    receiver.
``repro.linalg``
    Tiled mixed-precision Cholesky factorization, triangular solves,
    SYRK and GEMM drivers built on the tile kernels.
``repro.distance``
    GEMM-form squared Euclidean distances (the INT8 tensor-core trick),
    Gaussian and IBS kernels, and the fused Build phase.
``repro.gwas``
    The paper's contribution: ridge regression (RR) and kernel ridge
    regression (KRR) multivariate GWAS with mixed-precision plans,
    metrics, and cross-validation, organised around the tile-native
    solver sessions (``repro.api`` is the stable facade).
``repro.data``
    Synthetic genotype/phenotype generation (LD-block and coalescent
    simulators, UK-BioBank-like cohorts) replacing the restricted-access
    datasets used in the paper.
``repro.baselines``
    Univariate GWAS, REGENIE-like stacked ridge regression, and a
    GRM-based linear mixed model.
``repro.perfmodel``
    Machine/system performance models used to regenerate the paper's
    supercomputer-scale performance figures.
``repro.experiments``
    One driver per paper table/figure.
"""

from repro.precision import Precision
from repro.data.dataset import GWASDataset, TrainTestSplit
from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig
from repro.gwas.krr import KernelRidgeRegressionGWAS
from repro.gwas.metrics import mspe, pearson_correlation
from repro.gwas.ridge import RidgeRegressionGWAS
from repro.gwas.session import KRRSession, RRSession

__all__ = [
    "Precision",
    "GWASDataset",
    "TrainTestSplit",
    "KRRSession",
    "RRSession",
    "RidgeRegressionGWAS",
    "KernelRidgeRegressionGWAS",
    "KRRConfig",
    "RRConfig",
    "PrecisionPlan",
    "mspe",
    "pearson_correlation",
]

__version__ = "1.0.0"
