"""Kernel functions for KRR (Algorithm 5 of the paper).

Two kernel families are implemented:

* The **Gaussian (RBF) kernel** ``k(p1, p2) = exp(-gamma * ||p1 - p2||^2)``,
  the kernel the paper uses for its accuracy and performance results
  (γ = 0.01 in Fig. 5).
* The **IBS (identical-by-state) kernel** from SKAT,
  ``k(p1, p2) = (number of shared alleles) / (2 * NS)``, which counts,
  per SNP, how many of the two alleles two individuals share
  (2 - |g1 - g2| for genotypes coded 0/1/2).
"""

from __future__ import annotations

import numpy as np


def gaussian_kernel(sq_distances: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel from precomputed squared distances.

    ``K = exp(-gamma * D)`` applied element-wise; this is the
    exponentiation fused into the Build phase tile release in the paper.
    """
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    d = np.asarray(sq_distances, dtype=np.float64)
    return np.exp(-gamma * d)


def gaussian_kernel_pairwise(g1: np.ndarray, g2: np.ndarray | None, gamma: float,
                             precision="int8") -> np.ndarray:
    """Gaussian kernel computed end-to-end from genotype matrices."""
    from repro.distance.euclidean import squared_euclidean_gemm

    d = squared_euclidean_gemm(g1, g2, precision=precision)
    return gaussian_kernel(d, gamma)


def ibs_kernel(g1: np.ndarray, g2: np.ndarray | None = None) -> np.ndarray:
    """Identical-by-state kernel for genotypes coded 0/1/2.

    For two individuals with genotypes ``a`` and ``b`` at one biallelic
    SNP, the number of alleles identical by state is ``2 - |a - b|``
    (2 when equal, 1 when they differ by one, 0 when one is 0 and the
    other 2).  The kernel averages this over SNPs and normalizes by the
    2 alleles per locus, giving values in [0, 1] with 1 on the diagonal.
    """
    g1 = np.asarray(g1, dtype=np.float64)
    g2v = g1 if g2 is None else np.asarray(g2, dtype=np.float64)
    ns = g1.shape[1]
    if g2v.shape[1] != ns:
        raise ValueError("genotype matrices must have the same number of SNPs")
    if ns == 0:
        raise ValueError("at least one SNP is required")
    # sum over SNPs of |a - b| via the L1 distance
    l1 = np.abs(g1[:, None, :] - g2v[None, :, :]).sum(axis=2)
    shared = 2.0 * ns - l1
    return shared / (2.0 * ns)


def ibs_kernel_gemm(g1: np.ndarray, g2: np.ndarray | None = None) -> np.ndarray:
    """IBS kernel computed with GEMM-friendly one-hot encoding.

    ``|a - b|`` summed over SNPs can be obtained from inner products of
    the one-hot encoded genotypes, turning the IBS kernel into matrix
    products just like the Gaussian kernel — the "similarity kernels
    recast as distance kernels" observation of the paper's conclusions.
    """
    g1 = np.asarray(g1)
    g2v = g1 if g2 is None else np.asarray(g2)
    ns = g1.shape[1]
    if ns == 0:
        raise ValueError("at least one SNP is required")

    def one_hot(g: np.ndarray) -> np.ndarray:
        g = np.clip(np.rint(g).astype(np.int64), 0, 2)
        n, s = g.shape
        out = np.zeros((n, s, 3), dtype=np.float64)
        rows = np.repeat(np.arange(n), s)
        cols = np.tile(np.arange(s), n)
        out[rows, cols, g.ravel()] = 1.0
        return out.reshape(n, s * 3)

    h1 = one_hot(g1)
    h2 = one_hot(g2v)
    # matches[i, j] = number of SNPs where genotypes are equal
    matches = h1 @ h2.T
    # |a-b| in {0,1,2}: compute expected genotype dosage inner products
    dose1 = np.clip(np.rint(np.asarray(g1, dtype=np.float64)), 0, 2)
    dose2 = np.clip(np.rint(np.asarray(g2v, dtype=np.float64)), 0, 2)
    # sum |a-b| = sum (a + b) - 2*sum min(a,b); min is awkward in GEMM form,
    # instead use: |a-b| = a + b - 2ab + 2*[a==2][b==2]*... — simpler to use
    # the identity through squared distance for 0/1/2 data:
    # |a-b| in {0,1,2} and (a-b)^2 in {0,1,4}: |a-b| = ((a-b)^2 + |a-b|)/2 …
    # Use exact relation: for values in {0,1,2}, |a-b| = (a-b)^2 - 2*I[|a-b|=2]
    # where I[|a-b|=2] = I[a=0,b=2] + I[a=2,b=0].
    sq = (
        np.einsum("ij,ij->i", dose1, dose1)[:, None]
        + np.einsum("ij,ij->i", dose2, dose2)[None, :]
        - 2.0 * dose1 @ dose2.T
    )
    a0 = (dose1 == 0).astype(np.float64)
    a2 = (dose1 == 2).astype(np.float64)
    b0 = (dose2 == 0).astype(np.float64)
    b2 = (dose2 == 2).astype(np.float64)
    extreme = a0 @ b2.T + a2 @ b0.T
    l1 = sq - 2.0 * extreme
    shared = 2.0 * ns - l1
    del matches  # retained only to document the one-hot equality count path
    return shared / (2.0 * ns)


def kernel_from_distance(sq_distances: np.ndarray, kernel_type: str = "gaussian",
                         gamma: float = 0.01) -> np.ndarray:
    """Apply a kernel function to a precomputed squared-distance matrix."""
    if kernel_type.lower() == "gaussian":
        return gaussian_kernel(sq_distances, gamma)
    raise ValueError(
        f"kernel {kernel_type!r} cannot be computed from distances alone; "
        "use ibs_kernel for the IBS kernel"
    )
