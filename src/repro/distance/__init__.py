"""Distance computations and kernel-matrix construction (the Build phase).

Implements Sec. V-B1 and VI-B2 of the paper:

* :func:`squared_euclidean_gemm` — the GEMM-form squared Euclidean
  distance trick: fold per-patient squared norms into a vector ``d``
  and accumulate ``D = d·1ᵀ + 1·dᵀ − 2·G·Gᵀ`` with an (INT8) SYRK, so
  the instruction-bound pairwise distance computation becomes a
  compute-bound matrix product.
* :func:`gaussian_kernel` / :func:`ibs_kernel` — the kernel functions of
  Algorithm 5.
* :class:`KernelBuilder` / :func:`build_kernel_matrix` — the fused,
  tile-wise Build phase producing the KRR matrix ``K`` (optionally as a
  :class:`~repro.tiles.matrix.TileMatrix` with adaptive per-tile
  precisions), with the integer SNP contribution and the floating-point
  confounder contribution accumulated separately.
"""

from repro.distance.euclidean import (
    squared_euclidean_direct,
    squared_euclidean_gemm,
    squared_norms,
)
from repro.distance.kernels import gaussian_kernel, ibs_kernel, kernel_from_distance
from repro.distance.build import (
    BuildResult,
    BuildStats,
    KernelBuilder,
    build_kernel_matrix,
)

__all__ = [
    "squared_norms",
    "squared_euclidean_gemm",
    "squared_euclidean_direct",
    "gaussian_kernel",
    "ibs_kernel",
    "kernel_from_distance",
    "KernelBuilder",
    "BuildResult",
    "BuildStats",
    "build_kernel_matrix",
]
