"""GEMM-form squared Euclidean distances with the INT8 tensor-core path.

The key Build-phase innovation of the paper (Sec. V-B1): for the
patients-by-SNPs matrix ``G`` with integer genotypes {0, 1, 2}, all
pairwise squared distances satisfy

    ||g_i - g_j||^2 = ||g_i||^2 + ||g_j||^2 - 2 * <g_i, g_j>,

so the full distance matrix is

    D = d 1^T + 1 d^T - 2 G G^T,

where ``d`` holds the per-patient squared norms.  ``G G^T`` is a
symmetric rank-k update that maps straight onto INT8 tensor cores
(operands INT8, accumulation INT32) because genotypes are small
integers; the squared norms are folded into a single vector rather than
a full matrix (the memory-footprint optimization of Sec. VI-B2); and
real-valued confounder columns are accumulated separately in FP32 and
added before the kernel exponentiation.
"""

from __future__ import annotations

import numpy as np

from repro.precision.formats import Precision
from repro.precision.gemm import (
    QuantizedOperand,
    gemm_mixed,
    syrk_flop_count,
    variant_for_input,
)


def squared_norms(g: np.ndarray, integer: bool = True) -> np.ndarray:
    """Per-row squared Euclidean norms (the folded ``d`` vector).

    For integer genotype data the norms are computed exactly in int64;
    for real-valued confounders in float64.
    """
    g = np.asarray(g)
    if integer:
        if np.issubdtype(g.dtype, np.integer):
            # einsum widens to the accumulation dtype internally —
            # exact, and skips a full int64 copy of the matrix
            return np.einsum("ij,ij->i", g, g, dtype=np.int64)
        gi = g.astype(np.int64)
        return np.einsum("ij,ij->i", gi, gi).astype(np.int64)
    gf = g.astype(np.float64)
    return np.einsum("ij,ij->i", gf, gf)


def _gram(g1: np.ndarray, g2: np.ndarray, precision: Precision,
          snp_block: int) -> np.ndarray:
    """Blocked ``G1 @ G2.T`` in the requested input precision.

    The SNP dimension is processed in blocks of ``snp_block`` columns so
    the INT32 accumulator cannot overflow even for millions of SNPs
    (each partial product is at most ``4 * snp_block``); partial sums
    are carried in float64 on the host, mirroring the per-tile
    accumulation into the C operand on the GPU.
    """
    g1 = np.asarray(g1)
    g2 = np.asarray(g2)
    ns = g1.shape[1]
    if g2.shape[1] != ns:
        raise ValueError("G1 and G2 must have the same number of columns")
    variant = variant_for_input(
        precision if precision in (
            Precision.INT8, Precision.FP64, Precision.FP32,
            Precision.FP16, Precision.FP8_E4M3,
        ) else Precision.FP32)

    # quantize each side once; the block loop slices shared views
    q1 = QuantizedOperand(g1, variant.input_precision)
    q2 = q1 if g2 is g1 else QuantizedOperand(g2, variant.input_precision)
    if (variant.accumulate_precision.is_integer
            and q1.max_abs() * q2.max_abs() * ns <= float(np.iinfo(np.int32).max)):
        # total INT32 accumulation provably safe: one fused dgemm
        return np.asarray(
            gemm_mixed(q1, q2, variant=variant, transb=True), dtype=np.float64)
    out = np.zeros((g1.shape[0], g2.shape[0]), dtype=np.float64)
    for start in range(0, ns, snp_block):
        stop = min(start + snp_block, ns)
        out += np.asarray(
            gemm_mixed(q1[:, start:stop], q2[:, start:stop],
                       variant=variant, transb=True),
            dtype=np.float64,
        )
    return out


def squared_euclidean_gemm(
    g1: np.ndarray,
    g2: np.ndarray | None = None,
    precision: Precision | str = Precision.INT8,
    snp_block: int = 4096,
) -> np.ndarray:
    """All-pairs squared Euclidean distances via the GEMM trick.

    Parameters
    ----------
    g1:
        ``n1 × ns`` matrix (rows are patients).
    g2:
        Optional ``n2 × ns`` matrix; defaults to ``g1`` (the symmetric
        training-kernel case, where the Gram part is a SYRK).
    precision:
        Input precision of the Gram product.  ``INT8`` (default) is
        exact for genotype data; float precisions model pushing
        real-valued data through the same path.
    snp_block:
        Column blocking of the SNP dimension (keeps INT32 partial sums
        in range and bounds temporary memory, per Sec. VI-B2).

    Returns
    -------
    numpy.ndarray
        ``n1 × n2`` matrix of squared distances (float64 container).
        For ``g2 is None`` the diagonal is exactly zero.
    """
    precision = Precision.from_string(precision)
    g1 = np.asarray(g1)
    symmetric = g2 is None
    g2v = g1 if symmetric else np.asarray(g2)

    integer_input = precision.is_integer
    d1 = squared_norms(g1, integer=integer_input).astype(np.float64)
    d2 = d1 if symmetric else squared_norms(g2v, integer=integer_input).astype(np.float64)

    gram = _gram(g1, g2v, precision, snp_block)
    dist = d1[:, None] + d2[None, :] - 2.0 * gram
    # numerical floor: distances cannot be negative; integer path is exact
    np.maximum(dist, 0.0, out=dist)
    if symmetric:
        np.fill_diagonal(dist, 0.0)
    return dist


def squared_euclidean_direct(g1: np.ndarray, g2: np.ndarray | None = None) -> np.ndarray:
    """Reference pairwise squared distances (no GEMM trick), float64.

    Used by tests to verify the GEMM formulation and by the ablation
    benchmark comparing the instruction-bound and compute-bound forms.
    """
    g1 = np.asarray(g1, dtype=np.float64)
    g2v = g1 if g2 is None else np.asarray(g2, dtype=np.float64)
    diff = g1[:, None, :] - g2v[None, :, :]
    out = np.einsum("ijk,ijk->ij", diff, diff)
    if g2 is None:
        np.fill_diagonal(out, 0.0)
    return out


def distance_flop_count(n1: int, n2: int, ns: int, symmetric: bool = True) -> float:
    """Operation count of the GEMM-form distance computation.

    Dominated by the Gram product: a SYRK (``n*(n+1)*ns``) in the
    symmetric case, a GEMM (``2*n1*n2*ns``) otherwise, plus the rank-1
    norm updates.
    """
    if symmetric and n1 == n2:
        return float(syrk_flop_count(n1, ns)) + 2.0 * n1 * n1
    return 2.0 * n1 * n2 * ns + 2.0 * n1 * n2
