"""The fused, tile-wise Build phase (Algorithm 2 + Sec. VI-B2).

``KernelBuilder`` produces the KRR matrix ``K`` tile by tile:

1. the per-patient squared norms of the SNP part are folded into a
   single vector (never a full matrix),
2. each tile of the Gram product ``G G^T`` is computed with the INT8
   tensor-core GEMM variant dispatched through BLAS (the genotype
   matrix is quantized **once** into a
   :class:`~repro.precision.gemm.QuantizedOperand`, not once per tile),
3. confounder (real-valued) columns contribute a separate FP32 Gram
   accumulation,
4. the squared distance tile is assembled, the Gaussian exponentiation
   is fused in before the tile is released, and
5. the finished tile is **streamed** straight into the output
   :class:`~repro.tiles.matrix.TileMatrix` (or the dense cross-kernel
   array) at the requested storage precision.

The symmetric training Build never materializes the full dense FP64
kernel: tiles flow from the tile-row task loop into symmetric tile
storage, and the adaptive precision rule is applied tile-wise from the
streamed container.  Peak dense temporaries are a handful of single
tiles, tracked in :class:`BuildStats` so tests can assert the memory
behaviour.

Concurrency is owned by the task runtime, not by this module: each
block row of tiles becomes a *row task* (the Gram/distance/kernel
pipeline, BLAS releases the GIL) and a *consume task* (streaming the
finished row into tile storage).  Consume tasks read-write the shared
output handle, so the derived dependency chain serializes all
container mutation on one worker while row tasks of different rows
execute out of order — the same separation the hand-rolled thread pool
provided, now expressed as dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.distance.euclidean import distance_flop_count, squared_norms
from repro.distance.kernels import gaussian_kernel, ibs_kernel
from repro.precision.formats import Precision
from repro.precision.gemm import (
    QuantizedOperand,
    gemm_mixed,
    integer_gemm_dtype,
    variant_for_input,
)
from repro.parallel.descriptors import (
    BuildRowSpec,
    ObjectInput,
    ProcessTaskSpec,
)
from repro.resilience.errors import TaskGroupError
from repro.runtime.runtime import Runtime, resolve_execution, resolve_workers
from repro.runtime.task import AccessMode
from repro.tiles.adaptive import AdaptivePrecisionRule, decide_tile_precisions
from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TileMatrix


@dataclass
class BuildStats:
    """Allocation/execution accounting of one Build run.

    Attributes
    ----------
    max_dense_temp_elements:
        Largest dense float64 temporary allocated by any single tile
        task (gram/distance/kernel tile).  For the streamed symmetric
        Build this stays at one tile (``tile_size**2``) instead of the
        full ``n**2`` the historical dense staging required.
    dense_staging_elements:
        Elements of full dense staging arrays allocated (0 for the
        streamed training Build; ``n1*n2`` for the rectangular cross
        kernel, whose dense array is the *output*, not a temporary).
    tile_tasks:
        Number of tile tasks executed.
    workers:
        Worker threads used by the tile loop.
    """

    max_dense_temp_elements: int = 0
    dense_staging_elements: int = 0
    tile_tasks: int = 0
    workers: int = 1

    def note_temp(self, n_elements: int) -> None:
        if n_elements > self.max_dense_temp_elements:
            self.max_dense_temp_elements = n_elements


@dataclass
class BuildResult:
    """Output of the Build phase.

    Attributes
    ----------
    kernel:
        The kernel matrix as a :class:`TileMatrix` (training case,
        symmetric) or dense array (rectangular test-vs-train case).
    flops:
        Total operation count of the phase.
    flops_by_precision:
        Operation count split by compute precision.
    precision_map:
        Per-tile storage precisions when adaptive storage was requested.
    stats:
        Allocation/execution accounting (:class:`BuildStats`).
    """

    kernel: TileMatrix | np.ndarray
    flops: float = 0.0
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)
    precision_map: dict[tuple[int, int], Precision] | None = None
    stats: BuildStats = field(default_factory=BuildStats)

    def to_dense(self) -> np.ndarray:
        if isinstance(self.kernel, TileMatrix):
            return self.kernel.to_dense()
        return np.asarray(self.kernel)


@dataclass
class _OperandContext:
    """Shared read-only operand state of one kernel computation.

    Prepared once per Build/Predict call (quantization, float casts,
    squared norms, confounder Gram inputs) and then read by every row
    block — whether the rows are consumed tile-by-tile by the streamed
    training Build or batch-by-batch by the streamed Predict phase.
    """

    n1: int
    n2: int
    ns: int
    q1: QuantizedOperand
    q2: QuantizedOperand
    d1: np.ndarray
    d2: np.ndarray
    qc1: QuantizedOperand | None
    qc2: QuantizedOperand | None
    e1: np.ndarray | None
    e2: np.ndarray | None
    n_conf: int
    snp_variant: object
    conf_variant: object
    fuse_snp_blocks: bool


def compute_kernel_rows(ctx: _OperandContext, gamma: float, snp_block: int,
                        rs: slice, cs: slice) -> np.ndarray:
    """Dense Gaussian-kernel block for rows ``rs`` × columns ``cs``.

    Module-level (rather than a :class:`KernelBuilder` method) so the
    process backend's ``BuildRowSpec`` descriptor can name it with only
    scalar parameters: a worker receives the pickled operand context
    and recomputes the exact fused Gram/distance/exponentiation
    pipeline the in-process path runs — the INT8 Gram is exact integer
    arithmetic and the elementwise assembly is per-element, so results
    are bitwise identical for any row batching and any executor.
    """
    mb = rs.stop - rs.start
    nb = cs.stop - cs.start
    # --- integer (SNP) Gram contribution, blocked over SNPs
    if ctx.fuse_snp_blocks:
        gram = np.asarray(
            gemm_mixed(ctx.q1[rs, :], ctx.q2[cs, :],
                       variant=ctx.snp_variant, transb=True),
            dtype=np.float64,
        )
    else:
        gram = np.zeros((mb, nb), dtype=np.float64)
        for s0 in range(0, ctx.ns, snp_block):
            s1 = min(s0 + snp_block, ctx.ns)
            gram += np.asarray(
                gemm_mixed(ctx.q1[rs, s0:s1], ctx.q2[cs, s0:s1],
                           variant=ctx.snp_variant, transb=True),
                dtype=np.float64,
            )
    dist = ctx.d1[rs, None] + ctx.d2[None, cs] - 2.0 * gram

    # --- confounder FP32 contribution accumulated separately
    if ctx.qc1 is not None and ctx.n_conf > 0:
        gram_c = np.asarray(
            gemm_mixed(ctx.qc1[rs, :], ctx.qc2[cs, :],
                       variant=ctx.conf_variant, transb=True),
            dtype=np.float64,
        )
        dist += ctx.e1[rs, None] + ctx.e2[None, cs] - 2.0 * gram_c

    np.maximum(dist, 0.0, out=dist)
    # fused exponentiation before the row block is released
    return gaussian_kernel(dist, gamma)


@dataclass
class TrainOperands:
    """Cached train-side GEMM operand state for cross-kernel builds.

    A serving session predicts many test cohorts against one fixed
    training panel; quantizing that panel, materializing its float
    casts and folding its squared norms is the dominant *fixed* cost of
    each predict call.  :meth:`KernelBuilder.train_operands` prepares
    this state once and :meth:`KernelBuilder.iter_cross_rows` accepts
    it back, so a micro-batch of requests pays the preparation once.

    Reuse is bitwise-safe: the cached values are produced by exactly
    the code the uncached path runs, on the same arrays.
    """

    genotypes: np.ndarray
    confounders: np.ndarray | None
    snp_precision: Precision
    confounder_precision: Precision
    q: QuantizedOperand
    d: np.ndarray
    qc: QuantizedOperand | None
    e: np.ndarray | None

    def check_compatible(self, train_genotypes: np.ndarray,
                         train_confounders: np.ndarray | None,
                         snp_precision: Precision,
                         confounder_precision: Precision) -> None:
        """Reject reuse against a different panel or input precision."""
        if self.genotypes is not train_genotypes:
            raise ValueError(
                "TrainOperands were prepared for a different training "
                "genotype matrix")
        if (self.confounders is None) != (train_confounders is None) or (
                self.confounders is not None
                and self.confounders is not train_confounders):
            raise ValueError(
                "TrainOperands were prepared for different confounders")
        if (self.snp_precision is not snp_precision
                or self.confounder_precision is not confounder_precision):
            raise ValueError(
                "TrainOperands were prepared under different input "
                "precisions")


@dataclass
class CrossRowBlock:
    """One streamed row batch of the rectangular cross kernel.

    Attributes
    ----------
    rows:
        Row slice of the test cohort this block covers.
    kernel:
        ``(batch, n_train)`` dense kernel block (float64 container).
    flops:
        Operation count of the block.
    flops_by_precision:
        The block's operation count split by compute precision.
    """

    rows: slice
    kernel: np.ndarray
    flops: float
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)


@dataclass
class KernelBuilder:
    """Configurable Build-phase driver.

    Parameters
    ----------
    kernel_type:
        ``"gaussian"`` (default, the paper's kernel) or ``"ibs"``.
    gamma:
        Gaussian bandwidth (paper uses 0.01).
    tile_size:
        Tile edge of the produced kernel matrix.
    snp_precision:
        Input precision of the SNP Gram product (INT8 reproduces the
        tensor-core path; FP32/FP64 give reference results).
    confounder_precision:
        Precision of the confounder Gram accumulation (FP32 in the paper).
    adaptive_rule:
        When given, finished tiles are stored at the precision the rule
        selects (producing the Fig. 4 mosaic); otherwise tiles are stored
        at ``storage_precision``.
    storage_precision:
        Uniform storage precision when no adaptive rule is given.
    snp_block:
        Column blocking of the SNP dimension inside each Gram tile.
    workers:
        Worker threads of the tile-row tasks (BLAS releases the GIL, so
        tile GEMMs genuinely overlap).  ``None`` resolves through
        ``REPRO_WORKERS`` and then ``min(8, cpu_count)``; 1 drains the
        task DAG serially.  Ignored when an external ``runtime`` is
        given (the runtime owns concurrency).
    execution:
        Execution mode of an internally created runtime (``"threaded"``
        by default; ``None`` resolves ``REPRO_EXECUTION``).
    runtime:
        Optional session-long :class:`~repro.runtime.runtime.Runtime`.
        When given, Build tasks are inserted there and the run is
        tagged with ``trace_phase``, feeding the session's trace-based
        flop accounting.
    trace_phase:
        Phase label of the runtime runs (``"build"``; the solver
        sessions relabel their Predict-phase cross-kernel builds).
    store:
        Optional :class:`~repro.store.TileStore`.  The streamed
        training kernel is built **store-backed**: each finished block
        row lands in budget-managed tile storage, so rows spill to disk
        as they are consumed and the resident mosaic never exceeds the
        store budget — the Build phase's out-of-core mode.  Values are
        bitwise identical to the unbudgeted Build.
    """

    kernel_type: str = "gaussian"
    gamma: float = 0.01
    tile_size: int = 64
    snp_precision: Precision | str = Precision.INT8
    confounder_precision: Precision | str = Precision.FP32
    adaptive_rule: AdaptivePrecisionRule | None = None
    storage_precision: Precision | str = Precision.FP32
    snp_block: int = 4096
    workers: int | None = None
    execution: str | None = None
    runtime: Runtime | None = None
    trace_phase: str = "build"
    store: object | None = None

    def __post_init__(self) -> None:
        self.snp_precision = Precision.from_string(self.snp_precision)
        self.confounder_precision = Precision.from_string(self.confounder_precision)
        self.storage_precision = Precision.from_string(self.storage_precision)
        if self.kernel_type.lower() not in ("gaussian", "ibs"):
            raise ValueError("kernel_type must be 'gaussian' or 'ibs'")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")

    # ------------------------------------------------------------------
    def build_training(self, genotypes: np.ndarray,
                       confounders: np.ndarray | None = None) -> BuildResult:
        """Build the symmetric training kernel matrix ``K`` (NP1 × NP1).

        The kernel streams tile-by-tile into symmetric tile storage;
        no full dense FP64 staging matrix is ever allocated.
        """
        genotypes = np.asarray(genotypes)
        n = genotypes.shape[0]

        if self.kernel_type.lower() == "ibs":
            k_dense, flops, by_prec = self._ibs_dense(genotypes, genotypes, True)
            stats = BuildStats(dense_staging_elements=k_dense.size)
            precision_map: dict[tuple[int, int], Precision] | None = None
            if self.adaptive_rule is not None:
                tiled = TileMatrix.from_dense(k_dense, self.tile_size,
                                              Precision.FP64, symmetric=True)
                precision_map = decide_tile_precisions(tiled, self.adaptive_rule)
                tiled.apply_precision_map(precision_map)
            else:
                tiled = TileMatrix.from_dense(k_dense, self.tile_size,
                                              self.storage_precision,
                                              symmetric=True)
            return BuildResult(kernel=tiled, flops=flops,
                               flops_by_precision=by_prec,
                               precision_map=precision_map, stats=stats)

        stats = BuildStats()
        # Streaming target: tiles staged at FP64 when the adaptive rule
        # needs to see exact tile norms, otherwise quantized on arrival.
        staging = Precision.FP64 if self.adaptive_rule is not None else (
            self.storage_precision)
        tiled = TileMatrix.empty(n, n, self.tile_size, staging, symmetric=True)
        if self.store is not None:
            # out-of-core Build: consumed rows stream into budget-managed
            # storage, spilling as the budget fills (bitwise-exact
            # round-trips; the adaptive pass below faults tiles back in
            # one at a time to read their norms)
            tiled.attach_store(self.store)

        flops_box: list[float] = [0.0]
        by_prec: dict[Precision, float] = {}

        def consume(coords: tuple[int, int], tile_k: np.ndarray) -> None:
            bi, bj = coords
            if bi == bj:
                np.fill_diagonal(tile_k, 1.0)
            tiled.set_tile(bi, bj, tile_k, precision=staging)

        self._stream_tiles(genotypes, genotypes, confounders, confounders,
                           symmetric=True, consume=consume,
                           flops_box=flops_box, by_prec=by_prec, stats=stats)

        precision_map: dict[tuple[int, int], Precision] | None = None
        if self.adaptive_rule is not None:
            precision_map = decide_tile_precisions(tiled, self.adaptive_rule)
            tiled.apply_precision_map(precision_map)
        return BuildResult(kernel=tiled, flops=flops_box[0],
                           flops_by_precision=by_prec,
                           precision_map=precision_map, stats=stats)

    def build_cross(self, test_genotypes: np.ndarray, train_genotypes: np.ndarray,
                    test_confounders: np.ndarray | None = None,
                    train_confounders: np.ndarray | None = None) -> BuildResult:
        """Build the rectangular test-vs-train kernel (NP2 × NP1, Predict phase)."""
        test_genotypes = np.asarray(test_genotypes)
        train_genotypes = np.asarray(train_genotypes)

        if self.kernel_type.lower() == "ibs":
            k_dense, flops, by_prec = self._ibs_dense(
                test_genotypes, train_genotypes, False)
            stats = BuildStats(dense_staging_elements=k_dense.size)
            return BuildResult(kernel=k_dense, flops=flops,
                               flops_by_precision=by_prec, stats=stats)

        n1, n2 = test_genotypes.shape[0], train_genotypes.shape[0]
        stats = BuildStats(dense_staging_elements=n1 * n2)
        out = np.zeros((n1, n2), dtype=np.float64)
        layout = TileLayout(rows=n1, cols=n2, tile_size=self.tile_size)

        flops_box = [0.0]
        by_prec: dict[Precision, float] = {}

        def consume(coords: tuple[int, int], tile_k: np.ndarray) -> None:
            rs, cs = layout.tile_slice(*coords)
            out[rs, cs] = tile_k

        self._stream_tiles(test_genotypes, train_genotypes,
                           test_confounders, train_confounders,
                           symmetric=False, consume=consume,
                           flops_box=flops_box, by_prec=by_prec, stats=stats)
        return BuildResult(kernel=out, flops=flops_box[0],
                           flops_by_precision=by_prec, stats=stats)

    # ------------------------------------------------------------------
    def _ibs_dense(self, g1: np.ndarray, g2: np.ndarray,
                   symmetric: bool) -> tuple[np.ndarray, float, dict]:
        if g1.shape[1] != g2.shape[1]:
            raise ValueError("genotype matrices must share the SNP dimension")
        k = ibs_kernel(g1, None if symmetric else g2)
        flops = distance_flop_count(g1.shape[0], g2.shape[0], g1.shape[1],
                                    symmetric)
        return k, flops, {Precision.INT8: flops}

    def _snp_variant(self):
        return variant_for_input(
            self.snp_precision if self.snp_precision in (
                Precision.INT8, Precision.FP64, Precision.FP32,
                Precision.FP16, Precision.FP8_E4M3,
            ) else Precision.FP32)

    def _conf_variant(self):
        return variant_for_input(
            Precision.FP32 if self.confounder_precision is Precision.FP32
            else Precision.FP64)

    def train_operands(self, train_genotypes: np.ndarray,
                       train_confounders: np.ndarray | None = None
                       ) -> TrainOperands:
        """Prepare the train-side operand state of cross-kernel builds.

        The returned :class:`TrainOperands` can be passed to any number
        of :meth:`iter_cross_rows` calls against the same training
        panel (the prediction service shares one per micro-batch),
        skipping the per-call quantization, float casts and squared
        norms of the training matrix.  Values are bitwise identical to
        the uncached path.
        """
        g2 = np.asarray(train_genotypes)
        snp_variant = self._snp_variant()
        q2 = QuantizedOperand(g2, snp_variant.input_precision)
        d2 = squared_norms(
            g2, integer=self.snp_precision.is_integer).astype(np.float64)
        qc2 = e2 = None
        if train_confounders is not None:
            c64 = np.asarray(train_confounders, dtype=np.float64)
            qc2 = QuantizedOperand(c64, self._conf_variant().input_precision)
            e2 = np.einsum("ij,ij->i", c64, c64)
        return TrainOperands(
            genotypes=g2, confounders=train_confounders,
            snp_precision=snp_variant.input_precision,
            confounder_precision=self._conf_variant().input_precision,
            q=q2, d=d2, qc=qc2, e=e2,
        )

    def _prepare_operands(self, g1: np.ndarray, g2: np.ndarray,
                          c1: np.ndarray | None, c2: np.ndarray | None,
                          symmetric: bool,
                          train_cache: TrainOperands | None = None
                          ) -> _OperandContext:
        """Quantize/cache the GEMM operands once per kernel computation."""
        if g1.shape[1] != g2.shape[1]:
            raise ValueError("genotype matrices must share the SNP dimension")
        if (c1 is None) != (c2 is None):
            raise ValueError("confounders must be provided for both sides or neither")

        n1, n2 = g1.shape[0], g2.shape[0]
        ns = g1.shape[1]

        snp_variant = self._snp_variant()
        conf_variant = self._conf_variant()
        if train_cache is not None:
            if symmetric:
                raise ValueError(
                    "train-side operand caching applies to cross kernels "
                    "only")
            train_cache.check_compatible(
                g2, c2, snp_variant.input_precision,
                conf_variant.input_precision)

        # Quantize each operand side once; row blocks slice shared views.
        q1 = QuantizedOperand(g1, snp_variant.input_precision)
        q2 = q1 if symmetric else (
            train_cache.q if train_cache is not None
            else QuantizedOperand(g2, snp_variant.input_precision))
        # materialize the float/max|.| caches before threading so the
        # worker tasks only ever read shared state; the integer path
        # picks the narrowest exact BLAS dtype (sgemm for genotypes)
        if snp_variant.accumulate_precision.is_integer:
            blas_dtype = integer_gemm_dtype(
                q1.max_abs(), q2.max_abs(), ns) or np.float64
            q1.as_float(blas_dtype)
            if q2 is not q1:
                q2.as_float(blas_dtype)
        else:
            q1.max_abs()
            if q2 is not q1:
                q2.max_abs()

        d1 = squared_norms(g1, integer=self.snp_precision.is_integer).astype(np.float64)
        if symmetric:
            d2 = d1
        elif train_cache is not None:
            d2 = train_cache.d
        else:
            d2 = squared_norms(
                g2, integer=self.snp_precision.is_integer).astype(np.float64)

        if c1 is not None:
            qc1 = QuantizedOperand(np.asarray(c1, dtype=np.float64),
                                   conf_variant.input_precision)
            e1 = np.einsum("ij,ij->i", np.asarray(c1, dtype=np.float64),
                           np.asarray(c1, dtype=np.float64))
            if symmetric:
                qc2, e2 = qc1, e1
            elif train_cache is not None:
                qc2, e2 = train_cache.qc, train_cache.e
            else:
                qc2 = QuantizedOperand(np.asarray(c2, dtype=np.float64),
                                       conf_variant.input_precision)
                e2 = np.einsum("ij,ij->i", np.asarray(c2, dtype=np.float64),
                               np.asarray(c2, dtype=np.float64))
            n_conf = np.asarray(c1).shape[1]
        else:
            qc1 = qc2 = None
            e1 = e2 = None
            n_conf = 0

        # For the integer variant the SNP-block loop exists only to keep
        # the emulated INT32 accumulator in range; when the analytic
        # bound max|a|*max|b|*ns already proves the *total* accumulation
        # safe (genotypes {0,1,2} always do), the blocks fuse into one
        # contiguous dgemm — both faster and closer to the hardware,
        # which accumulates every block GEMM into the same INT32 C.
        # Float variants keep the blocked loop: their per-block rounding
        # order is observable.
        fuse_snp_blocks = (
            snp_variant.accumulate_precision.is_integer
            and q1.max_abs() * q2.max_abs() * ns <= float(np.iinfo(np.int32).max)
        )
        return _OperandContext(
            n1=n1, n2=n2, ns=ns, q1=q1, q2=q2, d1=d1, d2=d2,
            qc1=qc1, qc2=qc2, e1=e1, e2=e2, n_conf=n_conf,
            snp_variant=snp_variant, conf_variant=conf_variant,
            fuse_snp_blocks=fuse_snp_blocks,
        )

    def _kernel_rows(self, ctx: _OperandContext, rs: slice,
                     cs: slice) -> np.ndarray:
        """Dense kernel block for rows ``rs`` × columns ``cs``.

        Elementwise assembly (norm folding, clamp, exponentiation) is
        identical per element regardless of the row partitioning, and
        the INT8 Gram is exact integer arithmetic, so any batching of
        rows produces the same values bit for bit.
        """
        return compute_kernel_rows(ctx, self.gamma, self.snp_block, rs, cs)

    def _block_flops(self, ctx: _OperandContext, mb: int, nb: int,
                     by_prec: dict[Precision, float] | None = None
                     ) -> tuple[float, dict[Precision, float]]:
        """Operation count of an ``mb × nb`` kernel block, split by precision."""
        by_prec = {} if by_prec is None else by_prec
        flops = 2.0 * mb * nb * ctx.ns
        by_prec[self.snp_precision] = by_prec.get(self.snp_precision, 0.0) + flops
        if ctx.n_conf > 0:
            cf = 2.0 * mb * nb * ctx.n_conf
            flops += cf
            by_prec[self.confounder_precision] = (
                by_prec.get(self.confounder_precision, 0.0) + cf)
        return flops, by_prec

    def iter_cross_rows(self, test_genotypes: np.ndarray,
                        train_genotypes: np.ndarray,
                        test_confounders: np.ndarray | None = None,
                        train_confounders: np.ndarray | None = None,
                        batch_rows: int | None = None,
                        train_cache: TrainOperands | None = None
                        ) -> Iterator[CrossRowBlock]:
        """Stream the rectangular test-vs-train kernel in row batches.

        This is the Predict-phase entry point of the tile-native solver
        sessions: operands are quantized once, then ``batch_rows``
        test individuals at a time flow through the Gram/distance/kernel
        pipeline, so the peak cross-kernel temporary is one batch
        instead of the full ``n_test × n_train`` panel.  The produced
        values are identical to :meth:`build_cross` for any batching.

        ``train_cache`` (from :meth:`train_operands`) skips the
        train-side operand preparation — the fixed cost a serving
        micro-batch amortizes across its requests — without changing a
        single produced bit.
        """
        test_genotypes = np.asarray(test_genotypes)
        train_genotypes = np.asarray(train_genotypes)
        n1, n2 = test_genotypes.shape[0], train_genotypes.shape[0]
        batch = n1 if batch_rows is None else max(1, int(batch_rows))

        if self.kernel_type.lower() == "ibs":
            if test_genotypes.shape[1] != train_genotypes.shape[1]:
                raise ValueError("genotype matrices must share the SNP dimension")
            ns = test_genotypes.shape[1]
            for r0 in range(0, n1, batch):
                rows = slice(r0, min(r0 + batch, n1))
                block = ibs_kernel(test_genotypes[rows], train_genotypes)
                flops = distance_flop_count(rows.stop - rows.start, n2, ns, False)
                yield CrossRowBlock(rows=rows, kernel=block, flops=flops,
                                    flops_by_precision={Precision.INT8: flops})
            return

        ctx = self._prepare_operands(test_genotypes, train_genotypes,
                                     test_confounders, train_confounders,
                                     symmetric=False, train_cache=train_cache)
        cols = slice(0, n2)
        for r0 in range(0, n1, batch):
            rows = slice(r0, min(r0 + batch, n1))
            block = self._kernel_rows(ctx, rows, cols)
            flops, by_prec = self._block_flops(ctx, rows.stop - rows.start, n2)
            yield CrossRowBlock(rows=rows, kernel=block, flops=flops,
                                flops_by_precision=by_prec)

    def _stream_tiles(self, g1: np.ndarray, g2: np.ndarray,
                      c1: np.ndarray | None, c2: np.ndarray | None,
                      symmetric: bool,
                      consume: Callable[[tuple[int, int], np.ndarray], None],
                      flops_box: list, by_prec: dict, stats: BuildStats) -> None:
        """Insert the tile-row task DAG and run it through the runtime.

        One *row task* per block row of tiles: the Gram product runs as
        a (tile_size x ns) @ (ns x row_width) dgemm — large enough for
        BLAS to reach peak — while the peak dense temporary stays at
        one tile row.  For the symmetric case a row task covers only
        the lower-triangle width.  Row tasks read the shared operand
        context and write their own row handle, so the scheduler runs
        them out of order; the per-row *consume tasks* read-write the
        output handle, which derives a WAW/RAW chain serializing all
        container mutation (and the flop accounting) in row order.
        """
        ctx = self._prepare_operands(g1, g2, c1, c2, symmetric)
        n2 = ctx.n2
        layout = TileLayout(rows=ctx.n1, cols=n2, tile_size=self.tile_size)

        rt = self.runtime
        if rt is None:
            rt = Runtime(execution=resolve_execution(self.execution),
                         workers=resolve_workers(self.workers))
        stats.workers = (rt.workers
                         if rt.execution in ("threaded", "process") else 1)
        stats.tile_tasks = layout.tile_rows

        rt.require_drained("KernelBuilder streaming")
        ns = rt.namespace("build")
        ctx_h = rt.register_data(f"{ns}operands", shape=())
        out_h = rt.register_data(f"{ns}K", shape=())
        row_handles = []
        # Bounded submission window, expressed as dataflow: row task bi
        # reads the handle that consume task bi-window read-writes, so
        # at most `window` row payloads are ever in flight (the same
        # memory contract the historical windowed thread pool enforced).
        window = max(rt.workers * 4, 1)

        def make_row_body(bi: int, rs: slice, col_end: int):
            def body(_operands, _row, *_throttle):
                return self._kernel_rows(ctx, rs, slice(0, col_end))
            return body

        def make_consume_body(row_h, bi: int, rs: slice, col_tiles: int):
            mb = rs.stop - rs.start

            def body(row_k, _sink):
                # the consume chain is serialized by the scheduler, so
                # stats/flops mutation needs no further synchronization
                stats.note_temp(row_k.size)
                for bj in range(col_tiles):
                    cs = layout.tile_slice(bi, bj)[1]
                    tile_flops, _ = self._block_flops(
                        ctx, mb, cs.stop - cs.start, by_prec)
                    flops_box[0] += tile_flops
                    consume((bi, bj), row_k[:, cs])
                # the row block is dead once streamed into tile storage
                row_h.payload = None
            return body

        for bi in range(layout.tile_rows):
            rs = layout.tile_slice(bi, 0)[0]
            col_end = min((bi + 1) * layout.tile_size, n2) if symmetric else n2
            col_tiles = (bi + 1) if symmetric else layout.tile_cols
            row_h = rt.register_data(f"{ns}row({bi})",
                                     shape=(rs.stop - rs.start, col_end))
            row_handles.append(row_h)
            row_accesses = [(ctx_h, AccessMode.READ),
                            (row_h, AccessMode.WRITE)]
            if bi >= window:
                row_accesses.append(
                    (row_handles[bi - window], AccessMode.READ))
            row_flops, row_detail = self._block_flops(ctx, rs.stop - rs.start,
                                                      col_end)
            rt.insert_task(
                "build_row", *row_accesses,
                body=make_row_body(bi, rs, col_end),
                flops=row_flops, precision=self.snp_precision,
                flops_detail=row_detail, tag=bi,
                pspec=ProcessTaskSpec(
                    BuildRowSpec(gamma=self.gamma, snp_block=self.snp_block,
                                 row_start=rs.start, row_stop=rs.stop,
                                 col_end=col_end),
                    mode="aux",
                    aux=(ObjectInput(ctx, key=f"{ns}operands"),)),
            )
            rt.insert_task(
                "consume_row",
                (row_h, AccessMode.READWRITE), (out_h, AccessMode.READWRITE),
                body=make_consume_body(row_h, bi, rs, col_tiles),
                flops=0.0, precision=self.storage_precision,
                priority=layout.tile_rows - bi, tag=bi,
            )
        try:
            rt.run(phase=self.trace_phase)
        except TaskGroupError:
            rt.reset_graph()
            raise
        finally:
            rt.release(ns)


def build_kernel_matrix(genotypes: np.ndarray,
                        confounders: np.ndarray | None = None,
                        gamma: float = 0.01,
                        tile_size: int = 64,
                        kernel_type: str = "gaussian",
                        adaptive_rule: AdaptivePrecisionRule | None = None,
                        snp_precision: Precision | str = Precision.INT8,
                        workers: int | None = None) -> BuildResult:
    """One-call Build phase for the training kernel matrix."""
    builder = KernelBuilder(
        kernel_type=kernel_type,
        gamma=gamma,
        tile_size=tile_size,
        snp_precision=snp_precision,
        adaptive_rule=adaptive_rule,
        workers=workers,
    )
    return builder.build_training(genotypes, confounders)
