"""The fused, tile-wise Build phase (Algorithm 2 + Sec. VI-B2).

``KernelBuilder`` produces the KRR matrix ``K`` tile by tile:

1. the per-patient squared norms of the SNP part are folded into a
   single vector (never a full matrix),
2. each tile of the Gram product ``G G^T`` is computed with the INT8
   tensor-core GEMM variant,
3. confounder (real-valued) columns contribute a separate FP32 Gram
   accumulation,
4. the squared distance tile is assembled, the Gaussian exponentiation
   is fused in before the tile is released, and
5. the finished tile is stored at the precision chosen by the adaptive
   rule (or at the requested uniform precision).

The result can be a dense array or a :class:`~repro.tiles.matrix.TileMatrix`
carrying the precision mosaic used by the Associate phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance.euclidean import distance_flop_count, squared_norms
from repro.distance.kernels import gaussian_kernel, ibs_kernel
from repro.precision.formats import Precision
from repro.precision.gemm import gemm_mixed
from repro.tiles.adaptive import AdaptivePrecisionRule, decide_tile_precisions
from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TileMatrix


@dataclass
class BuildResult:
    """Output of the Build phase.

    Attributes
    ----------
    kernel:
        The kernel matrix as a :class:`TileMatrix` (training case,
        symmetric) or dense array (rectangular test-vs-train case).
    flops:
        Total operation count of the phase.
    flops_by_precision:
        Operation count split by compute precision.
    precision_map:
        Per-tile storage precisions when adaptive storage was requested.
    """

    kernel: TileMatrix | np.ndarray
    flops: float = 0.0
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)
    precision_map: dict[tuple[int, int], Precision] | None = None

    def to_dense(self) -> np.ndarray:
        if isinstance(self.kernel, TileMatrix):
            return self.kernel.to_dense()
        return np.asarray(self.kernel)


@dataclass
class KernelBuilder:
    """Configurable Build-phase driver.

    Parameters
    ----------
    kernel_type:
        ``"gaussian"`` (default, the paper's kernel) or ``"ibs"``.
    gamma:
        Gaussian bandwidth (paper uses 0.01).
    tile_size:
        Tile edge of the produced kernel matrix.
    snp_precision:
        Input precision of the SNP Gram product (INT8 reproduces the
        tensor-core path; FP32/FP64 give reference results).
    confounder_precision:
        Precision of the confounder Gram accumulation (FP32 in the paper).
    adaptive_rule:
        When given, finished tiles are stored at the precision the rule
        selects (producing the Fig. 4 mosaic); otherwise tiles are stored
        at ``storage_precision``.
    storage_precision:
        Uniform storage precision when no adaptive rule is given.
    snp_block:
        Column blocking of the SNP dimension inside each Gram tile.
    """

    kernel_type: str = "gaussian"
    gamma: float = 0.01
    tile_size: int = 64
    snp_precision: Precision | str = Precision.INT8
    confounder_precision: Precision | str = Precision.FP32
    adaptive_rule: AdaptivePrecisionRule | None = None
    storage_precision: Precision | str = Precision.FP32
    snp_block: int = 4096

    def __post_init__(self) -> None:
        self.snp_precision = Precision.from_string(self.snp_precision)
        self.confounder_precision = Precision.from_string(self.confounder_precision)
        self.storage_precision = Precision.from_string(self.storage_precision)
        if self.kernel_type.lower() not in ("gaussian", "ibs"):
            raise ValueError("kernel_type must be 'gaussian' or 'ibs'")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")

    # ------------------------------------------------------------------
    def build_training(self, genotypes: np.ndarray,
                       confounders: np.ndarray | None = None) -> BuildResult:
        """Build the symmetric training kernel matrix ``K`` (NP1 × NP1)."""
        k_dense, flops, by_prec = self._kernel_dense(genotypes, genotypes,
                                                     confounders, confounders,
                                                     symmetric=True)
        precision_map: dict[tuple[int, int], Precision] | None = None
        if self.adaptive_rule is not None:
            tiled = TileMatrix.from_dense(k_dense, self.tile_size,
                                          Precision.FP64, symmetric=True)
            precision_map = decide_tile_precisions(tiled, self.adaptive_rule)
            tiled.apply_precision_map(precision_map)
        else:
            tiled = TileMatrix.from_dense(k_dense, self.tile_size,
                                          self.storage_precision, symmetric=True)
        return BuildResult(kernel=tiled, flops=flops,
                           flops_by_precision=by_prec,
                           precision_map=precision_map)

    def build_cross(self, test_genotypes: np.ndarray, train_genotypes: np.ndarray,
                    test_confounders: np.ndarray | None = None,
                    train_confounders: np.ndarray | None = None) -> BuildResult:
        """Build the rectangular test-vs-train kernel (NP2 × NP1, Predict phase)."""
        k_dense, flops, by_prec = self._kernel_dense(
            test_genotypes, train_genotypes, test_confounders, train_confounders,
            symmetric=False,
        )
        return BuildResult(kernel=k_dense, flops=flops, flops_by_precision=by_prec)

    # ------------------------------------------------------------------
    def _kernel_dense(self, g1: np.ndarray, g2: np.ndarray,
                      c1: np.ndarray | None, c2: np.ndarray | None,
                      symmetric: bool) -> tuple[np.ndarray, float, dict]:
        g1 = np.asarray(g1)
        g2 = np.asarray(g2)
        if g1.shape[1] != g2.shape[1]:
            raise ValueError("genotype matrices must share the SNP dimension")
        if (c1 is None) != (c2 is None):
            raise ValueError("confounders must be provided for both sides or neither")

        if self.kernel_type.lower() == "ibs":
            k = ibs_kernel(g1, None if symmetric else g2)
            flops = distance_flop_count(g1.shape[0], g2.shape[0], g1.shape[1],
                                        symmetric)
            return k, flops, {Precision.INT8: flops}

        n1, n2 = g1.shape[0], g2.shape[0]
        ns = g1.shape[1]
        layout = TileLayout(rows=n1, cols=n2, tile_size=self.tile_size)

        d1 = squared_norms(g1, integer=self.snp_precision.is_integer).astype(np.float64)
        d2 = d1 if symmetric else squared_norms(
            g2, integer=self.snp_precision.is_integer).astype(np.float64)

        if c1 is not None:
            c1 = np.asarray(c1, dtype=np.float64)
            c2 = np.asarray(c2, dtype=np.float64)
            e1 = np.einsum("ij,ij->i", c1, c1)
            e2 = e1 if symmetric else np.einsum("ij,ij->i", c2, c2)
        else:
            e1 = e2 = None

        snp_variant = {
            Precision.INT8: "AB8I_C32I_OP32I",
            Precision.FP64: "FP64",
            Precision.FP32: "FP32",
            Precision.FP16: "FP16_FP32ACC",
            Precision.FP8_E4M3: "FP8_E4M3_FP32ACC",
        }.get(self.snp_precision, "FP32")
        conf_variant = "FP32" if self.confounder_precision is Precision.FP32 else "FP64"

        k = np.zeros((n1, n2), dtype=np.float64)
        flops = 0.0
        by_prec: dict[Precision, float] = {}

        for bi in range(layout.tile_rows):
            rs = layout.tile_slice(bi, 0)[0]
            cols_start = 0 if not symmetric else bi  # lower triangle only when symmetric
            for bj in range(cols_start if symmetric else 0, layout.tile_cols):
                cs = layout.tile_slice(0, bj)[1]
                # --- integer (SNP) Gram contribution, blocked over SNPs
                gram = np.zeros((rs.stop - rs.start, cs.stop - cs.start),
                                dtype=np.float64)
                for s0 in range(0, ns, self.snp_block):
                    s1 = min(s0 + self.snp_block, ns)
                    gram += np.asarray(
                        gemm_mixed(g1[rs, s0:s1], g2[cs, s0:s1],
                                   variant=snp_variant, transb=True),
                        dtype=np.float64,
                    )
                tile_flops = 2.0 * (rs.stop - rs.start) * (cs.stop - cs.start) * ns
                flops += tile_flops
                by_prec[self.snp_precision] = by_prec.get(self.snp_precision, 0.0) + tile_flops

                dist = d1[rs, None] + d2[None, cs] - 2.0 * gram

                # --- confounder FP32 contribution accumulated separately
                if c1 is not None and c1.shape[1] > 0:
                    gram_c = np.asarray(
                        gemm_mixed(c1[rs, :], c2[cs, :], variant=conf_variant,
                                   transb=True),
                        dtype=np.float64,
                    )
                    dist += e1[rs, None] + e2[None, cs] - 2.0 * gram_c
                    cf = 2.0 * (rs.stop - rs.start) * (cs.stop - cs.start) * c1.shape[1]
                    flops += cf
                    by_prec[self.confounder_precision] = (
                        by_prec.get(self.confounder_precision, 0.0) + cf
                    )

                np.maximum(dist, 0.0, out=dist)
                # fused exponentiation before the tile is released
                tile_k = gaussian_kernel(dist, self.gamma)
                k[rs, cs] = tile_k
                if symmetric and bi != bj:
                    k[cs, rs] = tile_k.T

        if symmetric:
            np.fill_diagonal(k, 1.0)
        return k, flops, by_prec


def build_kernel_matrix(genotypes: np.ndarray,
                        confounders: np.ndarray | None = None,
                        gamma: float = 0.01,
                        tile_size: int = 64,
                        kernel_type: str = "gaussian",
                        adaptive_rule: AdaptivePrecisionRule | None = None,
                        snp_precision: Precision | str = Precision.INT8) -> BuildResult:
    """One-call Build phase for the training kernel matrix."""
    builder = KernelBuilder(
        kernel_type=kernel_type,
        gamma=gamma,
        tile_size=tile_size,
        snp_precision=snp_precision,
        adaptive_rule=adaptive_rule,
    )
    return builder.build_training(genotypes, confounders)
