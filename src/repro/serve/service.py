"""Concurrent prediction service over fitted-model artifacts.

``PredictionService`` is the serving front end of the reproduction:
clients submit per-cohort predict requests concurrently; a single
dispatcher thread coalesces queued requests for the same model into
**micro-batches** (:mod:`repro.serve.batching`), executes them through
the model's serving session — one shared task
:class:`~repro.runtime.runtime.Runtime`, the same threaded out-of-order
scheduler that runs the fit phases — and resolves each request's future
with its predictions plus per-request latency/flops stats.

Correctness contract: a request's predictions are **bitwise identical**
to calling ``session.predict`` on that request's cohort alone,
regardless of which other requests it was coalesced with (the
micro-batch shares the quantized train-side operand context while each
cohort keeps solo tile-aligned block shapes — see
:meth:`~repro.gwas.session.KRRSession.predict_many` and
``docs/api.md``).

Throughput contract: coalescing amortizes the per-predict fixed costs —
quantization and BLAS float casts of the training panel, its squared
norms, builder setup — across every request in the micro-batch;
``benchmarks/test_bench_serve.py`` records the micro-batched vs
per-request throughput on a 2048-cohort model under 8 concurrent
clients.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field

import numpy as np

from repro.gwas.config import ServeConfig
from repro.gwas.model import FittedModel
from repro.gwas.session import KRRSession
from repro.resilience.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
    is_transient,
)
from repro.resilience.faults import SITE_SERVE_DISPATCH, inject
from repro.serve.batching import plan_micro_batch
from repro.serve.registry import ModelKey, ModelRegistry

__all__ = [
    "PredictionService",
    "PredictResult",
    "ServiceStats",
    "ServiceOverloadedError",
    "DeadlineExceededError",
]

#: Phase label of every serving run on the shared session runtimes —
#: ``session.runtime.phase_trace("serve")`` is the service-side trace.
SERVE_PHASE = "serve"

#: Name a bare ``FittedModel`` is registered under.
DEFAULT_MODEL_NAME = "default"


@dataclass(frozen=True)
class PredictResult:
    """One request's predictions plus its serving statistics.

    Attributes
    ----------
    predictions:
        ``(rows, n_phenotypes)`` prediction panel for the request's
        cohort.
    model_key:
        The ``(name, version)`` the request was served by.
    rows:
        Cohort size of this request.
    flops:
        Operations attributable to this request (exact — predict cost
        is linear in rows — not a share estimate).
    latency_s:
        Submit-to-result wall time.
    queue_s:
        Time spent queued/coalescing before execution started.
    compute_s:
        Wall time of the micro-batch execution this request rode in
        (shared across its ``coalesced_requests``).
    coalesced_requests:
        How many requests the micro-batch merged (1 = no coalescing).
    micro_batches:
        Tile-aligned row batches this request's cohort streamed
        through inside the micro-batch.
    """

    predictions: np.ndarray
    model_key: ModelKey
    rows: int
    flops: float
    latency_s: float
    queue_s: float
    compute_s: float
    coalesced_requests: int
    micro_batches: int


@dataclass
class ServiceStats:
    """Cumulative service-side counters (snapshot via ``service.stats``).

    The degradation ladder is observable here: ``shed`` requests were
    refused at admission (queue full), ``expired`` requests hit their
    deadline while queued and were failed fast without burning compute,
    ``cancelled`` requests were abandoned by their caller (e.g. a
    ``predict(timeout=...)`` that gave up) and removed before dispatch,
    and ``dispatch_retries`` counts transient micro-batch execution
    faults absorbed by re-dispatching.
    """

    requests: int = 0
    batches: int = 0
    rows: int = 0
    flops: float = 0.0
    compute_s: float = 0.0
    max_coalesced: int = 0
    failures: int = 0
    shed: int = 0
    expired: int = 0
    cancelled: int = 0
    dispatch_retries: int = 0

    @property
    def mean_coalesced(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


@dataclass
class _PendingRequest:
    key: ModelKey
    model: FittedModel
    genotypes: np.ndarray
    confounders: np.ndarray | None
    future: Future
    submitted_at: float = field(default_factory=time.perf_counter)
    #: absolute ``perf_counter`` point after which the request is dead
    deadline: float | None = None
    #: the relative budget the deadline came from (for error messages)
    deadline_s: float | None = None


class PredictionService:
    """Micro-batching prediction front end over a model registry.

    Parameters
    ----------
    models:
        A :class:`~repro.serve.registry.ModelRegistry`, or a single
        :class:`~repro.gwas.model.FittedModel` (registered under
        ``"default"`` in a fresh registry).
    config:
        :class:`~repro.gwas.config.ServeConfig` coalescing knobs.
    workers, execution:
        Task-runtime knobs of the per-model serving sessions (``None``
        resolves from this host's environment, like any session).
    autostart:
        Start the dispatcher thread immediately.  Pass ``False`` to
        enqueue requests first and :meth:`start` later — deterministic
        coalescing for tests and batch jobs.
    """

    def __init__(self, models: ModelRegistry | FittedModel,
                 config: ServeConfig | None = None,
                 workers: int | None = None,
                 execution: str | None = None,
                 autostart: bool = True) -> None:
        if isinstance(models, ModelRegistry):
            self.registry = models
        elif isinstance(models, FittedModel):
            self.registry = ModelRegistry()
            self.registry.register(DEFAULT_MODEL_NAME, models)
        else:
            raise TypeError(
                "models must be a ModelRegistry or a FittedModel")
        self.config = config or ServeConfig()
        self._workers = workers
        self._execution = execution
        self._sessions: dict[ModelKey, KRRSession] = {}
        self._session_batches: dict[ModelKey, int] = {}
        self._queue: deque[_PendingRequest] = deque()
        self._cond = threading.Condition()
        self._stats = ServiceStats()
        self._stop = False
        self._closed = False
        self._thread: threading.Thread | None = None
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PredictionService":
        """Start the dispatcher thread (idempotent)."""
        if self._closed:
            raise RuntimeError("the service has been closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._dispatch_loop,
                name="repro-serve-dispatcher", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Drain queued requests, then stop the dispatcher.

        Requests enqueued before :meth:`start` are drained too: if no
        dispatcher thread ever ran, the dispatch loop executes once on
        the closing thread so no submitted future is left unresolved.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        else:
            # autostart=False and never started: serve the backlog
            # inline (the loop exits once the queue is empty)
            self._dispatch_loop()

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, genotypes: np.ndarray,
               confounders: np.ndarray | None = None,
               model: str = DEFAULT_MODEL_NAME,
               version: int | None = None,
               deadline_s: float | None = None) -> Future:
        """Enqueue one cohort's predict request; returns its future.

        The model is resolved (and its registry recency bumped) at
        submit time, so an eviction between submit and execution cannot
        fail the request.  Cohort/model contract violations (SNP panel
        width, confounder presence) raise here, synchronously.

        Degradation: a full admission queue raises
        :class:`~repro.resilience.errors.ServiceOverloadedError`
        instead of queueing unboundedly, and ``deadline_s`` (default
        ``ServeConfig.request_deadline_s``) bounds how long the request
        may wait — an expired request fails fast with
        :class:`~repro.resilience.errors.DeadlineExceededError` and is
        excluded from micro-batch planning, so the dispatcher never
        burns flops on a caller that has already given up.
        """
        return self._enqueue(self._make_request(
            genotypes, confounders, model, version, deadline_s)).future

    def _make_request(self, genotypes, confounders, model, version,
                      deadline_s) -> _PendingRequest:
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed service")
        entry = self.registry.entry(model, version)
        fitted = entry.model
        genotypes = np.asarray(genotypes)
        if genotypes.ndim != 2:
            raise ValueError("the request cohort must be a 2D matrix")
        if genotypes.shape[1] != fitted.n_snps:
            raise ValueError(
                f"request cohort has {genotypes.shape[1]} SNPs; model "
                f"{entry.key.name!r} v{entry.key.version} expects "
                f"{fitted.n_snps}")
        if (confounders is None) != (fitted.training_confounders is None):
            raise ValueError(
                "request confounders must match the model's training "
                "configuration")
        if confounders is not None:
            confounders = np.asarray(confounders, dtype=np.float64)
            # full geometry check here, synchronously: a malformed
            # request failing inside the dispatcher would poison every
            # innocent request coalesced into its micro-batch
            if confounders.ndim != 2 or \
                    confounders.shape[0] != genotypes.shape[0]:
                raise ValueError(
                    "request confounders must be 2D with one row per "
                    "cohort individual")
            if confounders.shape[1] != fitted.training_confounders.shape[1]:
                raise ValueError(
                    f"request has {confounders.shape[1]} confounder "
                    f"column(s); the model expects "
                    f"{fitted.training_confounders.shape[1]}")
        if deadline_s is None:
            deadline_s = self.config.request_deadline_s
        submitted_at = time.perf_counter()
        return _PendingRequest(
            key=entry.key, model=fitted, genotypes=genotypes,
            confounders=confounders, future=Future(),
            submitted_at=submitted_at,
            deadline=(submitted_at + deadline_s
                      if deadline_s is not None else None),
            deadline_s=deadline_s)

    def _enqueue(self, request: _PendingRequest) -> _PendingRequest:
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed service")
            depth = self.config.max_queue_depth
            if depth is not None and len(self._queue) >= depth:
                self._stats.shed += 1
                raise ServiceOverloadedError(len(self._queue), depth)
            self._queue.append(request)
            self._cond.notify_all()
        return request

    def _abandon(self, request: _PendingRequest) -> None:
        """Withdraw a request whose caller gave up waiting.

        Removes it from the pending queue (when the dispatcher has not
        pulled it yet) and cancels its future, so the dispatcher never
        computes a micro-batch slot for an abandoned caller.
        """
        with self._cond:
            try:
                self._queue.remove(request)
            except ValueError:
                pass  # already pulled; cancel() below races the dispatch
        if request.future.cancel():
            with self._cond:
                self._stats.cancelled += 1

    def predict(self, genotypes: np.ndarray,
                confounders: np.ndarray | None = None,
                model: str = DEFAULT_MODEL_NAME,
                version: int | None = None,
                timeout: float | None = None,
                deadline_s: float | None = None) -> PredictResult:
        """Blocking convenience wrapper around :meth:`submit`.

        A ``timeout`` that expires withdraws the request (see
        :meth:`_abandon`) before re-raising, so the dispatcher does not
        compute work for a caller that stopped waiting.
        """
        request = self._enqueue(self._make_request(
            genotypes, confounders, model, version, deadline_s))
        try:
            return request.future.result(timeout=timeout)
        except DeadlineExceededError:
            raise  # the dispatcher failed it, nothing left to withdraw
        except (TimeoutError, _FutureTimeout):
            self._abandon(request)
            raise

    @property
    def stats(self) -> ServiceStats:
        """A snapshot copy of the cumulative serving counters."""
        with self._cond:
            return ServiceStats(**vars(self._stats))

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _pull_same_key(self, key: ModelKey, limit: int) -> list[_PendingRequest]:
        """Remove up to ``limit`` queued requests for ``key`` (lock held)."""
        if limit <= 0:
            return []
        pulled: list[_PendingRequest] = []
        remaining: deque[_PendingRequest] = deque()
        while self._queue:
            req = self._queue.popleft()
            if req.key == key and len(pulled) < limit:
                pulled.append(req)
            else:
                remaining.append(req)
        self._queue = remaining
        return pulled

    def _dispatch_loop(self) -> None:
        cfg = self.config
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if not self._queue:
                    return  # stopped and drained
                first = self._queue.popleft()
            batch = [first]
            deadline = time.perf_counter() + cfg.batch_window_s
            while len(batch) < cfg.max_batch_requests:
                with self._cond:
                    batch.extend(self._pull_same_key(
                        first.key, cfg.max_batch_requests - len(batch)))
                    if len(batch) >= cfg.max_batch_requests or self._stop:
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
            self._execute(batch)

    def _session_for(self, key: ModelKey, model: FittedModel) -> KRRSession:
        session = self._sessions.get(key)
        if session is None:
            session = KRRSession.from_model(model, workers=self._workers,
                                            execution=self._execution)
            self._sessions[key] = session
            # retire serving sessions of models the registry evicted
            self._sessions = {k: s for k, s in self._sessions.items()
                              if k == key or k in self.registry}
        return session

    def _cull(self, batch: list[_PendingRequest]) -> list[_PendingRequest]:
        """Drop expired and abandoned requests before planning the batch.

        Expired requests fail fast with a typed
        :class:`DeadlineExceededError`; cancelled futures (a caller's
        ``predict(timeout=)`` gave up) are skipped silently.  Only the
        survivors — transitioned to RUNNING so they can no longer be
        cancelled mid-compute — join the micro-batch.
        """
        now = time.perf_counter()
        live: list[_PendingRequest] = []
        n_expired = 0
        for req in batch:
            if req.deadline is not None and now > req.deadline:
                n_expired += 1
                try:
                    req.future.set_exception(DeadlineExceededError(
                        req.deadline_s, now - req.submitted_at))
                except InvalidStateError:
                    pass  # abandoned concurrently; nothing to report
            elif req.future.set_running_or_notify_cancel():
                live.append(req)
        if n_expired:
            with self._cond:
                self._stats.expired += n_expired
        return live

    def _execute(self, batch: list[_PendingRequest]) -> None:
        batch = self._cull(batch)
        if not batch:
            return
        try:
            key, model = batch[0].key, batch[0].model
            session = self._session_for(key, model)
            batch_rows = (self.config.batch_rows
                          if self.config.batch_rows is not None
                          else session.config.predict_batch_rows)
            genotypes = [r.genotypes for r in batch]
            confounders = [r.confounders for r in batch]
            plan = plan_micro_batch(genotypes, confounders,
                                    session.config.tile_size, batch_rows)
            retries = 0
            while True:
                try:
                    inject(SITE_SERVE_DISPATCH, str(key))
                    t0 = time.perf_counter()
                    parts = session.predict_many(
                        genotypes,
                        None if batch[0].confounders is None else confounders,
                        batch_rows=batch_rows, phase=SERVE_PHASE)
                    break
                except Exception as exc:
                    # transient faults (injected or I/O) re-dispatch the
                    # whole micro-batch: predict_many is pure, so the
                    # retried result is bitwise the first-try result
                    if (retries >= self.config.dispatch_retries
                            or not is_transient(exc)):
                        raise
                    retries += 1
                    with self._cond:
                        self._stats.dispatch_retries += 1
            compute_s = time.perf_counter() - t0
            # bound the long-lived session's per-task event log: the
            # service accounts its own counters, the trace is advisory
            reset_every = self.config.trace_reset_batches
            if reset_every is not None:
                done_batches = self._session_batches.get(key, 0) + 1
                self._session_batches[key] = done_batches
                if done_batches % reset_every == 0:
                    session.runtime.reset_traces()
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            with self._cond:
                self._stats.failures += len(batch)
            for req in batch:
                try:
                    req.future.set_exception(exc)
                except InvalidStateError:  # pragma: no cover - abandon race
                    pass
            return

        done = time.perf_counter()
        total_flops = 0.0
        for req, preds, row_batches in zip(batch, parts, plan.row_batches):
            rows = preds.shape[0]
            flops = req.model.predict_flops(rows)
            total_flops += flops
            req.future.set_result(PredictResult(
                predictions=preds,
                model_key=req.key,
                rows=rows,
                flops=flops,
                latency_s=done - req.submitted_at,
                queue_s=t0 - req.submitted_at,
                compute_s=compute_s,
                coalesced_requests=len(batch),
                micro_batches=row_batches,
            ))
        with self._cond:
            s = self._stats
            s.requests += len(batch)
            s.batches += 1
            s.rows += plan.total_rows
            s.flops += total_flops
            s.compute_s += compute_s
            s.max_coalesced = max(s.max_coalesced, len(batch))
