"""Micro-batch planning for the prediction service.

A *micro-batch* is a group of queued predict requests against the same
fitted model that execute as one unit: the session prepares the
train-side GEMM operand state once
(:meth:`~repro.distance.build.KernelBuilder.train_operands`) and each
request's cohort then streams through the tile-aligned row-batch
Predict path with exactly the block shapes a solo ``predict`` would
use (:meth:`~repro.gwas.session.KRRSession.predict_many`).

Why not row-stack the cohorts into one big matrix?  BLAS level-3
kernels are *row-shape-sensitive* in the last bits: an sgemm over an
``m=33`` panel and the same 33 rows inside an ``m=233`` panel can
round differently (small-``m`` dispatches use different accumulation
kernels), so stacked predictions would not be bitwise equal to solo
predictions for sub-tile or non-tile-aligned request sizes.  Sharing
the operand context while keeping solo block shapes gives the
amortization *and* the bitwise per-request contract.

This module holds the model-independent parts: request-group
validation and the tile-aligned row-slice plan (used for stats and
tests; the slices mirror what ``iter_cross_rows`` executes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gwas.session import effective_batch_rows

__all__ = ["MicroBatchPlan", "plan_micro_batch", "micro_batch_slices",
           "effective_batch_rows"]


@dataclass(frozen=True)
class MicroBatchPlan:
    """Validated request group plus its per-request streaming geometry.

    Attributes
    ----------
    n_requests:
        Requests coalesced into this micro-batch.
    total_rows:
        Summed cohort rows across the batch.
    row_batches:
        Per request, how many tile-aligned row batches its cohort
        streams through.
    """

    n_requests: int
    total_rows: int
    row_batches: tuple[int, ...]


def micro_batch_slices(n_rows: int, tile_size: int,
                       batch_rows: int | None) -> list[slice]:
    """Tile-aligned row slices one cohort streams through.

    Mirrors the session's streamed Predict: the requested batch is
    rounded to a tile multiple (minimum one tile); ``None`` streams the
    cohort as a single monolithic batch.
    """
    if n_rows < 0:
        raise ValueError("n_rows must be non-negative")
    effective = effective_batch_rows(tile_size, batch_rows)
    if effective is None or n_rows == 0:
        return [slice(0, n_rows)]
    return [slice(r0, min(r0 + effective, n_rows))
            for r0 in range(0, n_rows, effective)]


def plan_micro_batch(genotype_list: list[np.ndarray],
                     confounder_list: list[np.ndarray | None] | None,
                     tile_size: int,
                     batch_rows: int | None) -> MicroBatchPlan:
    """Validate a request group and compute its streaming geometry.

    Raises when the group is not homogeneous — different SNP panels, or
    a mix of confounded and unconfounded requests (the service keys its
    queues so this indicates a caller bug, not a data condition).
    """
    if not genotype_list:
        raise ValueError("cannot plan an empty micro-batch")
    mats = [np.asarray(g) for g in genotype_list]
    for g in mats:
        if g.ndim != 2:
            raise ValueError("each request cohort must be a 2D matrix")
        if g.shape[1] != mats[0].shape[1]:
            raise ValueError("all requests must share the SNP panel")
    if confounder_list is not None:
        if len(confounder_list) != len(mats):
            raise ValueError("confounder_list must match the request list")
        present = [c is not None for c in confounder_list]
        if any(present) != all(present):
            raise ValueError(
                "cannot coalesce confounded and unconfounded requests")
        for c, g in zip(confounder_list, mats):
            if c is not None and np.asarray(c).shape[0] != g.shape[0]:
                raise ValueError(
                    "confounders must have one row per cohort individual")
    effective = effective_batch_rows(tile_size, batch_rows)
    row_batches = tuple(
        1 if effective is None or g.shape[0] == 0
        else max(1, math.ceil(g.shape[0] / effective))
        for g in mats)
    return MicroBatchPlan(
        n_requests=len(mats),
        total_rows=sum(g.shape[0] for g in mats),
        row_batches=row_batches,
    )
