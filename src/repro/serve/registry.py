"""Named, versioned registry of fitted-model artifacts.

``ModelRegistry`` is the serving tier's model store: models register
under a name and receive monotonically increasing versions; lookups
default to the latest version; and an optional **resident-byte budget**
evicts the least-recently-used models when the precision-aware
in-memory footprint (``FittedModel.resident_bytes`` — tile-mosaic
bytes, not nominal FP64) exceeds it.  The adaptive-FP8 plans exist
precisely so more fitted cohorts fit in one serving host's budget.

All operations are thread-safe; the prediction service and management
callers may hit the registry concurrently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.gwas.model import FittedModel

__all__ = ["ModelKey", "ModelRegistry", "RegisteredModel"]


@dataclass(frozen=True)
class ModelKey:
    """Identity of one registered model: ``(name, version)``."""

    name: str
    version: int


@dataclass
class RegisteredModel:
    """Registry entry: the artifact plus its bookkeeping."""

    key: ModelKey
    model: FittedModel
    resident_bytes: int
    last_used: int  # monotonic use counter (LRU ordering)


class ModelRegistry:
    """Thread-safe named/versioned model store with LRU byte eviction.

    Parameters
    ----------
    max_resident_bytes:
        Eviction budget over the summed ``resident_bytes`` of all
        registered models.  ``None`` disables eviction.  The budget is
        enforced after each :meth:`register`; the newly registered
        model itself is never evicted (a single over-budget model stays
        resident — an empty registry serves nothing).
    """

    def __init__(self, max_resident_bytes: int | None = None) -> None:
        if max_resident_bytes is not None and max_resident_bytes <= 0:
            raise ValueError("max_resident_bytes must be positive (or None)")
        self.max_resident_bytes = max_resident_bytes
        self._lock = threading.Lock()
        self._entries: dict[ModelKey, RegisteredModel] = {}
        self._next_version: dict[str, int] = {}
        self._use_counter = 0
        self.evictions = 0
        # running sum of entry resident_bytes: eviction and the
        # resident_bytes() accessor are O(1) per step instead of
        # re-summing every entry on every loop iteration
        self._resident_total = 0

    # ------------------------------------------------------------------
    def register(self, name: str, model: FittedModel) -> ModelKey:
        """Add a model under ``name``; returns its assigned key.

        Versions start at 1 and increase per name — re-registering a
        name never replaces an older version in place (in-flight
        requests may still be pinned to it), it adds a newer one and
        lets LRU eviction retire the old.
        """
        if not isinstance(model, FittedModel):
            raise TypeError("register() expects a FittedModel artifact")
        with self._lock:
            version = self._next_version.get(name, 0) + 1
            self._next_version[name] = version
            key = ModelKey(name=name, version=version)
            self._use_counter += 1
            # store-backed models fault factor tiles in (and out) after
            # registration, so the budget is enforced against *current*
            # residency: one O(n) refresh per register, never the
            # historical O(n) re-sum per eviction iteration
            self._refresh_resident_bytes()
            entry = RegisteredModel(
                key=key, model=model,
                resident_bytes=model.resident_bytes(),
                last_used=self._use_counter)
            self._entries[key] = entry
            self._resident_total += entry.resident_bytes
            self._evict_over_budget(protect=key)
            return key

    def _refresh_resident_bytes(self) -> None:
        """Re-poll every entry's resident bytes (caller holds the lock).

        Plain models report a constant; store-backed models report what
        their factor has actually faulted in since the last look.
        """
        total = 0
        for entry in self._entries.values():
            entry.resident_bytes = entry.model.resident_bytes()
            total += entry.resident_bytes
        self._resident_total = total

    def get(self, name: str, version: int | None = None) -> FittedModel:
        """Look up a model (latest version by default); bumps recency."""
        return self.entry(name, version).model

    def entry(self, name: str, version: int | None = None) -> RegisteredModel:
        """Like :meth:`get` but returns the full registry entry."""
        with self._lock:
            key = self._resolve(name, version)
            entry = self._entries[key]
            self._use_counter += 1
            entry.last_used = self._use_counter
            return entry

    def _resolve(self, name: str, version: int | None) -> ModelKey:
        if version is not None:
            key = ModelKey(name=name, version=int(version))
            if key not in self._entries:
                raise KeyError(
                    f"model {name!r} version {version} is not registered "
                    "(it may have been evicted)")
            return key
        versions = [k.version for k in self._entries if k.name == name]
        if not versions:
            raise KeyError(f"no model registered under {name!r}")
        return ModelKey(name=name, version=max(versions))

    # ------------------------------------------------------------------
    def unregister(self, name: str, version: int | None = None) -> int:
        """Drop one version (or, with ``version=None``, every version)."""
        with self._lock:
            if version is not None:
                keys = [ModelKey(name=name, version=int(version))]
                if keys[0] not in self._entries:
                    raise KeyError(
                        f"model {name!r} version {version} is not registered")
            else:
                keys = [k for k in self._entries if k.name == name]
                if not keys:
                    raise KeyError(f"no model registered under {name!r}")
            for k in keys:
                self._resident_total -= self._entries[k].resident_bytes
                del self._entries[k]
            return len(keys)

    def _evict_over_budget(self, protect: ModelKey) -> None:
        """Evict LRU entries until within budget (caller holds the lock).

        The running ``_resident_total`` makes each iteration O(n) in
        the victim scan only — the historical per-iteration re-sum made
        heavy churn O(n²).
        """
        if self.max_resident_bytes is None:
            return
        while (self._resident_total > self.max_resident_bytes
               and len(self._entries) > 1):
            victim = min(
                (e for e in self._entries.values() if e.key != protect),
                key=lambda e: e.last_used, default=None)
            if victim is None:
                return
            self._resident_total -= victim.resident_bytes
            del self._entries[victim.key]
            self.evictions += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_total

    def keys(self) -> list[ModelKey]:
        """Registered ``(name, version)`` keys, registration order."""
        with self._lock:
            return list(self._entries)

    def names(self) -> list[str]:
        with self._lock:
            return sorted({k.name for k in self._entries})

    def versions(self, name: str) -> list[int]:
        """Resident versions of ``name``, ascending (evicted ones gone)."""
        with self._lock:
            return sorted(k.version for k in self._entries if k.name == name)

    def __contains__(self, key: ModelKey) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            budget = (f", budget={self.max_resident_bytes}"
                      if self.max_resident_bytes is not None else "")
            return (f"ModelRegistry({len(self._entries)} models, "
                    f"{self._resident_total} resident bytes{budget})")
