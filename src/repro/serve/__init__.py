"""Model serving: registry, micro-batching, concurrent prediction.

The serving tier turns fitted-model artifacts
(:class:`~repro.gwas.model.FittedModel`) into a request/response
prediction API:

``ModelRegistry``
    Named + versioned model store with an LRU eviction budget over the
    precision-aware resident tile bytes.
``PredictionService``
    Accepts concurrent per-cohort predict requests, coalesces them
    into micro-batches (shared train-side operand context, solo
    tile-aligned block shapes), executes on one shared session runtime
    per model, and returns per-request latency/flops stats.
``plan_micro_batch`` / ``micro_batch_slices``
    Request-group validation and streaming geometry underneath the
    micro-batcher.

See the "Model artifacts & serving" section of ``docs/api.md`` for the
correctness (bitwise per-request) and batching guarantees.
"""

from repro.serve.batching import (
    MicroBatchPlan,
    effective_batch_rows,
    micro_batch_slices,
    plan_micro_batch,
)
from repro.serve.registry import ModelKey, ModelRegistry, RegisteredModel
from repro.serve.service import PredictionService, PredictResult, ServiceStats

__all__ = [
    "MicroBatchPlan",
    "plan_micro_batch",
    "micro_batch_slices",
    "effective_batch_rows",
    "ModelKey",
    "ModelRegistry",
    "RegisteredModel",
    "PredictionService",
    "PredictResult",
    "ServiceStats",
]
