"""repro.api — the stable public facade of the reproduction.

The solver API is organised around tile-native **sessions**
(:class:`~repro.gwas.session.KRRSession`,
:class:`~repro.gwas.session.RRSession`): one object owns the phase
pipeline (Build → Associate → Predict) and keeps the kernel matrix
tiled end to end, with zero dense n×n round-trips (see
``docs/api.md`` for the memory contract and the migration guide from
the legacy ``fit``/``predict`` estimators).

Typical use::

    from repro.api import KRRSession, KRRConfig, PrecisionPlan

    session = KRRSession(KRRConfig(
        tile_size=64, precision_plan=PrecisionPlan.adaptive_fp16()))
    session.fit(train_genotypes, train_phenotypes)
    predictions = session.predict(test_genotypes)
"""

from repro.data.dataset import GWASDataset, TrainTestSplit
from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig
from repro.gwas.cv import CrossValidationResult, grid_search_cv
from repro.gwas.metrics import (
    accuracy_report,
    mean_squared_prediction_error,
    mspe,
    pearson_correlation,
)
from repro.gwas.session import KRRSession, RRSession
from repro.gwas.workflow import GWASWorkflow, WorkflowResult
from repro.precision.formats import Precision

__all__ = [
    "KRRSession",
    "RRSession",
    "KRRConfig",
    "RRConfig",
    "PrecisionPlan",
    "Precision",
    "GWASDataset",
    "TrainTestSplit",
    "GWASWorkflow",
    "WorkflowResult",
    "grid_search_cv",
    "CrossValidationResult",
    "mspe",
    "mean_squared_prediction_error",
    "pearson_correlation",
    "accuracy_report",
]
