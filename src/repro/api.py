"""repro.api — the stable public facade of the reproduction.

The solver API is organised around tile-native **sessions**
(:class:`~repro.gwas.session.KRRSession`,
:class:`~repro.gwas.session.RRSession`): one object owns the phase
pipeline (Build → Associate → Predict) and keeps the kernel matrix
tiled end to end, with zero dense n×n round-trips (see
``docs/api.md`` for the memory contract and the migration guide from
the legacy ``fit``/``predict`` estimators).

Typical use::

    from repro.api import KRRSession, KRRConfig, PrecisionPlan

    session = KRRSession(KRRConfig(
        tile_size=64, precision_plan=PrecisionPlan.adaptive_fp16()))
    session.fit(train_genotypes, train_phenotypes)
    predictions = session.predict(test_genotypes)

Fitting and serving are decoupled by the immutable
:class:`~repro.gwas.model.FittedModel` artifact: ``export_model()``
extracts the predict-side state (weights, γ/α, SNP-panel contract and
the storage-precision tiled factorization), ``save``/``load``
round-trip it bitwise with each tile in its native precision bytes,
and the :mod:`repro.serve` tier answers concurrent predict requests
against registered models through tile-aligned micro-batches::

    model = session.export_model()
    model.save("height.npz")

    registry = ModelRegistry(max_resident_bytes=2 << 30)
    registry.register("height", FittedModel.load("height.npz"))
    with PredictionService(registry) as service:
        result = service.predict(cohort, model="height")
"""

from repro.data.dataset import GWASDataset, TrainTestSplit
from repro.data.io import load_model, save_model
from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig, ServeConfig
from repro.gwas.cv import CrossValidationResult, grid_search_cv
from repro.gwas.metrics import (
    accuracy_report,
    mean_squared_prediction_error,
    mspe,
    pearson_correlation,
)
from repro.gwas.model import FittedModel
from repro.gwas.session import KRRSession, RRSession
from repro.gwas.workflow import GWASWorkflow, WorkflowResult
from repro.precision.formats import Precision
from repro.serve import (
    ModelKey,
    ModelRegistry,
    PredictionService,
    PredictResult,
)
from repro.store import StoreStats, TileStore

__all__ = [
    "KRRSession",
    "RRSession",
    "KRRConfig",
    "RRConfig",
    "ServeConfig",
    "PrecisionPlan",
    "Precision",
    "FittedModel",
    "save_model",
    "load_model",
    "ModelRegistry",
    "ModelKey",
    "PredictionService",
    "PredictResult",
    "TileStore",
    "StoreStats",
    "GWASDataset",
    "TrainTestSplit",
    "GWASWorkflow",
    "WorkflowResult",
    "grid_search_cv",
    "CrossValidationResult",
    "mspe",
    "mean_squared_prediction_error",
    "pearson_correlation",
    "accuracy_report",
]
