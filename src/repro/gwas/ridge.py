"""Linear Ridge Regression GWAS (the paper's RR baseline, Sec. V-A).

.. deprecated::
    :class:`RidgeRegressionGWAS` is a thin compatibility wrapper over
    :class:`~repro.gwas.session.RRSession`; prefer the session API
    (``repro.api.RRSession``) in new code.

Ridge regression minimizes ``||Y − Xβ||² + λ||β||²`` over the design
matrix ``X`` (patients × [SNPs + confounders]) and the phenotype panel
``Y``.  The normal-equations solution

    β = (XᵀX + λI)⁻¹ XᵀY                                   (Eq. 2)

is computed exactly as in the paper:

1. ``XᵀX`` with the mixed-precision SYRK whose integer (SNP) panels go
   through the emulated INT8 tensor-core GEMM and whose confounder
   panels stay in FP32 (Fig. 2);
2. ``λ`` added to the diagonal;
3. a tiled mixed-precision Cholesky factorization whose off-diagonal
   update precision follows the configured
   :class:`~repro.gwas.config.PrecisionPlan`;
4. ``XᵀY`` in FP32 (the phenotype panel is small);
5. forward/backward triangular solves in FP32.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gwas.config import RRConfig
from repro.gwas.session import RRSession
from repro.linalg.cholesky import CholeskyResult
from repro.precision.formats import Precision

__all__ = ["RidgeRegressionGWAS", "RRModel"]


@dataclass
class RRModel:
    """Fitted ridge-regression model.

    Attributes
    ----------
    beta:
        ``p × nph`` coefficient matrix mapping design columns to
        phenotypes.
    factorization:
        The Cholesky factorization of ``XᵀX + λI`` (reusable across
        additional phenotype panels — the "reuse the factors" advantage
        the paper highlights for direct solvers).
    flops:
        Operation count of the fit (SYRK + Cholesky + solves).
    column_means, column_scales:
        Standardization applied to the design matrix before fitting.
    """

    beta: np.ndarray
    factorization: CholeskyResult
    flops: float
    column_means: np.ndarray
    column_scales: np.ndarray
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)


class RidgeRegressionGWAS:
    """Multivariate GWAS with linear ridge regression.

    .. deprecated::
        Thin wrapper over :class:`~repro.gwas.session.RRSession`;
        prefer the session API in new code.

    Parameters
    ----------
    config:
        :class:`~repro.gwas.config.RRConfig`; keyword overrides are also
        accepted, e.g. ``RidgeRegressionGWAS(regularization=10.0)``.
    """

    def __init__(self, config: RRConfig | None = None, **overrides) -> None:
        self.session = RRSession(config, **overrides)
        self.config = self.session.config
        self.model_: RRModel | None = None

    def fit(self, design: np.ndarray, phenotypes: np.ndarray,
            integer_columns: np.ndarray | None = None) -> RRModel:
        """Fit β = (XᵀX + λI)⁻¹ XᵀY with the mixed-precision pipeline."""
        session = self.session
        session.fit(design, phenotypes, integer_columns=integer_columns)
        self.model_ = RRModel(
            beta=session.beta_,
            factorization=session.factorization_,
            flops=session.flops_,
            column_means=session.column_means_,
            column_scales=session.column_scales_,
            flops_by_precision=session.flops_by_precision,
        )
        return self.model_

    # ------------------------------------------------------------------
    def predict(self, design: np.ndarray) -> np.ndarray:
        """Predict phenotypes for new individuals (test design matrix)."""
        if self.model_ is None:
            raise RuntimeError("fit() must be called before predict()")
        return self.session.predict(design)

    def fit_predict(self, train_design: np.ndarray, train_phenotypes: np.ndarray,
                    test_design: np.ndarray,
                    integer_columns: np.ndarray | None = None) -> np.ndarray:
        """Fit on the training set and predict the test set in one call."""
        self.fit(train_design, train_phenotypes, integer_columns=integer_columns)
        return self.predict(test_design)

    def solve_additional_phenotypes(self, design: np.ndarray,
                                    phenotypes: np.ndarray) -> np.ndarray:
        """Solve for extra phenotype panels reusing the existing factorization.

        This is the direct-solver advantage the paper points out: the
        Cholesky factors of ``XᵀX + λI`` are phenotype-independent.
        """
        if self.model_ is None:
            raise RuntimeError("fit() must be called before reusing the factors")
        return self.session.solve_additional_phenotypes(design, phenotypes)
