"""Linear Ridge Regression GWAS (the paper's RR baseline, Sec. V-A).

Ridge regression minimizes ``||Y − Xβ||² + λ||β||²`` over the design
matrix ``X`` (patients × [SNPs + confounders]) and the phenotype panel
``Y``.  The normal-equations solution

    β = (XᵀX + λI)⁻¹ XᵀY                                   (Eq. 2)

is computed exactly as in the paper:

1. ``XᵀX`` with the mixed-precision SYRK whose integer (SNP) panels go
   through the emulated INT8 tensor-core GEMM and whose confounder
   panels stay in FP32 (Fig. 2);
2. ``λ`` added to the diagonal;
3. a tiled mixed-precision Cholesky factorization whose off-diagonal
   update precision follows the configured
   :class:`~repro.gwas.config.PrecisionPlan`;
4. ``XᵀY`` in FP32 (the phenotype panel is small);
5. forward/backward triangular solves in FP32.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gwas.config import PrecisionPlan, RRConfig
from repro.linalg.blas3 import gemm, syrk
from repro.linalg.cholesky import CholeskyResult, cholesky
from repro.linalg.solve import solve_cholesky
from repro.precision.formats import Precision
from repro.tiles.layout import TileLayout

__all__ = ["RidgeRegressionGWAS", "RRModel"]


@dataclass
class RRModel:
    """Fitted ridge-regression model.

    Attributes
    ----------
    beta:
        ``p × nph`` coefficient matrix mapping design columns to
        phenotypes.
    factorization:
        The Cholesky factorization of ``XᵀX + λI`` (reusable across
        additional phenotype panels — the "reuse the factors" advantage
        the paper highlights for direct solvers).
    flops:
        Operation count of the fit (SYRK + Cholesky + solves).
    column_means, column_scales:
        Standardization applied to the design matrix before fitting.
    """

    beta: np.ndarray
    factorization: CholeskyResult
    flops: float
    column_means: np.ndarray
    column_scales: np.ndarray
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)


class RidgeRegressionGWAS:
    """Multivariate GWAS with linear ridge regression.

    Parameters
    ----------
    config:
        :class:`~repro.gwas.config.RRConfig`; keyword overrides are also
        accepted, e.g. ``RidgeRegressionGWAS(regularization=10.0)``.
    """

    def __init__(self, config: RRConfig | None = None, **overrides) -> None:
        if config is None:
            config = RRConfig()
        if overrides:
            config = RRConfig(**{**config.__dict__, **overrides})
        self.config = config
        self.model_: RRModel | None = None

    # ------------------------------------------------------------------
    def _standardize(self, x: np.ndarray, fit: bool) -> np.ndarray:
        """Center/scale design columns (fit: learn the statistics)."""
        x = np.asarray(x, dtype=np.float64)
        if fit:
            self._means = x.mean(axis=0)
            scales = x.std(axis=0)
            scales[scales == 0] = 1.0
            self._scales = scales
        return (x - self._means) / self._scales

    def fit(self, design: np.ndarray, phenotypes: np.ndarray,
            integer_columns: np.ndarray | None = None) -> RRModel:
        """Fit β = (XᵀX + λI)⁻¹ XᵀY with the mixed-precision pipeline.

        Parameters
        ----------
        design:
            ``n × p`` design matrix (SNPs + confounders).  The matrix is
            standardized internally; the integer tensor-core path is
            applied to the *raw* integer SNP columns when
            ``integer_columns`` marks them, matching the paper's encoding
            (standardization is folded into the Gram matrix afterwards).
        phenotypes:
            ``n × nph`` phenotype panel (a 1D vector is accepted).
        integer_columns:
            Boolean mask of integer-coded columns (auto-detected when
            omitted).
        """
        cfg = self.config
        design = np.asarray(design, dtype=np.float64)
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        n, p = design.shape
        if phenotypes.shape[0] != n:
            raise ValueError("design and phenotypes must have the same number of rows")

        flops_by_precision: dict[Precision, float] = {}

        def account(flops: int, precision: Precision) -> None:
            flops_by_precision[precision] = flops_by_precision.get(precision, 0.0) + flops

        # --- Gram matrix on raw columns via the mixed INT8/FP32 SYRK
        gram_raw = syrk(design, tile_size=cfg.tile_size,
                        integer_columns=integer_columns,
                        output_precision=Precision.FP64,
                        accumulate_callback=account)

        # Standardize the Gram matrix analytically:
        #   X_std = (X - 1 μᵀ) D⁻¹  ⇒  X_stdᵀ X_std = D⁻¹ (XᵀX − n μ μᵀ) D⁻¹
        mu = design.mean(axis=0)
        scales = design.std(axis=0)
        scales[scales == 0] = 1.0
        self._means, self._scales = mu, scales
        gram = (gram_raw - n * np.outer(mu, mu)) / np.outer(scales, scales)

        # --- regularize and factorize with the precision plan
        a = gram + cfg.regularization * np.eye(p)
        layout = TileLayout.square(p, cfg.tile_size)
        plan: PrecisionPlan = cfg.precision_plan
        pmap = plan.precision_map(layout, matrix=a)
        fact = cholesky(a, tile_size=cfg.tile_size,
                        working_precision=plan.working_precision,
                        precision_map=pmap)
        for prec, fl in fact.flops_by_precision.items():
            flops_by_precision[prec] = flops_by_precision.get(prec, 0.0) + fl

        # --- XᵀY in FP32 and the triangular solves
        x_std = self._standardize(design, fit=False)
        y_centered = phenotypes - phenotypes.mean(axis=0, keepdims=True)
        self._y_means = phenotypes.mean(axis=0)
        xty = gemm(x_std, y_centered, tile_size=cfg.tile_size,
                   precision=Precision.FP32, transa=True)
        beta = solve_cholesky(fact, xty, precision=plan.working_precision)

        total_flops = float(sum(flops_by_precision.values()))
        self.model_ = RRModel(
            beta=np.asarray(beta, dtype=np.float64),
            factorization=fact,
            flops=total_flops,
            column_means=mu,
            column_scales=scales,
            flops_by_precision=flops_by_precision,
        )
        return self.model_

    # ------------------------------------------------------------------
    def predict(self, design: np.ndarray) -> np.ndarray:
        """Predict phenotypes for new individuals (test design matrix)."""
        if self.model_ is None:
            raise RuntimeError("fit() must be called before predict()")
        x_std = self._standardize(np.asarray(design, dtype=np.float64), fit=False)
        pred = gemm(x_std, self.model_.beta, tile_size=self.config.tile_size,
                    precision=Precision.FP32)
        return pred + self._y_means[None, :]

    def fit_predict(self, train_design: np.ndarray, train_phenotypes: np.ndarray,
                    test_design: np.ndarray,
                    integer_columns: np.ndarray | None = None) -> np.ndarray:
        """Fit on the training set and predict the test set in one call."""
        self.fit(train_design, train_phenotypes, integer_columns=integer_columns)
        return self.predict(test_design)

    def solve_additional_phenotypes(self, design: np.ndarray,
                                    phenotypes: np.ndarray) -> np.ndarray:
        """Solve for extra phenotype panels reusing the existing factorization.

        This is the direct-solver advantage the paper points out: the
        Cholesky factors of ``XᵀX + λI`` are phenotype-independent.
        """
        if self.model_ is None:
            raise RuntimeError("fit() must be called before reusing the factors")
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        x_std = self._standardize(np.asarray(design, dtype=np.float64), fit=False)
        y_centered = phenotypes - phenotypes.mean(axis=0, keepdims=True)
        xty = gemm(x_std, y_centered, tile_size=self.config.tile_size,
                   precision=Precision.FP32, transa=True)
        return solve_cholesky(self.model_.factorization, xty,
                              precision=self.config.precision_plan.working_precision)
