"""Tile-native solver sessions: Build → Associate → Predict.

:class:`KRRSession` is the paper's three-phase KRR pipeline
(Algorithms 1–5) redesigned around the kernel matrix as a *tile-native*
object: ``K`` is produced by the streamed Build as a symmetric
:class:`~repro.tiles.matrix.TileMatrix` and stays tiled through the
Associate factorization and the Predict phase — there is **zero dense
n×n round-trip** anywhere in the fit/predict hot path.

The memory contract per phase:

* **Build** — tiles stream into symmetric tile storage; peak dense
  temporary is one block row of tiles
  (:class:`~repro.distance.build.BuildStats`).
* **Associate** — the regularization ``K + alpha*I`` touches only the
  *diagonal tiles* (:meth:`TileMatrix.add_diagonal`), the boost-retry
  loop moves the shift with :meth:`TileMatrix.shift_diagonal` instead
  of re-copying the matrix, and the Cholesky factorizes a tile-level
  workspace copy (:meth:`TileMatrix.unpacked_lower`).  The weight-panel
  solve runs blockwise against the tiled factors.
* **Predict** — the test cohort streams through
  :meth:`~repro.distance.build.KernelBuilder.iter_cross_rows` in row
  batches (``KRRConfig.predict_batch_rows``), computing
  ``K_test_block · W`` per block; the peak cross-kernel temporary is
  one batch instead of the full ``n_test × n_train`` panel.

Each session owns a single session-long
:class:`~repro.runtime.runtime.Runtime`: every phase — the Build row
tasks, the Cholesky tile tasks, the per-tile-row triangular-solve
tasks and the per-batch Predict GEMMs — inserts its task DAG there and
executes under one out-of-order threaded scheduler
(``KRRConfig.workers`` / ``KRRConfig.execution``).  The runtime's
per-phase traces are the source of the ``phase_flops`` /
``flops_by_precision`` accounting.

:class:`RRSession` gives the linear ridge-regression baseline the same
staged session shape (gram → associate → predict) so the two methods
are driven identically by :class:`~repro.gwas.workflow.GWASWorkflow`.

The legacy estimator classes
(:class:`~repro.gwas.krr.KernelRidgeRegressionGWAS`,
:class:`~repro.gwas.ridge.RidgeRegressionGWAS`) are thin wrappers over
these sessions, kept for backwards compatibility.
"""

from __future__ import annotations

import time

import numpy as np

from repro.distance.build import BuildResult, KernelBuilder
from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig
from repro.linalg.blas3 import gemm, syrk
from repro.linalg.cg import CGResult, cg_solve, resolve_solver
from repro.linalg.cholesky import CholeskyResult, cholesky
from repro.linalg.solve import solve_cholesky
from repro.precision.formats import Precision
from repro.runtime.runtime import Runtime
from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TileMatrix

__all__ = ["KRRSession", "RRSession", "effective_batch_rows"]


def effective_batch_rows(tile_size: int, batch_rows: int | None) -> int | None:
    """Round a Predict row-batch request to a tile-size multiple.

    Tile-aligned batches keep every Gram product on the same BLAS
    kernel dispatch as the monolithic path, which is what makes the
    batched predictions bitwise identical to it; sub-tile batches
    would drop the FP32 confounder contribution into a GEMV with a
    different accumulation order.  ``None`` (one monolithic batch)
    passes through.
    """
    if batch_rows is None:
        return None
    batch = max(tile_size, int(batch_rows))
    return (batch // tile_size) * tile_size


def _panel_rows(panel: TileMatrix) -> np.ndarray:
    """Assemble a tall tiled panel into a dense float64 array tile-row-wise."""
    rows = []
    for i in range(panel.layout.tile_rows):
        rows.append(np.hstack([panel.get_tile(i, j).to_float64()
                               for j in range(panel.layout.tile_cols)]))
    return np.vstack(rows)


class KRRSession:
    """A tile-native KRR solving session over one training cohort.

    The session owns the phase pipeline and its state: the tiled kernel
    (``kernel_``), the tiled Cholesky factorization (``factorization_``),
    the weight panel (``weights_``), and the per-phase / per-precision
    operation accounting (``phase_flops`` / ``flops_by_precision``).

    Typical use::

        session = KRRSession(KRRConfig(tile_size=64))
        session.fit(train_genotypes, train_phenotypes, train_confounders)
        predictions = session.predict(test_genotypes, test_confounders)

    or phase by phase (e.g. to sweep the regularization over one
    Build)::

        session.build(train_genotypes)
        for alpha in alphas:
            session.associate(train_phenotypes, alpha=alpha)
            ...

    Parameters
    ----------
    config:
        :class:`~repro.gwas.config.KRRConfig`; keyword overrides are
        accepted, e.g. ``KRRSession(alpha=0.5, gamma=0.02)``.
    """

    def __init__(self, config: KRRConfig | None = None, **overrides) -> None:
        if config is None:
            config = KRRConfig()
        if overrides:
            config = config.with_options(**overrides)
        self.config = config
        # The session-long task runtime: one scheduler executes every
        # phase (Build row tasks, Cholesky tiles, triangular solves,
        # Predict GEMMs) and its per-phase traces feed the accounting.
        self.runtime = Runtime(execution=config.execution,
                               workers=config.workers,
                               task_retries=config.task_retries,
                               task_timeout_s=config.task_timeout_s)
        # Out-of-core tile store (None = fully resident).  Created when
        # the config sets a budget/directory or REPRO_STORE_BUDGET is
        # in the environment; the streamed Build, the factorization
        # workspace and the factor then all live under one residency
        # budget, with the scheduler pinning each task's tiles.
        self.store = self._make_store(config)
        if self.store is not None:
            self.runtime.attach_store(self.store)
        # Build state
        self.build_result_: BuildResult | None = None
        self.kernel_: TileMatrix | None = None
        self.training_genotypes_: np.ndarray | None = None
        self.training_confounders_: np.ndarray | None = None
        self.gamma_: float | None = None
        # Associate state
        self.factorization_: CholeskyResult | None = None
        self.weights_: np.ndarray | None = None
        self.y_means_: np.ndarray | None = None
        self.alpha_: float | None = None
        self.regularization_boosts_: int = 0
        # CG solver state (``config.solver="cg"`` / ``REPRO_SOLVER=cg``):
        # the regularization of the *reference* factor held in
        # ``factorization_`` — CG preconditions every other alpha with
        # it; ``None`` means the factor (if any) cannot serve as a CG
        # reference (fresh session, rebuilt kernel, adopted kernel).
        self._cg_ref_alpha: float | None = None
        # centered phenotypes of the last associate on this kernel —
        # re-solves of the same panel at a new alpha warm-start CG from
        # the retained ``weights_``
        self._cg_last_y: np.ndarray | None = None
        self.cg_result_: CGResult | None = None
        self.cg_fallbacks_: int = 0
        self.factorization_count_: int = 0
        # accounting (mutated in place so external references stay live)
        self.phase_flops: dict[str, float] = {}
        self.flops_by_precision: dict[Precision, float] = {}
        #: Cumulative wall-clock seconds per phase —
        #: ``build`` / ``factor`` / ``solve`` / ``predict`` (plus any
        #: custom predict phase labels, e.g. ``"serve"``).  Reset by
        #: :meth:`build`, accumulated by every later phase call.
        self.phase_seconds: dict[str, float] = {}

    # ------------------------------------------------------------------
    # out-of-core store
    # ------------------------------------------------------------------
    @staticmethod
    def _make_store(config: KRRConfig):
        from repro.store import TileStore, resolve_store_budget

        budget = resolve_store_budget(config.store_budget_bytes)
        if budget is None and config.store_dir is None:
            return None
        return TileStore(directory=config.store_dir, budget_bytes=budget)

    def store_stats(self):
        """Snapshot of the session store's :class:`~repro.store.StoreStats`.

        ``None`` when the session runs fully resident.  The headline
        contract — asserted by the out-of-core tests and benchmark —
        is ``peak_resident_bytes <= budget_bytes`` alongside bitwise
        identical fit/predict results.
        """
        return self.store.stats.snapshot() if self.store is not None else None

    def _add_seconds(self, key: str, seconds: float) -> None:
        self.phase_seconds[key] = self.phase_seconds.get(key, 0.0) + seconds

    # ------------------------------------------------------------------
    # Phase 1: BUILD
    # ------------------------------------------------------------------
    def _builder(self, gamma: float, adaptive: bool = False,
                 trace_phase: str = "build") -> KernelBuilder:
        cfg = self.config
        plan: PrecisionPlan = cfg.precision_plan
        adaptive_rule = (plan.adaptive_rule()
                         if adaptive and plan.mode == "adaptive" else None)
        return KernelBuilder(
            kernel_type=cfg.kernel_type,
            gamma=gamma,
            tile_size=cfg.tile_size,
            snp_precision=cfg.snp_precision,
            adaptive_rule=adaptive_rule,
            storage_precision=plan.working_precision,
            runtime=self.runtime,
            trace_phase=trace_phase,
            store=self.store,
        )

    def build(self, genotypes: np.ndarray,
              confounders: np.ndarray | None = None) -> BuildResult:
        """Build the symmetric training kernel matrix (Algorithm 2).

        The kernel streams tile by tile into symmetric tile storage and
        is retained on the session as ``kernel_`` (a ``TileMatrix``) for
        the Associate and Predict phases.
        """
        genotypes = np.asarray(genotypes)
        gamma = self.config.effective_gamma(genotypes.shape[1])
        builder = self._builder(gamma, adaptive=True)
        self.runtime.clear_phase("build")
        started = time.perf_counter()
        result = builder.build_training(genotypes, confounders)
        self.phase_seconds.clear()
        self.phase_seconds["build"] = time.perf_counter() - started
        # a rebuilt kernel invalidates the CG reference factor: the
        # retained factorization (if any) no longer preconditions it
        self._cg_ref_alpha = None
        self.cg_result_ = None
        self._cg_last_y = None

        self.build_result_ = result
        self.kernel_ = result.kernel
        self.training_genotypes_ = genotypes
        self.training_confounders_ = (
            None if confounders is None
            else np.asarray(confounders, dtype=np.float64))
        self.gamma_ = gamma
        # the runtime trace is the accounting source when the Build ran
        # through it (the streamed Gaussian path); the IBS dense path
        # falls back to the result totals
        trace = self.runtime.phase_trace("build")
        self.phase_flops.clear()
        self.flops_by_precision.clear()
        if trace.num_tasks:
            self.phase_flops["build"] = trace.total_flops
            self.flops_by_precision.update(trace.flops_by_precision())
        else:
            self.phase_flops["build"] = result.flops
            self.flops_by_precision.update(result.flops_by_precision)
        return result

    def _build_by_precision(self) -> dict[Precision, float]:
        """Build-phase per-precision flops (trace-sourced when available)."""
        trace = self.runtime.phase_trace("build")
        if trace.num_tasks:
            return trace.flops_by_precision()
        if self.build_result_ is not None:
            return dict(self.build_result_.flops_by_precision)
        return {}

    def adopt_kernel(self, kernel: TileMatrix | np.ndarray) -> TileMatrix:
        """Attach an externally built training kernel to the session.

        A dense array is tiled at the configured tile size (quantized to
        the plan's working precision, matching what the historical dense
        Associate path stored); a ``TileMatrix`` is adopted as-is.  The
        session can then run :meth:`associate` without
        :meth:`build` — note :meth:`predict` still requires the training
        genotypes, i.e. a full :meth:`build`/:meth:`fit`.
        """
        if isinstance(kernel, TileMatrix):
            tiled = kernel
        else:
            dense = np.asarray(kernel, dtype=np.float64)
            if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
                raise ValueError("the training kernel matrix must be square")
            tiled = TileMatrix.from_dense(
                dense, self.config.tile_size,
                self.config.precision_plan.working_precision, symmetric=True)
        if tiled.shape[0] != tiled.shape[1]:
            raise ValueError("the training kernel matrix must be square")
        self.kernel_ = tiled
        # an adopted kernel carries no Build cost in this session — drop
        # the discarded build from the trace, the phase entry *and* the
        # per-precision view (the build sums are exact, so subtraction
        # removes exactly the dropped contribution)
        for prec, fl in self._build_by_precision().items():
            left = self.flops_by_precision.get(prec, 0.0) - fl
            if left <= 0.0:
                self.flops_by_precision.pop(prec, None)
            else:
                self.flops_by_precision[prec] = left
        self.runtime.clear_phase("build")
        self.build_result_ = None
        self.phase_flops.pop("build", None)
        self.phase_seconds.pop("build", None)
        # any retained factor belongs to the replaced kernel — it must
        # not serve as the CG preconditioner for the adopted one
        self._cg_ref_alpha = None
        self.cg_result_ = None
        self._cg_last_y = None
        return tiled

    # ------------------------------------------------------------------
    # Phase 2: ASSOCIATE
    # ------------------------------------------------------------------
    def _direct_factorize(self, current: float,
                          phase: str = "associate") -> tuple[CholeskyResult, float]:
        """The boost-retry tiled factorization of ``K + current*I``.

        The regularization is applied by shifting only the *diagonal
        tiles* of the tiled kernel; the factorization runs on a
        tile-level workspace copy, so no dense n×n array is ever
        materialized.  If the low-precision perturbation of the kernel
        tiles makes the regularized matrix numerically indefinite, the
        shift is boosted 10x in place — up to twice — before giving up;
        the boost count is recorded in ``regularization_boosts_``.

        Returns the factorization and the effective (possibly boosted)
        alpha; the factor is retained as both ``factorization_`` and
        the CG reference.
        """
        plan = self.config.precision_plan
        started = time.perf_counter()
        # tile-grid copy sharing the off-diagonal tile objects with the
        # kernel: regularization only allocates new diagonal tiles, and
        # the factorization below works on its own workspace copy
        regularized = self.kernel_.shallow_copy()
        regularized.add_diagonal(current)
        self.regularization_boosts_ = 0
        last_error: Exception | None = None
        for attempt in range(3):
            pmap = plan.precision_map(regularized.layout, matrix=regularized)
            try:
                fact = cholesky(regularized,
                                working_precision=plan.working_precision,
                                precision_map=pmap,
                                runtime=self.runtime, phase=phase)
                break
            except np.linalg.LinAlgError as exc:
                last_error = exc
                boosted = current * 10.0
                # move the diagonal shift in place — off-diagonal tiles
                # (the bulk of the matrix) are not touched, let alone
                # copied, between attempts
                regularized.shift_diagonal(current, boosted)
                current = boosted
                self.regularization_boosts_ = attempt + 1
        else:
            raise np.linalg.LinAlgError(
                "the regularized kernel matrix remained indefinite under the "
                "chosen precision plan even after boosting alpha"
            ) from last_error
        self.factorization_ = fact
        self.factorization_count_ += 1
        self._cg_ref_alpha = current
        self._add_seconds("factor", time.perf_counter() - started)
        return fact, current

    def _panel_solve(self, y_centered: np.ndarray,
                     phase: str = "associate") -> np.ndarray:
        """Tiled POTRS of a phenotype panel against ``factorization_``.

        The panel streams through per tile row, as per-row TRSM/GEMM
        tasks on the session runtime.
        """
        fact = self.factorization_
        started = time.perf_counter()
        panel = TileMatrix.from_dense(y_centered, fact.factor.tile_size,
                                      Precision.FP64)
        solved = solve_cholesky(
            fact, panel, precision=self.config.precision_plan.working_precision,
            runtime=self.runtime, phase=phase)
        weights = _panel_rows(solved)
        self._add_seconds("solve", time.perf_counter() - started)
        return weights

    def associate(self, phenotypes: np.ndarray,
                  alpha: float | None = None) -> np.ndarray:
        """Factorize/solve ``(K + alpha*I) W = Y_c`` (Algorithm 3).

        ``alpha`` overrides ``config.alpha`` for this call, which is how
        the cross-validation grid sweeps the regularization axis over a
        single Build.

        The solver route is ``config.solver`` (or ``REPRO_SOLVER``):

        * ``"direct"`` — one tiled mixed-precision Cholesky per alpha
          (see :meth:`_direct_factorize`) plus the tiled panel solve.
        * ``"cg"`` — factor **once**: the first associate takes the
          direct route (bitwise identical to ``"direct"``) and retains
          its factor as the CG reference; every later alpha is solved
          by :func:`~repro.linalg.cg.cg_solve` preconditioned with that
          factor — O(n^2) per iteration instead of O(n^3/3) per alpha.
          A re-associate at exactly the reference alpha reuses the
          factor with a direct solve; a CG solve that fails to reach
          ``config.cg_tol`` within ``config.cg_max_iters`` falls back
          to a fresh direct factorization (counted in
          ``cg_fallbacks_``), which becomes the new reference.
        """
        if self.kernel_ is None:
            raise RuntimeError("build() must be called before associate()")
        cfg = self.config
        plan = cfg.precision_plan
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        n = self.kernel_.shape[0]
        if phenotypes.shape[0] != n:
            raise ValueError("phenotypes must have one row per training individual")

        base = cfg.alpha if alpha is None else float(alpha)
        requested = base if base > 0 else 1e-6
        solver = resolve_solver(cfg.solver)

        y_means = phenotypes.mean(axis=0)
        y_centered = phenotypes - y_means[None, :]

        self.runtime.clear_phase("associate")
        self.cg_result_ = None
        weights: np.ndarray | None = None
        current = requested

        if (solver == "cg" and self.factorization_ is not None
                and self._cg_ref_alpha is not None):
            if requested == self._cg_ref_alpha:
                # the reference factor *is* K + requested*I — the direct
                # tiled solve is cheaper than any CG iteration and
                # bitwise identical to the direct route
                weights = self._panel_solve(y_centered)
            else:
                # warm start from the previous solution when this is a
                # re-solve of the *same* centered phenotypes at a new
                # shift: the leftover residual is (alpha_prev-alpha)*w,
                # typically far below 1, saving several iterations of a
                # regularization sweep
                x0 = None
                if (self._cg_last_y is not None and self.weights_ is not None
                        and self.weights_.shape == y_centered.shape
                        and np.array_equal(self._cg_last_y, y_centered)):
                    x0 = self.weights_
                started = time.perf_counter()
                result = cg_solve(
                    self.kernel_, y_centered, alpha=requested,
                    preconditioner=self.factorization_,
                    tol=cfg.cg_tol, max_iterations=cfg.cg_max_iters,
                    precision=plan.working_precision,
                    runtime=self.runtime, phase="associate", x0=x0)
                self._add_seconds("solve", time.perf_counter() - started)
                self.cg_result_ = result
                if result.converged:
                    weights = result.x
                else:
                    # automatic fallback: refactorize at the requested
                    # alpha (the fresh factor becomes the new reference)
                    self.cg_fallbacks_ += 1

        if weights is None:
            _, current = self._direct_factorize(requested)
            weights = self._panel_solve(y_centered)

        self.weights_ = weights
        self.y_means_ = y_means
        self.alpha_ = current
        self._cg_last_y = y_centered

        # a (re-)associate resets the associate/predict accounting while
        # keeping the Build contribution.  The Associate numbers come
        # from the runtime's phase trace: the successful factorization's
        # tasks plus the weight-panel solve tasks (failed boost attempts
        # never merge their events).
        trace = self.runtime.phase_trace("associate")
        self.phase_flops.pop("predict", None)
        self.runtime.clear_phase("predict")  # keep trace == accounting
        self.phase_flops["associate"] = trace.total_flops
        self.flops_by_precision.clear()
        for source in (self._build_by_precision(), trace.flops_by_precision()):
            for prec, fl in source.items():
                self.flops_by_precision[prec] = (
                    self.flops_by_precision.get(prec, 0.0) + fl)
        return weights

    # ------------------------------------------------------------------
    # fit = BUILD + ASSOCIATE
    # ------------------------------------------------------------------
    def fit(self, genotypes: np.ndarray, phenotypes: np.ndarray,
            confounders: np.ndarray | None = None) -> "KRRSession":
        """Run the Build and Associate phases on the training cohort."""
        genotypes = np.asarray(genotypes)
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        if phenotypes.shape[0] != genotypes.shape[0]:
            raise ValueError("genotypes and phenotypes must have the same number of rows")
        self.build(genotypes, confounders)
        self.associate(phenotypes)
        return self

    # ------------------------------------------------------------------
    # Phase 3: PREDICT
    # ------------------------------------------------------------------
    def _check_test_cohort(self, genotypes: np.ndarray,
                           confounders: np.ndarray | None) -> None:
        if self.weights_ is None or self.training_genotypes_ is None:
            raise RuntimeError("fit() must be called before predict()")
        if genotypes.shape[1] != self.training_genotypes_.shape[1]:
            raise ValueError("test cohort must have the same SNP panel as training")
        if (confounders is None) != (self.training_confounders_ is None):
            raise ValueError("confounders must match the training configuration")

    def _effective_batch(self, batch_rows: int | None) -> int | None:
        """Round the requested batch to a tile-size multiple (min one tile).

        See :func:`effective_batch_rows` for the rationale.
        """
        return effective_batch_rows(self.config.tile_size, batch_rows)

    def predict(self, genotypes: np.ndarray,
                confounders: np.ndarray | None = None,
                batch_rows: int | None = None,
                phase: str = "predict") -> np.ndarray:
        """Predict phenotypes for a new cohort (Algorithm 4), streamed.

        Alias of :meth:`predict_batched` — the streamed row-batch path
        *is* the Predict phase.
        """
        return self.predict_batched(genotypes, confounders,
                                    batch_rows=batch_rows, phase=phase)

    def predict_batched(self, genotypes: np.ndarray,
                        confounders: np.ndarray | None = None,
                        batch_rows: int | None = None,
                        phase: str = "predict") -> np.ndarray:
        """Streamed Predict: ``K_test_block · W`` per row batch.

        ``batch_rows`` overrides ``config.predict_batch_rows``; the
        effective batch is rounded down to a tile-size multiple so the
        batched result is identical to the monolithic cross-kernel
        path.  Peak memory is one ``batch × n_train`` block.

        ``phase`` labels the runtime tasks and the accounting entry —
        the prediction service tags its micro-batches ``"serve"`` so
        the serving load is traceable separately from ad-hoc predicts.
        """
        genotypes = np.asarray(genotypes)
        self._check_test_cohort(genotypes, confounders)
        batch = self._effective_batch(
            self.config.predict_batch_rows if batch_rows is None
            else batch_rows)
        builder = self._builder(self.gamma_, trace_phase=phase)
        return self._stream_predict(builder, genotypes, confounders, batch,
                                    phase)

    def predict_many(self, genotype_list, confounder_list=None,
                     batch_rows: int | None = None,
                     phase: str = "predict") -> list[np.ndarray]:
        """Predict several cohorts as one micro-batch (Serve phase).

        The train-side GEMM operand state — quantization of the
        training panel, its BLAS float casts, the squared norms — is
        prepared **once** and shared by every cohort
        (:meth:`~repro.distance.build.KernelBuilder.train_operands`);
        each cohort then streams through exactly the tile-aligned
        row-batch path of :meth:`predict`, with identical block shapes.
        Per-cohort results are therefore **bitwise identical** to
        calling :meth:`predict` per cohort, while the fixed per-predict
        cost is paid once per micro-batch instead of once per request.
        This is the execution primitive of
        :class:`repro.serve.PredictionService`.
        """
        cohorts = [np.asarray(g) for g in genotype_list]
        if confounder_list is None:
            confounder_list = [None] * len(cohorts)
        confounder_list = list(confounder_list)
        if len(confounder_list) != len(cohorts):
            raise ValueError(
                "confounder_list must carry one entry per cohort")
        for g, c in zip(cohorts, confounder_list):
            self._check_test_cohort(g, c)
        if not cohorts:
            return []
        batch = self._effective_batch(
            self.config.predict_batch_rows if batch_rows is None
            else batch_rows)
        builder = self._builder(self.gamma_, trace_phase=phase)
        cache = builder.train_operands(self.training_genotypes_,
                                       self.training_confounders_)
        return [self._stream_predict(builder, g, c, batch, phase,
                                     train_cache=cache)
                for g, c in zip(cohorts, confounder_list)]

    def _stream_predict(self, builder: KernelBuilder, genotypes: np.ndarray,
                        confounders: np.ndarray | None,
                        batch: int | None, phase: str,
                        train_cache=None) -> np.ndarray:
        """The streamed Predict loop shared by solo and micro-batched paths."""
        cfg = self.config
        started = time.perf_counter()
        wp = cfg.precision_plan.working_precision
        n_train = self.training_genotypes_.shape[0]
        nph = self.weights_.shape[1]
        predictions = np.empty((genotypes.shape[0], nph), dtype=np.float64)
        flops = 0.0
        by_prec: dict[Precision, float] = {}
        for block in builder.iter_cross_rows(
                genotypes, self.training_genotypes_,
                confounders, self.training_confounders_,
                batch_rows=batch, train_cache=train_cache):
            gemm_fl = 2.0 * (block.rows.stop - block.rows.start) * n_train * nph
            # per-batch task on the session runtime: the trace event
            # carries the block's Gram flops plus the K_test_block @ W
            # GEMM, split by compute precision
            detail = dict(block.flops_by_precision)
            detail[wp] = detail.get(wp, 0.0) + gemm_fl
            predictions[block.rows] = gemm(
                block.kernel, self.weights_, tile_size=cfg.tile_size,
                precision=wp, runtime=self.runtime, phase=phase,
                flops_detail=detail)
            flops += block.flops + gemm_fl
            for prec, fl in detail.items():
                by_prec[prec] = by_prec.get(prec, 0.0) + fl

        self._account_predict(flops, by_prec, phase=phase)
        self._add_seconds(phase, time.perf_counter() - started)
        return predictions + self.y_means_[None, :]

    def _account_predict(self, flops: float,
                         by_prec: dict[Precision, float],
                         phase: str = "predict") -> None:
        """Fold Predict-phase operations into *both* accounting views."""
        self.phase_flops[phase] = (
            self.phase_flops.get(phase, 0.0) + flops)
        for prec, fl in by_prec.items():
            self.flops_by_precision[prec] = (
                self.flops_by_precision.get(prec, 0.0) + fl)

    # ------------------------------------------------------------------
    # cross-kernel reuse (hyperparameter sweeps)
    # ------------------------------------------------------------------
    def cross_kernel(self, genotypes: np.ndarray,
                     confounders: np.ndarray | None = None) -> BuildResult:
        """Materialize the test-vs-train cross kernel for reuse.

        ``K_test`` depends on the kernel bandwidth but *not* on the
        regularization, so a hyperparameter sweep over alpha can build
        it once and re-apply :meth:`predict_with_kernel` per alpha.
        The cross-kernel build cost is accounted here (once).
        """
        genotypes = np.asarray(genotypes)
        self._check_test_cohort(genotypes, confounders)
        started = time.perf_counter()
        builder = self._builder(self.gamma_, trace_phase="predict")
        result = builder.build_cross(
            genotypes, self.training_genotypes_,
            confounders, self.training_confounders_,
        )
        self._account_predict(result.flops, result.flops_by_precision)
        self._add_seconds("predict", time.perf_counter() - started)
        return result

    def predict_with_kernel(self, cross: BuildResult | np.ndarray) -> np.ndarray:
        """Predict from a pre-built cross kernel (see :meth:`cross_kernel`)."""
        if self.weights_ is None:
            raise RuntimeError("fit() must be called before predict()")
        cfg = self.config
        started = time.perf_counter()
        wp = cfg.precision_plan.working_precision
        k_test = cross.kernel if isinstance(cross, BuildResult) else np.asarray(cross)
        gemm_fl = 2.0 * k_test.shape[0] * k_test.shape[1] * self.weights_.shape[1]
        predictions = gemm(np.asarray(k_test), self.weights_,
                           tile_size=cfg.tile_size, precision=wp,
                           runtime=self.runtime, phase="predict",
                           flops_detail={wp: gemm_fl})
        self._account_predict(gemm_fl, {wp: gemm_fl})
        self._add_seconds("predict", time.perf_counter() - started)
        return predictions + self.y_means_[None, :]

    def fit_predict(self, train_genotypes: np.ndarray,
                    train_phenotypes: np.ndarray,
                    test_genotypes: np.ndarray,
                    train_confounders: np.ndarray | None = None,
                    test_confounders: np.ndarray | None = None) -> np.ndarray:
        """Fit on the training cohort and predict the test cohort."""
        self.fit(train_genotypes, train_phenotypes, train_confounders)
        return self.predict(test_genotypes, test_confounders)

    # ------------------------------------------------------------------
    # factor reuse
    # ------------------------------------------------------------------
    def solve_additional_phenotypes(self, phenotypes: np.ndarray) -> np.ndarray:
        """Solve extra phenotype panels reusing the kernel factorization.

        Once ``K + alpha*I`` is factorized, each additional phenotype
        panel costs only two triangular solves against the tiled
        factors (Sec. V-B3).

        When the last :meth:`associate` solved by CG (``alpha_`` differs
        from the reference factor's regularization), the extra panels
        go the same way: a preconditioned CG solve at ``alpha_``, with
        the same direct-refactorization fallback on non-convergence.
        """
        if self.factorization_ is None:
            raise RuntimeError("fit() must be called before reusing the factors")
        cfg = self.config
        wp = cfg.precision_plan.working_precision
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        y_centered = phenotypes - phenotypes.mean(axis=0, keepdims=True)
        if (self.kernel_ is not None and self.alpha_ is not None
                and self._cg_ref_alpha is not None
                and self.alpha_ != self._cg_ref_alpha):
            started = time.perf_counter()
            result = cg_solve(self.kernel_, y_centered, alpha=self.alpha_,
                              preconditioner=self.factorization_,
                              tol=cfg.cg_tol, max_iterations=cfg.cg_max_iters,
                              precision=wp, runtime=self.runtime,
                              phase="solve")
            self._add_seconds("solve", time.perf_counter() - started)
            if result.converged:
                return result.x
            self.cg_fallbacks_ += 1
            _, self.alpha_ = self._direct_factorize(self.alpha_, phase="solve")
        started = time.perf_counter()
        solved = solve_cholesky(self.factorization_, y_centered,
                                precision=wp,
                                runtime=self.runtime, phase="solve")
        self._add_seconds("solve", time.perf_counter() - started)
        return solved

    # ------------------------------------------------------------------
    # fitted-model artifacts
    # ------------------------------------------------------------------
    def export_model(self) -> "FittedModel":
        """Extract the predict-side state as an immutable artifact.

        The artifact holds the weight panel, phenotype means, effective
        γ/α, training cohort reference and the storage-precision tiled
        factorization — everything :meth:`predict` and
        :meth:`solve_additional_phenotypes` need, detached from this
        session (the factor is copied; later ``associate`` calls do not
        disturb exported models).  See
        :class:`~repro.gwas.model.FittedModel` for the save/load
        contract.

        Note: when the last associate solved by CG, the exported factor
        is the *reference* factor ``K + alpha_ref*I`` (the CG
        preconditioner), not ``K + alpha*I`` — the weight panel is the
        converged CG solution either way, so restored sessions predict
        identically; only ``from_model(...).solve_additional_phenotypes``
        reverts to solving against the stored factor's regularization.
        """
        from repro.gwas.model import FittedModel

        if (self.weights_ is None or self.factorization_ is None
                or self.training_genotypes_ is None):
            raise RuntimeError(
                "export_model() requires a fitted session: run fit() (or "
                "build() + associate()) first")
        # unpacked_lower: per-tile copies of the lower triangle only —
        # the factorization workspace may hold materialized zero upper
        # tiles, which would inflate the artifact's resident footprint
        return FittedModel(
            config=self.config,
            gamma=self.gamma_,
            alpha=self.alpha_,
            weights=self.weights_,
            y_means=self.y_means_,
            factor=self.factorization_.factor.unpacked_lower(),
            training_genotypes=self.training_genotypes_,
            training_confounders=self.training_confounders_,
        )

    @classmethod
    def from_model(cls, model: "FittedModel", workers: int | None = None,
                   execution: str | None = None) -> "KRRSession":
        """Reconstitute a serving session from a fitted-model artifact.

        The restored session predicts (and factor-reuses) bitwise
        identically to the exporting session; it owns a fresh
        :class:`~repro.runtime.runtime.Runtime` whose concurrency
        resolves on *this* host (``workers``/``execution`` override).
        ``build``/``associate`` remain available but start from scratch
        — the artifact does not carry the training kernel.
        """
        overrides = {}
        if workers is not None:
            overrides["workers"] = workers
        if execution is not None:
            overrides["execution"] = execution
        config = model.config.with_options(**overrides) if overrides \
            else model.config
        session = cls(config)
        session.training_genotypes_ = model.training_genotypes
        session.training_confounders_ = model.training_confounders
        session.gamma_ = model.gamma
        session.alpha_ = model.alpha
        session.weights_ = model.weights
        session.y_means_ = model.y_means
        session.factorization_ = CholeskyResult(factor=model.factor,
                                                flops=0.0)
        return session


class RRSession:
    """Staged linear ridge-regression session (the paper's RR baseline).

    Same session shape as :class:`KRRSession` — a ``fit`` that runs the
    mixed-precision SYRK + tiled Cholesky pipeline, a streamed
    ``predict``, and factor reuse for additional phenotypes — over the
    design matrix ``X`` instead of a kernel.
    """

    def __init__(self, config: RRConfig | None = None, **overrides) -> None:
        if config is None:
            config = RRConfig()
        if overrides:
            config = config.with_options(**overrides)
        self.config = config
        # session-long runtime shared by the factorization, solves and
        # predict GEMMs (same execution engine as KRRSession)
        self.runtime = Runtime(execution=config.execution,
                               workers=config.workers,
                               task_retries=config.task_retries,
                               task_timeout_s=config.task_timeout_s)
        self.beta_: np.ndarray | None = None
        self.factorization_: CholeskyResult | None = None
        self.column_means_: np.ndarray | None = None
        self.column_scales_: np.ndarray | None = None
        self.y_means_: np.ndarray | None = None
        self.flops_: float = 0.0
        self.flops_by_precision: dict[Precision, float] = {}

    # ------------------------------------------------------------------
    def _standardize(self, x: np.ndarray) -> np.ndarray:
        if self.column_means_ is None:
            raise RuntimeError("fit() must be called first")
        return (np.asarray(x, dtype=np.float64) - self.column_means_) / (
            self.column_scales_)

    def fit(self, design: np.ndarray, phenotypes: np.ndarray,
            integer_columns: np.ndarray | None = None) -> "RRSession":
        """Fit ``beta = (X^T X + lambda*I)^{-1} X^T Y`` (Eq. 2).

        The Gram matrix runs through the mixed INT8/FP32 SYRK, the
        factorization through the tiled mixed-precision Cholesky with
        the configured precision plan, and the solves in the working
        precision — identical numerics to the historical estimator.
        """
        cfg = self.config
        design = np.asarray(design, dtype=np.float64)
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        n, p = design.shape
        if phenotypes.shape[0] != n:
            raise ValueError("design and phenotypes must have the same number of rows")

        flops_by_precision: dict[Precision, float] = {}

        def account(flops: int, precision: Precision) -> None:
            flops_by_precision[precision] = (
                flops_by_precision.get(precision, 0.0) + flops)

        # --- Gram matrix on raw columns via the mixed INT8/FP32 SYRK
        gram_raw = syrk(design, tile_size=cfg.tile_size,
                        integer_columns=integer_columns,
                        output_precision=Precision.FP64,
                        accumulate_callback=account)

        # Standardize the Gram matrix analytically:
        #   X_std = (X - 1 μᵀ) D⁻¹  ⇒  X_stdᵀ X_std = D⁻¹ (XᵀX − n μ μᵀ) D⁻¹
        mu = design.mean(axis=0)
        scales = design.std(axis=0)
        scales[scales == 0] = 1.0
        self.column_means_, self.column_scales_ = mu, scales
        gram = (gram_raw - n * np.outer(mu, mu)) / np.outer(scales, scales)

        # --- regularize and factorize with the precision plan
        a = gram + cfg.regularization * np.eye(p)
        layout = TileLayout.square(p, cfg.tile_size)
        plan: PrecisionPlan = cfg.precision_plan
        pmap = plan.precision_map(layout, matrix=a)
        fact = cholesky(a, tile_size=cfg.tile_size,
                        working_precision=plan.working_precision,
                        precision_map=pmap,
                        runtime=self.runtime, phase="associate")
        for prec, fl in fact.flops_by_precision.items():
            flops_by_precision[prec] = flops_by_precision.get(prec, 0.0) + fl

        # --- XᵀY in FP32 and the triangular solves
        x_std = self._standardize(design)
        y_centered = phenotypes - phenotypes.mean(axis=0, keepdims=True)
        self.y_means_ = phenotypes.mean(axis=0)
        xty = gemm(x_std, y_centered, tile_size=cfg.tile_size,
                   precision=Precision.FP32, transa=True,
                   runtime=self.runtime, phase="associate")
        beta = solve_cholesky(fact, xty, precision=plan.working_precision,
                              runtime=self.runtime, phase="associate")

        self.beta_ = np.asarray(beta, dtype=np.float64)
        self.factorization_ = fact
        self.flops_by_precision = flops_by_precision
        self.flops_ = float(sum(flops_by_precision.values()))
        return self

    # ------------------------------------------------------------------
    def predict(self, design: np.ndarray) -> np.ndarray:
        """Predict phenotypes for new individuals (test design matrix)."""
        if self.beta_ is None:
            raise RuntimeError("fit() must be called before predict()")
        x_std = self._standardize(design)
        pred = gemm(x_std, self.beta_, tile_size=self.config.tile_size,
                    precision=Precision.FP32,
                    runtime=self.runtime, phase="predict")
        return pred + self.y_means_[None, :]

    def fit_predict(self, train_design: np.ndarray,
                    train_phenotypes: np.ndarray,
                    test_design: np.ndarray,
                    integer_columns: np.ndarray | None = None) -> np.ndarray:
        """Fit on the training set and predict the test set in one call."""
        self.fit(train_design, train_phenotypes, integer_columns=integer_columns)
        return self.predict(test_design)

    def solve_additional_phenotypes(self, design: np.ndarray,
                                    phenotypes: np.ndarray) -> np.ndarray:
        """Solve extra phenotype panels reusing the existing factorization."""
        if self.factorization_ is None:
            raise RuntimeError("fit() must be called before reusing the factors")
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        x_std = self._standardize(design)
        y_centered = phenotypes - phenotypes.mean(axis=0, keepdims=True)
        xty = gemm(x_std, y_centered, tile_size=self.config.tile_size,
                   precision=Precision.FP32, transa=True,
                   runtime=self.runtime, phase="solve")
        return solve_cholesky(self.factorization_, xty,
                              precision=self.config.precision_plan.working_precision,
                              runtime=self.runtime, phase="solve")
