"""Accuracy metrics of the paper's evaluation.

Two metrics are reported:

* **MSPE** (Mean Square Prediction Error, Eq. 3) — the average squared
  difference between ground-truth and predicted phenotypes on the
  held-out test set (Figs. 5 and 6).
* **Pearson correlation** between ground truth and predictions
  (Table I), which is what makes the KRR-vs-RR gap most visible
  ("up to four times more" correlated).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mspe",
    "mean_squared_prediction_error",
    "pearson_correlation",
    "r_squared",
    "accuracy_report",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metrics require at least one observation")
    return y_true, y_pred


def mean_squared_prediction_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MSPE = (1/N) Σ (Y_i − Ŷ_i)² (Eq. 3 of the paper).

    For 2D inputs (multiple phenotypes) the average runs over all
    entries; use a column slice for per-phenotype values.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


#: Short alias used throughout the experiments.
mspe = mean_squared_prediction_error


def pearson_correlation(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Pearson correlation ρ between ground truth and predictions.

    ρ = cov(Y, Ŷ) / (σ_Y σ_Ŷ); returns 0.0 when either side has zero
    variance (a constant prediction carries no association signal).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    yt = y_true.ravel()
    yp = y_pred.ravel()
    st, sp = yt.std(), yp.std()
    if st == 0.0 or sp == 0.0:
        return 0.0
    cov = float(np.mean((yt - yt.mean()) * (yp - yp.mean())))
    return cov / (st * sp)


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination R² (supplementary diagnostic)."""
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0
    return 1.0 - ss_res / ss_tot


def accuracy_report(y_true: np.ndarray, y_pred: np.ndarray,
                    phenotype_names: list[str] | None = None) -> dict[str, dict[str, float]]:
    """Per-phenotype MSPE / Pearson / R² report.

    Accepts 1D arrays (single phenotype) or 2D ``n × nph`` panels.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.ndim == 1:
        y_true = y_true[:, None]
        y_pred = y_pred[:, None]
    nph = y_true.shape[1]
    if phenotype_names is None:
        phenotype_names = [f"phenotype_{k}" for k in range(nph)]
    if len(phenotype_names) != nph:
        raise ValueError("phenotype_names length must match the number of columns")
    report: dict[str, dict[str, float]] = {}
    for k, name in enumerate(phenotype_names):
        report[name] = {
            "mspe": mean_squared_prediction_error(y_true[:, k], y_pred[:, k]),
            "pearson": pearson_correlation(y_true[:, k], y_pred[:, k]),
            "r2": r_squared(y_true[:, k], y_pred[:, k]),
        }
    return report
