"""Cross-validation for the KRR / RR hyperparameters.

The paper notes that both KRR hyperparameters — the regularization α
and the kernel bandwidth γ — "are typically chosen through techniques
such as cross-validation".  ``grid_search_cv`` implements K-fold CV
over a grid of (α, γ) pairs using MSPE as the selection criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.gwas.config import KRRConfig
from repro.gwas.krr import KernelRidgeRegressionGWAS
from repro.gwas.metrics import mean_squared_prediction_error

__all__ = ["CrossValidationResult", "grid_search_cv", "kfold_indices"]


def kfold_indices(n: int, n_folds: int, seed: int | None = 0) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``n_folds`` (train_idx, valid_idx) pairs covering ``range(n)``."""
    if n_folds < 2:
        raise ValueError("n_folds must be at least 2")
    if n < n_folds:
        raise ValueError("need at least one sample per fold")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, n_folds)
    out = []
    for k in range(n_folds):
        valid = np.sort(folds[k])
        train = np.sort(np.concatenate([folds[j] for j in range(n_folds) if j != k]))
        out.append((train, valid))
    return out


@dataclass
class CrossValidationResult:
    """Grid-search cross-validation outcome.

    Attributes
    ----------
    best_alpha, best_gamma:
        Hyperparameters with the lowest mean validation MSPE.
    best_score:
        The corresponding mean MSPE.
    scores:
        Mapping ``(alpha, gamma) -> mean MSPE`` over all grid points.
    fold_scores:
        Mapping ``(alpha, gamma) -> list of per-fold MSPEs``.
    """

    best_alpha: float
    best_gamma: float
    best_score: float
    scores: dict[tuple[float, float], float] = field(default_factory=dict)
    fold_scores: dict[tuple[float, float], list[float]] = field(default_factory=dict)

    def best_config(self, base: KRRConfig | None = None) -> KRRConfig:
        """A :class:`KRRConfig` carrying the selected hyperparameters."""
        base = base or KRRConfig()
        return KRRConfig(**{**base.__dict__,
                            "alpha": self.best_alpha, "gamma": self.best_gamma})


def grid_search_cv(
    genotypes: np.ndarray,
    phenotypes: np.ndarray,
    alphas: Sequence[float] = (0.1, 1.0, 10.0),
    gammas: Sequence[float] = (0.001, 0.01, 0.1),
    confounders: np.ndarray | None = None,
    n_folds: int = 3,
    base_config: KRRConfig | None = None,
    seed: int | None = 0,
) -> CrossValidationResult:
    """K-fold grid search over (α, γ) for the KRR GWAS model.

    Returns the pair minimizing the mean validation MSPE.  The kernel
    type, tile size and precision plan are taken from ``base_config``.
    """
    if not alphas or not gammas:
        raise ValueError("alphas and gammas must be non-empty")
    genotypes = np.asarray(genotypes)
    phenotypes = np.asarray(phenotypes, dtype=np.float64)
    if phenotypes.ndim == 1:
        phenotypes = phenotypes[:, None]
    base = base_config or KRRConfig()

    folds = kfold_indices(genotypes.shape[0], n_folds, seed=seed)
    scores: dict[tuple[float, float], float] = {}
    fold_scores: dict[tuple[float, float], list[float]] = {}

    for alpha in alphas:
        for gamma in gammas:
            cfg = KRRConfig(**{**base.__dict__, "alpha": float(alpha),
                               "gamma": float(gamma)})
            errs: list[float] = []
            for train_idx, valid_idx in folds:
                model = KernelRidgeRegressionGWAS(cfg)
                pred = model.fit_predict(
                    genotypes[train_idx], phenotypes[train_idx],
                    genotypes[valid_idx],
                    None if confounders is None else confounders[train_idx],
                    None if confounders is None else confounders[valid_idx],
                )
                errs.append(mean_squared_prediction_error(phenotypes[valid_idx], pred))
            key = (float(alpha), float(gamma))
            fold_scores[key] = errs
            scores[key] = float(np.mean(errs))

    best_key = min(scores, key=scores.get)
    return CrossValidationResult(
        best_alpha=best_key[0],
        best_gamma=best_key[1],
        best_score=scores[best_key],
        scores=scores,
        fold_scores=fold_scores,
    )
