"""Cross-validation for the KRR / RR hyperparameters.

The paper notes that both KRR hyperparameters — the regularization α
and the kernel bandwidth γ — "are typically chosen through techniques
such as cross-validation".  ``grid_search_cv`` implements K-fold CV
over a grid of (α, γ) pairs using MSPE as the selection criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.gwas.config import KRRConfig
from repro.gwas.metrics import mean_squared_prediction_error
from repro.gwas.session import KRRSession

__all__ = ["CrossValidationResult", "grid_search_cv", "kfold_indices"]


def kfold_indices(n: int, n_folds: int, seed: int | None = 0) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``n_folds`` (train_idx, valid_idx) pairs covering ``range(n)``."""
    if n_folds < 2:
        raise ValueError("n_folds must be at least 2")
    if n < n_folds:
        raise ValueError("need at least one sample per fold")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, n_folds)
    out = []
    for k in range(n_folds):
        valid = np.sort(folds[k])
        train = np.sort(np.concatenate([folds[j] for j in range(n_folds) if j != k]))
        out.append((train, valid))
    return out


@dataclass
class CrossValidationResult:
    """Grid-search cross-validation outcome.

    Attributes
    ----------
    best_alpha, best_gamma:
        Hyperparameters with the lowest mean validation MSPE.
    best_score:
        The corresponding mean MSPE.
    scores:
        Mapping ``(alpha, gamma) -> mean MSPE`` over all grid points.
    fold_scores:
        Mapping ``(alpha, gamma) -> list of per-fold MSPEs``.
    """

    best_alpha: float
    best_gamma: float
    best_score: float
    scores: dict[tuple[float, float], float] = field(default_factory=dict)
    fold_scores: dict[tuple[float, float], list[float]] = field(default_factory=dict)

    def best_config(self, base: KRRConfig | None = None) -> KRRConfig:
        """A :class:`KRRConfig` carrying the selected hyperparameters."""
        base = base or KRRConfig()
        return base.with_options(alpha=self.best_alpha, gamma=self.best_gamma)


def grid_search_cv(
    genotypes: np.ndarray,
    phenotypes: np.ndarray,
    alphas: Sequence[float] = (0.1, 1.0, 10.0),
    gammas: Sequence[float] = (0.001, 0.01, 0.1),
    confounders: np.ndarray | None = None,
    n_folds: int = 3,
    base_config: KRRConfig | None = None,
    seed: int | None = 0,
    workers: int | None = None,
    execution: str | None = None,
) -> CrossValidationResult:
    """K-fold grid search over (α, γ) for the KRR GWAS model.

    Returns the pair minimizing the mean validation MSPE; exact score
    ties break deterministically toward the smallest α, then the
    smallest γ.  The kernel
    type, tile size and precision plan are taken from ``base_config``;
    ``workers`` / ``execution`` override the base config's task-runtime
    knobs for every session the sweep spawns (each (fold, γ) session
    owns one runtime that executes its Build, the per-α factorizations
    and the validation predictions).

    The kernel matrix ``K`` depends on γ but **not** on α, so each
    (fold, γ) pair builds ``K`` and the validation cross kernel exactly
    once; the α axis then re-runs only the Associate phase against the
    retained tiled kernel (one diagonal-shifted factorization per α)
    and the Predict GEMM against the retained cross kernel.  For a grid
    with ``A`` alphas this removes ``(A-1)/A`` of the Build work the
    per-grid-point refit performed.
    """
    if not alphas or not gammas:
        raise ValueError("alphas and gammas must be non-empty")
    genotypes = np.asarray(genotypes)
    phenotypes = np.asarray(phenotypes, dtype=np.float64)
    if phenotypes.ndim == 1:
        phenotypes = phenotypes[:, None]
    base = base_config or KRRConfig()
    if workers is not None:
        base = base.with_options(workers=workers)
    if execution is not None:
        base = base.with_options(execution=execution)

    folds = kfold_indices(genotypes.shape[0], n_folds, seed=seed)
    scores: dict[tuple[float, float], float] = {}
    fold_scores: dict[tuple[float, float], list[float]] = {
        (float(a), float(g)): [] for a in alphas for g in gammas}

    for train_idx, valid_idx in folds:
        g_train, g_valid = genotypes[train_idx], genotypes[valid_idx]
        y_train, y_valid = phenotypes[train_idx], phenotypes[valid_idx]
        c_train = None if confounders is None else confounders[train_idx]
        c_valid = None if confounders is None else confounders[valid_idx]
        for gamma in gammas:
            session = KRRSession(base.with_options(gamma=float(gamma)))
            session.build(g_train, c_train)
            cross = None
            for alpha in alphas:
                session.associate(y_train, alpha=float(alpha))
                if cross is None:
                    # K_test depends only on gamma — build once per fold
                    cross = session.cross_kernel(g_valid, c_valid)
                pred = session.predict_with_kernel(cross)
                fold_scores[(float(alpha), float(gamma))].append(
                    mean_squared_prediction_error(y_valid, pred))

    for key, errs in fold_scores.items():
        scores[key] = float(np.mean(errs))

    # deterministic under exact score ties: smallest alpha, then
    # smallest gamma — never the dict insertion order of whatever grid
    # ordering the caller passed
    best_key = min(scores, key=lambda k: (scores[k], k[0], k[1]))
    return CrossValidationResult(
        best_alpha=best_key[0],
        best_gamma=best_key[1],
        best_score=scores[best_key],
        scores=scores,
        fold_scores=fold_scores,
    )
