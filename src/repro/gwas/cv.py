"""Cross-validation for the KRR / RR hyperparameters.

The paper notes that both KRR hyperparameters — the regularization α
and the kernel bandwidth γ — "are typically chosen through techniques
such as cross-validation".  ``grid_search_cv`` implements K-fold CV
over a grid of (α, γ) pairs using MSPE as the selection criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.gwas.config import KRRConfig
from repro.gwas.metrics import mean_squared_prediction_error
from repro.gwas.session import KRRSession
from repro.linalg.cg import resolve_solver

__all__ = ["CrossValidationResult", "grid_search_cv", "kfold_indices"]


def kfold_indices(n: int, n_folds: int, seed: int | None = 0) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``n_folds`` (train_idx, valid_idx) pairs covering ``range(n)``."""
    if n_folds < 2:
        raise ValueError("n_folds must be at least 2")
    if n < n_folds:
        raise ValueError("need at least one sample per fold")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, n_folds)
    out = []
    for k in range(n_folds):
        valid = np.sort(folds[k])
        train = np.sort(np.concatenate([folds[j] for j in range(n_folds) if j != k]))
        out.append((train, valid))
    return out


@dataclass
class CrossValidationResult:
    """Grid-search cross-validation outcome.

    Attributes
    ----------
    best_alpha, best_gamma:
        Hyperparameters with the lowest mean validation MSPE.
    best_score:
        The corresponding mean MSPE.
    scores:
        Mapping ``(alpha, gamma) -> mean MSPE`` over all grid points.
    fold_scores:
        Mapping ``(alpha, gamma) -> list of per-fold MSPEs``.
    solver:
        The resolved solver route the sweep ran with
        (``"direct"`` or ``"cg"``).
    factorizations:
        Total tiled Cholesky factorizations across all (fold, γ)
        sessions — ``folds * len(gammas) * len(alphas)`` on the direct
        route, ``folds * len(gammas)`` on the factor-once CG route
        (plus any CG fallbacks).
    cg_fallbacks:
        CG solves that failed to converge and fell back to a direct
        factorization.
    phase_seconds:
        Wall-clock seconds summed over every session in the sweep,
        keyed by phase: ``build`` / ``factor`` / ``solve`` /
        ``predict``.
    """

    best_alpha: float
    best_gamma: float
    best_score: float
    scores: dict[tuple[float, float], float] = field(default_factory=dict)
    fold_scores: dict[tuple[float, float], list[float]] = field(default_factory=dict)
    solver: str = "direct"
    factorizations: int = 0
    cg_fallbacks: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def best_config(self, base: KRRConfig | None = None) -> KRRConfig:
        """A :class:`KRRConfig` carrying the selected hyperparameters."""
        base = base or KRRConfig()
        return base.with_options(alpha=self.best_alpha, gamma=self.best_gamma)


def grid_search_cv(
    genotypes: np.ndarray,
    phenotypes: np.ndarray,
    alphas: Sequence[float] = (0.1, 1.0, 10.0),
    gammas: Sequence[float] = (0.001, 0.01, 0.1),
    confounders: np.ndarray | None = None,
    n_folds: int = 3,
    base_config: KRRConfig | None = None,
    seed: int | None = 0,
    workers: int | None = None,
    execution: str | None = None,
    solver: str | None = None,
) -> CrossValidationResult:
    """K-fold grid search over (α, γ) for the KRR GWAS model.

    Returns the pair minimizing the mean validation MSPE; exact score
    ties break deterministically toward the smallest α, then the
    smallest γ.  The kernel
    type, tile size and precision plan are taken from ``base_config``;
    ``workers`` / ``execution`` / ``solver`` override the base config's
    task-runtime and solver knobs for every session the sweep spawns
    (each (fold, γ) session owns one runtime that executes its Build,
    the per-α solves and the validation predictions).

    The kernel matrix ``K`` depends on γ but **not** on α, so each
    (fold, γ) pair builds ``K`` and the validation cross kernel exactly
    once; the α axis then re-runs only the Associate phase against the
    retained tiled kernel and the Predict GEMM against the retained
    cross kernel.  For a grid with ``A`` alphas this removes
    ``(A-1)/A`` of the Build work the per-grid-point refit performed.

    On the direct route the Associate phase still pays one
    O(n³/3) factorization per α.  With ``solver="cg"`` (or
    ``REPRO_SOLVER=cg``) the sweep goes *factor-once*: the sorted-middle
    α is associated first, its factorization becomes the CG reference
    preconditioner for the session, and every other α costs only a few
    O(n²) preconditioned-CG iterations — one Build and **one
    factorization** per (fold, γ), one cheap CG solve per α.  Scores
    are keyed by (α, γ), so the reordered sweep reports identically.
    """
    if n_folds < 2:
        raise ValueError("n_folds must be at least 2")
    alphas = [float(a) for a in alphas]
    gammas = [float(g) for g in gammas]
    if not alphas:
        raise ValueError("alphas must be non-empty")
    if not gammas:
        raise ValueError("gammas must be non-empty")
    for a in alphas:
        if not a > 0:
            raise ValueError(f"alphas must be positive, got {a!r}")
    genotypes = np.asarray(genotypes)
    phenotypes = np.asarray(phenotypes, dtype=np.float64)
    if phenotypes.ndim == 1:
        phenotypes = phenotypes[:, None]
    base = base_config or KRRConfig()
    if workers is not None:
        base = base.with_options(workers=workers)
    if execution is not None:
        base = base.with_options(execution=execution)
    if solver is not None:
        base = base.with_options(solver=solver)
    solver_mode = resolve_solver(base.solver)

    # CG sweeps factor the sorted-middle alpha first: the reference
    # preconditioner then sits closest (in eigenvalue-shift distance)
    # to the rest of the grid, minimizing iteration counts at the
    # extremes.  Scores are keyed by value, so the order is invisible
    # to the caller.
    order = list(range(len(alphas)))
    if solver_mode == "cg" and len(alphas) > 1:
        mid = sorted(order, key=lambda i: alphas[i])[(len(alphas) - 1) // 2]
        order = [mid] + [i for i in order if i != mid]

    folds = kfold_indices(genotypes.shape[0], n_folds, seed=seed)
    scores: dict[tuple[float, float], float] = {}
    fold_scores: dict[tuple[float, float], list[float]] = {
        (a, g): [] for a in alphas for g in gammas}
    phase_seconds: dict[str, float] = {}
    factorizations = 0
    cg_fallbacks = 0

    for train_idx, valid_idx in folds:
        g_train, g_valid = genotypes[train_idx], genotypes[valid_idx]
        y_train, y_valid = phenotypes[train_idx], phenotypes[valid_idx]
        c_train = None if confounders is None else confounders[train_idx]
        c_valid = None if confounders is None else confounders[valid_idx]
        for gamma in gammas:
            session = KRRSession(base.with_options(gamma=gamma))
            session.build(g_train, c_train)
            cross = None
            for i in order:
                alpha = alphas[i]
                session.associate(y_train, alpha=alpha)
                if cross is None:
                    # K_test depends only on gamma — build once per fold
                    cross = session.cross_kernel(g_valid, c_valid)
                pred = session.predict_with_kernel(cross)
                fold_scores[(alpha, gamma)].append(
                    mean_squared_prediction_error(y_valid, pred))
            for key, secs in session.phase_seconds.items():
                phase_seconds[key] = phase_seconds.get(key, 0.0) + secs
            factorizations += session.factorization_count_
            cg_fallbacks += session.cg_fallbacks_

    for key, errs in fold_scores.items():
        scores[key] = float(np.mean(errs))

    # deterministic under exact score ties: smallest alpha, then
    # smallest gamma — never the dict insertion order of whatever grid
    # ordering the caller passed
    best_key = min(scores, key=lambda k: (scores[k], k[0], k[1]))
    return CrossValidationResult(
        best_alpha=best_key[0],
        best_gamma=best_key[1],
        best_score=scores[best_key],
        scores=scores,
        fold_scores=fold_scores,
        solver=solver_mode,
        factorizations=factorizations,
        cg_fallbacks=cg_fallbacks,
        phase_seconds=phase_seconds,
    )
