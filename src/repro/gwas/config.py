"""Configuration objects for the RR / KRR GWAS solvers.

``PrecisionPlan`` captures *how* mixed precision is applied — the axis
the paper's accuracy experiments sweep:

* ``uniform``   — every tile in the working precision (the FP32
  reference, "100(FP32)" in Fig. 5);
* ``band``      — the hand-tuned band/rainbow assignment with a given
  FP32 fraction ("80(FP32):20(FP16)", ..., "10(FP32):90(FP16)");
* ``adaptive``  — the tile-centric adaptive rule (the paper's method),
  with a hardware floor of FP16 (A100) or FP8 (GH200).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import ClassVar

from repro.precision.formats import Precision
from repro.tiles.adaptive import AdaptivePrecisionRule, candidates_for_gpu
from repro.tiles.band import band_precision_map
from repro.tiles.layout import TileLayout


class _WithOptionsMixin:
    """``with_options(**overrides)`` for the frozen config dataclasses.

    Returns a copy with the given fields replaced (validation re-runs
    through ``__post_init__``), replacing the historical
    ``Config(**{**config.__dict__, **overrides})`` reconstruction trick.
    """

    def with_options(self, **overrides):
        names = {f.name for f in dataclasses.fields(self)}
        unknown = set(overrides) - names
        if unknown:
            raise ValueError(
                f"unknown {type(self).__name__} option(s) {sorted(unknown)}; "
                f"valid fields are {sorted(names)}"
            )
        return dataclasses.replace(self, **overrides)


@dataclass(frozen=True)
class PrecisionPlan(_WithOptionsMixin):
    """How tile precisions are assigned in the Associate phase.

    Parameters
    ----------
    mode:
        ``"uniform"``, ``"band"`` or ``"adaptive"``.
    working_precision:
        Precision of panel operations, diagonal tiles, and the uniform
        mode.
    low_precision:
        Off-diagonal precision of the band mode, and the floor of the
        adaptive mode (FP16 or FP8_E4M3).
    band_high_fraction:
        Fraction of off-diagonal bands kept at the working precision in
        band mode (1.0 = all FP32, 0.1 = the paper's failing config).
    accuracy:
        Target storage accuracy of the adaptive rule.  ``1e-3`` selects
        FP16 for off-diagonal tiles of the (well-scaled) kernel
        matrices used here; the FP8 plan defaults to a looser threshold
        (see :meth:`adaptive_fp8`) matching the GH200 runs of the paper
        where the application tolerates FP8-level tile storage.
    """

    mode: str = "adaptive"
    working_precision: Precision = Precision.FP32
    low_precision: Precision = Precision.FP16
    band_high_fraction: float = 1.0
    accuracy: float = 1e-3

    def __post_init__(self) -> None:
        if self.mode not in ("uniform", "band", "adaptive"):
            raise ValueError("mode must be 'uniform', 'band' or 'adaptive'")
        if not 0.0 <= self.band_high_fraction <= 1.0:
            raise ValueError("band_high_fraction must be in [0, 1]")
        object.__setattr__(self, "working_precision",
                           Precision.from_string(self.working_precision))
        object.__setattr__(self, "low_precision",
                           Precision.from_string(self.low_precision))

    # ------------------------------------------------------------------
    # named constructors matching the paper's configurations
    # ------------------------------------------------------------------
    @classmethod
    def fp32(cls) -> "PrecisionPlan":
        """Full FP32 reference ("100(FP32)")."""
        return cls(mode="uniform", working_precision=Precision.FP32)

    @classmethod
    def fp64(cls) -> "PrecisionPlan":
        """Full FP64 reference."""
        return cls(mode="uniform", working_precision=Precision.FP64)

    @classmethod
    def band(cls, high_fraction: float,
             low_precision: Precision | str = Precision.FP16) -> "PrecisionPlan":
        """Hand-tuned band configuration, e.g. ``band(0.8)`` = 80% FP32 / 20% FP16."""
        return cls(mode="band", band_high_fraction=high_fraction,
                   low_precision=Precision.from_string(low_precision))

    @classmethod
    def adaptive(cls, gpu: str = "A100", accuracy: float | None = None) -> "PrecisionPlan":
        """Tile-centric adaptive plan with the hardware floor of ``gpu``."""
        floor = candidates_for_gpu(gpu)[0]
        if accuracy is None:
            accuracy = 1e-1 if floor is Precision.FP8_E4M3 else 1e-3
        return cls(mode="adaptive", low_precision=floor, accuracy=accuracy)

    @classmethod
    def adaptive_fp16(cls, accuracy: float = 1e-3) -> "PrecisionPlan":
        """The paper's A100/V100 configuration: FP32 panels, FP16 off-diagonal."""
        return cls(mode="adaptive", low_precision=Precision.FP16, accuracy=accuracy)

    @classmethod
    def adaptive_fp8(cls, accuracy: float = 1e-1) -> "PrecisionPlan":
        """The paper's GH200 configuration with the FP8 floor.

        The looser default threshold reflects the GH200 runs of the
        paper: the off-diagonal tiles drop to FP8 storage, which is
        what produces the small-but-visible MSPE/Pearson degradation of
        Fig. 6 and Table I's last column.
        """
        return cls(mode="adaptive", low_precision=Precision.FP8_E4M3, accuracy=accuracy)

    # ------------------------------------------------------------------
    def label(self) -> str:
        """Human-readable label matching the paper's figure x-axis."""
        if self.mode == "uniform":
            return f"100({self.working_precision.value.upper()})"
        if self.mode == "band":
            hi = int(round(self.band_high_fraction * 100))
            lo = 100 - hi
            return (f"{hi}({self.working_precision.value.upper()}):"
                    f"{lo}({self.low_precision.value.upper()})")
        return (f"Adaptive {self.working_precision.value.upper()}/"
                f"{self.low_precision.value.upper()}")

    def adaptive_rule(self) -> AdaptivePrecisionRule:
        """The adaptive rule corresponding to this plan."""
        candidates = tuple(sorted(
            {self.low_precision, Precision.FP16, Precision.FP32, Precision.FP64}
            if self.low_precision is not Precision.FP16
            else {Precision.FP16, Precision.FP32, Precision.FP64},
            key=lambda p: p.rank,
        ))
        return AdaptivePrecisionRule(
            accuracy=self.accuracy,
            candidates=candidates,
            working_precision=self.working_precision,
        )

    # ------------------------------------------------------------------
    # artifact (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (fitted-model artifacts embed this)."""
        return {
            "mode": self.mode,
            "working_precision": self.working_precision.value,
            "low_precision": self.low_precision.value,
            "band_high_fraction": self.band_high_fraction,
            "accuracy": self.accuracy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PrecisionPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    def precision_map(self, layout: TileLayout,
                      matrix=None) -> dict[tuple[int, int], Precision]:
        """Materialize the per-tile precision map for a given tile layout.

        ``matrix`` (dense array or TileMatrix) is required for the
        adaptive mode because the decision depends on tile norms.
        """
        if self.mode == "uniform":
            return {t: self.working_precision for t in layout.iter_tiles()}
        if self.mode == "band":
            return band_precision_map(
                layout, self.band_high_fraction,
                high=self.working_precision, low=self.low_precision,
            )
        # adaptive
        if matrix is None:
            raise ValueError("adaptive precision plans need the matrix to decide")
        from repro.tiles.adaptive import decide_tile_precisions
        from repro.tiles.matrix import TileMatrix
        import numpy as np

        if isinstance(matrix, np.ndarray):
            matrix = TileMatrix.from_dense(matrix, layout.tile_size, Precision.FP64)
        return decide_tile_precisions(matrix, self.adaptive_rule())


#: Execution modes accepted by the session configs (mirrors
#: :data:`repro.runtime.scheduler.EXECUTION_MODES`, kept literal here so
#: config validation does not import the runtime package).
_EXECUTION_MODES = ("threaded", "serial", "simulated", "process")

#: Solver routes accepted by ``KRRConfig.solver`` (mirrors
#: :data:`repro.linalg.cg.SOLVER_MODES`, kept literal for the same
#: reason as ``_EXECUTION_MODES``).
_SOLVER_MODES = ("direct", "cg")


def _validate_execution_knobs(cfg) -> None:
    if cfg.execution is not None and cfg.execution not in _EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {_EXECUTION_MODES} (or None), got "
            f"{cfg.execution!r}"
        )
    if cfg.workers is not None and cfg.workers <= 0:
        raise ValueError("workers must be positive (or None)")


def _validate_resilience_knobs(cfg) -> None:
    if cfg.task_retries is not None and cfg.task_retries < 0:
        raise ValueError("task_retries must be non-negative (or None)")
    if cfg.task_timeout_s is not None and cfg.task_timeout_s <= 0:
        raise ValueError("task_timeout_s must be positive (or None)")


@dataclass(frozen=True)
class RRConfig(_WithOptionsMixin):
    """Ridge-regression GWAS configuration (Eq. 1–2).

    Parameters
    ----------
    regularization:
        The λ penalty added to ``X^T X``.
    tile_size:
        Tile edge for the SYRK and Cholesky.
    precision_plan:
        Mixed-precision plan of the Cholesky factorization.
    snp_precision:
        Input precision of the SNP part of the SYRK (INT8 engages the
        emulated tensor-core path).
    workers:
        Worker threads of the session's task runtime (``None`` resolves
        through ``REPRO_WORKERS`` and then ``min(8, cpu_count)``).
    execution:
        Execution mode of the session's task runtime: ``"threaded"``
        (default), ``"process"`` (GIL-free worker processes),
        ``"serial"`` or ``"simulated"``; ``None`` resolves
        ``REPRO_EXECUTION``.
    task_retries:
        Transient-failure retries per task (capped exponential backoff
        with deterministic jitter).  ``None`` resolves the
        ``REPRO_TASK_RETRIES`` environment variable; unset, tasks fail
        fast.  Retries are bitwise neutral: task bodies are pure, so a
        re-execution produces the identical tiles.
    task_timeout_s:
        Per-task wall-clock timeout.  An overdue task fails with
        :class:`~repro.resilience.TaskTimeoutError` (aggregated into
        the run's :class:`~repro.resilience.TaskGroupError`).  ``None``
        disables the watchdog.
    """

    regularization: float = 1.0
    tile_size: int = 64
    precision_plan: PrecisionPlan = field(default_factory=PrecisionPlan.fp32)
    snp_precision: Precision = Precision.INT8
    workers: int | None = None
    execution: str | None = None
    task_retries: int | None = None
    task_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.regularization < 0:
            raise ValueError("regularization must be non-negative")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        _validate_resilience_knobs(self)
        _validate_execution_knobs(self)
        object.__setattr__(self, "snp_precision",
                           Precision.from_string(self.snp_precision))


@dataclass(frozen=True)
class KRRConfig(_WithOptionsMixin):
    """Kernel-ridge-regression GWAS configuration (Algorithms 1–5).

    Parameters
    ----------
    gamma:
        Gaussian kernel bandwidth (paper uses 0.01).
    alpha:
        Regularization added to the kernel diagonal.
    kernel_type:
        ``"gaussian"`` or ``"ibs"``.
    tile_size:
        Tile edge of the kernel matrix.
    precision_plan:
        Mixed-precision plan of the Associate phase.
    snp_precision:
        Input precision of the distance Gram products (INT8 default).
    workers:
        Worker threads of the session's task runtime — one knob for
        *every* phase (Build row tasks, Cholesky tiles, triangular
        solves).  ``None`` resolves through the ``REPRO_WORKERS``
        environment variable and then ``min(8, cpu_count)``.
    execution:
        Execution mode of the session's task runtime: ``"threaded"``
        (default — real out-of-order DAG execution), ``"process"``
        (GIL-free worker OS processes with shared-memory tile
        exchange), ``"serial"`` (the bitwise-identical reference
        drain) or ``"simulated"`` (the device-timing model); ``None``
        resolves ``REPRO_EXECUTION``.
    build_workers:
        **Deprecated** — the historical Build-only thread knob.  Still
        honoured (it seeds ``workers`` when that is unset) with a
        :class:`DeprecationWarning`; use ``workers`` instead.
    solver:
        Associate-phase solve route.  ``"direct"`` (the historical
        path) factorizes ``K + alpha*I`` per associate; ``"cg"``
        factorizes **once** per kernel and solves subsequent alphas
        with tile-native preconditioned conjugate gradients against
        that factor (FP64 iterations, low-precision preconditioner —
        see :mod:`repro.linalg.cg`), falling back to a direct
        factorization automatically when CG does not converge.  This
        is what makes ``grid_search_cv`` sweeps factor-once per
        (fold, gamma).  ``None`` resolves the ``REPRO_SOLVER``
        environment variable and finally ``"direct"``.
    cg_tol:
        Convergence threshold of the CG route: per-column relative
        residual ``||b - A x|| / ||b||``.  The default 1e-8 sits well
        below the FP32 working-precision noise of the direct solve, so
        CG solutions agree with direct ones to the accuracy the
        precision plan supports.
    cg_max_iters:
        CG iteration cap; hitting it triggers the automatic fallback
        to the direct factorization for that alpha.
    predict_batch_rows:
        Row-batch size of the streamed Predict phase: the test cohort
        is processed ``predict_batch_rows`` individuals at a time, so
        the peak cross-kernel temporary is one batch instead of the
        full ``n_test × n_train`` panel.  Rounded to a multiple of
        ``tile_size`` at run time, minimum one tile (keeping batch
        boundaries on tile boundaries makes the batched predictions
        bitwise identical to the monolithic path).  ``None`` processes
        the cohort in one batch.
    normalize_gamma:
        When True (default), γ is rescaled with the SNP count so that
        ``γ_eff · E[||g_i - g_j||²]`` stays constant across cohorts of
        different NS: ``γ_eff = γ · NS_REF / NS`` with ``NS_REF = 200``.
        The paper quotes γ = 0.01 for its fixed NS = 43,333; with the
        anchor at 200 SNPs the same γ value lands in the informative
        range of the Gaussian kernel for the scaled-down synthetic
        cohorts used here (exponent of order one instead of hundreds).
        Set False to use γ exactly as given.
    artifact_compress:
        Default compression of fitted-model artifacts
        (:meth:`~repro.gwas.model.FittedModel.save`).  Off by default
        so the artifact's file size reports the precision mosaic's true
        native-bytes footprint; turn on to trade save/load time for
        size.
    store_budget_bytes:
        Residency budget of the session's out-of-core tile store.  When
        set (or when the ``REPRO_STORE_BUDGET`` environment variable
        is), the session creates a :class:`~repro.store.TileStore`, the
        streamed Build, the Cholesky workspace and the factor become
        store-backed — least-recently-used tiles spill to disk in their
        native storage precision and fault back in bitwise — and the
        scheduler pins each task's tiles while it runs.  Results are
        **bitwise identical** to the fully-resident run for any budget.
        ``None`` (and no environment override) keeps everything
        resident.
    store_dir:
        Spill directory of the session store.  ``None`` uses a private
        temporary directory removed when the store is closed or garbage
        collected.  Setting ``store_dir`` alone (without a budget)
        creates an unbounded store, useful only for artifact-backed
        loading.
    task_retries:
        Transient-failure retries per runtime task (capped exponential
        backoff with deterministic seeded jitter).  ``None`` resolves
        the ``REPRO_TASK_RETRIES`` environment variable; unset, tasks
        fail fast.  Retries are bitwise neutral: task bodies are pure,
        so a re-execution reproduces the identical tiles and the run's
        result matches the fault-free run exactly.
    task_timeout_s:
        Per-task wall-clock timeout enforced by the scheduler watchdog.
        An overdue task fails with
        :class:`~repro.resilience.TaskTimeoutError`, aggregated with
        any other failures into a
        :class:`~repro.resilience.TaskGroupError`.  ``None`` disables
        the watchdog.
    """

    gamma: float = 0.01
    alpha: float = 0.5
    kernel_type: str = "gaussian"
    tile_size: int = 64
    precision_plan: PrecisionPlan = field(default_factory=PrecisionPlan.adaptive_fp16)
    snp_precision: Precision = Precision.INT8
    workers: int | None = None
    execution: str | None = None
    build_workers: int | None = None
    solver: str | None = None
    cg_tol: float = 1e-8
    cg_max_iters: int = 200
    predict_batch_rows: int | None = 1024
    normalize_gamma: bool = True
    artifact_compress: bool = False
    store_budget_bytes: int | None = None
    store_dir: str | None = None
    task_retries: int | None = None
    task_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.predict_batch_rows is not None and self.predict_batch_rows <= 0:
            raise ValueError("predict_batch_rows must be positive (or None)")
        if self.kernel_type not in ("gaussian", "ibs"):
            raise ValueError("kernel_type must be 'gaussian' or 'ibs'")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        if self.store_budget_bytes is not None and self.store_budget_bytes <= 0:
            raise ValueError("store_budget_bytes must be positive (or None)")
        if self.solver is not None and self.solver not in _SOLVER_MODES:
            raise ValueError(
                f"solver must be one of {_SOLVER_MODES} (or None), got "
                f"{self.solver!r}"
            )
        if not self.cg_tol > 0:
            raise ValueError("cg_tol must be positive")
        if self.cg_max_iters < 1:
            raise ValueError("cg_max_iters must be at least 1")
        _validate_resilience_knobs(self)
        _validate_execution_knobs(self)
        if self.build_workers is not None:
            warnings.warn(
                "KRRConfig.build_workers is deprecated; use the unified "
                "'workers' knob (it drives every phase of the session's "
                "task runtime, not just Build)",
                DeprecationWarning, stacklevel=3,
            )
            if self.build_workers <= 0:
                raise ValueError("build_workers must be positive (or None)")
            if self.workers is None:
                object.__setattr__(self, "workers", int(self.build_workers))
            # Normalize the deprecated knob away once it has seeded
            # ``workers``: derived configs (``with_options``) re-run this
            # validator via ``dataclasses.replace``, and a lingering
            # build_workers would re-warn *and* re-seed ``workers`` —
            # silently clobbering an explicit ``with_options(workers=None)``.
            object.__setattr__(self, "build_workers", None)
        object.__setattr__(self, "snp_precision",
                           Precision.from_string(self.snp_precision))

    # ------------------------------------------------------------------
    # artifact (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation embedded in fitted-model artifacts.

        The machine-specific runtime knobs (``workers``, ``execution``,
        ``store_budget_bytes``, ``store_dir``, ``task_retries``,
        ``task_timeout_s``) are deliberately *not*
        serialized: an artifact loaded on another host must resolve its
        concurrency and memory budget from that host's environment, not
        from wherever the model happened to be trained.
        """
        return {
            "gamma": self.gamma,
            "alpha": self.alpha,
            "kernel_type": self.kernel_type,
            "tile_size": self.tile_size,
            "precision_plan": self.precision_plan.to_dict(),
            "snp_precision": self.snp_precision.value,
            "predict_batch_rows": self.predict_batch_rows,
            "normalize_gamma": self.normalize_gamma,
            "artifact_compress": self.artifact_compress,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KRRConfig":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        plan = data.pop("precision_plan", None)
        if plan is not None:
            data["precision_plan"] = PrecisionPlan.from_dict(plan)
        return cls(**data)

    #: SNP count at which ``gamma`` is anchored when ``normalize_gamma``.
    GAMMA_REFERENCE_SNPS: ClassVar[float] = 200.0

    def effective_gamma(self, n_snps: int) -> float:
        """γ actually applied, optionally rescaled by the SNP count.

        With ``normalize_gamma`` the bandwidth keeps ``γ·E[D]`` constant
        across SNP counts (squared distances grow linearly with NS for
        0/1/2 genotype data), anchored at ``GAMMA_REFERENCE_SNPS``.
        """
        if self.normalize_gamma and n_snps > 0:
            return self.gamma * (self.GAMMA_REFERENCE_SNPS / float(n_snps))
        return self.gamma


@dataclass(frozen=True)
class ServeConfig(_WithOptionsMixin):
    """Knobs of the :mod:`repro.serve` prediction service.

    Parameters
    ----------
    max_batch_requests:
        Coalescing cap: at most this many queued requests (for the same
        model) are merged into one micro-batch.  1 disables coalescing
        (the per-request baseline the serve benchmark compares against).
    batch_window_s:
        How long the dispatcher keeps a partially-filled micro-batch
        open waiting for more requests before executing it.  The window
        bounds the queueing latency a request can pay to batching.
    batch_rows:
        Row-batch size of the streamed Predict inside a micro-batch
        (rounded to a tile multiple, like
        ``KRRConfig.predict_batch_rows`` which it overrides when set).
    max_queue_depth:
        Backpressure bound: ``submit`` sheds the request with a
        :class:`~repro.resilience.ServiceOverloadedError` when this
        many requests are already queued.  ``None`` means unbounded.
    request_deadline_s:
        Default per-request deadline, measured from submission.  A
        request still queued past its deadline fails fast with
        :class:`~repro.resilience.DeadlineExceededError` and is
        excluded from micro-batch planning (no wasted kernel work).
        ``None`` means no default deadline; ``submit``/``predict`` can
        override per request.
    dispatch_retries:
        Transient-failure retries of one micro-batch dispatch (the
        streamed ``predict_many`` call).  Non-transient errors fail the
        batch immediately.
    trace_reset_batches:
        Every this many micro-batches per serving session, the
        session runtime's cumulative traces are dropped
        (:meth:`~repro.runtime.runtime.Runtime.reset_traces`) so a
        long-running service's per-task event log stays bounded; the
        service keeps its own cumulative counters.  ``None`` retains
        every event.
    """

    max_batch_requests: int = 8
    batch_window_s: float = 0.002
    batch_rows: int | None = None
    max_queue_depth: int | None = None
    request_deadline_s: float | None = None
    dispatch_retries: int = 1
    trace_reset_batches: int | None = 256

    def __post_init__(self) -> None:
        if self.max_batch_requests <= 0:
            raise ValueError("max_batch_requests must be positive")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if self.batch_rows is not None and self.batch_rows <= 0:
            raise ValueError("batch_rows must be positive (or None)")
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive (or None)")
        if self.request_deadline_s is not None and self.request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be positive (or None)")
        if self.dispatch_retries < 0:
            raise ValueError("dispatch_retries must be non-negative")
        if (self.trace_reset_batches is not None
                and self.trace_reset_batches <= 0):
            raise ValueError("trace_reset_batches must be positive (or None)")
