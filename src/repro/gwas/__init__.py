"""The paper's contribution: mixed-precision RR and KRR multivariate GWAS.

* :class:`~repro.gwas.session.KRRSession` — the tile-native three-phase
  Kernel Ridge Regression session (Build / Associate / Predict,
  Algorithms 1–5): the kernel matrix stays a tiled ``TileMatrix`` end
  to end with zero dense n×n round-trips, the regularization boost
  touches only diagonal tiles, and Predict streams in row batches.
* :class:`~repro.gwas.session.RRSession` — linear ridge regression on
  the genotype+confounder design matrix (Eq. 1–2 of the paper), solved
  with the mixed-precision SYRK + tiled Cholesky path, in the same
  session shape.
* :class:`~repro.gwas.krr.KernelRidgeRegressionGWAS` /
  :class:`~repro.gwas.ridge.RidgeRegressionGWAS` — deprecated thin
  wrappers over the sessions, kept for ``fit``/``predict`` callers.
* :mod:`repro.gwas.metrics` — MSPE and Pearson correlation, the two
  accuracy metrics of Sec. VII.
* :mod:`repro.gwas.cv` — cross-validation for the α / γ hyperparameters
  (one kernel Build per (fold, γ), one factorization per α).
* :mod:`repro.gwas.workflow` — end-to-end driver over a
  :class:`~repro.data.dataset.GWASDataset`.
"""

from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig
from repro.gwas.krr import KernelRidgeRegressionGWAS, KRRModel
from repro.gwas.metrics import (
    accuracy_report,
    mean_squared_prediction_error,
    mspe,
    pearson_correlation,
)
from repro.gwas.ridge import RidgeRegressionGWAS, RRModel
from repro.gwas.session import KRRSession, RRSession
from repro.gwas.cv import CrossValidationResult, grid_search_cv
from repro.gwas.workflow import GWASWorkflow, WorkflowResult

__all__ = [
    "PrecisionPlan",
    "RRConfig",
    "KRRConfig",
    "KRRSession",
    "RRSession",
    "RidgeRegressionGWAS",
    "RRModel",
    "KernelRidgeRegressionGWAS",
    "KRRModel",
    "mspe",
    "mean_squared_prediction_error",
    "pearson_correlation",
    "accuracy_report",
    "grid_search_cv",
    "CrossValidationResult",
    "GWASWorkflow",
    "WorkflowResult",
]
