"""End-to-end GWAS workflow driver.

``GWASWorkflow`` ties the pieces together the way the paper's Fig. 3
diagrams them: take a cohort (:class:`~repro.data.dataset.GWASDataset`),
split it 80/20, run RR and/or KRR with a chosen precision plan, and
report MSPE and Pearson correlation per phenotype — the exact quantities
of Fig. 5 and Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import GWASDataset, TrainTestSplit
from repro.gwas.config import KRRConfig, RRConfig
from repro.gwas.metrics import accuracy_report
from repro.gwas.session import KRRSession, RRSession

__all__ = ["GWASWorkflow", "WorkflowResult"]


@dataclass
class WorkflowResult:
    """Accuracy results of one workflow run.

    Attributes
    ----------
    method:
        ``"rr"`` or ``"krr"``.
    report:
        Per-phenotype metrics (``mspe``, ``pearson``, ``r2``).
    predictions:
        ``n_test × nph`` prediction panel.
    phase_flops:
        Per-phase operation counts when available (KRR only).
    """

    method: str
    report: dict[str, dict[str, float]]
    predictions: np.ndarray
    phase_flops: dict[str, float] = field(default_factory=dict)

    def mspe(self, phenotype: str) -> float:
        return self.report[phenotype]["mspe"]

    def pearson(self, phenotype: str) -> float:
        return self.report[phenotype]["pearson"]

    def mean_mspe(self) -> float:
        return float(np.mean([m["mspe"] for m in self.report.values()]))

    def mean_pearson(self) -> float:
        return float(np.mean([m["pearson"] for m in self.report.values()]))


class GWASWorkflow:
    """Run RR / KRR GWAS on a dataset with a fixed train/test split.

    Parameters
    ----------
    dataset:
        The cohort to analyse.
    train_fraction:
        Train share of the split (paper: 0.8).
    seed:
        Split RNG seed, fixed so RR and KRR see identical partitions.
    """

    def __init__(self, dataset: GWASDataset, train_fraction: float = 0.8,
                 seed: int = 0) -> None:
        self.dataset = dataset
        self.split: TrainTestSplit = dataset.split(train_fraction, seed=seed)

    # ------------------------------------------------------------------
    def run_rr(self, config: RRConfig | None = None) -> WorkflowResult:
        """Linear ridge-regression GWAS on the split."""
        train, test = self.split.train, self.split.test
        session = RRSession(config)
        predictions = session.fit_predict(
            train.design_matrix(), train.phenotypes, test.design_matrix(),
            integer_columns=train.integer_column_mask(),
        )
        report = accuracy_report(test.phenotypes, predictions,
                                 self.dataset.phenotype_names)
        return WorkflowResult(method="rr", report=report, predictions=predictions)

    def run_krr(self, config: KRRConfig | None = None) -> WorkflowResult:
        """Kernel ridge-regression GWAS on the split (tile-native session)."""
        train, test = self.split.train, self.split.test
        session = KRRSession(config)
        predictions = session.fit_predict(
            train.genotypes, train.phenotypes, test.genotypes,
            train_confounders=train.confounders, test_confounders=test.confounders,
        )
        report = accuracy_report(test.phenotypes, predictions,
                                 self.dataset.phenotype_names)
        return WorkflowResult(method="krr", report=report, predictions=predictions,
                              phase_flops=dict(session.phase_flops))

    def compare(self, rr_config: RRConfig | None = None,
                krr_config: KRRConfig | None = None) -> dict[str, WorkflowResult]:
        """Run both methods on the same split (the paper's comparison setup)."""
        return {"rr": self.run_rr(rr_config), "krr": self.run_krr(krr_config)}
