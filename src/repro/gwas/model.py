"""Fitted-model artifacts: the predict-side state of a KRR session.

A :class:`FittedModel` is the *immutable* product of the Build and
Associate phases — everything the Predict phase (and the factor-reuse
solves) needs, and nothing else:

* the frozen weight panel ``W`` and phenotype means,
* the effective kernel hyperparameters (γ as actually applied, the
  final — possibly boosted — α, the kernel type),
* the training cohort reference the cross kernel is computed against
  (SNP genotypes and optional confounders: the SNP-panel contract),
* the configuration (tile size, precision plan, SNP input precision),
* the **storage-precision tiled Cholesky factorization**, kept as the
  session holds it — an adaptive-FP8 plan's factor stays an FP8/FP32
  tile mosaic, which is what makes biobank-scale fitted state small
  enough to keep resident (and what the artifact's on-disk footprint
  reflects, via :mod:`repro.tiles.serialize`).

``KRRSession.export_model()`` produces the artifact;
``KRRSession.from_model()`` reconstitutes a serving session — so
associate-sweeps and the serving path share one model shape.
``save``/``load`` round-trip the artifact through a single ``.npz``
archive with each tile in its native precision bytes, and a loaded
model predicts **bitwise identically** to the in-memory session that
exported it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.gwas.config import KRRConfig
from repro.precision.formats import Precision
from repro.tiles.matrix import TileMatrix
from repro.tiles.serialize import (
    meta_from_array,
    meta_to_array,
    pack_tile_matrix,
    resolve_archive_path,
    unpack_tile_matrix,
    write_archive,
)

__all__ = ["FittedModel"]

#: Artifact format marker, bumped on incompatible archive changes.
ARTIFACT_FORMAT = "repro-fitted-krr"
ARTIFACT_VERSION = 1


def _frozen(array: np.ndarray | None) -> np.ndarray | None:
    """Read-only view-copy enforcing the artifact's immutability."""
    if array is None:
        return None
    out = np.array(array, copy=True)
    out.flags.writeable = False
    return out


class FittedModel:
    """Immutable predict-side artifact of a fitted :class:`KRRSession`.

    Construct via :meth:`KRRSession.export_model` or :meth:`load`; the
    constructor itself is considered internal.  All array attributes
    are read-only; the tiled factor must be treated as frozen too.

    Attributes
    ----------
    config:
        The :class:`~repro.gwas.config.KRRConfig` the model was fitted
        under (runtime knobs cleared — serving resolves concurrency
        from the serving host).
    gamma, alpha:
        Effective kernel bandwidth (after SNP-count normalization) and
        the final regularization (after any boost retries).
    weights:
        ``(n_train, n_phenotypes)`` float64 weight panel.
    y_means:
        Per-phenotype training means added back onto predictions.
    factor:
        Lower-triangular tiled Cholesky factor of ``K + alpha*I`` in
        its storage-precision mosaic (used by
        :meth:`solve_additional_phenotypes` via a restored session).
    training_genotypes, training_confounders:
        The training cohort the cross kernel is computed against.
    """

    def __init__(
        self,
        config: KRRConfig,
        gamma: float,
        alpha: float,
        weights: np.ndarray,
        y_means: np.ndarray,
        factor: TileMatrix,
        training_genotypes: np.ndarray,
        training_confounders: np.ndarray | None = None,
    ) -> None:
        # serving never inherits the training host's runtime knobs
        # (concurrency *and* memory budget resolve on the serving host)
        if (config.workers is not None or config.execution is not None
                or config.store_budget_bytes is not None
                or config.store_dir is not None):
            config = config.with_options(workers=None, execution=None,
                                         store_budget_bytes=None,
                                         store_dir=None)
        self.config = config
        self.gamma = float(gamma)
        self.alpha = float(alpha)
        self.weights = _frozen(np.asarray(weights, dtype=np.float64))
        self.y_means = _frozen(np.asarray(y_means, dtype=np.float64))
        self.factor = factor
        self.training_genotypes = _frozen(np.asarray(training_genotypes))
        self.training_confounders = _frozen(
            None if training_confounders is None
            else np.asarray(training_confounders, dtype=np.float64))
        if self.weights.shape[0] != self.training_genotypes.shape[0]:
            raise ValueError(
                "weights must have one row per training individual")
        self._session = None  # lazily-built serving session

    # ------------------------------------------------------------------
    # shape / footprint introspection
    # ------------------------------------------------------------------
    @property
    def n_train(self) -> int:
        return self.training_genotypes.shape[0]

    @property
    def n_snps(self) -> int:
        return self.training_genotypes.shape[1]

    @property
    def n_phenotypes(self) -> int:
        return self.weights.shape[1]

    @property
    def kernel_type(self) -> str:
        return self.config.kernel_type

    def resident_bytes(self) -> int:
        """In-memory footprint: precision-aware tile bytes + dense panels.

        This is the quantity the serving registry's LRU budget evicts
        by — an adaptive-FP8 model is cheaper to keep resident than the
        same cohort under a uniform FP32 plan, and a **store-backed**
        model (:meth:`load` with a ``store``) counts only the factor
        tiles actually faulted in, not the full on-disk mosaic.
        """
        total = self.factor.resident_nbytes()
        total += self.weights.nbytes + self.y_means.nbytes
        total += self.training_genotypes.nbytes
        if self.training_confounders is not None:
            total += self.training_confounders.nbytes
        return int(total)

    def footprint_by_precision(self) -> dict[Precision, int]:
        """Tile bytes per storage precision of the factor mosaic."""
        return self.factor.footprint_by_precision()

    def predict_flops(self, rows: int) -> float:
        """Operation count of predicting ``rows`` individuals.

        Linear in the cohort size: the cross-kernel Gram against the
        training panel plus the ``K_test @ W`` GEMM.  The service uses
        this for exact per-request attribution inside shared
        micro-batches.
        """
        fl = 2.0 * rows * self.n_train * self.n_snps
        if self.training_confounders is not None:
            fl += 2.0 * rows * self.n_train * self.training_confounders.shape[1]
        fl += 2.0 * rows * self.n_train * self.n_phenotypes
        return fl

    # ------------------------------------------------------------------
    # predict (delegating to a lazily-restored session)
    # ------------------------------------------------------------------
    def session(self, workers: int | None = None,
                execution: str | None = None):
        """The model's serving session (created on first use, cached).

        The cached session owns one task :class:`~repro.runtime.runtime.Runtime`
        and is **not** thread-safe; concurrent callers go through
        :class:`repro.serve.PredictionService`, which serializes
        execution on one dispatcher.  Passing explicit ``workers`` /
        ``execution`` builds a fresh, un-cached session.
        """
        from repro.gwas.session import KRRSession

        if workers is not None or execution is not None:
            return KRRSession.from_model(self, workers=workers,
                                         execution=execution)
        if self._session is None:
            self._session = KRRSession.from_model(self)
        return self._session

    def predict(self, genotypes: np.ndarray,
                confounders: np.ndarray | None = None,
                batch_rows: int | None = None) -> np.ndarray:
        """Predict a cohort — bitwise equal to the exporting session."""
        return self.session().predict(genotypes, confounders,
                                      batch_rows=batch_rows)

    def solve_additional_phenotypes(self, phenotypes: np.ndarray) -> np.ndarray:
        """Solve extra phenotype panels against the persisted factors."""
        return self.session().solve_additional_phenotypes(phenotypes)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path, compress: bool | None = None) -> Path:
        """Write the artifact to ``path`` (``.npz`` appended if missing).

        Every factor tile is stored in its native precision bytes (see
        :mod:`repro.tiles.serialize`), so the file size reflects the
        precision mosaic.  ``compress`` defaults to
        ``config.artifact_compress``.
        """
        meta = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "config": self.config.to_dict(),
            "gamma": self.gamma,
            "alpha": self.alpha,
            "has_confounders": self.training_confounders is not None,
        }
        arrays: dict[str, np.ndarray] = {
            "meta_json": meta_to_array(meta),
            "weights": np.asarray(self.weights),
            "y_means": np.asarray(self.y_means),
            "training_genotypes": np.asarray(self.training_genotypes),
        }
        if self.training_confounders is not None:
            arrays["training_confounders"] = np.asarray(
                self.training_confounders)
        arrays.update(pack_tile_matrix(self.factor, prefix="factor/",
                                       lower_only=True))
        if compress is None:
            compress = self.config.artifact_compress
        return write_archive(path, arrays, compress=compress)

    @classmethod
    def load(cls, path: str | Path, store=None) -> "FittedModel":
        """Load an artifact written by :meth:`save` (bitwise faithful).

        With ``store`` (a :class:`~repro.store.TileStore`) the factor
        opens **store-backed and fully spilled**: its tiles stream from
        the archive straight into a spill segment and fault in lazily
        on first use, so the loaded model's :meth:`resident_bytes`
        reflects only what is actually in memory — which is how a
        serving registry keeps many more fitted cohorts addressable
        than fit its resident budget.  Faulted tiles decode the exact
        bytes the exporting session held, so predictions and factor
        reuse stay bitwise identical.
        """
        path = resolve_archive_path(path)
        with np.load(path, allow_pickle=False) as archive:
            meta = meta_from_array(archive["meta_json"])
            if meta.get("format") != ARTIFACT_FORMAT:
                raise ValueError(
                    f"{path} is not a fitted-model artifact "
                    f"(format={meta.get('format')!r})")
            if meta.get("version", 0) > ARTIFACT_VERSION:
                raise ValueError(
                    f"artifact written by a newer format "
                    f"(version {meta['version']} > {ARTIFACT_VERSION})")
            factor = unpack_tile_matrix(archive, prefix="factor/",
                                        store=store)
            return cls(
                config=KRRConfig.from_dict(meta["config"]),
                gamma=meta["gamma"],
                alpha=meta["alpha"],
                weights=archive["weights"],
                y_means=archive["y_means"],
                factor=factor,
                training_genotypes=archive["training_genotypes"],
                training_confounders=(archive["training_confounders"]
                                      if meta["has_confounders"] else None),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FittedModel(n_train={self.n_train}, n_snps={self.n_snps}, "
            f"phenotypes={self.n_phenotypes}, "
            f"plan={self.config.precision_plan.label()!r}, "
            f"resident={self.resident_bytes()} B)"
        )
