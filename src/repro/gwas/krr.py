"""Kernel Ridge Regression multivariate GWAS (Algorithms 1–5).

The three-phase workflow of the paper:

* **Build** (Algorithm 2) — the training kernel matrix ``K`` from the
  genotype matrix via the INT8 GEMM-form distances and the Gaussian (or
  IBS) kernel, with the confounder contribution accumulated in FP32.
* **Associate** (Algorithm 3) — factorize ``K + αI`` with the tiled
  mixed-precision Cholesky (tile precisions from the configured
  :class:`~repro.gwas.config.PrecisionPlan`) and solve for the weight
  panel ``W`` against the phenotypes.
* **Predict** (Algorithm 4) — build the test-vs-train kernel and
  compute ``Pr = K_test · W`` in FP32.

A fitted model exposes the per-phase flop counts split by precision —
the quantities the paper's performance figures are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance.build import BuildResult, KernelBuilder
from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.linalg.blas3 import gemm
from repro.linalg.cholesky import CholeskyResult, cholesky
from repro.linalg.solve import solve_cholesky
from repro.precision.formats import Precision
from repro.tiles.matrix import TileMatrix

__all__ = ["KernelRidgeRegressionGWAS", "KRRModel"]


@dataclass
class KRRModel:
    """Fitted KRR model (output of the Build + Associate phases).

    Attributes
    ----------
    weights:
        ``NP1 × nph`` weight panel ``W`` (Algorithm 3).
    factorization:
        Cholesky factorization of ``K + αI`` (reusable for additional
        phenotypes).
    build:
        The Build-phase result (kernel matrix + flop accounting).
    training_genotypes, training_confounders:
        Stored references needed by the Predict phase.
    gamma:
        The effective kernel bandwidth actually applied.
    phase_flops:
        Per-phase operation counts (``"build"``, ``"associate"``).
    flops_by_precision:
        Operation counts split by compute precision across both phases.
    precision_map:
        Per-tile storage precisions of the kernel matrix (Fig. 4).
    """

    weights: np.ndarray
    factorization: CholeskyResult
    build: BuildResult
    training_genotypes: np.ndarray
    training_confounders: np.ndarray | None
    gamma: float
    y_means: np.ndarray
    phase_flops: dict[str, float] = field(default_factory=dict)
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)
    precision_map: dict[tuple[int, int], Precision] | None = None


class KernelRidgeRegressionGWAS:
    """Multivariate GWAS with mixed-precision Kernel Ridge Regression.

    Parameters
    ----------
    config:
        :class:`~repro.gwas.config.KRRConfig`; keyword overrides are
        accepted, e.g. ``KernelRidgeRegressionGWAS(alpha=0.5, gamma=0.02)``.
    """

    def __init__(self, config: KRRConfig | None = None, **overrides) -> None:
        if config is None:
            config = KRRConfig()
        if overrides:
            config = KRRConfig(**{**config.__dict__, **overrides})
        self.config = config
        self.model_: KRRModel | None = None

    # ------------------------------------------------------------------
    # Phase 1: BUILD
    # ------------------------------------------------------------------
    def build(self, genotypes: np.ndarray,
              confounders: np.ndarray | None = None) -> BuildResult:
        """Build the symmetric training kernel matrix (Algorithm 2)."""
        cfg = self.config
        genotypes = np.asarray(genotypes)
        gamma = cfg.effective_gamma(genotypes.shape[1])
        plan: PrecisionPlan = cfg.precision_plan
        adaptive_rule = plan.adaptive_rule() if plan.mode == "adaptive" else None
        builder = KernelBuilder(
            kernel_type=cfg.kernel_type,
            gamma=gamma,
            tile_size=cfg.tile_size,
            snp_precision=cfg.snp_precision,
            adaptive_rule=adaptive_rule,
            storage_precision=plan.working_precision,
            workers=cfg.build_workers,
        )
        return builder.build_training(genotypes, confounders)

    # ------------------------------------------------------------------
    # Phase 2: ASSOCIATE
    # ------------------------------------------------------------------
    def associate(self, kernel: TileMatrix | np.ndarray,
                  phenotypes: np.ndarray) -> tuple[np.ndarray, CholeskyResult]:
        """Factorize ``K + αI`` and solve for the weight panel (Algorithm 3).

        If the low-precision perturbation of the kernel tiles makes the
        regularized matrix numerically indefinite (possible when the
        kernel is close to singular and the FP8 floor is engaged), the
        regularization is boosted by 10x — up to twice — before giving
        up; the boost count is recorded in ``self.regularization_boosts_``.
        """
        cfg = self.config
        plan = cfg.precision_plan
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]

        k_dense = kernel.to_dense() if isinstance(kernel, TileMatrix) else np.asarray(
            kernel, dtype=np.float64)
        n = k_dense.shape[0]
        if k_dense.shape != (n, n):
            raise ValueError("the training kernel matrix must be square")
        if phenotypes.shape[0] != n:
            raise ValueError("phenotypes must have one row per training individual")

        from repro.tiles.layout import TileLayout

        layout = TileLayout.square(n, cfg.tile_size)
        self.regularization_boosts_ = 0
        alpha = cfg.alpha if cfg.alpha > 0 else 1e-6
        last_error: Exception | None = None
        diag_idx = np.diag_indices(n)
        for attempt in range(3):
            # regularize in place of a copy; avoids the dense n x n
            # identity temporary the historical path built per attempt
            a = k_dense.copy()
            a[diag_idx] += alpha
            pmap = plan.precision_map(layout, matrix=a)
            try:
                fact = cholesky(a, tile_size=cfg.tile_size,
                                working_precision=plan.working_precision,
                                precision_map=pmap)
                break
            except np.linalg.LinAlgError as exc:
                last_error = exc
                alpha *= 10.0
                self.regularization_boosts_ = attempt + 1
        else:
            raise np.linalg.LinAlgError(
                "the regularized kernel matrix remained indefinite under the "
                "chosen precision plan even after boosting alpha"
            ) from last_error

        y_centered = phenotypes - phenotypes.mean(axis=0, keepdims=True)
        weights = solve_cholesky(fact, y_centered, precision=plan.working_precision)
        return np.asarray(weights, dtype=np.float64), fact

    # ------------------------------------------------------------------
    # fit = BUILD + ASSOCIATE
    # ------------------------------------------------------------------
    def fit(self, genotypes: np.ndarray, phenotypes: np.ndarray,
            confounders: np.ndarray | None = None) -> KRRModel:
        """Run the Build and Associate phases on the training cohort."""
        cfg = self.config
        genotypes = np.asarray(genotypes)
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        if phenotypes.shape[0] != genotypes.shape[0]:
            raise ValueError("genotypes and phenotypes must have the same number of rows")

        build_result = self.build(genotypes, confounders)
        weights, fact = self.associate(build_result.kernel, phenotypes)

        flops_by_precision = dict(build_result.flops_by_precision)
        for prec, fl in fact.flops_by_precision.items():
            flops_by_precision[prec] = flops_by_precision.get(prec, 0.0) + fl

        self.model_ = KRRModel(
            weights=weights,
            factorization=fact,
            build=build_result,
            training_genotypes=genotypes,
            training_confounders=(None if confounders is None
                                  else np.asarray(confounders, dtype=np.float64)),
            gamma=cfg.effective_gamma(genotypes.shape[1]),
            y_means=phenotypes.mean(axis=0),
            phase_flops={"build": build_result.flops, "associate": fact.flops},
            flops_by_precision=flops_by_precision,
            precision_map=build_result.precision_map,
        )
        return self.model_

    # ------------------------------------------------------------------
    # Phase 3: PREDICT
    # ------------------------------------------------------------------
    def predict(self, genotypes: np.ndarray,
                confounders: np.ndarray | None = None) -> np.ndarray:
        """Predict phenotypes for a new cohort (Algorithm 4)."""
        if self.model_ is None:
            raise RuntimeError("fit() must be called before predict()")
        cfg = self.config
        model = self.model_
        genotypes = np.asarray(genotypes)
        if genotypes.shape[1] != model.training_genotypes.shape[1]:
            raise ValueError("test cohort must have the same SNP panel as training")
        if (confounders is None) != (model.training_confounders is None):
            raise ValueError("confounders must match the training configuration")

        builder = KernelBuilder(
            kernel_type=cfg.kernel_type,
            gamma=model.gamma,
            tile_size=cfg.tile_size,
            snp_precision=cfg.snp_precision,
            storage_precision=cfg.precision_plan.working_precision,
            workers=cfg.build_workers,
        )
        cross = builder.build_cross(
            genotypes, model.training_genotypes,
            confounders, model.training_confounders,
        )
        k_test = cross.to_dense()
        predictions = gemm(k_test, model.weights, tile_size=cfg.tile_size,
                           precision=cfg.precision_plan.working_precision)
        model.phase_flops["predict"] = model.phase_flops.get("predict", 0.0) + cross.flops
        return predictions + model.y_means[None, :]

    def fit_predict(self, train_genotypes: np.ndarray, train_phenotypes: np.ndarray,
                    test_genotypes: np.ndarray,
                    train_confounders: np.ndarray | None = None,
                    test_confounders: np.ndarray | None = None) -> np.ndarray:
        """Fit on the training cohort and predict the test cohort."""
        self.fit(train_genotypes, train_phenotypes, train_confounders)
        return self.predict(test_genotypes, test_confounders)

    def solve_additional_phenotypes(self, phenotypes: np.ndarray) -> np.ndarray:
        """Solve for extra phenotypes reusing the kernel factorization.

        A key practical advantage of the direct solver noted in
        Sec. V-B3: once ``K + αI`` is factorized, each additional
        phenotype panel costs only two triangular solves.
        """
        if self.model_ is None:
            raise RuntimeError("fit() must be called before reusing the factors")
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        y_centered = phenotypes - phenotypes.mean(axis=0, keepdims=True)
        return solve_cholesky(self.model_.factorization, y_centered,
                              precision=self.config.precision_plan.working_precision)
