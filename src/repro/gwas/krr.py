"""Kernel Ridge Regression multivariate GWAS (Algorithms 1–5).

.. deprecated::
    :class:`KernelRidgeRegressionGWAS` is a thin compatibility wrapper
    over :class:`~repro.gwas.session.KRRSession`, the tile-native
    solver session that keeps the kernel matrix tiled from Build
    through Associate and Predict with zero dense n×n round-trips.
    New code should use ``repro.api.KRRSession`` directly; this class
    is kept so existing ``fit``/``predict`` callers continue to work.

The three-phase workflow of the paper:

* **Build** (Algorithm 2) — the training kernel matrix ``K`` from the
  genotype matrix via the INT8 GEMM-form distances and the Gaussian (or
  IBS) kernel, with the confounder contribution accumulated in FP32.
* **Associate** (Algorithm 3) — factorize ``K + αI`` with the tiled
  mixed-precision Cholesky (tile precisions from the configured
  :class:`~repro.gwas.config.PrecisionPlan`) and solve for the weight
  panel ``W`` against the phenotypes.
* **Predict** (Algorithm 4) — stream the test-vs-train kernel in row
  batches and compute ``Pr = K_test · W`` in FP32.

A fitted model exposes the per-phase flop counts split by precision —
the quantities the paper's performance figures are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance.build import BuildResult
from repro.gwas.config import KRRConfig
from repro.gwas.session import KRRSession
from repro.linalg.cholesky import CholeskyResult
from repro.precision.formats import Precision
from repro.tiles.matrix import TileMatrix

__all__ = ["KernelRidgeRegressionGWAS", "KRRModel"]


@dataclass
class KRRModel:
    """Fitted KRR model (output of the Build + Associate phases).

    Attributes
    ----------
    weights:
        ``NP1 × nph`` weight panel ``W`` (Algorithm 3).
    factorization:
        Cholesky factorization of ``K + αI`` (reusable for additional
        phenotypes).
    build:
        The Build-phase result (kernel matrix + flop accounting).
    training_genotypes, training_confounders:
        Stored references needed by the Predict phase.
    gamma:
        The effective kernel bandwidth actually applied.
    phase_flops:
        Per-phase operation counts (``"build"``, ``"associate"``, and —
        after :meth:`KernelRidgeRegressionGWAS.predict` — ``"predict"``).
    flops_by_precision:
        Operation counts split by compute precision across all phases
        (kept consistent with ``phase_flops``: the Predict phase folds
        its cross-kernel and GEMM operations into both).
    precision_map:
        Per-tile storage precisions of the kernel matrix (Fig. 4).
    """

    weights: np.ndarray
    factorization: CholeskyResult
    build: BuildResult
    training_genotypes: np.ndarray
    training_confounders: np.ndarray | None
    gamma: float
    y_means: np.ndarray
    phase_flops: dict[str, float] = field(default_factory=dict)
    flops_by_precision: dict[Precision, float] = field(default_factory=dict)
    precision_map: dict[tuple[int, int], Precision] | None = None


class KernelRidgeRegressionGWAS:
    """Multivariate GWAS with mixed-precision Kernel Ridge Regression.

    .. deprecated::
        Thin wrapper over :class:`~repro.gwas.session.KRRSession`;
        prefer the session API (``repro.api.KRRSession``) in new code.

    Parameters
    ----------
    config:
        :class:`~repro.gwas.config.KRRConfig`; keyword overrides are
        accepted, e.g. ``KernelRidgeRegressionGWAS(alpha=0.5, gamma=0.02)``.
    """

    def __init__(self, config: KRRConfig | None = None, **overrides) -> None:
        self.session = KRRSession(config, **overrides)
        self.config = self.session.config
        self.model_: KRRModel | None = None
        # standalone associate() runs on a scratch session; this tracks
        # whichever session performed the most recent Associate phase
        self._associate_session = self.session

    @property
    def regularization_boosts_(self) -> int:
        """Alpha-boost count of the most recent Associate phase."""
        return self._associate_session.regularization_boosts_

    # ------------------------------------------------------------------
    # Phase 1: BUILD
    # ------------------------------------------------------------------
    def build(self, genotypes: np.ndarray,
              confounders: np.ndarray | None = None) -> BuildResult:
        """Build the symmetric training kernel matrix (Algorithm 2).

        Like the historical estimator, this is side-effect-free: it runs
        on a scratch session and does not disturb a fitted model.
        """
        return KRRSession(self.config).build(genotypes, confounders)

    # ------------------------------------------------------------------
    # Phase 2: ASSOCIATE
    # ------------------------------------------------------------------
    def associate(self, kernel: TileMatrix | np.ndarray,
                  phenotypes: np.ndarray) -> tuple[np.ndarray, CholeskyResult]:
        """Factorize ``K + αI`` and solve for the weight panel (Algorithm 3).

        The kernel stays tiled through the factorization: a dense array
        input is tiled once, a ``TileMatrix`` is consumed as-is, and the
        regularization (including the 10x boost-retry loop, recorded in
        ``regularization_boosts_``) only ever touches diagonal tiles.
        Runs on a scratch session, so a previously fitted model keeps
        predicting from its own state (historical behaviour).
        """
        scratch = KRRSession(self.config)
        scratch.adopt_kernel(kernel)
        weights = scratch.associate(phenotypes)
        self._associate_session = scratch
        return weights, scratch.factorization_

    # ------------------------------------------------------------------
    # fit = BUILD + ASSOCIATE
    # ------------------------------------------------------------------
    def fit(self, genotypes: np.ndarray, phenotypes: np.ndarray,
            confounders: np.ndarray | None = None) -> KRRModel:
        """Run the Build and Associate phases on the training cohort."""
        session = self.session
        session.fit(genotypes, phenotypes, confounders)
        self._associate_session = session
        self.model_ = KRRModel(
            weights=session.weights_,
            factorization=session.factorization_,
            build=session.build_result_,
            training_genotypes=session.training_genotypes_,
            training_confounders=session.training_confounders_,
            gamma=session.gamma_,
            y_means=session.y_means_,
            # live references: the Predict phase updates both views
            phase_flops=session.phase_flops,
            flops_by_precision=session.flops_by_precision,
            precision_map=session.build_result_.precision_map,
        )
        return self.model_

    # ------------------------------------------------------------------
    # Phase 3: PREDICT
    # ------------------------------------------------------------------
    def predict(self, genotypes: np.ndarray,
                confounders: np.ndarray | None = None) -> np.ndarray:
        """Predict phenotypes for a new cohort (Algorithm 4), streamed."""
        if self.model_ is None:
            raise RuntimeError("fit() must be called before predict()")
        return self.session.predict(genotypes, confounders)

    def fit_predict(self, train_genotypes: np.ndarray, train_phenotypes: np.ndarray,
                    test_genotypes: np.ndarray,
                    train_confounders: np.ndarray | None = None,
                    test_confounders: np.ndarray | None = None) -> np.ndarray:
        """Fit on the training cohort and predict the test cohort."""
        self.fit(train_genotypes, train_phenotypes, train_confounders)
        return self.predict(test_genotypes, test_confounders)

    def solve_additional_phenotypes(self, phenotypes: np.ndarray) -> np.ndarray:
        """Solve for extra phenotypes reusing the kernel factorization.

        A key practical advantage of the direct solver noted in
        Sec. V-B3: once ``K + αI`` is factorized, each additional
        phenotype panel costs only two triangular solves.
        """
        if self.model_ is None:
            raise RuntimeError("fit() must be called before reusing the factors")
        return self.session.solve_additional_phenotypes(phenotypes)
