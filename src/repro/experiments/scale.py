"""Scale presets mapping the paper's dimensions onto CI-sized runs.

The paper's accuracy experiments use 305,880 patients × 43,333 SNPs;
the performance experiments go up to 13M × 20M.  A pure-Python
emulation cannot run those sizes, so every experiment accepts a scale
preset:

* ``small``  — seconds on a laptop; used by the test suite.
* ``medium`` — a couple of minutes; the default for the benchmark
  harness, with more individuals so the accuracy gaps are better
  resolved.
* ``large``  — several minutes; closest to the paper's qualitative
  regime that is still practical in pure Python.

The performance-model experiments (Figs. 7–14) always use the paper's
*actual* dimensions: they evaluate an analytic model, not the emulated
numerics, so there is nothing to scale down.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScalePreset", "SCALE_PRESETS", "get_scale"]


@dataclass(frozen=True)
class ScalePreset:
    """Cohort dimensions used by the accuracy experiments.

    Attributes
    ----------
    name:
        Preset name.
    n_individuals, n_snps:
        UK-BioBank-like cohort dimensions.
    coalescent_individuals, coalescent_snps:
        msprime-like (coalescent) cohort dimensions for Fig. 6 /
        Table I's synthetic row.
    tile_size:
        Tile edge of the kernel matrices (kept small enough that the
        tile grid has several tiles per dimension, so band/adaptive
        precision maps are non-trivial).
    n_diseases:
        Number of disease phenotypes simulated (the paper studies 5).
    """

    name: str
    n_individuals: int
    n_snps: int
    coalescent_individuals: int
    coalescent_snps: int
    tile_size: int
    n_diseases: int = 5

    def __post_init__(self) -> None:
        if self.n_individuals <= 0 or self.n_snps <= 0:
            raise ValueError("cohort dimensions must be positive")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")


SCALE_PRESETS: dict[str, ScalePreset] = {
    "tiny": ScalePreset(
        name="tiny", n_individuals=220, n_snps=48,
        coalescent_individuals=200, coalescent_snps=60,
        tile_size=44, n_diseases=2,
    ),
    "small": ScalePreset(
        name="small", n_individuals=500, n_snps=64,
        coalescent_individuals=400, coalescent_snps=80,
        tile_size=64, n_diseases=3,
    ),
    "medium": ScalePreset(
        name="medium", n_individuals=800, n_snps=64,
        coalescent_individuals=700, coalescent_snps=96,
        tile_size=80, n_diseases=5,
    ),
    "large": ScalePreset(
        name="large", n_individuals=1400, n_snps=96,
        coalescent_individuals=1200, coalescent_snps=128,
        tile_size=128, n_diseases=5,
    ),
}


def get_scale(scale: str | ScalePreset) -> ScalePreset:
    """Resolve a preset by name (or pass a preset through)."""
    if isinstance(scale, ScalePreset):
        return scale
    key = scale.lower()
    if key not in SCALE_PRESETS:
        raise ValueError(f"unknown scale {scale!r}; available: {sorted(SCALE_PRESETS)}")
    return SCALE_PRESETS[key]
