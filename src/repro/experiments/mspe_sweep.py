"""Figs. 5 and 6 — MSPE comparisons across precision configurations.

Fig. 5 (per disease): FP32 ridge regression against the hand-tuned band
configurations (100/80/60/40/20/10% FP32, rest FP16), the adaptive
FP32/FP16 RR, and the adaptive FP32/FP16 KRR.  Expected shape:

* band configurations down to 20% FP32 match the FP32 MSPE,
* the most constricted band configuration *deteriorates*,
* adaptive RR matches FP32 RR, and
* adaptive KRR achieves a clearly lower MSPE than every RR variant.

Scale note: at the paper's dimensions (245K training patients) the
Gram-matrix entries overflow/erode FP16 once 90% of the bands drop to
FP16, which is the deterioration Fig. 5 shows.  At the scaled-down
cohort sizes used here FP16 is effectively exact for the RR system, so
the sweep additionally includes a ``10(FP32):90(FP8_E4M3)`` band
configuration — the scaled-down analogue of "one precision level below
what the data needs" — which reproduces the deterioration trend; see
EXPERIMENTS.md.

Fig. 6: the same KRR comparison on msprime-like (coalescent) cohorts
with the FP8 floor available on GH200 — FP8 KRR is slightly worse than
FP16 KRR but still better than FP16 RR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.coalescent import simulate_coalescent_genotypes
from repro.data.dataset import GWASDataset
from repro.data.phenotypes import simulate_phenotypes
from repro.data.ukb import make_ukb_like_cohort
from repro.experiments.scale import ScalePreset, get_scale
from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig
from repro.gwas.workflow import GWASWorkflow
from repro.precision.formats import Precision

__all__ = ["MSPESweepResult", "run_mspe_sweep", "run_mspe_fp8"]

#: The paper's Fig. 5 band configurations (fraction of FP32 bands).
BAND_FRACTIONS: tuple[float, ...] = (1.0, 0.8, 0.6, 0.4, 0.2, 0.1)


@dataclass
class MSPESweepResult:
    """MSPE per (disease, configuration) plus the configuration order."""

    configurations: list[str]
    mspe: dict[str, dict[str, float]] = field(default_factory=dict)
    pearson: dict[str, dict[str, float]] = field(default_factory=dict)

    def rows(self) -> list[dict[str, object]]:
        """One row per disease, one column per configuration (for printing)."""
        out = []
        for disease, values in self.mspe.items():
            row: dict[str, object] = {"phenotype": disease}
            row.update({cfg: values[cfg] for cfg in self.configurations})
            out.append(row)
        return out

    def config_mspe(self, configuration: str) -> dict[str, float]:
        return {d: v[configuration] for d, v in self.mspe.items()}


def run_mspe_sweep(scale: str | ScalePreset = "small",
                   diseases: tuple[str, ...] | None = None,
                   rr_regularization: float = 10.0,
                   rr_tile_size: int = 8,
                   seed: int = 42) -> MSPESweepResult:
    """Fig. 5: MSPE of band-precision RR vs adaptive RR vs adaptive KRR.

    ``rr_tile_size`` is deliberately small so the feature-space Gram
    matrix has enough tile bands for the band configurations to differ.
    """
    preset = get_scale(scale)
    cohort = make_ukb_like_cohort(
        n_individuals=preset.n_individuals, n_snps=preset.n_snps, seed=seed,
    )
    if diseases is not None:
        idx = [cohort.phenotype_names.index(d) for d in diseases]
        cohort = GWASDataset(
            genotypes=cohort.genotypes,
            phenotypes=cohort.phenotypes[:, idx],
            confounders=cohort.confounders,
            phenotype_names=list(diseases),
            name=cohort.name,
        )
    else:
        keep = min(preset.n_diseases, cohort.n_phenotypes)
        cohort = GWASDataset(
            genotypes=cohort.genotypes,
            phenotypes=cohort.phenotypes[:, :keep],
            confounders=cohort.confounders,
            phenotype_names=cohort.phenotype_names[:keep],
            name=cohort.name,
        )

    workflow = GWASWorkflow(cohort, train_fraction=0.8, seed=0)

    configurations: list[str] = []
    result = MSPESweepResult(configurations=configurations)
    for name in cohort.phenotype_names:
        result.mspe[name] = {}
        result.pearson[name] = {}

    def record(label: str, wf_result) -> None:
        if label not in configurations:
            configurations.append(label)
        for name in cohort.phenotype_names:
            result.mspe[name][label] = wf_result.mspe(name)
            result.pearson[name][label] = wf_result.pearson(name)

    # --- band-precision RR configurations ("rainbow" baselines)
    for fraction in BAND_FRACTIONS:
        plan = (PrecisionPlan.fp32() if fraction >= 1.0
                else PrecisionPlan.band(fraction, low_precision=Precision.FP16))
        rr_cfg = RRConfig(tile_size=rr_tile_size, regularization=rr_regularization,
                          precision_plan=plan)
        record(plan.label(), workflow.run_rr(rr_cfg))

    # --- the over-constricted configuration (deterioration analogue)
    constricted = PrecisionPlan.band(0.1, low_precision=Precision.FP8_E4M3)
    record(constricted.label(), workflow.run_rr(
        RRConfig(tile_size=rr_tile_size, regularization=rr_regularization,
                 precision_plan=constricted)))

    # --- adaptive RR (FP32/FP16)
    adaptive_rr = RRConfig(tile_size=rr_tile_size, regularization=rr_regularization,
                           precision_plan=PrecisionPlan.adaptive_fp16())
    record("Adaptive RR FP32/FP16", workflow.run_rr(adaptive_rr))

    # --- adaptive KRR (FP32/FP16), the paper's method
    adaptive_krr = KRRConfig(tile_size=preset.tile_size,
                             precision_plan=PrecisionPlan.adaptive_fp16())
    record("Adaptive KRR FP32/FP16", workflow.run_krr(adaptive_krr))

    return result


@dataclass
class MSPEFP8Result:
    """Fig. 6 outcome: MSPE per configuration on coalescent cohorts."""

    sizes: list[tuple[int, int]]
    mspe: dict[str, list[float]] = field(default_factory=dict)

    def rows(self) -> list[dict[str, object]]:
        out = []
        for k, (n, ns) in enumerate(self.sizes):
            row: dict[str, object] = {"n_patients": n, "n_snps": ns}
            for cfg, series in self.mspe.items():
                row[cfg] = series[k]
            out.append(row)
        return out


def run_mspe_fp8(scale: str | ScalePreset = "small",
                 seed: int = 7) -> MSPEFP8Result:
    """Fig. 6: KRR-FP16 vs KRR-FP8 vs RR-FP16 MSPE on coalescent cohorts.

    The paper sweeps matrix sizes with ``NP = NS`` plus one
    ``NP = 300K, NS = 40K`` point; scaled down here to two cohort sizes
    derived from the preset.
    """
    preset = get_scale(scale)
    base_n = preset.coalescent_individuals
    base_s = preset.coalescent_snps
    sizes = [(max(base_n // 2, 120), max(base_s // 2, 40)), (base_n, base_s)]

    result = MSPEFP8Result(sizes=sizes)
    # sharper kernel bandwidth for coalescent (rare-variant-dominated) data;
    # see the note in repro.experiments.pearson.
    coalescent_gamma = 0.03
    configs = {
        "RR FP32/FP16": ("rr", PrecisionPlan.adaptive_fp16()),
        "KRR FP32/FP16": ("krr", PrecisionPlan.adaptive_fp16()),
        "KRR FP32/FP8": ("krr", PrecisionPlan.adaptive_fp8()),
    }
    for label in configs:
        result.mspe[label] = []

    rng = np.random.default_rng(seed)
    for n, ns in sizes:
        genotypes = simulate_coalescent_genotypes(
            n, ns, segment_snps=max(ns // 8, 5), seed=int(rng.integers(0, 2 ** 31 - 1)),
        )
        phenotypes = simulate_phenotypes(
            genotypes, n_phenotypes=1, n_causal=max(ns // 4, 8),
            n_epistatic_pairs=max(ns // 3, 10),
            heritability_additive=0.08, heritability_epistatic=0.77,
            seed=int(rng.integers(0, 2 ** 31 - 1)),
        )
        cohort = GWASDataset(genotypes=genotypes, phenotypes=phenotypes,
                             phenotype_names=["synthetic"], name="msprime-like")
        tile = max(min(preset.tile_size, n // 4), 16)
        workflow = GWASWorkflow(cohort, train_fraction=0.8, seed=0)
        for label, (method, plan) in configs.items():
            if method == "rr":
                res = workflow.run_rr(RRConfig(tile_size=tile, regularization=10.0,
                                               precision_plan=plan))
            else:
                res = workflow.run_krr(KRRConfig(tile_size=tile,
                                                 gamma=coalescent_gamma,
                                                 precision_plan=plan))
            result.mspe[label].append(res.mspe("synthetic"))
    return result
