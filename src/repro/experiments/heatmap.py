"""Fig. 4 — precision heatmaps of the kernel matrix tiles.

The experiment builds the training kernel matrix for a UK-BioBank-like
cohort, applies the tile-centric adaptive precision rule twice — once
with the FP16 floor of an A100 (Fig. 4a) and once with the FP8 floor of
a GH200 (Fig. 4b) — and reports the resulting per-tile precision grids.

Expected outcome (matching the paper): diagonal tiles stay at the
working precision (FP32), essentially all off-diagonal tiles drop to
the hardware floor (FP16 or FP8), and the matrix storage footprint
shrinks accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.ukb import make_ukb_like_cohort
from repro.distance.build import KernelBuilder
from repro.experiments.scale import ScalePreset, get_scale
from repro.gwas.config import KRRConfig
from repro.precision.formats import Precision
from repro.tiles.adaptive import (
    AdaptivePrecisionRule,
    PrecisionHeatmap,
    candidates_for_gpu,
    precision_heatmap,
)

__all__ = ["HeatmapExperiment", "run_precision_heatmaps"]


@dataclass
class HeatmapExperiment:
    """Result of the Fig. 4 experiment for one GPU floor."""

    gpu: str
    heatmap: PrecisionHeatmap
    footprint_bytes: int
    fp32_footprint_bytes: int

    @property
    def low_precision(self) -> Precision:
        return candidates_for_gpu(self.gpu)[0]

    @property
    def offdiagonal_low_fraction(self) -> float:
        """Fraction of off-diagonal tiles stored at the hardware floor."""
        grid = self.heatmap.grid
        nt = grid.shape[0]
        low = self.low_precision
        total = off = 0
        for i in range(nt):
            for j in range(nt):
                if i == j:
                    continue
                total += 1
                if grid[i, j] == low:
                    off += 1
        return off / total if total else 0.0

    @property
    def diagonal_working_fraction(self) -> float:
        """Fraction of diagonal tiles kept at the working precision."""
        grid = self.heatmap.grid
        nt = grid.shape[0]
        kept = sum(1 for i in range(nt) if grid[i, i] == Precision.FP32)
        return kept / nt if nt else 0.0

    @property
    def footprint_reduction(self) -> float:
        """Storage reduction factor vs an all-FP32 kernel matrix."""
        if self.footprint_bytes == 0:
            return 1.0
        return self.fp32_footprint_bytes / self.footprint_bytes


def run_precision_heatmaps(scale: str | ScalePreset = "small",
                           gpus: tuple[str, ...] = ("A100", "GH200"),
                           accuracy: float = 1e-3,
                           gamma: float = 0.08,
                           seed: int = 42) -> dict[str, HeatmapExperiment]:
    """Run the Fig. 4 experiment: one heatmap per GPU hardware floor.

    ``gamma`` defaults to a sharper bandwidth than the prediction
    experiments use: the paper's full-scale kernel matrices (γ = 0.01
    over 43K SNPs) are strongly diagonally dominant — off-diagonal
    entries are exponentially small because unrelated patients are far
    apart in genotype space — and that is precisely why the adaptive
    rule can drop every off-diagonal tile to FP16/FP8.  The sharper γ
    reproduces that structure at the scaled-down cohort size.
    """
    preset = get_scale(scale)
    cohort = make_ukb_like_cohort(
        n_individuals=preset.n_individuals, n_snps=preset.n_snps, seed=seed,
    )
    cfg = KRRConfig(tile_size=preset.tile_size, gamma=gamma)
    builder = KernelBuilder(
        gamma=cfg.effective_gamma(cohort.n_snps),
        tile_size=preset.tile_size,
        storage_precision=Precision.FP32,
    )
    build = builder.build_training(cohort.genotypes, cohort.confounders)
    kernel = build.kernel

    results: dict[str, HeatmapExperiment] = {}
    for gpu in gpus:
        rule = AdaptivePrecisionRule(
            accuracy=accuracy,
            candidates=candidates_for_gpu(gpu),
            working_precision=Precision.FP32,
        )
        heatmap = precision_heatmap(kernel, rule)
        adaptive = kernel.copy()
        adaptive.apply_precision_map({
            (i, j): heatmap.grid[i, j]
            for i in range(heatmap.grid.shape[0])
            for j in range(heatmap.grid.shape[1])
            if (i, j) in dict.fromkeys(
                adaptive.layout.iter_lower_tiles() if adaptive.symmetric
                else adaptive.layout.iter_tiles())
        })
        fp32_copy = kernel.copy()
        fp32_copy.apply_precision_map(Precision.FP32)
        results[gpu] = HeatmapExperiment(
            gpu=gpu,
            heatmap=heatmap,
            footprint_bytes=adaptive.nbytes(),
            fp32_footprint_bytes=fp32_copy.nbytes(),
        )
    return results
