"""Figs. 7–14 — performance figures from the machine model.

Each driver returns the series the corresponding figure plots.  The
paper's exact matrix sizes and GPU counts are used (these experiments
evaluate the analytic model of :mod:`repro.perfmodel`, not the emulated
numerics, so the paper's dimensions are affordable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.compare import regenie_comparison, system_comparison
from repro.perfmodel.scaling import (
    MachineModel,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.precision.formats import Precision

__all__ = [
    "run_fig07_build_scaling",
    "run_fig08_to_10_associate",
    "run_fig11_12_efficiency",
    "run_fig13_krr_weak_scaling",
    "run_fig14_breakdown",
    "run_fig14e_systems",
]

#: GPU counts used in Figs. 7 and 11–13.
GPU_SWEEP = [256, 512, 1024, 2048, 4096]

#: Matrix sizes (order N) of the Associate scaling plots, per system and
#: node count, as given in Figs. 8–10 of the paper.
ASSOCIATE_MATRIX_SIZES = {
    ("Summit", 1024): [1_048_576, 2_097_152, 3_145_728, 4_194_304, 5_242_880, 6_291_456],
    ("Leonardo", 1024): [2_097_152, 4_194_304, 6_291_456, 8_388_608],
    ("Alps", 1024): [5_242_880, 7_864_320, 10_485_760, 12_255_232],
}

#: Precision mixes plotted per system (working precision, low precision).
ASSOCIATE_PRECISION_MIXES = {
    "Summit": [("FP64", "FP64"), ("FP64", "FP32"), ("FP64", "FP16")],
    "Leonardo": [("FP64", "FP32"), ("FP64", "FP16")],
    "Alps": [("FP32", "FP32"), ("FP32", "FP16"), ("FP32", "FP8_E4M3")],
}


@dataclass
class FigureSeries:
    """A named series of (x, y) points plus free-form metadata."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)

    def as_rows(self, x_label: str = "x", y_label: str = "y") -> list[dict[str, object]]:
        return [{x_label: xi, y_label: yi, "series": self.name}
                for xi, yi in zip(self.x, self.y)]


# ----------------------------------------------------------------------
# Fig. 7 — Build phase weak scaling on Alps
# ----------------------------------------------------------------------
def run_fig07_build_scaling(gpu_counts: list[int] | None = None) -> FigureSeries:
    """Build-phase weak scaling on Alps (INT8 distance SYRK)."""
    gpu_counts = gpu_counts or GPU_SWEEP
    model = MachineModel(system="Alps")
    points = weak_scaling_series(model, gpu_counts, phase="build", snp_ratio=1.0)
    series = FigureSeries(name="Build (INT8) on Alps")
    for p in points:
        series.x.append(p.n_gpus)
        series.y.append(p.throughput / 1e15)
    series.meta["speedup"] = points[-1].throughput / points[0].throughput
    series.meta["parallel_efficiency"] = series.meta["speedup"] / (
        gpu_counts[-1] / gpu_counts[0])
    return series


# ----------------------------------------------------------------------
# Figs. 8–10 — Associate phase across GPU generations
# ----------------------------------------------------------------------
def run_fig08_to_10_associate(system: str = "Alps",
                              n_gpus: int = 4096,
                              matrix_sizes: list[int] | None = None
                              ) -> dict[str, FigureSeries]:
    """Associate-phase throughput vs matrix size for one system.

    ``system`` selects the figure: Summit → Fig. 8, Leonardo → Fig. 9,
    Alps → Fig. 10.  Returns one series per precision mix.
    """
    sizes = matrix_sizes or ASSOCIATE_MATRIX_SIZES.get((system, 1024))
    if sizes is None:
        raise ValueError(f"no default matrix sizes for system {system!r}")
    mixes = ASSOCIATE_PRECISION_MIXES[system]
    model = MachineModel(system=system)
    out: dict[str, FigureSeries] = {}
    for work, low in mixes:
        label = f"{work}/{low}" if work != low else work
        series = FigureSeries(name=label)
        for n in sizes:
            est = model.associate_estimate(
                n, n_gpus,
                low_precision=Precision.from_string(low),
                working_precision=Precision.from_string(work),
            )
            series.x.append(n)
            series.y.append(est.throughput / 1e15)
        out[label] = series
    return out


# ----------------------------------------------------------------------
# Figs. 11–12 — weak/strong scaling efficiency per GPU
# ----------------------------------------------------------------------
def run_fig11_12_efficiency(system: str = "Alps",
                            gpu_counts: list[int] | None = None,
                            strong_matrix_size: int | None = None
                            ) -> dict[str, dict[str, FigureSeries]]:
    """Per-GPU weak and strong scaling of the Associate phase.

    Leonardo → Fig. 11, Alps → Fig. 12.  Returns
    ``{"weak": {...}, "strong": {...}}`` with one series per precision
    mix; the y-values are parallel efficiencies.
    """
    gpu_counts = gpu_counts or GPU_SWEEP
    strong_counts = [c for c in gpu_counts if c >= 1024] or gpu_counts
    mixes = ASSOCIATE_PRECISION_MIXES[system]
    model = MachineModel(system=system)
    if strong_matrix_size is None:
        strong_matrix_size = model.matrix_size_for_memory(strong_counts[0])

    out: dict[str, dict[str, FigureSeries]] = {"weak": {}, "strong": {}}
    for work, low in mixes:
        label = f"{work}/{low}" if work != low else work
        low_p = Precision.from_string(low)
        work_p = Precision.from_string(work)

        weak = weak_scaling_series(model, gpu_counts, phase="associate",
                                   low_precision=low_p, working_precision=work_p)
        s_weak = FigureSeries(name=label)
        for p in weak:
            s_weak.x.append(p.n_gpus)
            s_weak.y.append(p.efficiency)
            s_weak.meta.setdefault("per_gpu_tflops", []).append(
                p.throughput / p.n_gpus / 1e12)
        out["weak"][label] = s_weak

        strong = strong_scaling_series(model, strong_counts, strong_matrix_size,
                                       phase="associate", low_precision=low_p,
                                       working_precision=work_p)
        s_strong = FigureSeries(name=label)
        for p in strong:
            s_strong.x.append(p.n_gpus)
            s_strong.y.append(p.efficiency)
        out["strong"][label] = s_strong
    return out


# ----------------------------------------------------------------------
# Fig. 13 — end-to-end KRR weak scaling vs NS/NP ratio
# ----------------------------------------------------------------------
def run_fig13_krr_weak_scaling(low_precision: str = "FP16",
                               gpu_counts: list[int] | None = None,
                               snp_ratios: tuple[int, ...] = (1, 2, 3, 4, 5)
                               ) -> dict[int, FigureSeries]:
    """KRR (Build + Associate) weak scaling on Alps for NS = NP · ratio."""
    gpu_counts = gpu_counts or GPU_SWEEP
    model = MachineModel(system="Alps")
    out: dict[int, FigureSeries] = {}
    for ratio in snp_ratios:
        series = FigureSeries(name=f"NS = NP * {ratio}")
        points = weak_scaling_series(model, gpu_counts, phase="krr",
                                     low_precision=Precision.from_string(low_precision),
                                     snp_ratio=float(ratio))
        for p in points:
            series.x.append(p.n_gpus)
            series.y.append(p.throughput / 1e15)
        out[ratio] = series
    return out


# ----------------------------------------------------------------------
# Fig. 14a–d — large-scale phase breakdown on Alps
# ----------------------------------------------------------------------
def run_fig14_breakdown(node_counts: tuple[int, ...] = (1024, 1296, 1600, 1936),
                        gpus_per_node: int = 4,
                        snp_ratio: float = 1.0) -> dict[int, list[dict[str, float]]]:
    """Build/Associate/KRR throughput per matrix size and node count."""
    model = MachineModel(system="Alps")
    out: dict[int, list[dict[str, float]]] = {}
    for nodes in node_counts:
        n_gpus = nodes * gpus_per_node
        n_max = model.matrix_size_for_memory(n_gpus)
        sizes = [int(n_max * f) for f in (0.3, 0.6, 0.9, 1.0)]
        rows = []
        for n in sizes:
            est = model.krr_estimate(n, int(snp_ratio * n), n_gpus,
                                     low_precision=Precision.FP8_E4M3)
            rows.append({
                "matrix_size": float(n),
                "build_pflops": est["build"].throughput / 1e15,
                "associate_pflops": est["associate"].throughput / 1e15,
                "krr_pflops": est["krr"].throughput / 1e15,
            })
        out[nodes] = rows
    return out


# ----------------------------------------------------------------------
# Fig. 14e — cross-system comparison + REGENIE headroom
# ----------------------------------------------------------------------
def run_fig14e_systems() -> dict[str, object]:
    """Across-system comparison plus the REGENIE five-orders-of-magnitude ratio."""
    rows = [r.as_dict() for r in system_comparison()]
    alps_krr = next(r for r in rows if r["system"] == "Alps")["krr_pflops"]
    comparison = regenie_comparison(krr_throughput=float(alps_krr) * 1e15)
    return {
        "systems": rows,
        "alps_krr_exaops": float(alps_krr) / 1000.0,
        "regenie_speedup": comparison.speedup,
        "regenie_orders_of_magnitude": comparison.orders_of_magnitude,
    }
