"""Table I — Pearson correlations: RR vs KRR per phenotype.

For each of the five UK-BioBank-like diseases the experiment reports
the Pearson correlation between held-out ground truth and predictions
under

* RR with the FP32/FP16 adaptive plan (the paper's "RR-FP16" column),
* KRR with the FP32/FP16 adaptive plan ("KRR-FP16"), and
* — for the synthetic msprime-like cohort only, as in the paper —
  KRR with the FP32/FP8 adaptive plan ("KRR-FP8").

Expected shape: KRR correlations are substantially higher than RR for
every phenotype, and KRR-FP8 on the synthetic cohort sits between
RR-FP16 and KRR-FP16.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.coalescent import simulate_coalescent_genotypes
from repro.data.dataset import GWASDataset
from repro.data.phenotypes import simulate_phenotypes
from repro.data.ukb import make_ukb_like_cohort
from repro.experiments.scale import ScalePreset, get_scale
from repro.gwas.config import KRRConfig, PrecisionPlan, RRConfig
from repro.gwas.workflow import GWASWorkflow

__all__ = ["PearsonTable", "run_pearson_table"]


@dataclass
class PearsonTable:
    """Table I analogue: one row per phenotype."""

    rr_fp16: dict[str, float] = field(default_factory=dict)
    krr_fp16: dict[str, float] = field(default_factory=dict)
    krr_fp8: dict[str, float | None] = field(default_factory=dict)

    def rows(self) -> list[dict[str, object]]:
        out = []
        for name in self.rr_fp16:
            fp8 = self.krr_fp8.get(name)
            out.append({
                "phenotype": name,
                "RR-FP16": self.rr_fp16[name],
                "KRR-FP16": self.krr_fp16[name],
                "KRR-FP8": "N/A" if fp8 is None else fp8,
            })
        return out

    def krr_advantage(self, phenotype: str) -> float:
        """Ratio KRR-FP16 / RR-FP16 (the "up to four times" of the paper)."""
        rr = self.rr_fp16[phenotype]
        if rr == 0:
            return float("inf")
        return self.krr_fp16[phenotype] / rr


def run_pearson_table(scale: str | ScalePreset = "small",
                      seed: int = 42) -> PearsonTable:
    """Run the Table I experiment at the given scale."""
    preset = get_scale(scale)
    table = PearsonTable()

    # ----- UK-BioBank-like diseases (RR-FP16 and KRR-FP16 columns)
    cohort = make_ukb_like_cohort(
        n_individuals=preset.n_individuals, n_snps=preset.n_snps, seed=seed,
    )
    keep = min(preset.n_diseases, cohort.n_phenotypes)
    cohort = GWASDataset(
        genotypes=cohort.genotypes,
        phenotypes=cohort.phenotypes[:, :keep],
        confounders=cohort.confounders,
        phenotype_names=cohort.phenotype_names[:keep],
        name=cohort.name,
    )
    workflow = GWASWorkflow(cohort, train_fraction=0.8, seed=0)
    rr_res = workflow.run_rr(RRConfig(tile_size=preset.tile_size, regularization=10.0,
                                      precision_plan=PrecisionPlan.adaptive_fp16()))
    krr_res = workflow.run_krr(KRRConfig(tile_size=preset.tile_size,
                                         precision_plan=PrecisionPlan.adaptive_fp16()))
    for name in cohort.phenotype_names:
        table.rr_fp16[name] = rr_res.pearson(name)
        table.krr_fp16[name] = krr_res.pearson(name)
        table.krr_fp8[name] = None  # UK BioBank cannot run on the FP8 system (license)

    # ----- synthetic msprime-like cohort (all three columns)
    rng = np.random.default_rng(seed + 1)
    genotypes = simulate_coalescent_genotypes(
        preset.coalescent_individuals, preset.coalescent_snps,
        segment_snps=max(preset.coalescent_snps // 8, 5),
        seed=int(rng.integers(0, 2 ** 31 - 1)),
    )
    phenotypes = simulate_phenotypes(
        genotypes, n_phenotypes=1,
        n_causal=max(preset.coalescent_snps // 4, 8),
        n_epistatic_pairs=max(preset.coalescent_snps // 3, 10),
        heritability_additive=0.08, heritability_epistatic=0.77,
        seed=int(rng.integers(0, 2 ** 31 - 1)),
    )
    synthetic = GWASDataset(genotypes=genotypes, phenotypes=phenotypes,
                            phenotype_names=["Synthetic [msprime]"],
                            name="msprime-like")
    tile = max(min(preset.tile_size, synthetic.n_individuals // 4), 16)
    syn_wf = GWASWorkflow(synthetic, train_fraction=0.8, seed=0)
    # Coalescent cohorts carry mostly rare variants, so pairwise distances
    # are small; a sharper bandwidth keeps the Gaussian kernel informative
    # (and diagonally dominant enough for the FP8 tile storage).
    coalescent_gamma = 0.03
    syn_rr = syn_wf.run_rr(RRConfig(tile_size=tile, regularization=10.0,
                                    precision_plan=PrecisionPlan.adaptive_fp16()))
    syn_krr16 = syn_wf.run_krr(KRRConfig(tile_size=tile, gamma=coalescent_gamma,
                                         precision_plan=PrecisionPlan.adaptive_fp16()))
    syn_krr8 = syn_wf.run_krr(KRRConfig(tile_size=tile, gamma=coalescent_gamma,
                                        precision_plan=PrecisionPlan.adaptive_fp8()))
    name = "Synthetic [msprime]"
    table.rr_fp16[name] = syn_rr.pearson(name)
    table.krr_fp16[name] = syn_krr16.pearson(name)
    table.krr_fp8[name] = syn_krr8.pearson(name)
    return table
