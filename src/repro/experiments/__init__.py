"""Experiment drivers — one per table/figure of the paper's evaluation.

==========================  ====================================================
Driver                      Paper artefact
==========================  ====================================================
``heatmap``                 Fig. 4 — precision heatmaps of the kernel matrix
``mspe_sweep``              Fig. 5 — MSPE: band RR configs vs adaptive RR vs KRR
``mspe_fp8``                Fig. 6 — MSPE with the FP8 floor on coalescent data
``pearson_table``           Table I — Pearson correlations RR vs KRR (FP16/FP8)
``perf_figures``            Figs. 7–14 — Build/Associate/KRR performance model
==========================  ====================================================

Every driver accepts a :class:`~repro.experiments.scale.ScalePreset`
(``small`` for CI, ``medium`` for more faithful accuracy numbers) and
returns plain dictionaries / dataclasses that the benchmark harness
prints as the same rows/series the paper reports.
"""

from repro.experiments.scale import SCALE_PRESETS, ScalePreset, get_scale
from repro.experiments.heatmap import run_precision_heatmaps
from repro.experiments.mspe_sweep import run_mspe_sweep, run_mspe_fp8
from repro.experiments.pearson import run_pearson_table
from repro.experiments.perf_figures import (
    run_fig07_build_scaling,
    run_fig08_to_10_associate,
    run_fig11_12_efficiency,
    run_fig13_krr_weak_scaling,
    run_fig14_breakdown,
    run_fig14e_systems,
)
from repro.experiments.report import format_table

__all__ = [
    "ScalePreset",
    "SCALE_PRESETS",
    "get_scale",
    "run_precision_heatmaps",
    "run_mspe_sweep",
    "run_mspe_fp8",
    "run_pearson_table",
    "run_fig07_build_scaling",
    "run_fig08_to_10_associate",
    "run_fig11_12_efficiency",
    "run_fig13_krr_weak_scaling",
    "run_fig14_breakdown",
    "run_fig14e_systems",
    "format_table",
]
