"""Plain-text table formatting shared by the experiment drivers.

The benchmark harness prints the same rows/series the paper reports;
``format_table`` renders a list of dictionaries as an aligned text
table so the output is readable in the pytest/benchmark logs and in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_table", "format_value"]


def format_value(value: object, precision: int = 4) -> str:
    """Render one cell: floats get a fixed precision, the rest ``str()``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(rows: Iterable[Mapping[str, object]],
                 columns: list[str] | None = None,
                 precision: int = 4) -> str:
    """Format a sequence of dict rows as an aligned text table.

    Parameters
    ----------
    rows:
        Row dictionaries; all values are rendered with
        :func:`format_value`.
    columns:
        Column order; defaults to the keys of the first row.
    precision:
        Significant digits for floats.
    """
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    rendered = [[format_value(row.get(col, ""), precision) for col in columns]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]

    def fmt_line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [fmt_line(list(columns)), fmt_line(["-" * w for w in widths])]
    lines.extend(fmt_line(r) for r in rendered)
    return "\n".join(lines)
