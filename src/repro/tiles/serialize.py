"""Mixed-precision (de)serialization of tiles and tile matrices.

The fitted-model artifacts persist the Cholesky factor exactly as the
session holds it in memory: a :class:`~repro.tiles.matrix.TileMatrix`
whose tiles each carry their own storage precision.  Two properties
drive the on-disk format:

* **Native bytes per tile.**  Each tile is written in the byte width of
  its declared precision — 8/4/2 bytes per element for FP64/FP32/FP16,
  2 bytes for BF16 (the upper half of the float32 bit pattern) and
  **1 byte** for the FP8 formats, which NumPy cannot represent natively
  and which are therefore encoded to their E4M3/E5M2 bit codes.  An
  adaptive-FP8 model's artifact is consequently about 4x smaller than
  the same model under a uniform FP32 plan — the on-disk footprint
  mirrors the in-memory precision mosaic the paper's Fig. 4 shows.

* **Bitwise round-trips.**  Tile payloads are *already quantized* to
  their precision's value grid (see :class:`~repro.tiles.tile.Tile`),
  so encoding to native bytes loses nothing: ``decode(encode(x)) == x``
  exactly, element for element, including NaNs.  A loaded model
  therefore predicts bit-for-bit identically to the session that
  exported it.

The module offers three layers:

``encode_payload`` / ``decode_payload``
    Array-level codec between the in-memory representation (the dtype
    :class:`~repro.precision.formats.FormatSpec` stores values in) and
    the native on-disk array.
``pack_tile_matrix`` / ``unpack_tile_matrix``
    Flatten a ``TileMatrix`` into a dict of named arrays plus a JSON
    metadata blob, for embedding into a larger ``.npz`` archive (the
    fitted-model artifact packs the factor alongside the weight panel).
``save_tile_matrix`` / ``load_tile_matrix``
    One-call file round-trip of a single ``TileMatrix``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.precision.formats import Precision
from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TileMatrix
from repro.tiles.tile import Tile

__all__ = [
    "encode_payload",
    "decode_payload",
    "encode_fp8",
    "decode_fp8",
    "pack_tile_matrix",
    "unpack_tile_matrix",
    "save_tile_matrix",
    "load_tile_matrix",
    "meta_to_array",
    "meta_from_array",
    "write_archive",
    "resolve_archive_path",
]

#: Archive format marker, bumped on incompatible layout changes.
FORMAT_VERSION = 1

# (mantissa_bits, exponent_bits, exponent_bias, min_normal_exponent)
_FP8_CODEC_PARAMS = {
    Precision.FP8_E4M3: (3, 4, 7, -6),
    Precision.FP8_E5M2: (2, 5, 15, -14),
}


# ----------------------------------------------------------------------
# FP8 bit codec
# ----------------------------------------------------------------------
def encode_fp8(values: np.ndarray,
               variant: Precision = Precision.FP8_E4M3) -> np.ndarray:
    """Encode FP8-grid float values to their 1-byte bit codes.

    ``values`` must already lie on the FP8 value grid (the invariant
    every FP8 tile payload satisfies); grid membership is what makes
    the encoding exact.  NaNs map to the format's NaN encoding.
    """
    if variant not in _FP8_CODEC_PARAMS:
        raise ValueError(f"{variant} is not an FP8 format")
    mbits, ebits, bias, min_normal_exp = _FP8_CODEC_PARAMS[variant]
    x = np.asarray(values, dtype=np.float64)
    if np.any(np.isinf(x)):
        # quantize_fp8 saturates infinities to +-max_finite, so an inf
        # here means unquantized input; encoding it as 0 (or as the
        # E5M2 reserved inf pattern) would corrupt silently
        raise ValueError(
            f"infinite value is not on the {variant.value} grid; quantize "
            "before encoding")
    codes = np.zeros(x.shape, dtype=np.uint8)

    sign = np.signbit(x)
    nan = np.isnan(x)
    v = np.abs(x)
    nonzero = np.isfinite(x) & (v > 0.0)
    subnormal = nonzero & (v < 2.0 ** min_normal_exp)
    normal = nonzero & ~subnormal

    if np.any(subnormal):
        # spacing below the normal range is 2**(min_normal_exp - mbits)
        mant = np.rint(v[subnormal] * 2.0 ** (mbits - min_normal_exp))
        codes[subnormal] = mant.astype(np.uint8)

    if np.any(normal):
        frac, exp2 = np.frexp(v[normal])          # v = frac * 2**exp2, frac in [0.5, 1)
        exp = exp2.astype(np.int64) - 1
        mant = np.rint((frac * 2.0 - 1.0) * (1 << mbits)).astype(np.int64)
        carry = mant >> mbits                      # defensive: off-grid inputs
        exp = exp + carry
        mant = mant & ((1 << mbits) - 1)
        field = exp + bias
        max_field = (1 << ebits) - 1
        if variant is Precision.FP8_E5M2:
            # exponent field 31 is reserved for inf/NaN in E5M2
            max_field -= 1
        if np.any(field < 0) or np.any(field > max_field):
            raise ValueError(
                f"value outside the {variant.value} range; quantize before "
                "encoding")
        if variant is Precision.FP8_E4M3 and np.any(
                (field == max_field) & (mant == (1 << mbits) - 1)):
            # S.1111.111 is E4M3's NaN: a finite value rounding there
            # (e.g. 480) is off-grid, not representable
            raise ValueError(
                f"value outside the {variant.value} range; quantize before "
                "encoding")
        codes[normal] = ((field << mbits) | mant).astype(np.uint8)

    if np.any(nan):
        # E4M3: S.1111.111; E5M2: S.11111.01 (a quiet-NaN pattern)
        nan_code = (((1 << ebits) - 1) << mbits) | ((1 << mbits) - 1) \
            if variant is Precision.FP8_E4M3 else \
            ((((1 << ebits) - 1) << mbits) | 0b01)
        codes[nan] = nan_code

    codes[sign & ~nan] |= np.uint8(0x80)
    return codes


def decode_fp8(codes: np.ndarray,
               variant: Precision = Precision.FP8_E4M3) -> np.ndarray:
    """Decode FP8 bit codes back to the float32 grid representation."""
    if variant not in _FP8_CODEC_PARAMS:
        raise ValueError(f"{variant} is not an FP8 format")
    mbits, ebits, bias, min_normal_exp = _FP8_CODEC_PARAMS[variant]
    c = np.asarray(codes, dtype=np.uint8)
    sign = np.where((c & 0x80) != 0, -1.0, 1.0)
    field = ((c >> mbits) & ((1 << ebits) - 1)).astype(np.int64)
    mant = (c & ((1 << mbits) - 1)).astype(np.float64)

    sub = field == 0
    out = np.empty(c.shape, dtype=np.float64)
    out[sub] = mant[sub] * 2.0 ** (min_normal_exp - mbits)
    norm = ~sub
    out[norm] = (1.0 + mant[norm] / (1 << mbits)) * np.exp2(
        (field[norm] - bias).astype(np.float64))

    if variant is Precision.FP8_E4M3:
        # exponent field 15 with mantissa 0b111 is the only NaN pattern
        nan = (field == (1 << ebits) - 1) & (mant == (1 << mbits) - 1)
    else:
        # E5M2 reserves exponent 31: mantissa 0 is inf, otherwise NaN
        reserved = field == (1 << ebits) - 1
        out[reserved & (mant == 0)] = np.inf
        nan = reserved & (mant != 0)
    out[nan] = np.nan
    return (sign * out).astype(np.float32)


# ----------------------------------------------------------------------
# per-precision payload codec
# ----------------------------------------------------------------------
def encode_payload(data: np.ndarray, precision: Precision | str) -> np.ndarray:
    """Convert an in-memory tile payload to its native on-disk array.

    The result's itemsize equals ``precision.bytes_per_element``, so the
    serialized artifact's footprint reflects the precision mosaic.
    """
    precision = Precision.from_string(precision)
    if precision is Precision.FP64:
        return np.asarray(data, dtype=np.float64)
    if precision is Precision.FP32:
        return np.asarray(data, dtype=np.float32)
    if precision is Precision.FP16:
        return np.asarray(data, dtype=np.float16)
    if precision is Precision.BF16:
        # bf16 payloads live in float32 with a zero lower half: keep the
        # upper 16 bits of the bit pattern
        x32 = np.ascontiguousarray(data, dtype=np.float32)
        return (x32.view(np.uint32) >> np.uint32(16)).astype(np.uint16)
    if precision in (Precision.FP8_E4M3, Precision.FP8_E5M2):
        return encode_fp8(np.asarray(data, dtype=np.float32), precision)
    if precision is Precision.INT8:
        return np.asarray(data, dtype=np.int8)
    if precision is Precision.INT32:
        return np.asarray(data, dtype=np.int32)
    raise ValueError(f"unsupported precision {precision}")


def decode_payload(raw: np.ndarray, precision: Precision | str) -> np.ndarray:
    """Invert :func:`encode_payload` back to the in-memory representation."""
    precision = Precision.from_string(precision)
    if precision is Precision.FP64:
        return np.asarray(raw, dtype=np.float64)
    if precision is Precision.FP32:
        return np.asarray(raw, dtype=np.float32)
    if precision is Precision.FP16:
        return np.asarray(raw, dtype=np.float16)
    if precision is Precision.BF16:
        u32 = np.ascontiguousarray(raw, dtype=np.uint16).astype(np.uint32)
        return (u32 << np.uint32(16)).view(np.float32)
    if precision in (Precision.FP8_E4M3, Precision.FP8_E5M2):
        return decode_fp8(raw, precision)
    if precision is Precision.INT8:
        return np.asarray(raw, dtype=np.int8)
    if precision is Precision.INT32:
        return np.asarray(raw, dtype=np.int32)
    raise ValueError(f"unsupported precision {precision}")


# ----------------------------------------------------------------------
# archive plumbing shared with the fitted-model artifacts
# ----------------------------------------------------------------------
def meta_to_array(meta: dict) -> np.ndarray:
    """JSON metadata as a uint8 array (``.npz`` archives hold arrays only)."""
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def meta_from_array(arr: np.ndarray) -> dict:
    """Inverse of :func:`meta_to_array`."""
    return json.loads(bytes(np.asarray(arr, dtype=np.uint8).tobytes())
                      .decode("utf-8"))


def write_archive(path: str | Path, arrays: dict[str, np.ndarray],
                  compress: bool = False) -> Path:
    """Write named arrays to an ``.npz`` file (suffix appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    saver = np.savez_compressed if compress else np.savez
    saver(path, **arrays)
    return path


def resolve_archive_path(path: str | Path) -> Path:
    """Resolve a possibly suffix-less archive path for loading."""
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        return path.with_suffix(".npz")
    return path


# ----------------------------------------------------------------------
# TileMatrix <-> named-array dict
# ----------------------------------------------------------------------


def pack_tile_matrix(matrix: TileMatrix, prefix: str = "",
                     lower_only: bool = False) -> dict[str, np.ndarray]:
    """Flatten a ``TileMatrix`` into named arrays for an ``.npz`` archive.

    Returns ``{f"{prefix}meta": <json bytes>, f"{prefix}t{i}_{j}": raw}``
    with one natively-encoded array per *stored* tile (symmetric
    matrices persist only the lower triangle; unmaterialized tiles —
    implicit zeros — are skipped entirely).

    ``lower_only`` additionally drops strictly-upper tiles of a
    non-symmetric matrix: triangular factors are lower by contract, but
    the factorization workspace may have materialized upper tiles as
    zeros, and persisting those would double a factor artifact's size.
    Skipped tiles read back as implicit zeros.
    """
    tiles_meta = []
    arrays: dict[str, np.ndarray] = {}
    for (i, j) in matrix._iter_stored():
        if lower_only and j > i:
            continue  # zero by the (lower-)triangular contract
        if not matrix.has_tile_data(i, j):
            continue  # implicit zero tile: nothing to store
        # get_tile faults spilled tiles of a store-backed matrix back in
        # one at a time (bitwise), so packing stays under the budget
        tile = matrix.get_tile(i, j)
        key = f"{prefix}t{i}_{j}"
        arrays[key] = encode_payload(tile.data, tile.precision)
        tiles_meta.append({"i": i, "j": j, "precision": tile.precision.value})
    meta = {
        "format_version": FORMAT_VERSION,
        "rows": matrix.layout.rows,
        "cols": matrix.layout.cols,
        "tile_size": matrix.layout.tile_size,
        "symmetric": matrix.symmetric,
        "default_precision": matrix.default_precision.value,
        "tiles": tiles_meta,
    }
    arrays[f"{prefix}meta"] = meta_to_array(meta)
    return arrays


def unpack_tile_matrix(arrays, prefix: str = "", store=None) -> TileMatrix:
    """Rebuild a ``TileMatrix`` from :func:`pack_tile_matrix` arrays.

    ``arrays`` is any mapping from names to arrays — a plain dict or an
    open ``numpy.lib.npyio.NpzFile``.

    With ``store`` (a :class:`~repro.store.TileStore`) the matrix comes
    back **store-backed and fully spilled**: each tile's native bytes
    stream from the archive straight into a spill segment without ever
    being resident, and fault in lazily on first access.  Opening a
    large artifact this way costs near-zero resident tile bytes — the
    serving registry's budget then reflects what is actually in memory.
    """
    meta = meta_from_array(arrays[f"{prefix}meta"])
    if meta.get("format_version", 0) > FORMAT_VERSION:
        raise ValueError(
            f"tile archive written by a newer format "
            f"(version {meta['format_version']} > {FORMAT_VERSION})")
    layout = TileLayout(rows=int(meta["rows"]), cols=int(meta["cols"]),
                        tile_size=int(meta["tile_size"]))
    out = TileMatrix(layout,
                     precision=Precision.from_string(meta["default_precision"]),
                     symmetric=bool(meta["symmetric"]))
    if store is not None:
        out.attach_store(store)
    for entry in meta["tiles"]:
        i, j = int(entry["i"]), int(entry["j"])
        precision = Precision.from_string(entry["precision"])
        raw = arrays[f"{prefix}t{i}_{j}"]
        if store is not None:
            # NpzFile members load lazily, so peak memory here is one
            # encoded tile; the bytes land spilled, not resident
            out._binding.adopt((i, j), raw, precision)
            continue
        payload = decode_payload(raw, precision)
        out._tiles[(i, j)] = Tile(payload, precision=precision, coords=(i, j))
    return out


# ----------------------------------------------------------------------
# file round-trip
# ----------------------------------------------------------------------
def save_tile_matrix(matrix: TileMatrix, path: str | Path,
                     compress: bool = False) -> Path:
    """Write a ``TileMatrix`` to ``path`` (``.npz`` appended if missing).

    ``compress`` trades write/read time for size; the default stores
    raw native bytes so the file size reports the precision mosaic's
    true footprint.
    """
    return write_archive(path, pack_tile_matrix(matrix), compress=compress)


def load_tile_matrix(path: str | Path, store=None) -> TileMatrix:
    """Load a ``TileMatrix`` written by :func:`save_tile_matrix`.

    ``store`` opens the matrix store-backed and fully spilled (see
    :func:`unpack_tile_matrix`).
    """
    with np.load(resolve_archive_path(path), allow_pickle=False) as archive:
        return unpack_tile_matrix(archive, store=store)
