"""Low-rank compression of off-diagonal tiles (the paper's outlook).

The paper's Implications section notes that beyond the mixed-precision
mosaic, "additional and potentially even greater data sparsity may be
available from exploiting the smoothness of matrix tiles in the form of
low-rank replacements of dense tiles", citing the HSS-based KRR of
Chavez et al. and the ExaGeoStat Gordon Bell finalist that combined
mixed precision with low rank under the same PaRSEC runtime.

This module implements that extension at tile granularity:

* :class:`LowRankTile` — a rank-``k`` factorization ``U @ V.T`` of one
  tile, produced by a truncated SVD with either a fixed rank or a
  relative Frobenius-norm tolerance, with the factors stored at a
  chosen precision.
* :func:`compress_tile` / :func:`compressible_rank` — the per-tile
  compression decision.
* :class:`TLRMatrix` — a tile-low-rank (TLR) view of a symmetric
  matrix: diagonal tiles stay dense (at the working precision),
  off-diagonal tiles are replaced by low-rank factors whenever that
  saves storage at the requested accuracy.

The compression composes with the precision mosaic: the ``U``/``V``
factors themselves are quantized (FP32 by default, FP16 optionally),
so the footprint accounting reflects both sources of compression —
exactly the synergy the paper proposes to explore.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.precision.formats import Precision
from repro.precision.quantize import quantize, storage_bytes
from repro.tiles.layout import TileLayout

__all__ = ["LowRankTile", "compress_tile", "compressible_rank", "TLRMatrix"]


@dataclass
class LowRankTile:
    """A rank-``k`` representation ``U @ V.T`` of one matrix tile.

    Attributes
    ----------
    u, v:
        Factors of shape ``(m, k)`` and ``(n, k)``; stored quantized to
        ``precision``.
    precision:
        Storage precision of the factors.
    original_shape:
        Shape of the dense tile this factorization replaces.
    """

    u: np.ndarray
    v: np.ndarray
    precision: Precision = Precision.FP32
    original_shape: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        self.u = quantize(np.asarray(self.u), self.precision)
        self.v = quantize(np.asarray(self.v), self.precision)
        if self.u.shape[1] != self.v.shape[1]:
            raise ValueError("U and V must share the rank dimension")
        if self.original_shape is None:
            self.original_shape = (self.u.shape[0], self.v.shape[0])

    @property
    def rank(self) -> int:
        return int(self.u.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return self.original_shape

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense tile (float64)."""
        return np.asarray(self.u, dtype=np.float64) @ \
            np.asarray(self.v, dtype=np.float64).T

    def nbytes(self) -> int:
        """Storage footprint of the factors."""
        return (storage_bytes(self.u.shape, self.precision)
                + storage_bytes(self.v.shape, self.precision))

    def compression_ratio(self) -> float:
        """Dense-FP32 bytes divided by the factor bytes (>1 means smaller)."""
        dense = storage_bytes(self.original_shape, Precision.FP32)
        own = self.nbytes()
        return dense / own if own else float("inf")


def compressible_rank(tile: np.ndarray, tolerance: float) -> int:
    """Numerical rank of ``tile`` at a relative Frobenius tolerance.

    Smallest ``k`` such that the best rank-``k`` approximation satisfies
    ``||A - A_k||_F <= tolerance * ||A||_F``.
    """
    tile = np.asarray(tile, dtype=np.float64)
    if tile.size == 0:
        return 0
    s = np.linalg.svd(tile, compute_uv=False)
    total = float(np.sum(s ** 2))
    if total == 0.0:
        return 0
    tail = np.sqrt(np.maximum(total - np.cumsum(s ** 2), 0.0) / total)
    threshold = max(tolerance, 0.0)
    ranks = np.nonzero(tail <= threshold)[0]
    return int(ranks[0] + 1) if ranks.size else int(len(s))


def compress_tile(tile: np.ndarray, tolerance: float = 1e-3,
                  max_rank: int | None = None,
                  precision: Precision | str = Precision.FP32) -> LowRankTile:
    """Compress one tile to a :class:`LowRankTile` by truncated SVD.

    Parameters
    ----------
    tile:
        Dense tile.
    tolerance:
        Relative Frobenius-norm truncation tolerance.
    max_rank:
        Optional hard cap on the retained rank.
    precision:
        Storage precision of the factors.
    """
    tile = np.asarray(tile, dtype=np.float64)
    u, s, vt = np.linalg.svd(tile, full_matrices=False)
    k = compressible_rank(tile, tolerance)
    if max_rank is not None:
        k = min(k, max_rank)
    k = max(k, 1) if tile.size else 0
    scaled_u = u[:, :k] * s[:k]
    return LowRankTile(u=scaled_u, v=vt[:k, :].T,
                       precision=Precision.from_string(precision),
                       original_shape=tile.shape)


class TLRMatrix:
    """Tile-low-rank (TLR) representation of a symmetric matrix.

    Diagonal tiles are kept dense at ``dense_precision``; each strictly
    lower off-diagonal tile is replaced by a :class:`LowRankTile`
    whenever the rank-``k`` factors at the requested ``tolerance`` are
    smaller than the dense tile (otherwise the dense tile is kept).
    The upper triangle is implied by symmetry.

    This mirrors the TLR format of HiCMA / the ExaGeoStat line of work
    that the paper cites as the natural next step beyond the precision
    mosaic.
    """

    def __init__(self, dense: np.ndarray, tile_size: int,
                 tolerance: float = 1e-3,
                 dense_precision: Precision | str = Precision.FP32,
                 factor_precision: Precision | str = Precision.FP32,
                 max_rank: int | None = None) -> None:
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError("TLRMatrix requires a square matrix")
        self.layout = TileLayout.square(dense.shape[0], tile_size)
        self.tolerance = float(tolerance)
        self.dense_precision = Precision.from_string(dense_precision)
        self.factor_precision = Precision.from_string(factor_precision)

        self._dense_tiles: dict[tuple[int, int], np.ndarray] = {}
        self._lowrank_tiles: dict[tuple[int, int], LowRankTile] = {}

        for i, j in self.layout.iter_lower_tiles():
            rs, cs = self.layout.tile_slice(i, j)
            block = dense[rs, cs]
            if i == j:
                self._dense_tiles[(i, j)] = np.asarray(
                    quantize(block, self.dense_precision), dtype=np.float64)
                continue
            lr = compress_tile(block, tolerance=tolerance, max_rank=max_rank,
                               precision=self.factor_precision)
            dense_bytes = storage_bytes(block.shape, self.dense_precision)
            if lr.nbytes() < dense_bytes:
                self._lowrank_tiles[(i, j)] = lr
            else:
                self._dense_tiles[(i, j)] = np.asarray(
                    quantize(block, self.dense_precision), dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.layout.rows, self.layout.cols)

    @property
    def num_lowrank_tiles(self) -> int:
        return len(self._lowrank_tiles)

    @property
    def num_dense_tiles(self) -> int:
        return len(self._dense_tiles)

    def tile_rank(self, i: int, j: int) -> int | None:
        """Rank of tile ``(i, j)`` if stored low-rank, else ``None``."""
        if j > i:
            i, j = j, i
        lr = self._lowrank_tiles.get((i, j))
        return lr.rank if lr is not None else None

    def max_offdiagonal_rank(self) -> int:
        return max((lr.rank for lr in self._lowrank_tiles.values()), default=0)

    def to_dense(self) -> np.ndarray:
        """Reconstruct the full symmetric matrix (float64)."""
        n = self.layout.rows
        out = np.zeros((n, n))
        for (i, j), block in self._dense_tiles.items():
            rs, cs = self.layout.tile_slice(i, j)
            out[rs, cs] = block
            if i != j:
                out[cs, rs] = block.T
        for (i, j), lr in self._lowrank_tiles.items():
            rs, cs = self.layout.tile_slice(i, j)
            block = lr.to_dense()
            out[rs, cs] = block
            out[cs, rs] = block.T
        return out

    def nbytes(self) -> int:
        """Storage footprint of the TLR representation (lower triangle)."""
        total = sum(storage_bytes(b.shape, self.dense_precision)
                    for b in self._dense_tiles.values())
        total += sum(lr.nbytes() for lr in self._lowrank_tiles.values())
        return total

    def dense_nbytes(self) -> int:
        """Footprint of the same lower triangle stored dense at the working precision."""
        total = 0
        for i, j in self.layout.iter_lower_tiles():
            shape = self.layout.tile_shape(i, j)
            total += storage_bytes(shape, self.dense_precision)
        return total

    def compression_ratio(self) -> float:
        own = self.nbytes()
        return self.dense_nbytes() / own if own else float("inf")

    def relative_error(self, reference: np.ndarray) -> float:
        """Relative Frobenius error of the TLR approximation vs ``reference``."""
        reference = np.asarray(reference, dtype=np.float64)
        denom = np.linalg.norm(reference)
        if denom == 0:
            return 0.0
        return float(np.linalg.norm(self.to_dense() - reference) / denom)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Matrix-vector product using the compressed representation."""
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        n = self.layout.rows
        out = np.zeros((n, x.shape[1]))
        for (i, j), block in self._dense_tiles.items():
            rs, cs = self.layout.tile_slice(i, j)
            out[rs] += block @ x[cs]
            if i != j:
                out[cs] += block.T @ x[rs]
        for (i, j), lr in self._lowrank_tiles.items():
            rs, cs = self.layout.tile_slice(i, j)
            u = np.asarray(lr.u, dtype=np.float64)
            v = np.asarray(lr.v, dtype=np.float64)
            out[rs] += u @ (v.T @ x[cs])
            out[cs] += v @ (u.T @ x[rs])
        return out[:, 0] if squeeze else out
