"""Tiled matrix container with a per-tile precision mosaic.

``TileMatrix`` is the central data structure of the reproduction: the
kernel matrix ``K``, the Cholesky factor, and the phenotype/weight
panels are all held as tile grids.  The container supports

* construction from / conversion to dense NumPy arrays,
* a per-tile precision map (the "mosaic" of the adaptive rule),
* symmetric storage (only the lower triangle held explicitly),
* memory-footprint accounting per precision,
* per-tile access used by the tiled algorithms in ``repro.linalg``, and
* optional out-of-core backing (:meth:`TileMatrix.attach_store`): a
  :class:`~repro.store.TileStore` spills least-recently-used tiles to
  native-precision segment files under a residency budget, and tile
  access transparently faults spilled tiles back in — bit for bit, so
  a budgeted run computes exactly what a fully-resident run computes.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from typing import Callable, Iterator

import numpy as np

from repro.precision.formats import Precision
from repro.tiles.layout import TileLayout
from repro.tiles.tile import Tile

PrecisionMap = Mapping[tuple[int, int], Precision] | Callable[[int, int], Precision] | Precision


def _resolve_precision(pmap: PrecisionMap, i: int, j: int) -> Precision:
    if isinstance(pmap, Precision):
        return pmap
    if callable(pmap):
        return Precision.from_string(pmap(i, j))
    return Precision.from_string(pmap[(i, j)])


class TileMatrix:
    """A matrix stored as a grid of :class:`~repro.tiles.tile.Tile`.

    Parameters
    ----------
    layout:
        Tile-grid geometry.
    precision:
        Default precision for tiles that are not covered by an explicit
        per-tile map.
    symmetric:
        When True only the lower-triangular tiles are stored; reads of
        upper tiles return the transpose of the mirrored lower tile.
    """

    def __init__(
        self,
        layout: TileLayout,
        precision: Precision | str = Precision.FP64,
        symmetric: bool = False,
    ) -> None:
        if symmetric and layout.rows != layout.cols:
            raise ValueError("symmetric TileMatrix requires a square matrix")
        self.layout = layout
        self.default_precision = Precision.from_string(precision)
        self.symmetric = symmetric
        self._tiles: dict[tuple[int, int], Tile] = {}
        # Guards lazy tile materialization and grid mutation: reads of
        # an unmaterialized tile *write* a zero tile into the grid, so
        # concurrent task bodies (the threaded runtime) need the grid
        # dict to mutate atomically.  Payload arrays themselves are
        # never shared mutably — set_tile replaces tile objects.
        # Store-backed matrices additionally take the store lock first
        # (store lock -> grid lock is the subsystem's one lock order).
        self._grid_lock = threading.Lock()
        # out-of-core backing (see attach_store); None = fully resident
        self._binding = None

    # ------------------------------------------------------------------
    # out-of-core backing
    # ------------------------------------------------------------------
    @property
    def store(self):
        """The attached :class:`~repro.store.TileStore`, or ``None``."""
        return self._binding.store if self._binding is not None else None

    def attach_store(self, store) -> "TileMatrix":
        """Back this matrix with an out-of-core tile store.

        Tiles become budget-managed: the store may spill
        least-recently-used tiles to disk in their native storage
        precision and :meth:`get_tile` faults them back in on access
        (bitwise — spilled payloads are exact).  Attaching a matrix
        that is already over the store's budget spills immediately.
        """
        if self._binding is not None:
            if self._binding.store is store:
                return self
            raise RuntimeError(
                "matrix is already attached to a different TileStore")
        self._binding = store.bind(self)
        return self

    def detach_store(self) -> "TileMatrix":
        """Fault every spilled tile in and return to plain residency."""
        if self._binding is not None:
            self._binding.detach()
        return self

    def has_tile_data(self, i: int, j: int) -> bool:
        """True when tile ``(i, j)`` holds data (resident *or* spilled).

        Tiles that were never written read as implicit zeros and report
        False — the distinction serialization and the Frobenius norm
        rely on to skip them.
        """
        key, _ = self._stored_key(i, j)
        if key in self._tiles:
            return True
        return self._binding is not None and self._binding.has_data(key)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        tile_size: int,
        precision: PrecisionMap = Precision.FP64,
        symmetric: bool = False,
    ) -> "TileMatrix":
        """Build a tiled copy of a dense matrix.

        ``precision`` may be a single :class:`Precision`, a mapping
        ``{(i, j): Precision}``, or a callable ``(i, j) -> Precision``.
        """
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2D array")
        layout = TileLayout(rows=dense.shape[0], cols=dense.shape[1], tile_size=tile_size)
        default = precision if isinstance(precision, Precision) else Precision.FP64
        out = cls(layout, precision=default, symmetric=symmetric)
        tiles = layout.iter_lower_tiles() if symmetric else layout.iter_tiles()
        for i, j in tiles:
            rs, cs = layout.tile_slice(i, j)
            p = _resolve_precision(precision, i, j)
            out._tiles[(i, j)] = Tile(dense[rs, cs], precision=p, coords=(i, j))
        return out

    @classmethod
    def empty(
        cls,
        rows: int,
        cols: int,
        tile_size: int,
        precision: Precision | str = Precision.FP64,
        symmetric: bool = False,
    ) -> "TileMatrix":
        """Tile container with *no* tiles materialized.

        This is the streaming-Build entry point: the Build phase creates
        an empty container and :meth:`set_tile`\\ s finished tiles into it
        one by one, so no full dense staging array ever exists.  Tiles
        that are read before being written materialize as zeros.
        """
        layout = TileLayout(rows=rows, cols=cols, tile_size=tile_size)
        return cls(layout, precision=Precision.from_string(precision),
                   symmetric=symmetric)

    @classmethod
    def zeros(
        cls,
        rows: int,
        cols: int,
        tile_size: int,
        precision: Precision | str = Precision.FP64,
        symmetric: bool = False,
    ) -> "TileMatrix":
        """All-zero tiled matrix (tiles materialize lazily on access)."""
        return cls.empty(rows, cols, tile_size, precision, symmetric=symmetric)

    # ------------------------------------------------------------------
    # shape info
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.layout.rows, self.layout.cols)

    @property
    def tile_size(self) -> int:
        return self.layout.tile_size

    @property
    def grid_shape(self) -> tuple[int, int]:
        return self.layout.grid_shape

    # ------------------------------------------------------------------
    # tile access
    # ------------------------------------------------------------------
    def _stored_key(self, i: int, j: int) -> tuple[tuple[int, int], bool]:
        """Return the stored tile key and whether a transpose is needed."""
        self.layout._check(i, j)
        if self.symmetric and j > i:
            return (j, i), True
        return (i, j), False

    def get_tile(self, i: int, j: int) -> Tile:
        """Return tile ``(i, j)``.

        For symmetric matrices, upper-triangle reads return a transposed
        *copy* of the stored lower tile.  On a store-backed matrix a
        spilled tile faults back in from its segment file (evicting
        other tiles as the budget requires) before being returned.
        """
        key, transpose = self._stored_key(i, j)
        tile = self._tiles.get(key)
        if tile is not None:
            if self._binding is not None:
                # lock-free recency bump: resident reads must count as
                # "use", or a hot panel tile consumed by many trailing
                # updates would age into the LRU victim
                self._binding.note_use(key)
        else:
            if self._binding is not None:
                # fault-in (or zero-materialization) under the store
                # lock, so it cannot race an eviction of the same key
                tile = self._binding.load(key)
            else:
                with self._grid_lock:
                    tile = self._tiles.get(key)
                    if tile is None:
                        shape = self.layout.tile_shape(*key)
                        tile = Tile(np.zeros(shape),
                                    precision=self.default_precision,
                                    coords=key)
                        self._tiles[key] = tile
        if transpose:
            return Tile(tile.to_float64().T, precision=tile.precision, coords=(i, j))
        return tile

    def set_tile(self, i: int, j: int, data: np.ndarray,
                 precision: Precision | str | None = None) -> None:
        """Overwrite tile ``(i, j)`` (writes to upper mirror the lower)."""
        key, transpose = self._stored_key(i, j)
        payload = np.asarray(data).T if transpose else np.asarray(data)
        expected = self.layout.tile_shape(*key)
        if payload.shape != expected:
            raise ValueError(
                f"tile {key} expects shape {expected}, got {payload.shape}"
            )
        if self._binding is not None:
            # the store resolves the default precision (a spilled tile's
            # precision lives in its slot), enforces the budget and
            # mutates the grid under the store lock
            self._binding.set(
                key,
                payload,
                Precision.from_string(precision) if precision is not None
                else None,
            )
            return
        with self._grid_lock:
            p = Precision.from_string(precision) if precision is not None else (
                self._tiles[key].precision if key in self._tiles
                else self.default_precision
            )
            tile = Tile(payload, precision=p, coords=key)
            self._tiles[key] = tile

    def tile_precision(self, i: int, j: int) -> Precision:
        key, _ = self._stored_key(i, j)
        tile = self._tiles.get(key)
        if tile is not None:
            return tile.precision
        if self._binding is not None:
            p = self._binding.tile_precision(key)
            if p is not None:
                return p
        return self.default_precision

    def set_tile_precision(self, i: int, j: int, precision: Precision | str) -> None:
        """Re-quantize one tile to a new storage precision."""
        key, _ = self._stored_key(i, j)
        tile = self.get_tile(*key)
        # route through set_tile: identical to the historical
        # ``tile.convert`` (both re-quantize the float64 view), and the
        # store accounting sees the re-quantized footprint
        self.set_tile(*key, tile.to_float64(), precision=precision)

    def apply_precision_map(self, pmap: PrecisionMap) -> None:
        """Re-quantize every stored tile according to a precision map."""
        for (i, j) in list(self._iter_stored()):
            self.set_tile_precision(i, j, _resolve_precision(pmap, i, j))

    def precision_grid(self) -> np.ndarray:
        """Object array of the current per-tile precisions (full grid)."""
        grid = np.empty(self.layout.grid_shape, dtype=object)
        for i, j in self.layout.iter_tiles():
            grid[i, j] = self.tile_precision(i, j)
        return grid

    def _iter_stored(self) -> Iterator[tuple[int, int]]:
        if self.symmetric:
            yield from self.layout.iter_lower_tiles()
        else:
            yield from self.layout.iter_tiles()

    # ------------------------------------------------------------------
    # dense conversion and numerics
    # ------------------------------------------------------------------
    def to_dense(self, dtype: np.dtype | type = np.float64) -> np.ndarray:
        """Materialize the full dense matrix."""
        out = np.zeros(self.shape, dtype=np.float64)
        for i, j in self.layout.iter_tiles():
            rs, cs = self.layout.tile_slice(i, j)
            out[rs, cs] = self.get_tile(i, j).to_float64()
        return out.astype(dtype)

    def norm(self, ord: str | int = "fro") -> float:
        """Matrix norm; the Frobenius norm is computed tile-wise.

        Accumulating ``||A_ij||_F^2`` per stored tile (counting mirrored
        off-diagonal tiles twice for symmetric storage) avoids the dense
        materialization the adaptive-precision rule would otherwise pay
        on every streamed Build.
        """
        if ord == "fro":
            total = 0.0
            for (i, j) in self._iter_stored():
                if not self.has_tile_data(i, j):
                    continue  # unmaterialized tiles are implicit zeros
                # get_tile faults spilled tiles in (and back out) under
                # the budget; values are bitwise whatever residency says
                sq = float(np.linalg.norm(self.get_tile(i, j).to_float64())) ** 2
                total += sq if (not self.symmetric or i == j) else 2.0 * sq
            return float(np.sqrt(total))
        return float(np.linalg.norm(self.to_dense(), ord=ord))

    def nbytes(self) -> int:
        """Total *logical* storage footprint under the precision mosaic.

        Counts every tile holding data at its storage precision whether
        resident or spilled — the mosaic's size, independent of where
        the bytes currently live.  See :meth:`resident_nbytes` for the
        in-memory share of a store-backed matrix.
        """
        if self._binding is not None:
            return self._binding.logical_nbytes()
        return sum(t.nbytes for t in self._tiles.values())

    def resident_nbytes(self) -> int:
        """Bytes currently resident in memory (== :meth:`nbytes` when
        the matrix has no store attached)."""
        if self._binding is not None:
            return self._binding.resident_nbytes()
        return sum(t.nbytes for t in self._tiles.values())

    def footprint_by_precision(self) -> dict[Precision, int]:
        """Bytes stored per precision (used for footprint-reduction reporting)."""
        if self._binding is not None:
            return self._binding.footprint_by_precision()
        out: dict[Precision, int] = {}
        for t in self._tiles.values():
            out[t.precision] = out.get(t.precision, 0) + t.nbytes
        return out

    # ------------------------------------------------------------------
    # diagonal regularization (tile-native, no dense round-trip)
    # ------------------------------------------------------------------
    def add_diagonal(self, alpha: float) -> "TileMatrix":
        """Add ``alpha`` to the matrix diagonal in place.

        Only the diagonal *tiles* are touched — this is how the solver
        sessions regularize ``K + alpha*I`` without copying (or even
        reading) the off-diagonal part of the kernel.  Each diagonal
        tile keeps its storage precision.  Returns ``self`` for
        chaining.
        """
        if self.layout.rows != self.layout.cols:
            raise ValueError("add_diagonal requires a square matrix")
        for d in range(self.layout.tile_rows):
            tile = self.get_tile(d, d)
            data = tile.to_float64()
            k = min(data.shape)
            data[np.arange(k), np.arange(k)] += alpha
            self.set_tile(d, d, data, precision=tile.precision)
        return self

    def shift_diagonal(self, old_alpha: float, new_alpha: float) -> "TileMatrix":
        """Replace a diagonal shift ``old_alpha`` with ``new_alpha`` in place.

        The regularization-boost retry loop of the Associate phase uses
        this to move from ``K + old*I`` to ``K + new*I`` by updating
        only the diagonal tiles, instead of re-copying the matrix per
        attempt.  Returns ``self`` for chaining.
        """
        return self.add_diagonal(new_alpha - old_alpha)

    def copy(self) -> "TileMatrix":
        """Deep copy (store-backed sources produce store-backed copies).

        On a store-backed matrix, tiles stream through one at a time —
        faulted in from the source and immediately subject to eviction
        on the copy — so the copy never exceeds the budget.
        """
        dup = TileMatrix(self.layout, self.default_precision, self.symmetric)
        if self._binding is None:
            dup._tiles = {k: t.copy() for k, t in self._tiles.items()}
            return dup
        dup.attach_store(self.store)
        for key in self._iter_stored():
            if not self.has_tile_data(*key):
                continue
            tile = self.get_tile(*key)
            dup.set_tile(*key, tile.to_float64(), precision=tile.precision)
        return dup

    def shallow_copy(self) -> "TileMatrix":
        """Copy the tile *grid* while sharing the tile objects.

        :meth:`set_tile` (and therefore :meth:`add_diagonal` /
        :meth:`shift_diagonal`) replaces tile objects rather than
        mutating them, so writes through those paths never propagate to
        the source — copy-on-write at tile granularity.  This is what
        lets the Associate phase regularize ``K + alpha*I`` while
        allocating only new *diagonal* tiles.  In-place tile mutation
        (``Tile.update``/``Tile.convert_``, ``apply_precision_map``)
        would be shared; callers that need those must :meth:`copy`.

        A store-backed source hands the copy its own binding on the
        same store: resident tiles stay shared objects, spill slots are
        shared read-only, and later writes from either matrix diverge.
        """
        dup = TileMatrix(self.layout, self.default_precision, self.symmetric)
        if self._binding is None:
            dup._tiles = dict(self._tiles)
        else:
            dup._binding = self.store.clone_binding(self, dup)
        return dup

    def unpacked_lower(self) -> "TileMatrix":
        """Tile-level copy with non-symmetric storage, lower triangle only.

        This is the factorization workspace constructor: the tiled
        Cholesky consumes only the lower-triangle tiles, so symmetric
        kernels hand over per-tile copies (keeping each tile's storage
        precision) without ever materializing a dense array.  Upper
        tiles are left unmaterialized (they read as zeros).  The
        workspace of a store-backed kernel is store-backed too, tiles
        streaming through one at a time under the budget.
        """
        out = TileMatrix(self.layout, self.default_precision, symmetric=False)
        if self._binding is None:
            for key in self.layout.iter_lower_tiles():
                tile = self._tiles.get(key)
                if tile is not None:
                    out._tiles[key] = tile.copy()
            return out
        out.attach_store(self.store)
        for key in self.layout.iter_lower_tiles():
            if not self.has_tile_data(*key):
                continue
            tile = self.get_tile(*key)
            out.set_tile(*key, tile.to_float64(), precision=tile.precision)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sym = ", symmetric" if self.symmetric else ""
        return (
            f"TileMatrix({self.shape[0]}x{self.shape[1]}, tile={self.tile_size}, "
            f"grid={self.grid_shape}{sym})"
        )
