"""Hand-tuned band ("rainbow") precision assignment.

Before the systematic adaptive rule, the state of the art (Abdulah et
al., TPDS 2021 — reference [37] of the paper) assigned precisions by
*bands*: tiles within a given distance of the diagonal stay in the
high precision, tiles further out drop to the low precision, producing
a rainbow pattern.  The band width must be tuned empirically per
dataset, which is the drawback the adaptive rule removes.

The paper's Fig. 5 sweeps band configurations keeping 100%, 80%, 60%,
40%, 20% and 10% of the off-diagonal bands in FP32 (rest FP16) and
shows the 10% configuration deteriorates the MSPE.  These helpers
reproduce that assignment.
"""

from __future__ import annotations

import numpy as np

from repro.precision.formats import Precision
from repro.tiles.layout import TileLayout


def band_precision_map(
    layout: TileLayout,
    high_fraction: float,
    high: Precision | str = Precision.FP32,
    low: Precision | str = Precision.FP16,
    diagonal: Precision | str | None = None,
) -> dict[tuple[int, int], Precision]:
    """Assign precisions by diagonal bands.

    Parameters
    ----------
    layout:
        Tile grid of a square (symmetric) matrix.
    high_fraction:
        Fraction of the off-diagonal band distance kept in ``high``
        precision.  ``1.0`` keeps everything high (the paper's
        "100(FP32)" configuration); ``0.1`` keeps only the 10% of
        bands closest to the diagonal high.
    high, low:
        Precisions for the near-diagonal and far-from-diagonal bands.
    diagonal:
        Precision of diagonal tiles; defaults to ``high``.

    Returns
    -------
    dict
        ``{(i, j): Precision}`` for every tile in the grid.
    """
    if not layout.is_square_grid:
        raise ValueError("band precision maps require a square tile grid")
    if not 0.0 <= high_fraction <= 1.0:
        raise ValueError("high_fraction must be in [0, 1]")
    high = Precision.from_string(high)
    low = Precision.from_string(low)
    diag = Precision.from_string(diagonal) if diagonal is not None else high

    nt = layout.tile_rows
    # Band index of tile (i, j) is |i - j|; bands run 0 .. nt-1.  The
    # fraction applies to the nt-1 off-diagonal bands.
    max_band = max(nt - 1, 1)
    high_bands = int(round(high_fraction * max_band))

    pmap: dict[tuple[int, int], Precision] = {}
    for i, j in layout.iter_tiles():
        band = abs(i - j)
        if band == 0:
            pmap[(i, j)] = diag
        elif band <= high_bands:
            pmap[(i, j)] = high
        else:
            pmap[(i, j)] = low
    return pmap


def band_fraction_map(pmap: dict[tuple[int, int], Precision],
                      layout: TileLayout) -> dict[Precision, float]:
    """Fraction of off-diagonal tiles per precision in a band map."""
    counts: dict[Precision, int] = {}
    total = 0
    for (i, j), p in pmap.items():
        if i == j:
            continue
        counts[p] = counts.get(p, 0) + 1
        total += 1
    if total == 0:
        return {}
    return {p: c / total for p, c in counts.items()}


def rainbow_pattern(layout: TileLayout,
                    precisions: tuple[Precision, ...]) -> dict[tuple[int, int], Precision]:
    """Generalized rainbow: split the off-diagonal bands evenly across formats.

    ``precisions`` lists the formats from nearest to the diagonal to
    farthest.  Used by the band ablation benchmark.
    """
    if not precisions:
        raise ValueError("at least one precision required")
    if not layout.is_square_grid:
        raise ValueError("rainbow patterns require a square tile grid")
    nt = layout.tile_rows
    max_band = max(nt - 1, 1)
    n_levels = len(precisions)
    pmap: dict[tuple[int, int], Precision] = {}
    for i, j in layout.iter_tiles():
        band = abs(i - j)
        if band == 0:
            pmap[(i, j)] = precisions[0]
        else:
            level = min(int((band - 1) * n_levels / max_band), n_levels - 1)
            pmap[(i, j)] = precisions[level]
    return pmap


def band_map_as_grid(pmap: dict[tuple[int, int], Precision],
                     layout: TileLayout) -> np.ndarray:
    """Render a precision map as an object array (for plotting/inspection)."""
    grid = np.empty(layout.grid_shape, dtype=object)
    for (i, j), p in pmap.items():
        grid[i, j] = p
    return grid
