"""Tiled matrix storage with a per-tile precision mosaic.

The paper stores the kernel matrix as a grid of tiles, each tile kept
in the narrowest precision that preserves the application's accuracy
target (the "tile-centric adaptive precision" of Higham & Mary).  This
package provides:

``TileLayout``
    Geometry of a tile grid plus the block-cyclic process distribution
    used to map tiles to devices/ranks.
``Tile`` and ``TileMatrix``
    Storage objects.  A ``TileMatrix`` can be constructed from a dense
    array, carries one precision per tile, and converts back to dense.
``decide_tile_precisions`` / ``AdaptivePrecisionRule``
    The norm-based adaptive precision decision (Fig. 4's heatmaps).
``band_precision_map``
    The hand-tuned band ("rainbow") precision assignment the paper uses
    as a baseline in Fig. 5.
``TLRMatrix`` / ``LowRankTile``
    The tile-low-rank extension sketched in the paper's outlook
    (compressing smooth off-diagonal tiles on top of the precision
    mosaic).
"""

from repro.tiles.layout import BlockCyclicDistribution, TileLayout
from repro.tiles.tile import Tile
from repro.tiles.matrix import TileMatrix
from repro.tiles.adaptive import (
    AdaptivePrecisionRule,
    decide_tile_precisions,
    precision_heatmap,
)
from repro.tiles.band import band_fraction_map, band_precision_map
from repro.tiles.lowrank import LowRankTile, TLRMatrix, compress_tile
from repro.tiles.serialize import (
    load_tile_matrix,
    pack_tile_matrix,
    save_tile_matrix,
    unpack_tile_matrix,
)

__all__ = [
    "save_tile_matrix",
    "load_tile_matrix",
    "pack_tile_matrix",
    "unpack_tile_matrix",
    "TileLayout",
    "BlockCyclicDistribution",
    "Tile",
    "TileMatrix",
    "AdaptivePrecisionRule",
    "decide_tile_precisions",
    "precision_heatmap",
    "band_precision_map",
    "band_fraction_map",
    "LowRankTile",
    "TLRMatrix",
    "compress_tile",
]
