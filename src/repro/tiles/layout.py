"""Tile-grid geometry and block-cyclic distribution.

A :class:`TileLayout` describes how an ``m × n`` matrix is cut into
``tile_size × tile_size`` tiles (edge tiles may be smaller).  The
:class:`BlockCyclicDistribution` maps tile coordinates to owning ranks
in a 2D block-cyclic fashion, the standard distribution of ScaLAPACK /
DPLASMA / PaRSEC used by the paper's distributed Cholesky.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TileLayout:
    """Geometry of a tiled ``rows × cols`` matrix.

    Parameters
    ----------
    rows, cols:
        Global matrix dimensions.
    tile_size:
        Target (square) tile edge.  The last tile row/column may be
        smaller when the dimensions are not multiples of ``tile_size``.
    """

    rows: int
    cols: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.rows < 0 or self.cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")

    # ------------------------------------------------------------------
    # grid shape
    # ------------------------------------------------------------------
    @property
    def tile_rows(self) -> int:
        """Number of tile rows."""
        return -(-self.rows // self.tile_size) if self.rows else 0

    @property
    def tile_cols(self) -> int:
        """Number of tile columns."""
        return -(-self.cols // self.tile_size) if self.cols else 0

    @property
    def grid_shape(self) -> tuple[int, int]:
        return (self.tile_rows, self.tile_cols)

    @property
    def num_tiles(self) -> int:
        return self.tile_rows * self.tile_cols

    @property
    def is_square_grid(self) -> bool:
        return self.tile_rows == self.tile_cols

    # ------------------------------------------------------------------
    # per-tile geometry
    # ------------------------------------------------------------------
    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Shape of tile ``(i, j)`` (edge tiles may be smaller)."""
        self._check(i, j)
        r = min(self.tile_size, self.rows - i * self.tile_size)
        c = min(self.tile_size, self.cols - j * self.tile_size)
        return (r, c)

    def tile_slice(self, i: int, j: int) -> tuple[slice, slice]:
        """Row/column slices of tile ``(i, j)`` in the dense matrix."""
        self._check(i, j)
        r0 = i * self.tile_size
        c0 = j * self.tile_size
        r1 = min(r0 + self.tile_size, self.rows)
        c1 = min(c0 + self.tile_size, self.cols)
        return (slice(r0, r1), slice(c0, c1))

    def tile_of_index(self, row: int, col: int) -> tuple[int, int]:
        """Tile coordinates containing global element ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"element ({row}, {col}) outside {self.rows}x{self.cols}")
        return (row // self.tile_size, col // self.tile_size)

    def iter_tiles(self) -> Iterator[tuple[int, int]]:
        """Iterate all tile coordinates in row-major order."""
        for i in range(self.tile_rows):
            for j in range(self.tile_cols):
                yield (i, j)

    def iter_lower_tiles(self, include_diagonal: bool = True) -> Iterator[tuple[int, int]]:
        """Iterate tiles of the lower triangle (for symmetric matrices)."""
        for i in range(self.tile_rows):
            upper = i + 1 if include_diagonal else i
            for j in range(min(upper, self.tile_cols)):
                yield (i, j)

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.tile_rows and 0 <= j < self.tile_cols):
            raise IndexError(
                f"tile ({i}, {j}) outside grid {self.tile_rows}x{self.tile_cols}"
            )

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def square(cls, n: int, tile_size: int) -> "TileLayout":
        return cls(rows=n, cols=n, tile_size=tile_size)


@dataclass(frozen=True)
class BlockCyclicDistribution:
    """2D block-cyclic mapping of tiles onto a ``p × q`` process grid.

    Tile ``(i, j)`` is owned by rank ``(i mod p) * q + (j mod q)``.
    This is how PaRSEC's two-dimensional block-cyclic data collection
    distributes the kernel matrix across nodes in the paper's runs.
    """

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p <= 0 or self.q <= 0:
            raise ValueError("process grid dimensions must be positive")

    @property
    def num_ranks(self) -> int:
        return self.p * self.q

    def owner(self, i: int, j: int) -> int:
        """Rank owning tile ``(i, j)``."""
        if i < 0 or j < 0:
            raise IndexError("tile coordinates must be non-negative")
        return (i % self.p) * self.q + (j % self.q)

    def tiles_of_rank(self, rank: int, layout: TileLayout) -> list[tuple[int, int]]:
        """All tiles of ``layout`` owned by ``rank``."""
        if not (0 <= rank < self.num_ranks):
            raise ValueError(f"rank {rank} outside grid of {self.num_ranks} ranks")
        return [t for t in layout.iter_tiles() if self.owner(*t) == rank]

    def load_per_rank(self, layout: TileLayout) -> dict[int, int]:
        """Number of tiles owned by each rank (load-balance diagnostics)."""
        counts = {r: 0 for r in range(self.num_ranks)}
        for i, j in layout.iter_tiles():
            counts[self.owner(i, j)] += 1
        return counts

    @classmethod
    def for_ranks(cls, num_ranks: int) -> "BlockCyclicDistribution":
        """Near-square process grid for ``num_ranks`` ranks."""
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        p = int(num_ranks ** 0.5)
        while p > 1 and num_ranks % p:
            p -= 1
        return cls(p=p, q=num_ranks // p)
