"""A single matrix tile with an attached storage precision.

Tiles are the unit of both storage and computation in the paper's
runtime: each tile carries its own precision, and every task (POTRF,
TRSM, SYRK, GEMM, kernel-build) consumes/produces tiles.  A ``Tile``
always keeps its payload quantized to its declared precision, so
conversions are explicit (:meth:`Tile.convert`), mirroring the
datatype-conversion tasks PaRSEC inserts on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.precision.formats import Precision
from repro.precision.quantize import quantize, storage_bytes


@dataclass
class Tile:
    """One tile of a :class:`~repro.tiles.matrix.TileMatrix`.

    Parameters
    ----------
    data:
        Tile payload.  Stored quantized to ``precision`` (the array's
        values lie on that format's grid even when the dtype is a wider
        container, as for FP8/BF16).
    precision:
        Storage precision of the tile.
    coords:
        Optional ``(i, j)`` coordinates in the parent tile grid; kept
        for tracing and debugging.
    """

    data: np.ndarray
    precision: Precision = Precision.FP64
    coords: tuple[int, int] | None = None
    _version: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.data = quantize(np.asarray(self.data), self.precision)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        """Storage footprint in the tile's declared precision."""
        return storage_bytes(self.data.shape, self.precision)

    @property
    def version(self) -> int:
        """Monotonic data version (bumped on every write)."""
        return self._version

    # ------------------------------------------------------------------
    # conversions and updates
    # ------------------------------------------------------------------
    def to_float64(self) -> np.ndarray:
        """Return the tile's values as a float64 array (copy)."""
        return np.asarray(self.data, dtype=np.float64).copy()

    def float64_values(self) -> np.ndarray:
        """Read-only float64 view of the tile's values (no copy when the
        payload is already a float64 array).

        Bitwise identical values to :meth:`to_float64`; use this on hot
        read paths (e.g. the CG matvec, which touches every tile once
        per iteration) where a 0.5 MB defensive copy per tile access is
        pure overhead.  Callers must not write through the result.
        """
        if self.data.dtype == np.float64:
            view = self.data.view()
            view.flags.writeable = False
            return view
        return np.asarray(self.data, dtype=np.float64)

    def fortran64_values(self) -> np.ndarray:
        """Read-only Fortran-ordered float64 copy of the tile, cached.

        LAPACK wrappers (``dtrtrs`` & co.) silently convert C-ordered
        operands to Fortran order on *every* call; a solver that hits
        the same diagonal tile once per iteration pays that conversion
        repeatedly.  This caches the converted array on the tile (keyed
        to :attr:`version`, so writes invalidate it).  Values are
        bitwise identical to :meth:`float64_values` — only the memory
        layout differs, which LAPACK would have imposed anyway.
        """
        cached = getattr(self, "_f64_fortran", None)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        arr = np.asfortranarray(np.asarray(self.data, dtype=np.float64))
        if arr is self.data:  # already float64 F-contiguous: don't
            arr = arr.view()  # freeze the payload itself
        arr.flags.writeable = False
        self._f64_fortran = (self._version, arr)
        return arr

    def convert(self, precision: Precision | str) -> "Tile":
        """Return a new tile re-quantized to ``precision``.

        Conversion to a narrower precision loses information (that is
        the point of the adaptive mosaic); conversion back to a wider
        precision does not recover it.
        """
        precision = Precision.from_string(precision)
        return Tile(data=self.to_float64(), precision=precision, coords=self.coords)

    def convert_(self, precision: Precision | str) -> "Tile":
        """In-place re-quantization; returns ``self`` for chaining."""
        precision = Precision.from_string(precision)
        self.data = quantize(self.to_float64(), precision)
        self.precision = precision
        self._version += 1
        return self

    def update(self, data: np.ndarray) -> "Tile":
        """Replace the payload (quantized to the tile's precision)."""
        self.data = quantize(np.asarray(data), self.precision)
        self._version += 1
        return self

    # ------------------------------------------------------------------
    # numerics helpers
    # ------------------------------------------------------------------
    def norm(self, ord: str | int = "fro") -> float:
        """Norm of the tile's stored values."""
        d = self.to_float64()
        if d.ndim <= 1:
            return float(np.linalg.norm(d))
        return float(np.linalg.norm(d, ord=ord))

    def max_abs(self) -> float:
        d = self.to_float64()
        return float(np.max(np.abs(d))) if d.size else 0.0

    def copy(self) -> "Tile":
        return Tile(data=self.to_float64(), precision=self.precision, coords=self.coords)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f" at {self.coords}" if self.coords is not None else ""
        return f"Tile({self.shape}, {self.precision}{where})"
