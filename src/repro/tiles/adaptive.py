"""Tile-centric adaptive precision (Higham–Mary rule).

At the start of the Associate phase the paper lowers the precision of
each off-diagonal tile of the kernel matrix to the narrowest format
whose storage perturbation stays within the application accuracy
threshold.  Diagonal tiles are kept at the working precision because
the Cholesky panel factorization (POTRF) and the regularized diagonal
dominate the conditioning.

Rule (Higham & Mary 2022, ref. [19]; also used by the ExaGeoStat
Gordon-Bell finalist [20]): store tile ``A_ij`` in the narrowest
precision ``p`` such that

    u_p * ||A_ij||_F  <=  eps * ||A||_F / nt

where ``u_p`` is the unit roundoff of ``p``, ``eps`` the requested
output accuracy (FP32-level by default, matching the paper's
"application-worthy FP32 accuracy"), and ``nt`` the number of tiles in
a row — the division spreads the global budget across tiles.

The resulting map is exactly what Fig. 4 of the paper visualizes:
FP32 on the diagonal, FP16 (A100) or FP8 (GH200) everywhere else for
the UK BioBank / msprime kernel matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.precision.formats import Precision, unit_roundoff
from repro.tiles.matrix import TileMatrix


@dataclass(frozen=True)
class AdaptivePrecisionRule:
    """Configuration of the adaptive tile-precision decision.

    Parameters
    ----------
    accuracy:
        Target relative accuracy ``eps`` of the stored matrix.  The
        paper targets "application-worthy FP32 accuracy" of the GWAS
        *output* (predictions), which tolerates a much looser storage
        accuracy on the kernel operator itself; the default ``1e-3``
        reproduces the paper's mosaics (FP32 diagonal, FP16 off-diagonal
        on FP16-floor hardware) for the kernel matrices of interest
        while leaving the prediction MSPE unchanged (Fig. 5).
    candidates:
        Allowed storage formats, from narrowest to widest.  The
        hardware floor differs per GPU generation: FP16 on V100/A100,
        FP8 on GH200 — pass the appropriate candidate list (see
        :func:`candidates_for_gpu`).
    working_precision:
        Precision forced on diagonal tiles (and used as the widest
        fallback).
    keep_diagonal_wide:
        Keep diagonal tiles at ``working_precision`` regardless of the
        norm test (the paper always does).
    """

    accuracy: float = 1e-3
    candidates: tuple[Precision, ...] = (
        Precision.FP16,
        Precision.FP32,
        Precision.FP64,
    )
    working_precision: Precision = Precision.FP32
    keep_diagonal_wide: bool = True

    def decide(self, tile_norm: float, matrix_norm: float, num_tile_cols: int,
               is_diagonal: bool) -> Precision:
        """Precision for a single tile given its norm and the global norm."""
        if is_diagonal and self.keep_diagonal_wide:
            return self.working_precision
        if matrix_norm <= 0.0 or tile_norm <= 0.0:
            # zero tiles can be stored in the narrowest candidate exactly
            return Precision.narrowest(*self.candidates)
        budget = self.accuracy * matrix_norm / max(num_tile_cols, 1)
        for p in sorted(self.candidates, key=lambda q: q.rank):
            u = unit_roundoff(p)
            if u * tile_norm <= budget:
                return p
        return self.working_precision


def candidates_for_gpu(gpu: str) -> tuple[Precision, ...]:
    """Candidate storage precisions supported by a GPU generation.

    ``"V100"``/``"A100"``/``"MI250X"`` → FP16 floor;
    ``"GH200"``/``"H100"`` → FP8 floor (the paper's Fig. 4b).
    """
    gpu = gpu.upper()
    fp8_capable = {"GH200", "H100", "H200", "GB200", "B200"}
    if gpu in fp8_capable:
        return (Precision.FP8_E4M3, Precision.FP16, Precision.FP32, Precision.FP64)
    return (Precision.FP16, Precision.FP32, Precision.FP64)


def decide_tile_precisions(
    matrix: TileMatrix | np.ndarray,
    rule: AdaptivePrecisionRule | None = None,
    tile_size: int | None = None,
) -> dict[tuple[int, int], Precision]:
    """Compute the adaptive precision map for a (tiled or dense) matrix.

    Returns a mapping ``{(i, j): Precision}`` covering every tile of the
    grid (both triangles for symmetric storage, so the map can be used
    directly to build heatmaps).
    """
    rule = rule or AdaptivePrecisionRule()
    if isinstance(matrix, np.ndarray):
        if tile_size is None:
            raise ValueError("tile_size is required when passing a dense array")
        matrix = TileMatrix.from_dense(matrix, tile_size, Precision.FP64)

    matrix_norm = matrix.norm("fro")
    nt = matrix.layout.tile_cols
    decisions: dict[tuple[int, int], Precision] = {}
    for i, j in matrix.layout.iter_tiles():
        tile = matrix.get_tile(i, j)
        decisions[(i, j)] = rule.decide(
            tile_norm=tile.norm("fro"),
            matrix_norm=matrix_norm,
            num_tile_cols=nt,
            is_diagonal=(i == j),
        )
    return decisions


@dataclass
class PrecisionHeatmap:
    """Summary of a per-tile precision decision (paper Fig. 4).

    Attributes
    ----------
    grid:
        Object array of :class:`Precision` per tile.
    counts:
        Number of tiles per precision.
    fractions:
        Fraction of tiles per precision.
    """

    grid: np.ndarray
    counts: dict[Precision, int] = field(default_factory=dict)
    fractions: dict[Precision, float] = field(default_factory=dict)

    @classmethod
    def from_decisions(cls, decisions: dict[tuple[int, int], Precision],
                       grid_shape: tuple[int, int]) -> "PrecisionHeatmap":
        grid = np.empty(grid_shape, dtype=object)
        counts: dict[Precision, int] = {}
        for (i, j), p in decisions.items():
            grid[i, j] = p
            counts[p] = counts.get(p, 0) + 1
        total = max(sum(counts.values()), 1)
        fractions = {p: c / total for p, c in counts.items()}
        return cls(grid=grid, counts=counts, fractions=fractions)

    def fraction(self, precision: Precision) -> float:
        return self.fractions.get(precision, 0.0)

    def render(self) -> str:
        """ASCII rendering of the mosaic (one char per tile)."""
        symbol = {
            Precision.FP64: "D",
            Precision.FP32: "S",
            Precision.FP16: "h",
            Precision.BF16: "b",
            Precision.FP8_E4M3: "q",
            Precision.FP8_E5M2: "Q",
            Precision.INT8: "i",
            Precision.INT32: "I",
        }
        lines = []
        for i in range(self.grid.shape[0]):
            lines.append("".join(symbol.get(self.grid[i, j], "?")
                                 for j in range(self.grid.shape[1])))
        return "\n".join(lines)


def precision_heatmap(
    matrix: TileMatrix | np.ndarray,
    rule: AdaptivePrecisionRule | None = None,
    tile_size: int | None = None,
) -> PrecisionHeatmap:
    """Adaptive-precision decision rendered as a heatmap (paper Fig. 4)."""
    if isinstance(matrix, np.ndarray):
        if tile_size is None:
            raise ValueError("tile_size is required when passing a dense array")
        tiled = TileMatrix.from_dense(matrix, tile_size, Precision.FP64)
    else:
        tiled = matrix
    decisions = decide_tile_precisions(tiled, rule)
    return PrecisionHeatmap.from_decisions(decisions, tiled.layout.grid_shape)
