"""Execution traces and timers.

The paper's measurements come from runtime timers and flop counters
("Measurement mechanism: Timers, Flops").  The trace collected by the
scheduler records, for every task, the device it ran on, its simulated
start/end times and its operation count, from which we derive the
throughput, per-device utilization, and Gantt-style summaries used by
tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.precision.formats import Precision


@dataclass(frozen=True)
class TaskEvent:
    """One task execution in a (simulated or wall-clock) schedule."""

    task_name: str
    task_uid: int
    device: int
    start: float
    end: float
    flops: float
    precision: Precision
    tag: object = None
    #: optional per-precision split of ``flops`` (see ``Task.flops_detail``)
    flops_detail: object = None
    #: transient-fault re-executions this task needed before succeeding
    retries: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Ordered collection of :class:`TaskEvent` plus derived statistics."""

    events: list[TaskEvent] = field(default_factory=list)

    def add(self, event: TaskEvent) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """End time of the last task (simulated seconds)."""
        return max((e.end for e in self.events), default=0.0)

    @property
    def total_flops(self) -> float:
        return sum(e.flops for e in self.events)

    @property
    def num_tasks(self) -> int:
        return len(self.events)

    @property
    def total_retries(self) -> int:
        """Retry budget spent across the trace (fault-tolerance cost)."""
        return sum(e.retries for e in self.events)

    def throughput(self) -> float:
        """Aggregate op/s over the schedule (the paper's "mixed-precision op/s")."""
        span = self.makespan
        return self.total_flops / span if span > 0 else 0.0

    def flops_by_precision(self) -> dict[Precision, float]:
        out: dict[Precision, float] = {}
        for e in self.events:
            if e.flops_detail:
                for prec, fl in e.flops_detail.items():
                    out[prec] = out.get(prec, 0.0) + fl
            else:
                out[e.precision] = out.get(e.precision, 0.0) + e.flops
        return out

    def merge(self, other: "ExecutionTrace") -> "ExecutionTrace":
        """Append ``other``'s events (used to accumulate phase traces)."""
        self.events.extend(other.events)
        return self

    def busy_time_by_device(self) -> dict[int, float]:
        out: dict[int, float] = {}
        for e in self.events:
            out[e.device] = out.get(e.device, 0.0) + e.duration
        return out

    def utilization_by_device(self) -> dict[int, float]:
        span = self.makespan
        if span <= 0:
            return {}
        return {d: min(t / span, 1.0) for d, t in self.busy_time_by_device().items()}

    def mean_utilization(self) -> float:
        utils = self.utilization_by_device()
        return sum(utils.values()) / len(utils) if utils else 0.0

    def events_by_name(self) -> dict[str, list[TaskEvent]]:
        out: dict[str, list[TaskEvent]] = {}
        for e in self.events:
            out.setdefault(e.task_name, []).append(e)
        return out

    def time_by_name(self) -> dict[str, float]:
        return {name: sum(e.duration for e in evts)
                for name, evts in self.events_by_name().items()}

    def gantt_rows(self) -> dict[int, list[tuple[float, float, str]]]:
        """Per-device list of ``(start, end, task_name)`` sorted by start."""
        rows: dict[int, list[tuple[float, float, str]]] = {}
        for e in sorted(self.events, key=lambda e: e.start):
            rows.setdefault(e.device, []).append((e.start, e.end, e.task_name))
        return rows

    def summary(self) -> dict[str, float]:
        """Headline metrics used by tests and reports."""
        return {
            "makespan": self.makespan,
            "total_flops": self.total_flops,
            "throughput": self.throughput(),
            "num_tasks": float(self.num_tasks),
            "mean_utilization": self.mean_utilization(),
        }
