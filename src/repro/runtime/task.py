"""Tasks and data handles for the dataflow runtime.

A :class:`Task` is a unit of work operating on named :class:`DataHandle`
objects with declared access modes (READ / WRITE / READWRITE), exactly
like PaRSEC's / StarPU's task insertion interface.  Dependencies are
*derived* from the access declarations:

* a READ after a WRITE on the same handle depends on that WRITE,
* a WRITE after any previous access depends on all of them
  (write-after-read and write-after-write ordering).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.precision.formats import Precision


class AccessMode(enum.Enum):
    """Data access declaration of a task parameter."""

    READ = "R"
    WRITE = "W"
    READWRITE = "RW"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.READ, AccessMode.READWRITE)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.WRITE, AccessMode.READWRITE)


_handle_counter = itertools.count()


@dataclass(eq=False)
class DataHandle:
    """A named piece of data tracked by the runtime.

    In the GWAS application each handle is one matrix tile.  The handle
    records the data's current storage precision and nominal size so the
    communication engine can account for bytes moved and for the
    sender/receiver conversion decision.
    """

    name: str
    shape: tuple[int, ...] = ()
    precision: Precision = Precision.FP64
    payload: Any = None
    home_device: int = 0
    uid: int = field(default_factory=lambda: next(_handle_counter))

    def nbytes(self, precision: Precision | None = None) -> int:
        """Size of this datum in ``precision`` (default: current precision)."""
        p = precision or self.precision
        n = 1
        for d in self.shape:
            n *= int(d)
        return n * p.bytes_per_element

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataHandle({self.name!r}, {self.shape}, {self.precision})"


_task_counter = itertools.count()


@dataclass(eq=False)
class Task:
    """One node of the task DAG.

    Parameters
    ----------
    name:
        Kernel name, e.g. ``"potrf"``, ``"gemm"``, ``"build_tile"``.
    accesses:
        Sequence of ``(handle, mode)`` pairs.
    body:
        Optional callable executed when the runtime runs the graph.  It
        receives the handles' payloads in declaration order and should
        return either ``None`` (in-place mutation) or a tuple of new
        payloads for the written handles, in declaration order of the
        writing accesses.
    flops:
        Operation count attributed to the task (for the performance
        model / trace).
    precision:
        Compute precision class of the task (used to pick the device
        throughput and by the conversion engine to know what precision
        the task requires its inputs in).
    priority:
        Larger runs earlier among ready tasks (the tiled Cholesky gives
        panel tasks higher priority, mirroring PaRSEC's priority hints).
    tag:
        Free-form metadata (tile coordinates etc.).
    flops_detail:
        Optional per-precision split of ``flops`` for tasks whose work
        spans more than one compute precision (e.g. a Build row task
        mixing the INT8 SNP Gram with the FP32 confounder Gram).  When
        given, trace-level precision accounting uses this split instead
        of attributing everything to ``precision``.
    tile_deps:
        Tiles of store-backed matrices this task touches, declared as
        ``(binding, (i, j))`` pairs.  The scheduler's store hooks pin
        them at dispatch (no eviction under an in-flight task), release
        them on completion, and hand them to the prefetch reader when
        the task becomes ready.  Empty for tasks that only operate on
        handle payloads.
    pspec:
        Optional :class:`~repro.parallel.descriptors.ProcessTaskSpec`
        re-expressing ``body`` as a picklable descriptor for the
        process execution backend.  ``None`` means the task runs
        inline on the coordinator under ``execution="process"`` (and
        ``pspec`` is ignored entirely by the other modes).
    """

    name: str
    accesses: tuple[tuple[DataHandle, AccessMode], ...]
    body: Callable[..., Any] | None = None
    flops: float = 0.0
    precision: Precision = Precision.FP64
    priority: int = 0
    tag: Any = None
    flops_detail: dict[Precision, float] | None = None
    tile_deps: tuple = ()
    pspec: Any = None
    uid: int = field(default_factory=lambda: next(_task_counter))

    def __post_init__(self) -> None:
        self.accesses = tuple(
            (h, m if isinstance(m, AccessMode) else AccessMode(m))
            for h, m in self.accesses
        )

    # ------------------------------------------------------------------
    @property
    def reads(self) -> tuple[DataHandle, ...]:
        return tuple(h for h, m in self.accesses if m.reads)

    @property
    def writes(self) -> tuple[DataHandle, ...]:
        return tuple(h for h, m in self.accesses if m.writes)

    def bytes_read(self) -> int:
        return sum(h.nbytes() for h in self.reads)

    def bytes_written(self) -> int:
        return sum(h.nbytes() for h in self.writes)

    def execute(self) -> None:
        """Run the task body against the handles' payloads."""
        if self.body is None:
            return
        args = [h.payload for h, _ in self.accesses]
        result = self.body(*args)
        if result is None:
            return
        if not isinstance(result, tuple):
            result = (result,)
        written = [h for h, m in self.accesses if m.writes]
        if len(result) != len(written):
            raise RuntimeError(
                f"task {self.name!r} returned {len(result)} outputs for "
                f"{len(written)} written handles"
            )
        for handle, value in zip(written, result):
            handle.payload = value

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name!r}#{self.uid}, tag={self.tag})"
