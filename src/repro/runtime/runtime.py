"""High-level runtime facade.

``Runtime`` bundles a task graph, an executor (threaded / serial /
simulated), a communication engine and a handle registry behind the
small interface the tiled algorithms use:

.. code-block:: python

    rt = Runtime(workers=8)
    a = rt.register_data("A(0,0)", tile_array, precision=Precision.FP32)
    rt.insert_task("potrf", (a, AccessMode.READWRITE), body=potrf_body,
                   flops=n**3 / 3, precision=Precision.FP32)
    result = rt.run(phase="associate")

which mirrors PaRSEC's dynamic task insertion interface used by the
paper's GWAS code.

A ``Runtime`` is **session-long and reusable**: every :meth:`run` call
drains the tasks inserted since the previous run (the pending graph),
appends the resulting events to the cumulative :attr:`session_trace`
(and to the named phase trace when ``phase`` is given), and leaves the
handle registry in place so later phases can keep inserting tasks
against the same data.  The scheduler is constructed exactly once; no
state is silently rebuilt between runs.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.precision.formats import Precision
from repro.resilience.errors import TaskGroupError
from repro.resilience.retry import RetryPolicy, resolve_retry_policy
from repro.runtime.comm import CommunicationEngine
from repro.runtime.dag import TaskGraph
from repro.runtime.device import DeviceModel, GENERIC_GPU, make_devices
from repro.runtime.scheduler import (
    EXECUTION_MODES,
    ScheduleResult,
    Scheduler,
)
from repro.runtime.task import AccessMode, DataHandle, Task
from repro.runtime.trace import ExecutionTrace

#: Environment overrides, used by CI to re-run the whole test suite
#: under a different concurrency level without touching call sites.
WORKERS_ENV = "REPRO_WORKERS"
EXECUTION_ENV = "REPRO_EXECUTION"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count (threads or processes).

    Explicit values win; ``None`` consults the ``REPRO_WORKERS``
    environment variable and finally defaults to ``min(8, cpu_count)``.
    Invalid values — non-integers or anything below 1 — raise a typed
    ``ValueError`` naming the offending knob instead of being silently
    clamped.
    """
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (or None), got {workers}")
        return workers
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer >= 1, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer >= 1, got {env!r}")
        return value
    return min(8, os.cpu_count() or 1)


def resolve_execution(execution: str | None = None) -> str:
    """Resolve an execution mode (explicit > ``REPRO_EXECUTION`` > threaded)."""
    mode = execution or os.environ.get(EXECUTION_ENV) or "threaded"
    if mode not in EXECUTION_MODES:
        raise ValueError(
            f"execution must be one of {EXECUTION_MODES}, got {mode!r}")
    return mode


class Runtime:
    """Dynamic task runtime: the repo's execution engine.

    Parameters
    ----------
    num_devices:
        Number of simulated devices (``simulated`` mode only).
    device_model:
        Performance model shared by all simulated devices.
    adaptive_conversion:
        Enable the sender/receiver conversion placement of the paper
        (True by default; simulated mode only).
    execute_bodies:
        When False, only the timing simulation runs (simulated mode).
    execution:
        ``"threaded"`` (default — out-of-order worker-pool execution on
        host threads), ``"process"`` (GIL-free worker OS processes with
        shared-memory tile exchange, see :mod:`repro.parallel`),
        ``"serial"`` (same drain on the caller's thread) or
        ``"simulated"`` (the historical device-timing mode).
    workers:
        Worker threads/processes of the threaded/process modes;
        ``None`` resolves through :func:`resolve_workers`
        (``REPRO_WORKERS`` env var, then ``min(8, cpu_count)``).
    task_retries:
        Transient-failure retry budget per task (see
        :class:`~repro.resilience.retry.RetryPolicy`); ``None`` resolves
        through ``REPRO_TASK_RETRIES`` and finally to fail-fast.
    task_timeout_s:
        Per-task wall-clock budget; overruns become
        :class:`~repro.resilience.errors.TaskTimeoutError` failures
        instead of hanging the drain.
    retry_policy:
        Full :class:`~repro.resilience.retry.RetryPolicy` override
        (backoff pacing, jitter seed); wins over ``task_retries``.
    """

    def __init__(
        self,
        num_devices: int = 1,
        device_model: DeviceModel = GENERIC_GPU,
        adaptive_conversion: bool = True,
        execute_bodies: bool = True,
        execution: str | None = None,
        workers: int | None = None,
        task_retries: int | None = None,
        task_timeout_s: float | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.execution = resolve_execution(execution)
        self.workers = resolve_workers(workers)
        if self.execution != "simulated" and (
                num_devices != 1 or device_model is not GENERIC_GPU
                or not adaptive_conversion):
            import warnings

            warnings.warn(
                "num_devices / device_model / adaptive_conversion only "
                f"affect execution='simulated'; this runtime resolves to "
                f"execution={self.execution!r} (the historical default was "
                "simulated — pass execution='simulated' to keep the device "
                "timing model)",
                stacklevel=2,
            )
        self.graph = TaskGraph()  # pending (not yet run) tasks
        self.devices = make_devices(num_devices, device_model)
        self.comm = CommunicationEngine(adaptive_conversion=adaptive_conversion)
        # the one and only scheduler of this runtime — reused by every
        # run() so repeated runs never silently rebuild executor state
        self.scheduler = Scheduler(
            devices=self.devices, comm=self.comm,
            execute_bodies=execute_bodies,
            execution=self.execution, workers=self.workers,
            retry_policy=(retry_policy if retry_policy is not None
                          else resolve_retry_policy(task_retries)),
            task_timeout_s=task_timeout_s,
        )
        self._handles: dict[str, DataHandle] = {}
        self._handle_uids: set[int] = set()
        self._namespaces: dict[str, int] = {}
        self._last_result: ScheduleResult | None = None
        #: graph drained by the most recent :meth:`run`
        self.last_graph: TaskGraph | None = None
        #: events of every run of this runtime, in completion order
        self.session_trace = ExecutionTrace()
        self._phase_traces: dict[str, ExecutionTrace] = {}
        self.runs_completed = 0

    # ------------------------------------------------------------------
    # data registration
    # ------------------------------------------------------------------
    def register_data(
        self,
        name: str,
        payload: Any = None,
        precision: Precision | str = Precision.FP64,
        shape: tuple[int, ...] | None = None,
        home_device: int | None = None,
        exist_ok: bool = False,
    ) -> DataHandle:
        """Register a named datum (typically one tile) with the runtime.

        With ``exist_ok`` an already-registered name returns the
        existing handle after a consistency check on the shape —
        re-registering the "same" datum with different geometry is
        always a bug.
        """
        precision = Precision.from_string(precision)
        if shape is None:
            shape = tuple(np.shape(payload)) if payload is not None else ()
        if name in self._handles:
            if not exist_ok:
                raise ValueError(f"data {name!r} already registered")
            handle = self._handles[name]
            if tuple(handle.shape) != tuple(shape):
                raise ValueError(
                    f"data {name!r} re-registered with shape {shape}, "
                    f"registry holds {handle.shape}"
                )
            if handle.precision is not precision:
                raise ValueError(
                    f"data {name!r} re-registered as {precision}, "
                    f"registry holds {handle.precision}"
                )
            return handle
        handle = DataHandle(
            name=name,
            shape=shape,
            precision=precision,
            payload=payload,
            home_device=(home_device if home_device is not None
                         else len(self._handles) % len(self.devices)),
        )
        self._handles[name] = handle
        self._handle_uids.add(handle.uid)
        return handle

    def data(self, name: str) -> DataHandle:
        return self._handles[name]

    @property
    def handles(self) -> dict[str, DataHandle]:
        return dict(self._handles)

    def namespace(self, label: str) -> str:
        """A unique name prefix for one algorithm invocation.

        Session-long runtimes execute the same tiled algorithm many
        times (one Cholesky per regularization attempt, one solve per
        phenotype panel); prefixing each invocation's handle names
        keeps the registry collision-free without the caller tracking
        generations.
        """
        idx = self._namespaces.get(label, 0)
        self._namespaces[label] = idx + 1
        return f"{label}#{idx}:"

    def require_drained(self, operation: str) -> None:
        """Guard for library routines that insert-and-drain.

        The tiled algorithms (Build, Cholesky, solves, GEMM) insert
        their task DAG and immediately ``run()`` it.  If the caller
        left unrelated tasks pending on this runtime, that drain would
        execute them prematurely, tag their events into the wrong
        phase, and surface their failures from the wrong call — so the
        routines refuse instead.
        """
        if self.graph.num_tasks:
            raise RuntimeError(
                f"{operation} would drain {self.graph.num_tasks} unrelated "
                "pending task(s) on this runtime; run() or reset_graph() "
                "them first"
            )

    def release(self, prefix: str) -> int:
        """Drop registered handles whose name starts with ``prefix``.

        Returns the number of handles released.  Dropping a namespace
        after its algorithm finished keeps session-long registries (and
        their tile payloads) from accumulating without bound.
        """
        names = [n for n in self._handles if n.startswith(prefix)]
        for n in names:
            handle = self._handles.pop(n)
            self._handle_uids.discard(handle.uid)
        return len(names)

    # ------------------------------------------------------------------
    # task insertion and execution
    # ------------------------------------------------------------------
    def insert_task(
        self,
        name: str,
        *accesses: tuple[DataHandle, AccessMode],
        body=None,
        flops: float = 0.0,
        precision: Precision | str = Precision.FP64,
        priority: int = 0,
        tag: Any = None,
        flops_detail: dict[Precision, float] | None = None,
        tile_deps: tuple = (),
        pspec=None,
    ) -> Task:
        """Insert a task; dependencies derive from the access declarations.

        Every accessed handle must be registered with *this* runtime —
        the registry consistency assert that catches tasks smuggling in
        foreign (or released) handles, which would silently break the
        dependency derivation.

        ``tile_deps`` declares the store-backed tiles the task touches
        (``(binding, (i, j))`` pairs) so the scheduler's store hooks can
        pin, unpin and prefetch them (see :mod:`repro.store`).

        ``pspec`` attaches the task's picklable process-backend
        descriptor (see :mod:`repro.parallel.descriptors`); tasks
        without one run inline on the coordinator under
        ``execution="process"``.
        """
        for handle, _ in accesses:
            if handle.uid not in self._handle_uids:
                raise RuntimeError(
                    f"task {name!r} accesses handle {handle.name!r} which is "
                    "not registered with this runtime"
                )
        return self.graph.insert_task(
            name,
            *accesses,
            body=body,
            flops=flops,
            precision=Precision.from_string(precision),
            priority=priority,
            tag=tag,
            flops_detail=flops_detail,
            tile_deps=tile_deps,
            pspec=pspec,
        )

    def run(self, phase: str | None = None) -> ScheduleResult:
        """Drain the pending graph: schedule and execute its tasks.

        On success the run's events are appended to
        :attr:`session_trace` and, when ``phase`` is given, to that
        phase's cumulative trace.

        Failed runs are **resumable**: when the scheduler raises
        :class:`~repro.resilience.errors.TaskGroupError`, the tasks
        that completed stay done (their events are merged into the
        traces), and the unfinished subgraph — failed tasks plus
        everything blocked behind them — becomes the pending graph
        again, so a follow-up :meth:`run` re-drains only what never
        finished.  Callers that treat a failed DAG as disposable (the
        library routines do) call :meth:`reset_graph` instead.
        """
        graph, self.graph = self.graph, TaskGraph()
        self.last_graph = graph
        try:
            result = self.scheduler.run(graph)
        except TaskGroupError as exc:
            if exc.trace is not None:
                self.session_trace.merge(exc.trace)
                if phase is not None:
                    self._phase_traces.setdefault(
                        phase, ExecutionTrace()).merge(exc.trace)
            # re-adding the unfinished tasks in insertion order
            # re-derives exactly the induced dependency subgraph
            resume = TaskGraph()
            for task in exc.unfinished:
                resume.add_task(task)
            self.graph = resume
            raise
        self.session_trace.merge(result.trace)
        if phase is not None:
            self._phase_traces.setdefault(phase, ExecutionTrace()).merge(
                result.trace)
        self._last_result = result
        self.runs_completed += 1
        return result

    @property
    def last_result(self) -> ScheduleResult | None:
        return self._last_result

    # ------------------------------------------------------------------
    # out-of-core store integration
    # ------------------------------------------------------------------
    def attach_store(self, store) -> None:
        """Wire a :class:`~repro.store.TileStore` into the executors.

        Installs the store's scheduler hooks: tasks that declare
        ``tile_deps`` get their tiles prefetched when they become
        ready, pinned against eviction while they run, and released on
        completion.  One store per runtime; attaching the same store
        again is a no-op.
        """
        from repro.store import StoreSchedulerHooks

        hooks = self.scheduler.hooks
        if isinstance(hooks, StoreSchedulerHooks) and hooks.store is store:
            return
        if hooks is not None:
            raise RuntimeError("this runtime already has scheduler hooks")
        self.scheduler.hooks = StoreSchedulerHooks(store)

    # ------------------------------------------------------------------
    # phase accounting
    # ------------------------------------------------------------------
    def phase_trace(self, phase: str) -> ExecutionTrace:
        """Cumulative trace of every successful run tagged ``phase``."""
        return self._phase_traces.setdefault(phase, ExecutionTrace())

    def phases(self) -> tuple[str, ...]:
        """Names of the phases this runtime has traced, first-run order.

        Sessions tag fit-phase runs ``"build"``/``"associate"``/
        ``"predict"``; the prediction service tags its micro-batches
        ``"serve"`` — so a serving host's runtime exposes the service
        load as its own phase trace.
        """
        return tuple(self._phase_traces)

    def clear_phase(self, phase: str) -> None:
        """Reset one phase's cumulative trace (e.g. on re-associate)."""
        self._phase_traces.pop(phase, None)

    def reset_traces(self) -> None:
        """Drop the cumulative session and phase traces.

        Long-lived runtimes (a serving session answering traffic
        indefinitely) accumulate one event per executed task; callers
        that account flops out-of-band — the prediction service keeps
        its own counters — reset periodically to bound trace memory.
        Pending tasks and registered data are untouched.
        """
        self.session_trace = ExecutionTrace()
        self._phase_traces.clear()

    # ------------------------------------------------------------------
    # convenience statistics
    # ------------------------------------------------------------------
    def num_tasks(self) -> int:
        """Pending (not yet run) task count."""
        return self.graph.num_tasks

    def total_flops(self) -> float:
        return self.graph.total_flops()

    def reset_graph(self) -> None:
        """Discard pending tasks while keeping registered data.

        The scheduler is *not* rebuilt — it is constructed once per
        runtime and shared by every run.
        """
        self.graph = TaskGraph()

    def close(self) -> None:
        """Release executor resources.

        Only the process mode holds any (its worker pool, which is
        otherwise reclaimed when the runtime is garbage collected);
        ``close()`` is idempotent and the runtime remains usable — the
        next process-mode run starts a fresh pool.
        """
        self.scheduler.close()
