"""High-level runtime facade.

``Runtime`` bundles a task graph, a device set, a communication engine
and a scheduler behind the small interface the tiled algorithms use:

.. code-block:: python

    rt = Runtime(num_devices=4)
    a = rt.register_data("A(0,0)", tile_array, precision=Precision.FP32)
    rt.insert_task("potrf", (a, AccessMode.READWRITE), body=potrf_body,
                   flops=n**3 / 3, precision=Precision.FP32)
    result = rt.run()

which mirrors PaRSEC's dynamic task insertion interface used by the
paper's GWAS code.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.precision.formats import Precision
from repro.runtime.comm import CommunicationEngine
from repro.runtime.dag import TaskGraph
from repro.runtime.device import DeviceModel, GENERIC_GPU, make_devices
from repro.runtime.scheduler import ScheduleResult, Scheduler
from repro.runtime.task import AccessMode, DataHandle, Task


class Runtime:
    """Dynamic task runtime over simulated devices.

    Parameters
    ----------
    num_devices:
        Number of simulated devices (GPUs).
    device_model:
        Performance model shared by all devices.
    adaptive_conversion:
        Enable the sender/receiver conversion placement of the paper
        (True by default).
    execute_bodies:
        When False, only the timing simulation runs.
    """

    def __init__(
        self,
        num_devices: int = 1,
        device_model: DeviceModel = GENERIC_GPU,
        adaptive_conversion: bool = True,
        execute_bodies: bool = True,
    ) -> None:
        self.graph = TaskGraph()
        self.devices = make_devices(num_devices, device_model)
        self.comm = CommunicationEngine(adaptive_conversion=adaptive_conversion)
        self.scheduler = Scheduler(
            devices=self.devices, comm=self.comm, execute_bodies=execute_bodies
        )
        self._handles: dict[str, DataHandle] = {}
        self._last_result: ScheduleResult | None = None

    # ------------------------------------------------------------------
    # data registration
    # ------------------------------------------------------------------
    def register_data(
        self,
        name: str,
        payload: Any = None,
        precision: Precision | str = Precision.FP64,
        shape: tuple[int, ...] | None = None,
        home_device: int | None = None,
    ) -> DataHandle:
        """Register a named datum (typically one tile) with the runtime."""
        if name in self._handles:
            raise ValueError(f"data {name!r} already registered")
        precision = Precision.from_string(precision)
        if shape is None:
            shape = tuple(np.shape(payload)) if payload is not None else ()
        handle = DataHandle(
            name=name,
            shape=shape,
            precision=precision,
            payload=payload,
            home_device=(home_device if home_device is not None
                         else len(self._handles) % len(self.devices)),
        )
        self._handles[name] = handle
        return handle

    def data(self, name: str) -> DataHandle:
        return self._handles[name]

    @property
    def handles(self) -> dict[str, DataHandle]:
        return dict(self._handles)

    # ------------------------------------------------------------------
    # task insertion and execution
    # ------------------------------------------------------------------
    def insert_task(
        self,
        name: str,
        *accesses: tuple[DataHandle, AccessMode],
        body=None,
        flops: float = 0.0,
        precision: Precision | str = Precision.FP64,
        priority: int = 0,
        tag: Any = None,
    ) -> Task:
        """Insert a task; dependencies derive from the access declarations."""
        return self.graph.insert_task(
            name,
            *accesses,
            body=body,
            flops=flops,
            precision=Precision.from_string(precision),
            priority=priority,
            tag=tag,
        )

    def run(self) -> ScheduleResult:
        """Schedule and execute all inserted tasks; returns the result."""
        self._last_result = self.scheduler.run(self.graph)
        return self._last_result

    @property
    def last_result(self) -> ScheduleResult | None:
        return self._last_result

    # ------------------------------------------------------------------
    # convenience statistics
    # ------------------------------------------------------------------
    def num_tasks(self) -> int:
        return self.graph.num_tasks

    def total_flops(self) -> float:
        return self.graph.total_flops()

    def reset_graph(self) -> None:
        """Discard inserted tasks while keeping registered data."""
        self.graph = TaskGraph()
        self.scheduler = Scheduler(
            devices=self.devices, comm=self.comm,
            execute_bodies=self.scheduler.execute_bodies,
        )
