"""Task DAG construction from dataflow access declarations.

The :class:`TaskGraph` accumulates tasks in insertion order and derives
edges from per-handle access history, exactly like a superscalar /
dataflow runtime:

* read-after-write  → true dependency,
* write-after-read  → anti dependency,
* write-after-write → output dependency.

The underlying graph is a :class:`networkx.DiGraph`, which gives us
topological sorting, critical-path computation and cycle detection for
free.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from repro.runtime.task import AccessMode, DataHandle, Task


class TaskGraph:
    """Directed acyclic graph of :class:`~repro.runtime.task.Task`."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._tasks: list[Task] = []
        # per-handle access history used to derive dependencies
        self._last_writer: dict[DataHandle, Task] = {}
        self._readers_since_write: dict[DataHandle, list[Task]] = defaultdict(list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Insert a task, deriving dependency edges from its accesses."""
        self.graph.add_node(task)
        self._tasks.append(task)
        for handle, mode in task.accesses:
            if mode.reads:
                writer = self._last_writer.get(handle)
                if writer is not None and writer is not task:
                    self.graph.add_edge(writer, task, handle=handle, kind="RAW")
            if mode.writes:
                # order after previous readers (WAR) and the previous writer (WAW)
                for reader in self._readers_since_write.get(handle, []):
                    if reader is not task:
                        self.graph.add_edge(reader, task, handle=handle, kind="WAR")
                writer = self._last_writer.get(handle)
                if writer is not None and writer is not task:
                    self.graph.add_edge(writer, task, handle=handle, kind="WAW")
        # update history after edges are derived
        for handle, mode in task.accesses:
            if mode.writes:
                self._last_writer[handle] = task
                self._readers_since_write[handle] = []
            if mode.reads:
                self._readers_since_write[handle].append(task)
        return task

    def insert_task(self, name: str, *accesses, body=None, flops: float = 0.0,
                    precision=None, priority: int = 0, tag=None,
                    flops_detail=None, tile_deps=(), pspec=None) -> Task:
        """PaRSEC-style convenience wrapper around :meth:`add_task`.

        ``accesses`` is a flat sequence of ``(handle, mode)`` pairs.
        """
        from repro.precision.formats import Precision

        task = Task(
            name=name,
            accesses=tuple(accesses),
            body=body,
            flops=flops,
            precision=precision or Precision.FP64,
            priority=priority,
            tag=tag,
            flops_detail=flops_detail,
            tile_deps=tuple(tile_deps),
            pspec=pspec,
        )
        return self.add_task(task)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks)

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def predecessors(self, task: Task) -> list[Task]:
        return list(self.graph.predecessors(task))

    def successors(self, task: Task) -> list[Task]:
        return list(self.graph.successors(task))

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def topological_order(self) -> list[Task]:
        """A valid execution order (insertion-order stable where possible)."""
        order_index = {t: i for i, t in enumerate(self._tasks)}
        return list(nx.lexicographical_topological_sort(
            self.graph, key=lambda t: order_index[t]
        ))

    def total_flops(self) -> float:
        return float(sum(t.flops for t in self._tasks))

    def critical_path_flops(self) -> float:
        """Maximum sum of task flops along any dependency chain.

        This is the lower bound on execution "work depth" and is what
        limits strong scaling once communication is free.
        """
        if not self._tasks:
            return 0.0
        longest: dict[Task, float] = {}
        for task in self.topological_order():
            preds = self.predecessors(task)
            best = max((longest[p] for p in preds), default=0.0)
            longest[task] = best + float(task.flops)
        return max(longest.values())

    def critical_path_length(self) -> int:
        """Number of tasks on the longest dependency chain.

        This is the depth bound on out-of-order execution: with
        unbounded workers, a run can never take fewer "task steps" than
        the critical path has tasks.
        """
        if not self._tasks:
            return 0
        depth: dict[Task, int] = {}
        for task in self.topological_order():
            preds = self.predecessors(task)
            depth[task] = 1 + max((depth[p] for p in preds), default=0)
        return max(depth.values())

    def task_counts_by_name(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self._tasks:
            counts[t.name] = counts.get(t.name, 0) + 1
        return counts

    def execute_sequential(self) -> None:
        """Execute all task bodies in a valid topological order."""
        for task in self.topological_order():
            task.execute()

    def __len__(self) -> int:
        return self.num_tasks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskGraph({self.num_tasks} tasks, {self.num_edges} edges)"
