"""A PaRSEC-like dynamic task runtime (pure Python).

The paper's GWAS software is written on top of PaRSEC: every tile
operation (distance SYRK, kernel exponentiation, POTRF, TRSM, GEMM,
precision conversion) is a *task*, tasks are connected by dataflow
dependencies into a DAG, and the runtime schedules them over GPUs
while deciding where precision conversions happen (sender vs receiver)
to minimize the bytes moved.

This package reproduces those semantics:

``DataHandle`` / ``Task`` / ``TaskGraph``
    Dataflow description — tasks declare read/write accesses on named
    data handles; the graph derives dependencies from access order.
``Device`` / ``DeviceModel``
    A simulated execution resource with per-precision throughput and
    link bandwidth, used to *time* the schedule (the numerics
    themselves always execute exactly, in Python, on the host).
``CommunicationEngine``
    Byte accounting for tile transfers, including the
    conversion-at-sender / conversion-at-receiver policy of Sec. VI-B1.
``Scheduler`` / ``Runtime``
    List scheduler producing an execution trace (per-task start/stop,
    per-device busy time, critical path) plus the actual execution of
    the task bodies in a valid topological order.
"""

from repro.runtime.task import AccessMode, DataHandle, Task
from repro.runtime.dag import TaskGraph
from repro.runtime.device import Device, DeviceModel
from repro.runtime.comm import CommunicationEngine, ConversionPolicy, TransferRecord
from repro.runtime.trace import ExecutionTrace, TaskEvent
from repro.runtime.scheduler import Scheduler, ScheduleResult
from repro.runtime.runtime import Runtime

__all__ = [
    "AccessMode",
    "DataHandle",
    "Task",
    "TaskGraph",
    "Device",
    "DeviceModel",
    "CommunicationEngine",
    "ConversionPolicy",
    "TransferRecord",
    "ExecutionTrace",
    "TaskEvent",
    "Scheduler",
    "ScheduleResult",
    "Runtime",
]
