"""A PaRSEC-like dynamic task runtime (pure Python).

The paper's GWAS software is written on top of PaRSEC: every tile
operation (distance SYRK, kernel exponentiation, POTRF, TRSM, GEMM,
precision conversion) is a *task*, tasks are connected by dataflow
dependencies into a DAG, and the runtime schedules them over GPUs
while deciding where precision conversions happen (sender vs receiver)
to minimize the bytes moved.

This package reproduces those semantics:

``DataHandle`` / ``Task`` / ``TaskGraph``
    Dataflow description — tasks declare read/write accesses on named
    data handles; the graph derives dependencies from access order.
``Device`` / ``DeviceModel``
    A simulated execution resource with per-precision throughput and
    link bandwidth, used to *time* the schedule (the numerics
    themselves always execute exactly, in Python, on the host).
``CommunicationEngine``
    Byte accounting for tile transfers, including the
    conversion-at-sender / conversion-at-receiver policy of Sec. VI-B1.
``Scheduler`` / ``Runtime``
    The execution engine.  The scheduler drains the ready set as
    dependencies resolve — for real, on a worker-thread pool
    (``execution="threaded"``, the default), serially on the caller's
    thread (``"serial"``), or under the historical simulated-device
    timing model (``"simulated"``).  The runtime is session-long: each
    ``run()`` drains the tasks inserted since the last one and
    accumulates their events into per-phase traces that feed the
    solver sessions' flop accounting.
"""

from repro.runtime.task import AccessMode, DataHandle, Task
from repro.runtime.dag import TaskGraph
from repro.runtime.device import Device, DeviceModel, HOST_WORKER
from repro.runtime.comm import CommunicationEngine, ConversionPolicy, TransferRecord
from repro.runtime.trace import ExecutionTrace, TaskEvent
from repro.runtime.scheduler import (
    EXECUTION_MODES,
    Scheduler,
    ScheduleResult,
    SchedulerError,
)
from repro.runtime.runtime import Runtime, resolve_execution, resolve_workers
from repro.resilience.errors import (
    TaskFailure,
    TaskGroupError,
    TaskTimeoutError,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "AccessMode",
    "DataHandle",
    "Task",
    "TaskGraph",
    "Device",
    "DeviceModel",
    "HOST_WORKER",
    "CommunicationEngine",
    "ConversionPolicy",
    "TransferRecord",
    "ExecutionTrace",
    "TaskEvent",
    "EXECUTION_MODES",
    "Scheduler",
    "ScheduleResult",
    "SchedulerError",
    "Runtime",
    "resolve_execution",
    "resolve_workers",
    "TaskFailure",
    "TaskGroupError",
    "TaskTimeoutError",
    "RetryPolicy",
]
