"""Simulated execution devices with per-precision throughput.

The scheduler times each task as ``flops / throughput(precision)`` on
the device it maps to, plus any transfer time charged by the
communication engine.  Device specs default to the GPUs used in the
paper (V100, A100, MI250X, GH200); exact peak numbers live in
:mod:`repro.perfmodel.gpus`, this module only needs relative
throughputs for scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.precision.formats import Precision


@dataclass(frozen=True)
class DeviceModel:
    """Performance model of one device class.

    Parameters
    ----------
    name:
        Human-readable device name (``"GH200"``...).
    throughput:
        Mapping from precision to sustained throughput in op/s.  Any
        precision missing from the map falls back to the FP32 entry.
    memory_bandwidth:
        Device memory bandwidth in bytes/s (used for bandwidth-bound
        tasks such as the kernel exponentiation).
    link_bandwidth:
        Interconnect bandwidth to peer devices in bytes/s.
    link_latency:
        Per-message latency in seconds.
    memory_capacity:
        Device memory in bytes (used to check that tile working sets fit).
    """

    name: str
    throughput: dict[Precision, float]
    memory_bandwidth: float = 1.0e12
    link_bandwidth: float = 2.5e10
    link_latency: float = 5.0e-6
    memory_capacity: float = 8.0e10

    def throughput_for(self, precision: Precision) -> float:
        if precision in self.throughput:
            return self.throughput[precision]
        if precision is Precision.INT32 and Precision.INT8 in self.throughput:
            return self.throughput[Precision.INT8]
        if precision in (Precision.FP8_E5M2,) and Precision.FP8_E4M3 in self.throughput:
            return self.throughput[Precision.FP8_E4M3]
        if precision is Precision.BF16 and Precision.FP16 in self.throughput:
            return self.throughput[Precision.FP16]
        return self.throughput.get(Precision.FP32, 1.0e12)

    def task_time(self, flops: float, precision: Precision) -> float:
        """Execution time of ``flops`` operations at ``precision``."""
        rate = self.throughput_for(precision)
        return float(flops) / rate if rate > 0 else 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over the device link."""
        if nbytes <= 0:
            return 0.0
        return self.link_latency + nbytes / self.link_bandwidth


#: A generic device model with the relative tensor-core throughput
#: ratios of a Hopper-class GPU, used when no explicit model is given.
GENERIC_GPU = DeviceModel(
    name="generic-gpu",
    throughput={
        Precision.FP64: 3.4e13,
        Precision.FP32: 6.7e13,
        Precision.FP16: 9.9e14,
        Precision.BF16: 9.9e14,
        Precision.FP8_E4M3: 1.98e15,
        Precision.INT8: 1.98e15,
    },
)


#: Device model used for the threaded/serial executors' worker slots.
#: The throughput numbers are never used there (events carry measured
#: wall-clock times); the model only names the resource in traces.
HOST_WORKER = DeviceModel(
    name="host-thread",
    throughput={Precision.FP64: 1.0e11, Precision.FP32: 2.0e11},
    link_bandwidth=1.0e11,  # shared host memory: transfers are free-ish
    link_latency=0.0,
)


@dataclass
class Device:
    """One schedulable device instance (a GPU within a node, or one
    worker thread of the host executor)."""

    index: int
    model: DeviceModel = GENERIC_GPU
    busy_until: float = 0.0
    busy_time: float = 0.0
    tasks_executed: int = 0
    bytes_received: float = 0.0
    bytes_sent: float = 0.0
    events: list = field(default_factory=list)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.tasks_executed = 0
        self.bytes_received = 0.0
        self.bytes_sent = 0.0
        self.events.clear()

    def utilization(self, makespan: float) -> float:
        """Busy fraction over the schedule's makespan."""
        if makespan <= 0:
            return 0.0
        return min(self.busy_time / makespan, 1.0)


def make_devices(count: int, model: DeviceModel = GENERIC_GPU) -> list[Device]:
    """Create ``count`` identical devices."""
    if count <= 0:
        raise ValueError("device count must be positive")
    return [Device(index=i, model=model) for i in range(count)]
