"""List scheduler over simulated devices.

The scheduler walks the task DAG in dataflow order, executing each
task's body (real numerics, on the host) while *simulating* the time it
would take on the mapped device, including the transfer time of any
input tile that last lived on a different device.  The result couples
a correct execution with a performance estimate — the same separation
the paper relies on when it reports flop/s from timers plus counted
operations.

Mapping policy: each task is mapped to the device that owns the first
written handle (owner-computes, the PaRSEC default for tile
algorithms); when that is unavailable, the earliest-available device
is chosen.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.runtime.comm import CommunicationEngine
from repro.runtime.dag import TaskGraph
from repro.runtime.device import Device, make_devices
from repro.runtime.task import DataHandle, Task
from repro.runtime.trace import ExecutionTrace, TaskEvent


@dataclass
class ScheduleResult:
    """Outcome of scheduling (and executing) a task graph."""

    trace: ExecutionTrace
    comm: CommunicationEngine
    devices: list[Device]

    @property
    def makespan(self) -> float:
        return self.trace.makespan

    @property
    def throughput(self) -> float:
        return self.trace.throughput()

    def summary(self) -> dict[str, float]:
        out = self.trace.summary()
        out["bytes_moved"] = float(self.comm.total_bytes)
        out["num_transfers"] = float(self.comm.num_transfers)
        return out


@dataclass
class Scheduler:
    """Dynamic list scheduler with owner-computes mapping.

    Parameters
    ----------
    devices:
        Devices to schedule over; default one generic GPU.
    comm:
        Communication engine used for transfer accounting.
    execute_bodies:
        When False only the timing simulation runs (useful for very
        large synthetic DAGs in the performance model).
    owner_computes:
        When True tasks run on the home device of their first written
        handle; otherwise tasks go to the earliest-free device.
    """

    devices: list[Device] = field(default_factory=lambda: make_devices(1))
    comm: CommunicationEngine = field(default_factory=CommunicationEngine)
    execute_bodies: bool = True
    owner_computes: bool = True

    def run(self, graph: TaskGraph) -> ScheduleResult:
        """Execute and time ``graph``."""
        if not graph.is_acyclic():
            raise RuntimeError("task graph contains a cycle")

        for device in self.devices:
            device.reset()
        self.comm.reset()
        trace = ExecutionTrace()

        # location of each handle's current valid copy
        location: dict[DataHandle, int] = {}
        finish_time: dict[Task, float] = {}

        # ready-queue keyed by (-priority, insertion order)
        indegree = {t: len(graph.predecessors(t)) for t in graph.tasks}
        order_index = {t: i for i, t in enumerate(graph.tasks)}
        ready: list[tuple[int, int, Task]] = []
        for t in graph.tasks:
            if indegree[t] == 0:
                heapq.heappush(ready, (-t.priority, order_index[t], t))

        executed = 0
        while ready:
            _, _, task = heapq.heappop(ready)
            device = self._map_task(task, location)

            # inputs become available when predecessors finish
            data_ready = max(
                (finish_time[p] for p in graph.predecessors(task)), default=0.0
            )

            # transfer inputs that live elsewhere
            transfer_time = 0.0
            for handle in task.reads:
                src = location.get(handle, handle.home_device)
                if src != device.index:
                    self.comm.record_transfer(handle, src, device.index,
                                              task.precision)
                    nbytes = handle.nbytes(
                        self.comm.wire_precision(handle.precision, task.precision)
                    )
                    transfer_time += device.model.transfer_time(nbytes)
                    device.bytes_received += nbytes
                    location[handle] = device.index

            start = max(device.busy_until, data_ready) + transfer_time
            duration = device.model.task_time(task.flops, task.precision)
            end = start + duration

            if self.execute_bodies:
                task.execute()

            device.busy_until = end
            device.busy_time += duration
            device.tasks_executed += 1
            finish_time[task] = end
            for handle in task.writes:
                location[handle] = device.index

            trace.add(TaskEvent(
                task_name=task.name,
                task_uid=task.uid,
                device=device.index,
                start=start,
                end=end,
                flops=task.flops,
                precision=task.precision,
                tag=task.tag,
            ))
            executed += 1

            for succ in graph.successors(task):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, (-succ.priority, order_index[succ], succ))

        if executed != graph.num_tasks:
            raise RuntimeError(
                f"schedule executed {executed} of {graph.num_tasks} tasks "
                "(dependency deadlock)"
            )
        return ScheduleResult(trace=trace, comm=self.comm, devices=self.devices)

    # ------------------------------------------------------------------
    def _map_task(self, task: Task, location: dict[DataHandle, int]) -> Device:
        if self.owner_computes and task.writes:
            target = task.writes[0]
            idx = location.get(target, target.home_device) % len(self.devices)
            return self.devices[idx]
        return min(self.devices, key=lambda d: d.busy_until)
